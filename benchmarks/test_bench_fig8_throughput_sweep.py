"""Benchmark: Figure 8 — execution time vs steady ancilla throughput.

For each kernel, execution time falls as the steady encoded-zero supply
rate rises, hitting a floor once supply exceeds demand. Shape targets:

* monotone non-increasing curves;
* a steep region below the Table 3 average bandwidth (starving);
* at the average bandwidth (the figure's vertical line) execution runs
  within a small factor of the floor;
* a flat plateau at high throughput equal to the dataflow bound.
"""

import numpy as np

from repro.arch.sweep import throughput_sweep


def _sweep_all(kernels):
    out = {}
    for ka in kernels:
        avg = ka.zero_bandwidth_per_ms
        rates = np.geomspace(avg / 16, avg * 16, 9)
        out[ka.name] = (avg, throughput_sweep(ka, rates))
    return out


def test_bench_fig8(benchmark, all_kernels32):
    sweeps = benchmark.pedantic(
        lambda: _sweep_all(all_kernels32), rounds=1, iterations=1
    )
    print()
    for name, (avg, points) in sweeps.items():
        series = ", ".join(
            f"{p.x:.0f}/ms:{p.makespan_us / 1000:.1f}ms" for p in points[::2]
        )
        print(f"  {name} (avg {avg:.1f}/ms): {series}")
        makespans = [p.makespan_us for p in points]
        assert all(a >= b - 1e-6 for a, b in zip(makespans, makespans[1:]))
        floor = makespans[-1]
        starved = makespans[0]
        assert starved > 5 * floor  # steep starving region
        at_avg = min(points, key=lambda p: abs(p.x - avg)).makespan_us
        assert at_avg < 3 * floor  # average bandwidth nearly suffices
        assert makespans[-2] < 1.2 * floor  # plateau is flat
