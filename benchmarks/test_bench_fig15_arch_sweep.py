"""Benchmark: Figure 15 — execution time vs factory area per architecture.

For each kernel, sweep total ancilla-factory area for QLA, CQLA and
Fully-Multiplexed. Shape targets from Section 5.2:

* Fully-Multiplexed is fastest at every sampled area;
* CQLA plateaus well above Fully-Multiplexed (cache misses persist);
* QLA eventually plateaus near Fully-Multiplexed but needs far more area
  to get there (idle dedicated generators).
"""

from repro.arch import ArchitectureKind
from repro.arch.provisioning import area_breakdown
from repro.arch.sweep import area_sweep, area_to_reach, plateau_makespan
from repro.reporting import run_experiment


def _sweep(ka):
    matched = area_breakdown(ka).factory_area
    areas = [matched * f for f in (0.25, 1, 4, 16, 64, 256)]
    return area_sweep(ka, areas=areas)


def test_bench_fig15_qcla(benchmark, qcla32):
    curves = benchmark.pedantic(lambda: _sweep(qcla32), rounds=1, iterations=1)
    print()
    print(run_experiment("fig15"))
    _assert_shape(curves, cqla_gap=3.0, qla_area_factor=4.0)


def test_bench_fig15_qrca(benchmark, qrca32):
    curves = benchmark.pedantic(lambda: _sweep(qrca32), rounds=1, iterations=1)
    _print_curves("QRCA", curves)
    _assert_shape(curves, cqla_gap=1.0, qla_area_factor=4.0)


def test_bench_fig15_qft(benchmark, qft32):
    curves = benchmark.pedantic(lambda: _sweep(qft32), rounds=1, iterations=1)
    _print_curves("QFT", curves)
    _assert_shape(curves, cqla_gap=1.0, qla_area_factor=2.0)


def _print_curves(name, curves):
    print()
    for kind, points in curves.items():
        series = ", ".join(
            f"{p.x:.0f}:{p.makespan_us / 1000:.1f}ms" for p in points
        )
        print(f"  {name} {kind.value}: {series}")


def _assert_shape(curves, cqla_gap, qla_area_factor):
    mux = curves[ArchitectureKind.MULTIPLEXED]
    cqla = curves[ArchitectureKind.CQLA]
    qla = curves[ArchitectureKind.QLA]
    # Multiplexed dominates point-for-point.
    for m, c, q in zip(mux, cqla, qla):
        assert m.makespan_us <= c.makespan_us + 1e-6
        assert m.makespan_us <= q.makespan_us + 1e-6
    # CQLA's plateau sits above multiplexed's by the expected gap.
    assert plateau_makespan(cqla) >= cqla_gap * plateau_makespan(mux)
    # QLA reaches a similar plateau but needs much more area.
    assert plateau_makespan(qla) < 3 * plateau_makespan(mux)
    target = 1.5 * plateau_makespan(mux)
    mux_area = area_to_reach(mux, target)
    qla_area = area_to_reach(qla, target)
    assert mux_area is not None
    assert qla_area is None or qla_area >= qla_area_factor * mux_area
