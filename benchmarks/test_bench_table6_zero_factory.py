"""Benchmark: Table 6 — the pipelined encoded-zero factory.

Exact reproduction: bandwidth matching yields unit counts 24/1/1/3/2,
functional area 130, crossbar area 168 (24 + 2x30 + 2x42), total 298
macroblocks, and throughput 10.5 encoded ancillae per millisecond.
"""

import pytest

from repro.factory import PipelinedZeroFactory
from repro.reporting import run_experiment


def test_bench_table6(benchmark):
    factory = benchmark(PipelinedZeroFactory)
    print()
    print(run_experiment("table6"))
    assert factory.unit_counts == {
        "zero_prep": 24,
        "cx_stage": 1,
        "cat_prep": 1,
        "verification": 3,
        "bp_correction": 2,
    }
    assert factory.functional_area == 130
    assert factory.crossbar_areas == [24, 60, 84]
    assert factory.area == 298
    assert factory.throughput_per_ms == pytest.approx(10.5, abs=0.05)
