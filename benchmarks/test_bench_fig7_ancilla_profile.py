"""Benchmark: Figure 7 — encoded-zero ancillae in flight over time.

The figure shows, for each kernel, how many encoded zeros must be in the
system as execution progresses to stay at the speed of data. Shape
targets: non-trivial time variation (peaks above the mean), and the QCLA's
in-flight peak scaled by its (much shorter) runtime towers over the QRCA's.
"""

from repro.reporting import run_experiment


def _profiles(kernels):
    return {ka.name: ka.ancilla_demand_profile(buckets=80) for ka in kernels}


def test_bench_fig7(benchmark, all_kernels32):
    profiles = benchmark.pedantic(
        lambda: _profiles(all_kernels32), rounds=1, iterations=1
    )
    print()
    print(run_experiment("fig7"))
    for name, profile in profiles.items():
        counts = [c for _, c in profile]
        peak, mean = max(counts), sum(counts) / len(counts)
        print(f"  {name}: peak in-flight {peak:.0f}, mean {mean:.1f}")
        assert peak > 0
        assert peak > mean  # bursty demand (Section 3.2's peak-handling point)
    # Demand-rate ordering: QCLA >> QRCA (same as Table 3).
    rate = {
        ka.name: max(c for _, c in profiles[ka.name]) / ka.execution_time_us
        for ka in all_kernels32
    }
    assert rate["32-Bit QCLA"] > 3 * rate["32-Bit QRCA"]
