"""Ratcheting performance gate over the recorded benchmark trajectory.

``BENCH_protocols.json`` accumulates one entry per perf benchmark per
recording session (see :mod:`benchmarks.record`). This script turns that
trajectory into a regression gate: for every gated benchmark, the best
value among the most recent ``--window`` entries must land within
``--tolerance`` (default 10%) of the best value ever recorded. The best
ever recorded is the ratchet — it only moves up, so a perf win raises
the bar for every later change, and a committed history whose newest
entries fall more than the tolerance below the bar fails CI.

Every gated metric is a *ratio of two measurements from the same
session* (compiled-vs-seed speedup, batched-vs-scalar speedup), never a
raw throughput. Raw gates/s numbers vary with the machine that recorded
them; same-session ratios cancel machine speed, so a laptop-recorded
entry and a CI-recorded entry are comparable and the gate is
deterministic given the committed file.

Exit status: 0 when every gated benchmark passes (or has no history),
1 when any regresses.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

#: Default trajectory file — the one benchmarks/record.py appends to.
HISTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_protocols.json"

#: How far below the best recorded value the recent window may fall.
DEFAULT_TOLERANCE = 0.10

#: Recent entries considered per benchmark; the best of the window is
#: compared against the ratchet, so one noisy recording session does not
#: fail the gate by itself.
DEFAULT_WINDOW = 3


def _ratio(numerator: str, denominator: str) -> Callable[[Dict], Optional[float]]:
    def extract(metrics: Dict) -> Optional[float]:
        try:
            num, den = float(metrics[numerator]), float(metrics[denominator])
        except (KeyError, TypeError, ValueError):
            return None
        return num / den if den > 0 else None

    return extract


def _field(name: str) -> Callable[[Dict], Optional[float]]:
    def extract(metrics: Dict) -> Optional[float]:
        try:
            return float(metrics[name])
        except (KeyError, TypeError, ValueError):
            return None

    return extract


@dataclass(frozen=True)
class Gate:
    """One gated benchmark: where its ratio comes from, and its label.

    ``tolerance`` overrides the run-wide default for this gate. Gates
    whose denominator is a *live* reference engine carry a wide one:
    the scalar protocol loop and the serial compiled engine both get
    optimized over time, so those ratios shrink legitimately when the
    reference improves (the dataflow fix that restored single-point
    throughput also compressed every batched-vs-serial speedup). The
    wide bound still catches a batched-engine collapse while absorbing
    reference drift; gates measured against the *frozen seed* engine
    keep the tight default.
    """

    benchmark: str
    label: str
    extract: Callable[[Dict], Optional[float]]
    tolerance: Optional[float] = None


#: The gated benchmarks. Each label names the machine-independent ratio
#: being ratcheted.
GATES: Sequence[Gate] = (
    Gate(
        "dataflow_single_point",
        "compiled/seed gates-per-second",
        _ratio("gates_per_second", "seed_gates_per_second"),
    ),
    Gate("dataflow_area_sweep", "sweep speedup vs seed", _field("speedup_vs_seed")),
    Gate("pi8_protocol", "batched/scalar speedup", _field("speedup"), 0.30),
    Gate("cat7_protocol", "batched/scalar speedup", _field("speedup"), 0.30),
    Gate("steady_sweep", "batched/serial speedup", _field("speedup"), 0.30),
    Gate("qla_area_sweep", "batched/serial speedup", _field("speedup"), 0.30),
    Gate("cqla_sweep", "batched/serial speedup", _field("speedup"), 0.30),
)


@dataclass(frozen=True)
class RatchetResult:
    """Outcome of one gate: recent-window best vs best ever recorded."""

    benchmark: str
    label: str
    best: Optional[float]  # ratchet: best value ever recorded
    recent: Optional[float]  # best of the most recent window
    samples: int  # history entries carrying this metric
    tolerance: Optional[float] = None  # per-gate override, if any

    @property
    def drop(self) -> Optional[float]:
        """Fractional shortfall of recent vs best (0.0 = at the bar)."""
        if self.best is None or self.recent is None or self.best <= 0:
            return None
        return max(0.0, 1.0 - self.recent / self.best)

    def limit(self, default_tolerance: float) -> float:
        return self.tolerance if self.tolerance is not None else default_tolerance

    def ok(self, default_tolerance: float) -> bool:
        """No data passes (nothing to ratchet against); a drop beyond
        the gate's tolerance fails."""
        drop = self.drop
        return drop is None or drop <= self.limit(default_tolerance)


def _entry_key(entry: Dict) -> Optional[tuple]:
    """Identity of an entry for dedupe: name + metrics, ignoring the
    recording timestamp and Python stamp."""
    if not isinstance(entry, dict):
        return None
    return (
        entry.get("name"),
        json.dumps(entry.get("metrics"), sort_keys=True),
    )


def dedupe_trailing_batches(history: List[Dict]) -> List[Dict]:
    """Drop trailing recording batches that exactly repeat the batch
    before them (same names and metrics, timestamps ignored).

    A double flush — e.g. a benchmark session rerun without clearing the
    queue, or a file committed twice — appends an identical block and
    would double-weight its values in the recent window. Repeatedly strip
    the largest trailing block k whose (name, metrics) sequence equals
    the preceding k entries; genuine re-measurements differ in their
    timings and are kept.
    """
    entries = list(history)
    stripped = True
    while stripped:
        stripped = False
        keys = [_entry_key(entry) for entry in entries]
        for k in range(len(entries) // 2, 0, -1):
            if keys[-k:] == keys[-2 * k : -k]:
                del entries[-k:]
                stripped = True
                break
    return entries


def load_history(path: Path) -> List[Dict]:
    """The recorded trajectory, oldest first, with duplicate trailing
    batches collapsed; missing/corrupt is empty."""
    try:
        loaded = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    return dedupe_trailing_batches(loaded) if isinstance(loaded, list) else []


def check(
    history: Sequence[Dict],
    gates: Sequence[Gate] = GATES,
    window: int = DEFAULT_WINDOW,
) -> List[RatchetResult]:
    """Evaluate every gate against the trajectory."""
    results = []
    for gate in gates:
        values = [
            value
            for entry in history
            if isinstance(entry, dict) and entry.get("name") == gate.benchmark
            for value in [gate.extract(entry.get("metrics") or {})]
            if value is not None
        ]
        results.append(
            RatchetResult(
                benchmark=gate.benchmark,
                label=gate.label,
                best=max(values) if values else None,
                recent=max(values[-window:]) if values else None,
                samples=len(values),
                tolerance=gate.tolerance,
            )
        )
    return results


def format_report(results: Sequence[RatchetResult], tolerance: float) -> str:
    lines = [
        f"perf ratchet: recent window vs best recorded "
        f"(tolerance {tolerance:.0%})"
    ]
    width = max(len(r.benchmark) for r in results) if results else 0
    for r in results:
        if r.best is None:
            lines.append(f"  {r.benchmark:<{width}}  (no history) SKIP")
            continue
        drop = r.drop or 0.0
        verdict = "ok" if r.ok(tolerance) else "REGRESSED"
        limit = r.limit(tolerance)
        note = f" (gate {limit:.0%})" if r.tolerance is not None else ""
        lines.append(
            f"  {r.benchmark:<{width}}  {r.label}: best {r.best:8.2f}  "
            f"recent {r.recent:8.2f}  drop {drop:6.1%}  {verdict}{note}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--history", type=Path, default=HISTORY_PATH,
        help=f"benchmark trajectory file (default: {HISTORY_PATH.name})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE, metavar="F",
        help="allowed fractional drop below the best recorded (default 0.10)",
    )
    parser.add_argument(
        "--window", type=int, default=DEFAULT_WINDOW, metavar="N",
        help="recent entries per benchmark; the window's best is compared "
             "(default 3)",
    )
    ns = parser.parse_args(argv)
    if ns.window < 1:
        parser.error(f"--window must be >= 1, got {ns.window}")
    if not 0 <= ns.tolerance < 1:
        parser.error(f"--tolerance must be in [0, 1), got {ns.tolerance}")
    results = check(load_history(ns.history), window=ns.window)
    print(format_report(results, ns.tolerance))
    failed = [r for r in results if not r.ok(ns.tolerance)]
    if failed:
        names = ", ".join(r.benchmark for r in failed)
        print(
            f"FAIL: {names} regressed beyond the gate tolerance below "
            "the best recorded value",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
