"""Benchmark trajectory recording: append engine numbers to BENCH_*.json.

Perf benchmarks call :func:`record` with whatever throughput numbers they
measured; the conftest ``pytest_sessionfinish`` hook flushes everything
collected during the session as one batch appended to
``BENCH_protocols.json`` at the repo root. The file is a growing JSON
list — one entry per recorded measurement, stamped with UTC time and the
machine's Python — so future perf PRs can diff their numbers against the
trajectory instead of re-deriving a baseline. Recording is opt-in: set
``REPRO_BENCH_RECORD=1`` to flush; any other value (or none) leaves the
working tree untouched.
"""

from __future__ import annotations

import json
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import List, Optional

#: Default record file, at the repo root next to README.md.
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_protocols.json"

_pending: List[dict] = []


def record(name: str, **metrics) -> dict:
    """Queue one measurement for the end-of-session flush."""
    entry = {
        "name": name,
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "metrics": metrics,
    }
    _pending.append(entry)
    return entry


def flush(path: Optional[Path] = None) -> Optional[Path]:
    """Append all queued measurements to the record file.

    Returns the path written, or None when nothing was queued. Corrupt
    or missing history starts a fresh list rather than failing the
    benchmark session.
    """
    global _pending
    if not _pending:
        return None
    target = Path(path) if path is not None else BENCH_PATH
    history: List[dict] = []
    if target.exists():
        try:
            loaded = json.loads(target.read_text())
            if isinstance(loaded, list):
                history = loaded
        except ValueError:
            print(f"warning: {target} was corrupt; starting fresh", file=sys.stderr)
    history.extend(_pending)
    target.write_text(json.dumps(history, indent=2) + "\n")
    _pending = []
    return target
