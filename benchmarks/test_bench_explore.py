"""Design-space exploration benchmark: the Qalypso pick, rediscovered.

The paper's Figures 15-16 argument is a design-space search: across
architecture organizations and factory-area budgets, the fully
multiplexed (Qalypso) organization minimizes ADCR. This benchmark
re-runs that search through `repro.explore` for the 32-bit QCLA and
asserts the shape targets:

* the ADCR-optimal point is the fully-multiplexed organization;
* every architecture's winner beats its own area extremes (the ADCR
  curve is U-ish: starved and over-provisioned chips both lose);
* the adaptive strategy matches or beats the grid optimum at half the
  evaluation budget.
"""

from repro.explore import (
    AdaptiveStrategy,
    AdcrObjective,
    Evaluator,
    GridStrategy,
    architecture_space,
    explore,
    format_exploration,
)


def run_grid(analysis):
    space = architecture_space(analysis)
    return space, explore(
        space,
        AdcrObjective(),
        GridStrategy(space),
        evaluator=Evaluator(analysis=analysis),
        budget=space.grid_size(),
    )


class TestQalypsoPick:
    def test_adcr_optimum_is_fully_multiplexed(self, qcla32):
        space, result = run_grid(qcla32)
        assert result.evaluated == space.grid_size()
        assert result.best.point_dict["arch"] == "multiplexed"
        print()
        print(format_exploration(result))

    def test_per_arch_winners_are_interior(self, qcla32):
        space, result = run_grid(qcla32)
        areas = space.dimension("factory_area").values
        for arch, (evaluation, score) in result.best_per("arch").items():
            scores = {
                dict(e.point)["factory_area"]: s
                for e, s in zip(result.evaluations, result.scores)
                if dict(e.point)["arch"] == arch
            }
            assert score <= scores[areas[0]]
            assert score <= scores[areas[-1]]

    def test_adaptive_matches_grid_at_half_budget(self, qcla32):
        space, grid = run_grid(qcla32)
        adaptive = explore(
            space,
            AdcrObjective(),
            AdaptiveStrategy(space, seed=0),
            evaluator=Evaluator(analysis=qcla32),
            budget=space.grid_size() // 2,
        )
        assert adaptive.evaluated <= space.grid_size() // 2
        assert adaptive.best_score <= grid.best_score
        print()
        print(
            f"grid {grid.evaluated} evals -> ADCR {grid.best_score:.4g}; "
            f"adaptive {adaptive.evaluated} evals -> "
            f"ADCR {adaptive.best_score:.4g}"
        )
