"""Benchmark: Figure 11 / Section 4.3 — the simple ancilla factory.

Exact reproduction: hand-optimized schedule latency 323us, throughput 3.1
encoded ancillae/ms, area 90 macroblocks — and the Section 5.3 observation
that it matches the pipelined factory's bandwidth per unit area.
"""

import pytest

from repro.factory import PipelinedZeroFactory, SimpleZeroFactory
from repro.factory.simple import simple_factory_grid
from repro.reporting import run_experiment


def test_bench_fig11(benchmark):
    factory = benchmark(SimpleZeroFactory)
    print()
    print(run_experiment("fig11"))
    assert factory.latency_us == 323.0
    assert factory.throughput_per_ms == pytest.approx(3.1, abs=0.05)
    assert factory.area == 90
    grid = simple_factory_grid()
    grid.validate_connected()
    assert grid.area == 90

    # Section 5.3: "virtually the same encoded zero ancilla bandwidth per
    # unit area" as the pipelined design.
    pipelined = PipelinedZeroFactory()
    ratio = pipelined.bandwidth_per_area / factory.bandwidth_per_area
    print(f"  bandwidth/area: simple={factory.bandwidth_per_area:.4f} "
          f"pipelined={pipelined.bandwidth_per_area:.4f} (ratio {ratio:.2f})")
    assert 0.8 < ratio < 1.25
