"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's tables or figures, asserts
its shape targets, and prints the reproduced artifact so the benchmark log
doubles as the reproduction record. 32-bit kernels are session-scoped.
"""

import pytest

from repro.kernels import analyze_kernel


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: engine-throughput microbenchmarks (deselect with -m 'not perf')",
    )


@pytest.fixture(scope="session")
def qrca32():
    return analyze_kernel("qrca", 32)


@pytest.fixture(scope="session")
def qcla32():
    return analyze_kernel("qcla", 32)


@pytest.fixture(scope="session")
def qft32():
    return analyze_kernel("qft", 32)


@pytest.fixture(scope="session")
def all_kernels32(qrca32, qcla32, qft32):
    return [qrca32, qcla32, qft32]
