"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's tables or figures, asserts
its shape targets, and prints the reproduced artifact so the benchmark log
doubles as the reproduction record. 32-bit kernels are session-scoped.

Two environment knobs exist for the CI perf smoke (which runs the
``perf``-marked benchmarks as a correctness check at tiny sizes so the
perf code paths cannot silently rot):

* ``REPRO_BENCH_WIDTH`` rescales the kernel fixtures (default 32; the
  table/figure benchmarks assert paper numbers and need the default).
* ``REPRO_PERF_SMOKE=1`` keeps the perf benchmarks' correctness
  assertions but skips their speedup-ratio gates, which are meaningless
  at smoke sizes.

Perf benchmarks queue throughput numbers via :mod:`record`; the
session-finish hook appends them to ``BENCH_protocols.json`` only when
``REPRO_BENCH_RECORD=1`` is set, so ordinary test runs leave the working
tree clean.
"""

import os

import pytest

import record as bench_record
from repro.kernels import analyze_kernel

#: Kernel width for the session fixtures; the CI perf smoke shrinks it.
BENCH_WIDTH = int(os.environ.get("REPRO_BENCH_WIDTH", "32"))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: engine-throughput microbenchmarks (deselect with -m 'not perf')",
    )


def pytest_sessionfinish(session, exitstatus):
    if os.environ.get("REPRO_BENCH_RECORD", "") == "1":
        path = bench_record.flush()
        if path is not None:
            print(f"\nbenchmark trajectory appended to {path}")


@pytest.fixture(scope="session")
def qrca32():
    return analyze_kernel("qrca", BENCH_WIDTH)


@pytest.fixture(scope="session")
def qcla32():
    return analyze_kernel("qcla", BENCH_WIDTH)


@pytest.fixture(scope="session")
def qft32():
    return analyze_kernel("qft", BENCH_WIDTH)


@pytest.fixture(scope="session")
def all_kernels32(qrca32, qcla32, qft32):
    return [qrca32, qcla32, qft32]
