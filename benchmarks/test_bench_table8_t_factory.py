"""Benchmark: Table 8 — the encoded pi/8 ancilla factory.

Exact reproduction: unit counts 4/1/4/2, functional area 147, crossbars
256 (2x24 + 2x52 + 2x52), total 403 macroblocks, throughput 18.3/ms
bottlenecked by the 7-qubit cat-state prepare stage.
"""

import pytest

from repro.factory import Pi8Factory
from repro.reporting import run_experiment


def test_bench_table8(benchmark):
    factory = benchmark(Pi8Factory)
    print()
    print(run_experiment("table8"))
    assert factory.unit_counts == {
        "cat_state_prepare": 4,
        "transversal_interact": 1,
        "decode_store": 4,
        "h_measure_correct": 2,
    }
    assert factory.functional_area == 147
    assert factory.crossbar_areas == [48, 104, 104]
    assert factory.area == 403
    assert factory.throughput_per_ms == pytest.approx(18.3, abs=0.05)
    # The factory consumes one encoded zero per output (Section 4.4.2).
    assert factory.zero_ancilla_demand_per_ms == pytest.approx(
        factory.throughput_per_ms
    )
