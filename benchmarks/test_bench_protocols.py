"""Benchmark: batched protocol engine vs scalar trial drivers.

The general batched engine (repro.error.batched) must make million-trial
Monte Carlo estimates routine for *every* ancilla protocol, not just the
four Figure 4 strategies. This benchmark measures per-trial throughput of
the scalar and batched pi/8-ancilla and cat-state drivers, asserts the
acceptance gate (batched pi/8 evaluation >= 30x the scalar driver, with
error rates agreeing within overlapping Wilson intervals), and records
the trials/sec trajectory to BENCH_protocols.json.

The scalar driver is timed on a smaller trial count (its per-trial cost
is constant, so throughput extrapolates) to keep the benchmark minutes
off the wall clock; set REPRO_PI8_TRIALS to rescale the batched side.
With REPRO_PERF_SMOKE=1 (CI), the speedup gate is skipped and only
correctness/agreement is checked.
"""

import os
import time

import pytest

import record as bench_record
from repro.ancilla import (
    evaluate_cat_prep,
    evaluate_cat_prep_batched,
    evaluate_pi8_ancilla,
    evaluate_pi8_ancilla_batched,
)

pytestmark = pytest.mark.perf

TRIALS = int(os.environ.get("REPRO_PI8_TRIALS", "100000"))

#: CI smoke mode: correctness assertions only, no speedup-ratio gates.
PERF_SMOKE = os.environ.get("REPRO_PERF_SMOKE") == "1"


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def _intervals_overlap(a, b):
    (lo_a, hi_a), (lo_b, hi_b) = a, b
    return lo_a <= hi_b and lo_b <= hi_a


def test_bench_pi8_protocol_speedup(benchmark):
    """Acceptance gate: batched pi/8 evaluation >= 30x the scalar driver."""
    scalar_trials = max(500, TRIALS // 25)
    batched_s, batched_result = benchmark.pedantic(
        lambda: _timed(lambda: evaluate_pi8_ancilla_batched(trials=TRIALS, seed=7)),
        rounds=1,
        iterations=1,
    )
    scalar_s, scalar_result = _timed(
        lambda: evaluate_pi8_ancilla(trials=scalar_trials, seed=11)
    )
    batched_rate = TRIALS / batched_s
    scalar_rate = scalar_trials / scalar_s
    speedup = batched_rate / scalar_rate
    benchmark.extra_info["batched_trials_per_s"] = batched_rate
    benchmark.extra_info["scalar_trials_per_s"] = scalar_rate
    benchmark.extra_info["speedup"] = speedup
    bench_record.record(
        "pi8_protocol",
        batched_trials=TRIALS,
        scalar_trials=scalar_trials,
        batched_trials_per_s=batched_rate,
        scalar_trials_per_s=scalar_rate,
        speedup=speedup,
        batched_error_rate=batched_result.error_rate,
        scalar_error_rate=scalar_result.error_rate,
    )
    print()
    print(
        f"  pi/8 protocol: scalar {scalar_rate:,.0f} trials/s, "
        f"batched {batched_rate:,.0f} trials/s -> {speedup:.0f}x"
    )
    assert _intervals_overlap(
        scalar_result.error_rate_interval(),
        batched_result.error_rate_interval(),
    )
    if not PERF_SMOKE:
        assert speedup >= 30.0


def test_bench_cat_protocol_throughput(benchmark):
    """Cat-state prep trials/sec, scalar vs batched (7-qubit cat)."""
    scalar_trials = max(500, TRIALS // 25)
    batched_s, batched_result = benchmark.pedantic(
        lambda: _timed(lambda: evaluate_cat_prep_batched(7, trials=TRIALS, seed=7)),
        rounds=1,
        iterations=1,
    )
    scalar_s, scalar_result = _timed(
        lambda: evaluate_cat_prep(7, trials=scalar_trials, seed=11)
    )
    batched_rate = TRIALS / batched_s
    scalar_rate = scalar_trials / scalar_s
    bench_record.record(
        "cat7_protocol",
        batched_trials=TRIALS,
        scalar_trials=scalar_trials,
        batched_trials_per_s=batched_rate,
        scalar_trials_per_s=scalar_rate,
        speedup=batched_rate / scalar_rate,
        batched_error_rate=batched_result.error_rate,
        scalar_error_rate=scalar_result.error_rate,
    )
    print()
    print(
        f"  cat7 protocol: scalar {scalar_rate:,.0f} trials/s, "
        f"batched {batched_rate:,.0f} trials/s -> "
        f"{batched_rate / scalar_rate:.0f}x"
    )
    assert _intervals_overlap(
        scalar_result.error_rate_interval(),
        batched_result.error_rate_interval(),
    )
    if not PERF_SMOKE:
        assert batched_rate > scalar_rate * 10
