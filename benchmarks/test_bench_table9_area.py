"""Benchmark: Table 9 — chip area breakdown at speed-of-data bandwidths.

Paper values (macroblocks, % of total):

    kernel   data          QEC factories    pi/8 factories
    QRCA     679 (33.6%)   986.9 (48.8%)    354.7 (17.6%)
    QCLA     861 (6.8%)    8682.2 (68.4%)   3154.4 (24.8%)
    QFT      224 (13.2%)   1043.5 (61.3%)   433.7 (25.5%)

Shape targets: data areas exact (679/861/224 — qubit counts match the
paper's); ancilla generation takes at least ~60% of the chip even for the
serial QRCA and >88% for the QCLA.
"""

import pytest

from repro.arch.provisioning import area_breakdown
from repro.reporting import run_experiment

PAPER_DATA_AREA = {"32-Bit QRCA": 679, "32-Bit QCLA": 861, "32-Bit QFT": 224}


def test_bench_table9(benchmark, all_kernels32):
    breakdowns = benchmark.pedantic(
        lambda: {ka.name: area_breakdown(ka) for ka in all_kernels32},
        rounds=1,
        iterations=1,
    )
    print()
    print(run_experiment("table9"))
    for name, b in breakdowns.items():
        assert b.data_area == PAPER_DATA_AREA[name]
    assert breakdowns["32-Bit QRCA"].ancilla_fraction == pytest.approx(0.664, abs=0.08)
    assert breakdowns["32-Bit QCLA"].ancilla_fraction > 0.88
    assert breakdowns["32-Bit QFT"].ancilla_fraction > 0.80
    # pi/8 factories are the smaller share everywhere (Table 9 column 5).
    for b in breakdowns.values():
        assert b.pi8_factory_area < b.qec_factory_area
