"""Benchmark: dataflow-engine throughput (gates simulated per second).

Tracks the compiled engine's performance trajectory in the BENCH_*.json
record: single-point simulation rate, full-sweep wall clock, and the
compiled-vs-seed speedup on the Figure 15 area sweep. The speedup gate
(>= 5x on a 32-bit kernel) is this PR's acceptance criterion; the legacy
engine is the seed per-gate loop, kept as the executable baseline.

Marked ``perf`` so the suite can be deselected (``-m "not perf"``) when
only correctness matters; the workloads themselves are sized to keep
tier-1 fast.
"""

import os
import time

import pytest

import record as bench_record
from repro.arch.provisioning import area_breakdown
from repro.arch.simulator import DataflowSimulator
from repro.arch.supply import PI8, ZERO, SteadyRateSupply
from repro.arch.sweep import area_sweep
from repro.circuits.compiled import compile_circuit

pytestmark = pytest.mark.perf

#: CI smoke mode: correctness assertions only, no speedup-ratio gates
#: (smoke sizes shrink the kernels, where fixed overheads dominate).
PERF_SMOKE = os.environ.get("REPRO_PERF_SMOKE") == "1"

#: Matched-demand multiples for the speedup measurement (a Figure 15
#: slice: 6 areas x 3 architectures = 18 simulations per engine).
_AREA_FACTORS = (0.25, 1, 4, 16, 64, 256)


def _best_of(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_bench_single_point_gates_per_second(benchmark, qcla32):
    """Simulation rate of one steady-rate sweep point, compiled engine."""
    compiled = compile_circuit(qcla32.circuit, qcla32.tech)
    rates = {
        ZERO: qcla32.zero_bandwidth_per_ms,
        PI8: qcla32.pi8_bandwidth_per_ms,
    }

    def run_point():
        supply = SteadyRateSupply(dict(rates))
        return DataflowSimulator(
            qcla32.circuit, qcla32.tech, supply=supply, compiled=compiled
        ).run()

    def run_point_legacy():
        supply = SteadyRateSupply(dict(rates))
        return DataflowSimulator(
            qcla32.circuit, qcla32.tech, supply=supply
        ).run_legacy()

    result = benchmark.pedantic(run_point, rounds=5, iterations=1)
    assert result.gates == len(qcla32.circuit)
    elapsed, _ = _best_of(run_point)
    legacy_elapsed, _ = _best_of(run_point_legacy)
    gates_per_second = result.gates / elapsed
    benchmark.extra_info["gates_per_second"] = gates_per_second
    benchmark.extra_info["seed_gates_per_second"] = result.gates / legacy_elapsed
    bench_record.record(
        "dataflow_single_point",
        gates=result.gates,
        gates_per_second=gates_per_second,
        seed_gates_per_second=result.gates / legacy_elapsed,
    )
    print()
    print(f"  compiled engine: {gates_per_second:,.0f} gates/s "
          f"({result.gates} gates in {elapsed * 1e3:.2f} ms; "
          f"seed loop {legacy_elapsed * 1e3:.2f} ms)")
    # Relative, so machine speed and load cancel out: the compiled engine
    # measures ~10x here and must stay clearly ahead of the seed loop.
    if not PERF_SMOKE:
        assert elapsed * 3 < legacy_elapsed


def test_bench_area_sweep_speedup_vs_seed(benchmark, qcla32):
    """Acceptance gate: >= 5x on a 32-bit area sweep vs the seed loop."""
    matched = area_breakdown(qcla32).factory_area
    areas = [matched * factor for factor in _AREA_FACTORS]

    def run(engine):
        return area_sweep(qcla32, areas=areas, engine=engine)

    compiled_curves = benchmark.pedantic(
        lambda: run("compiled"), rounds=1, iterations=1
    )
    legacy_elapsed, legacy_curves = _best_of(lambda: run("legacy"))
    compiled_elapsed, _ = _best_of(lambda: run("compiled"))
    assert compiled_curves == legacy_curves
    speedup = legacy_elapsed / compiled_elapsed
    benchmark.extra_info["seed_sweep_ms"] = legacy_elapsed * 1e3
    benchmark.extra_info["compiled_sweep_ms"] = compiled_elapsed * 1e3
    benchmark.extra_info["speedup_vs_seed"] = speedup
    bench_record.record(
        "dataflow_area_sweep",
        seed_sweep_ms=legacy_elapsed * 1e3,
        compiled_sweep_ms=compiled_elapsed * 1e3,
        speedup_vs_seed=speedup,
    )
    print()
    print(f"  area sweep (18 points): seed {legacy_elapsed * 1e3:.1f} ms, "
          f"compiled {compiled_elapsed * 1e3:.1f} ms -> {speedup:.1f}x")
    if not PERF_SMOKE:
        assert speedup >= 5.0


def test_bench_full_default_area_sweep(benchmark, qft32):
    """Wall clock of the full default Figure 15 sweep, largest kernel."""
    curves = benchmark.pedantic(lambda: area_sweep(qft32), rounds=1, iterations=1)
    assert all(len(points) == 14 for points in curves.values())
