"""Benchmark: Table 7 — pi/8 factory stage characteristics.

Exact reproduction of the four stage rows: latencies 218/53/218/74 us,
bandwidths (physical qubits per ms) and areas 12/7/19/8.
"""

import pytest

from repro.factory.units import pi8_units
from repro.reporting import run_experiment

PAPER = {
    "cat_state_prepare": (218, 32.1, 32.1, 12),
    "transversal_interact": (53, 264.2, 264.2, 7),
    "decode_store": (218, 64.2, 36.7, 19),
    "h_measure_correct": (74, 108.1, 94.6, 8),
}


def test_bench_table7(benchmark):
    units = benchmark(pi8_units)
    print()
    print(run_experiment("table7"))
    for name, (latency, bw_in, bw_out, area) in PAPER.items():
        unit = units[name]
        assert unit.latency() == latency
        assert unit.bandwidth_in() == pytest.approx(bw_in, abs=0.05)
        assert unit.bandwidth_out() == pytest.approx(bw_out, abs=0.05)
        assert unit.area == area
