"""Ablation benches for the design choices DESIGN.md calls out.

Not paper artifacts per se, but quantifications of the paper's design
arguments:

* recursive pi/2^k factories (Figure 6) vs Fowler H/T sequences on the
  data critical path (Section 4.4.2);
* crossbar width choices in the factories (Section 4.4.1);
* verification-before-correction (Figure 4c's structure) as a factory
  yield knob;
* teleport-based QEC's 2x ancilla consumption (Section 5.3).
"""

import pytest

from repro.ancilla.rotations import (
    default_synthesizer,
    recursive_rotation_expected_latency,
)
from repro.arch.qalypso import teleport_qec_ancilla_overhead
from repro.circuits.latency import LogicalLatencyModel
from repro.factory import PipelinedZeroFactory
from repro.tech import ION_TRAP


def test_bench_recursive_vs_sequence_rotations(benchmark):
    """Section 4.4.2: with exact physical rotations available, the
    recursive construction shortens the data critical path versus
    executing a synthesized H/T word gate-by-gate."""

    def compare():
        model = LogicalLatencyModel(ION_TRAP)
        out = {}
        for k in (4, 5, 6):
            word = default_synthesizer().synthesize(k)
            word_latency = sum(
                model.non_transversal_interaction_latency()
                if g.value in ("t", "tdg")
                else ION_TRAP.t_1q
                for g in word.gates
            )
            recursive = recursive_rotation_expected_latency(k, ION_TRAP)
            out[k] = (word_latency, recursive)
        return out

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    print()
    for k, (word, recursive) in results.items():
        print(f"  pi/2^{k}: H/T word {word:.0f}us vs recursive {recursive:.0f}us")
        # The recursive factory wins on the data path whenever the word
        # contains more than a couple of T gates.
        assert recursive < word


def test_bench_crossbar_width_choice(benchmark):
    """Section 4.4.1 uses a single-column crossbar after Stage 1 (qubits
    funnel inward) and two columns elsewhere; making them all two-column
    costs area for no throughput."""
    factory = benchmark(PipelinedZeroFactory)
    single_first = factory.crossbar_areas
    all_double = [2 * max(24, 4 + 2), 2 * 30, 2 * 42]
    saved = sum(all_double) - sum(single_first)
    print(f"\n  crossbar areas {single_first} vs all-double {all_double} "
          f"(saves {saved} macroblocks)")
    assert saved > 0
    assert factory.throughput_per_ms == pytest.approx(10.5, abs=0.05)


def test_bench_verification_yield_cost(benchmark):
    """Verification discards ~0.2% of ancillae; the factory's bandwidth
    math (Table 5's 85.2 q/ms verified output) prices exactly that."""
    from repro.factory.units import zero_factory_units

    unit = benchmark(lambda: zero_factory_units()["verification"])
    gross = unit.qubits_out * 1000.0 / unit.initiation_interval()
    net = unit.bandwidth_out()
    print(f"\n  verification: gross {gross:.1f} q/ms, net {net:.1f} q/ms")
    assert net / gross == pytest.approx(0.998)


def test_bench_teleport_qec_overhead(benchmark):
    """Section 5.3: folding QEC into teleportation doubles ancilla
    consumption — the reason Qalypso keeps data regions ballistic."""
    overhead = benchmark(teleport_qec_ancilla_overhead)
    assert overhead["qec_via_teleport"] == 2 * overhead["qec_step"]
