"""Benchmark: Table 5 — zero-factory functional unit characteristics.

Exact reproduction: symbolic latencies, internal stage counts, input and
output bandwidths and areas for all five functional units.
"""

import pytest

from repro.factory.units import zero_factory_units
from repro.reporting import run_experiment

PAPER = {
    # name: (latency us, stages, bw in, bw out, area)
    "zero_prep": (73, 1, 13.7, 13.7, 1),
    "cx_stage": (95, 3, 221.1, 221.1, 28),
    "cat_prep": (62, 2, 96.8, 96.8, 6),
    "verification": (82, 1, 122.0, 85.2, 10),
    "bp_correction": (138, 1, 152.2, 50.7, 21),
}


def test_bench_table5(benchmark):
    units = benchmark(zero_factory_units)
    print()
    print(run_experiment("table5"))
    for name, (latency, stages, bw_in, bw_out, area) in PAPER.items():
        unit = units[name]
        assert unit.latency() == latency
        assert unit.internal_stages == stages
        assert unit.bandwidth_in() == pytest.approx(bw_in, abs=0.05)
        assert unit.bandwidth_out() == pytest.approx(bw_out, abs=0.05)
        assert unit.area == area
