"""Benchmark: Table 2 — critical-path latency split per kernel.

Paper values (us, % of total):

    kernel        data op        QEC interact     ancilla prep
    32-Bit QRCA   29508 (5.2%)   95641 (16.7%)    447726 (78.2%)
    32-Bit QCLA   3827 (5.3%)    11921 (16.7%)    55806 (78.0%)
    32-Bit QFT    77057 (5.0%)   365792 (23.7%)   1097376 (71.2%)

Shape targets: data op within ~25-35%, ancilla prep >70% of the total for
every kernel ("there is much to be gained by taking ancilla preparation
off the critical path").
"""

import pytest

PAPER_DATA_OP = {"32-Bit QRCA": 29508, "32-Bit QCLA": 3827, "32-Bit QFT": 77057}


def test_bench_table2(benchmark, all_kernels32):
    rows = benchmark.pedantic(
        lambda: {ka.name: ka.table2_row() for ka in all_kernels32},
        rounds=1,
        iterations=1,
    )
    print()
    for name, row in rows.items():
        print(
            f"  {name}: data={row['data_op_us']:.0f} ({row['data_op_frac']:.1%}) "
            f"qec={row['qec_interact_us']:.0f} ({row['qec_interact_frac']:.1%}) "
            f"prep={row['ancilla_prep_us']:.0f} ({row['ancilla_prep_frac']:.1%})"
        )
    for name, row in rows.items():
        rel = 0.35 if "QFT" in name else 0.25
        assert row["data_op_us"] == pytest.approx(PAPER_DATA_OP[name], rel=rel)
        assert row["ancilla_prep_frac"] > 0.70
        assert row["data_op_frac"] < 0.10
