"""Benchmark: Figure 4 — Monte Carlo error rates of zero-prep strategies.

Paper targets (gate error 1e-4, movement 1e-6):

    basic 1.8e-3 | verify-only 3.7e-4 | correct-only 1.1e-3
    verify-and-correct 2.9e-5 | verification failure ~0.2%

Shape targets asserted here (measured values recorded in EXPERIMENTS.md):

* every strategy lands within one decade of the paper's value;
* verify-only and verify-and-correct sit an order of magnitude below
  basic and correct-only ("correction alone loses to verification alone");
* the verification discard rate reproduces ~0.2%.

Uses the batched engine (the Figure 4 drivers in repro.error.vectorized
are thin wrappers over the general batched protocol engine in
repro.error.batched, validated against the scalar reference in
tests/unit/test_vectorized.py), so the default 400k trials run in
seconds; set REPRO_FIG4_TRIALS to rescale. The same engine evaluates
cat-state prep and the pi/8 ancilla pipeline — see
test_bench_protocols.py for their throughput trajectory.
"""

import os

from repro.ancilla import PrepStrategy, evaluate_strategy_vectorized

TRIALS = int(os.environ.get("REPRO_FIG4_TRIALS", "400000"))


def _run_all():
    return {
        strategy: evaluate_strategy_vectorized(strategy, trials=TRIALS, seed=2024)
        for strategy in PrepStrategy
    }


def test_bench_fig4(benchmark):
    reports = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    print()
    for report in reports.values():
        print("  " + report.summary())

    basic = reports[PrepStrategy.BASIC]
    verify = reports[PrepStrategy.VERIFY_ONLY]
    correct = reports[PrepStrategy.CORRECT_ONLY]
    vc = reports[PrepStrategy.VERIFY_AND_CORRECT]

    # Verification failure rate ~0.2%.
    assert verify.discard_rate < 0.008
    if TRIALS < 20000:
        # Quick runs (the CI smoke) cannot resolve the e-4/e-5 rates —
        # or even guarantee two discard events — so the lower bound and
        # the rate assertions need the default (or larger) budget.
        return
    assert verify.discard_rate > 0.0005
    # Same decade as the paper (one order of magnitude tolerance).
    assert 1.8e-4 / 10 < basic.error_rate < 1.8e-3 * 10
    assert 1.1e-4 < correct.error_rate < 1.1e-2
    # Verification wins by an order of magnitude.
    assert verify.error_rate < basic.error_rate / 4
    assert vc.error_rate < correct.error_rate / 4
    # Correction alone loses to verification alone (Section 2.3).
    assert correct.error_rate > verify.error_rate
