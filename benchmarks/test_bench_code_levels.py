"""Benchmark: the code-level axis swept through the batched engine.

The acceptance shape of the code-axis PR: a ``code_level`` grid
exploration (the CLI's ``repro explore <kernel> --code-level 1 2``)
must resolve through the point-batched engine — each level's
homogeneous points become one numpy pass under that level's
re-characterized latency tables — and the measured points/sec lands in
BENCH_protocols.json so future PRs can diff the trajectory.

The benchmark drives the same spec-mode :class:`Evaluator` the CLI
builds, spies the batched entry point to prove every architecture point
rode a multi-point batch (CQLA is excluded from the space: its cache
model is the documented per-point fallback), and cross-checks a sample
of points against fresh serial ``run()`` walks for exact equality.

With REPRO_PERF_SMOKE=1 (CI) the grid shrinks and no throughput gate is
asserted; REPRO_LEVEL_AREAS rescales the area ladder.
"""

import os
import time

import pytest

import record as bench_record
import repro.arch.batched as batched_module
from repro.arch.architectures import ArchitectureKind
from repro.explore import Evaluator, architecture_space, explore, get_objective
from repro.explore.strategies import GridStrategy
from repro.kernels import analyze_kernel

pytestmark = pytest.mark.perf

PERF_SMOKE = os.environ.get("REPRO_PERF_SMOKE") == "1"

#: Area-ladder resolution per (architecture, level) curve.
AREA_POINTS = int(os.environ.get("REPRO_LEVEL_AREAS", "4" if PERF_SMOKE else "24"))

CODE_LEVELS = (1, 2)


def test_bench_code_level_grid_explore(monkeypatch):
    kernel, width = "qcla", 8 if PERF_SMOKE else 32
    analysis = analyze_kernel(kernel, width)
    space = architecture_space(
        analysis,
        kinds=(ArchitectureKind.QLA, ArchitectureKind.MULTIPLEXED),
        area_points=AREA_POINTS,
        code_levels=CODE_LEVELS,
    )
    batch_calls = []
    real_batch = batched_module.simulate_batch

    def spy(circuit, supplies, *args, **kwargs):
        batch_calls.append(len(supplies))
        return real_batch(circuit, supplies, *args, **kwargs)

    monkeypatch.setattr(batched_module, "simulate_batch", spy)
    # Pre-characterize both levels so the timed region measures the
    # sweep engine, not the one-off level calibration Monte Carlo.
    analyze_kernel(kernel, width, code_level=2)

    evaluator = Evaluator(kernel=kernel, width=width)
    budget = space.grid_size()
    t0 = time.perf_counter()
    result = explore(
        space,
        get_objective("adcr"),
        GridStrategy(space),
        evaluator=evaluator,
        budget=budget,
    )
    elapsed = time.perf_counter() - t0

    assert result.evaluated == budget == 2 * 2 * AREA_POINTS
    assert result.simulations_run == budget
    # Every point resolved through the batched engine, in multi-point
    # groups (one per architecture x level — no serial fallback).
    assert sum(batch_calls) == budget
    assert all(call > 1 for call in batch_calls)

    # Spot-check bit-identical equality against fresh serial runs.
    for evaluation in (result.evaluations[0], result.evaluations[-1]):
        point = dict(evaluation.point)
        fresh = Evaluator(kernel=kernel, width=width, engine="compiled")
        from repro.explore.evaluator import (
            KernelSummary,
            _lower_point,
            _run_lowered,
        )

        summary, compiled = fresh._serial_context(point)
        lowered = _lower_point(summary, point)
        serial = _run_lowered(summary, lowered, compiled, "compiled")
        assert evaluation.result == serial

    points_per_s = budget / elapsed
    levels_seen = sorted(
        {dict(e.point).get("code_level", 1) for e in result.evaluations}
    )
    assert levels_seen == [1, 2]
    bench_record.record(
        "code_level_sweep",
        kernel=f"{kernel}-{width}",
        points=budget,
        code_levels=list(CODE_LEVELS),
        area_points=AREA_POINTS,
        batched_groups=len(batch_calls),
        points_per_s=points_per_s,
        best_adcr=result.best_score,
    )
    print()
    print(
        f"  code-level grid ({kernel}-{width}, {budget} pts, levels "
        f"{list(CODE_LEVELS)}): {points_per_s:,.0f} pts/s in "
        f"{len(batch_calls)} batched groups"
    )
    if not PERF_SMOKE:
        # Throughput floor: the axis must stay sweep-grade (point-batched),
        # far above one-at-a-time interpreted walks.
        assert points_per_s > 20.0
