"""Benchmark: Figure 16 / Section 5.3 — Qalypso tiles vs CQLA.

Provisions one Qalypso tile per kernel (dense data region plus
surrounding factories with output ports at the region edge) and runs the
headline comparison: at matched factory area, the fully-multiplexed tile
beats CQLA by more than 5x on the parallel QCLA (the abstract's "more
than five times speedup over previous proposals").
"""

from repro.arch.qalypso import compare_with_cqla, tile_for_kernel
from repro.reporting import run_experiment


def test_bench_fig16_tiles(benchmark, all_kernels32):
    tiles = benchmark.pedantic(
        lambda: {ka.name: tile_for_kernel(ka) for ka in all_kernels32},
        rounds=1,
        iterations=1,
    )
    print()
    print(run_experiment("fig16"))
    for name, tile in tiles.items():
        # Tile must cover its kernel's demand with positive slack.
        assert tile.zero_factories >= 1
        assert tile.total_area > tile.data_area
        # Ancilla distribution inside the tile is far cheaper than a
        # teleport (the point of edge-adjacent output ports).
        assert tile.distribution_latency_us() < 83.0


def test_bench_fig16_headline_speedup(benchmark, qcla32, qrca32):
    qcla_cmp, qrca_cmp = benchmark.pedantic(
        lambda: (compare_with_cqla(qcla32), compare_with_cqla(qrca32)),
        rounds=1,
        iterations=1,
    )
    print()
    print(f"  QCLA: qalypso {qcla_cmp.qalypso.makespan_ms:.1f}ms vs "
          f"CQLA {qcla_cmp.cqla.makespan_ms:.1f}ms -> {qcla_cmp.speedup:.1f}x")
    print(f"  QRCA: qalypso {qrca_cmp.qalypso.makespan_ms:.1f}ms vs "
          f"CQLA {qrca_cmp.cqla.makespan_ms:.1f}ms -> {qrca_cmp.speedup:.1f}x")
    assert qcla_cmp.speedup > 5.0  # the paper's headline claim
    assert qrca_cmp.speedup > 1.0
