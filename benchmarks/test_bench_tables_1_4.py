"""Benchmark: Tables 1 and 4 — the technology inputs.

These are the paper's assumed physical latencies; the benchmark times
parameter-record construction (trivially fast) and asserts the exact
values so any drift in defaults fails loudly.
"""

from repro.reporting import run_experiment
from repro.tech import ion_trap_params


def test_bench_table1_and_4(benchmark):
    tech = benchmark(ion_trap_params)
    assert (tech.t_1q, tech.t_2q, tech.t_meas, tech.t_prep) == (1, 10, 50, 51)
    assert (tech.t_move, tech.t_turn) == (1, 10)
    print()
    print(run_experiment("table1"))
    print()
    print(run_experiment("table4"))
