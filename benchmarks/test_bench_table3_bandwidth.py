"""Benchmark: Table 3 — average encoded-ancilla bandwidths.

Paper values (ancillae per millisecond):

    kernel        zero BW   pi/8 BW
    32-Bit QRCA   34.8      7.0
    32-Bit QCLA   306.1     62.7
    32-Bit QFT    36.8      8.6

Shape targets: each bandwidth within 30% of the paper; the QCLA demands
roughly an order of magnitude more than the serial QRCA; the overall
range spans the paper's "30 to 300 encoded zero ancillae / ms".
"""

import pytest

PAPER = {
    "32-Bit QRCA": (34.8, 7.0),
    "32-Bit QCLA": (306.1, 62.7),
    "32-Bit QFT": (36.8, 8.6),
}


def test_bench_table3(benchmark, all_kernels32):
    rows = benchmark.pedantic(
        lambda: {ka.name: ka.table3_row() for ka in all_kernels32},
        rounds=1,
        iterations=1,
    )
    print()
    for name, row in rows.items():
        zero, pi8 = PAPER[name]
        print(
            f"  {name}: zero={row['zero_bandwidth_per_ms']:.1f}/ms (paper {zero}) "
            f"pi8={row['pi8_bandwidth_per_ms']:.1f}/ms (paper {pi8})"
        )
    for name, row in rows.items():
        zero, pi8 = PAPER[name]
        assert row["zero_bandwidth_per_ms"] == pytest.approx(zero, rel=0.30)
        assert row["pi8_bandwidth_per_ms"] == pytest.approx(pi8, rel=0.30)
    zero_bws = [r["zero_bandwidth_per_ms"] for r in rows.values()]
    assert max(zero_bws) / min(zero_bws) > 5  # QCLA an order above QRCA
