"""Benchmark: point-batched sweep engine vs the serial compiled engine.

The point-batched engine (repro.arch.batched) must make dense design
sweeps routine: an entire Figure 8 / Figure 15 axis in one numpy pass.
This benchmark measures points/sec of the serial compiled engine (one
``DataflowSimulator.run()`` per point) against ``simulate_batch`` on the
same supplies, asserts the acceptance gate (batched >= 10x at a
>= 64-point sweep), verifies bit-identical results point for point, and
records the trajectory to BENCH_protocols.json.

A steady-rate sweep (the Figure 8 axis) carries the gate; the QLA
dedicated-supply ladder and the CQLA cache-mode ladder (the Figure 15
axes) are recorded alongside it — CQLA rides the program-order lockstep
kernel and carries its own >= 8x acceptance gate at >= 64 points.
With REPRO_PERF_SMOKE=1 (CI), the speedup gates are skipped and only
exact equality is checked; REPRO_SWEEP_POINTS rescales the sweep width.
"""

import os
import time

import numpy as np
import pytest

import record as bench_record
from repro.arch import simulate_batch
from repro.arch.architectures import CqlaConfig, QlaConfig
from repro.arch.simulator import DataflowSimulator
from repro.arch.supply import PI8, ZERO, SteadyRateSupply

pytestmark = pytest.mark.perf

#: Sweep width; the acceptance gate is defined at >= 64 points.
POINTS = int(os.environ.get("REPRO_SWEEP_POINTS", "96"))

#: CI smoke mode: correctness assertions only, no speedup-ratio gates.
PERF_SMOKE = os.environ.get("REPRO_PERF_SMOKE") == "1"


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def test_bench_steady_sweep_speedup(benchmark, qcla32):
    """Acceptance gate: batched steady sweep >= 10x serial at >= 64 points."""
    analysis = qcla32
    circuit, tech = analysis.circuit, analysis.tech
    compiled = analysis.compiled_circuit()
    bandwidth = analysis.zero_bandwidth_per_ms
    ratio = analysis.pi8_bandwidth_per_ms / bandwidth
    rates = np.geomspace(bandwidth / 16.0, bandwidth * 16.0, POINTS)

    def supplies():
        return [
            SteadyRateSupply({ZERO: rate, PI8: rate * ratio}) for rate in rates
        ]

    # Warm the per-circuit caches so both sides measure steady state.
    # Fresh supplies every round (simulate_batch advances supply state),
    # pre-built outside the timed region: the gate compares the engines,
    # not supply construction, which both paths share identically.
    simulate_batch(circuit, supplies()[:2], tech, compiled=compiled)
    rounds = iter([supplies() for _ in range(3)])
    holder = {}

    def run_batched():
        holder["results"] = simulate_batch(
            circuit, next(rounds), tech, compiled=compiled
        )

    benchmark.pedantic(run_batched, rounds=3, iterations=1)
    batched_s = benchmark.stats.stats.min
    batched_results = holder["results"]
    serial_supplies = supplies()
    serial_s, serial_results = _timed(
        lambda: [
            DataflowSimulator(
                circuit, tech, supply=supply, compiled=compiled
            ).run()
            for supply in serial_supplies
        ]
    )
    assert batched_results == serial_results  # exact equality, every field
    batched_rate = POINTS / batched_s
    serial_rate = POINTS / serial_s
    speedup = batched_rate / serial_rate
    benchmark.extra_info["batched_points_per_s"] = batched_rate
    benchmark.extra_info["serial_points_per_s"] = serial_rate
    benchmark.extra_info["speedup"] = speedup
    bench_record.record(
        "steady_sweep",
        points=POINTS,
        gates=len(circuit),
        batched_points_per_s=batched_rate,
        serial_points_per_s=serial_rate,
        speedup=speedup,
    )
    print()
    print(
        f"  steady sweep ({POINTS} pts x {len(circuit)} gates): "
        f"serial {serial_rate:,.0f} pts/s, batched {batched_rate:,.0f} pts/s "
        f"-> {speedup:.1f}x"
    )
    if not PERF_SMOKE:
        assert POINTS >= 64
        assert speedup >= 10.0


def test_bench_qla_area_sweep_speedup(benchmark, qcla32):
    """Figure 15's QLA ladder: dedicated supplies, batched vs serial."""
    analysis = qcla32
    circuit, tech = analysis.circuit, analysis.tech
    compiled = analysis.compiled_circuit()
    config = QlaConfig()
    num_qubits = circuit.num_qubits
    areas = np.geomspace(50.0, 50_000.0, POINTS)
    move_1q = config.movement_penalty(False, tech)
    move_2q = config.movement_penalty(True, tech)

    def supplies():
        return [
            config.build_supply(
                area,
                num_qubits,
                analysis.zero_bandwidth_per_ms,
                analysis.pi8_bandwidth_per_ms,
                tech,
            )
            for area in areas
        ]

    simulate_batch(
        circuit,
        supplies()[:2],
        tech,
        movement_penalty_us=move_1q,
        two_qubit_movement_penalty_us=move_2q,
        compiled=compiled,
    )
    rounds = iter([supplies() for _ in range(3)])
    holder = {}

    def run_batched():
        holder["results"] = simulate_batch(
            circuit,
            next(rounds),
            tech,
            movement_penalty_us=move_1q,
            two_qubit_movement_penalty_us=move_2q,
            compiled=compiled,
        )

    benchmark.pedantic(run_batched, rounds=3, iterations=1)
    batched_s = benchmark.stats.stats.min
    batched_results = holder["results"]
    serial_supplies = supplies()
    serial_s, serial_results = _timed(
        lambda: [
            DataflowSimulator(
                circuit,
                tech,
                supply=supply,
                movement_penalty_us=move_1q,
                two_qubit_movement_penalty_us=move_2q,
                compiled=compiled,
            ).run()
            for supply in serial_supplies
        ]
    )
    assert batched_results == serial_results
    batched_rate = POINTS / batched_s
    serial_rate = POINTS / serial_s
    speedup = batched_rate / serial_rate
    bench_record.record(
        "qla_area_sweep",
        points=POINTS,
        gates=len(circuit),
        batched_points_per_s=batched_rate,
        serial_points_per_s=serial_rate,
        speedup=speedup,
    )
    print()
    print(
        f"  QLA area sweep ({POINTS} pts x {len(circuit)} gates): "
        f"serial {serial_rate:,.0f} pts/s, batched {batched_rate:,.0f} pts/s "
        f"-> {speedup:.1f}x"
    )
    if not PERF_SMOKE:
        assert speedup >= 5.0


def test_bench_cqla_sweep_speedup(benchmark, qcla32):
    """Figure 15's CQLA ladder rides the lockstep kernel: >= 8x at >= 64
    points, bit-identical to the serial cache-mode engine."""
    analysis = qcla32
    circuit, tech = analysis.circuit, analysis.tech
    compiled = analysis.compiled_circuit()
    config = CqlaConfig()
    num_qubits = circuit.num_qubits
    areas = np.geomspace(50.0, 50_000.0, POINTS)
    move_1q = config.movement_penalty(False, tech)
    move_2q = config.movement_penalty(True, tech)

    def supplies():
        return [
            config.build_supply(
                area,
                num_qubits,
                analysis.zero_bandwidth_per_ms,
                analysis.pi8_bandwidth_per_ms,
                tech,
            )
            for area in areas
        ]

    simulate_batch(
        circuit,
        supplies()[:2],
        tech,
        movement_penalty_us=move_1q,
        two_qubit_movement_penalty_us=move_2q,
        cqla=config,
        compiled=compiled,
    )
    rounds = iter([supplies() for _ in range(3)])
    holder = {}

    def run_batched():
        holder["results"] = simulate_batch(
            circuit,
            next(rounds),
            tech,
            movement_penalty_us=move_1q,
            two_qubit_movement_penalty_us=move_2q,
            cqla=config,
            compiled=compiled,
        )

    benchmark.pedantic(run_batched, rounds=3, iterations=1)
    batched_s = benchmark.stats.stats.min
    batched_results = holder["results"]
    serial_supplies = supplies()
    serial_s, serial_results = _timed(
        lambda: [
            DataflowSimulator(
                circuit,
                tech,
                supply=supply,
                movement_penalty_us=move_1q,
                two_qubit_movement_penalty_us=move_2q,
                cqla=config,
                compiled=compiled,
            ).run()
            for supply in serial_supplies
        ]
    )
    assert batched_results == serial_results  # exact equality, every field
    assert any(r.cache_misses > 0 for r in batched_results)
    batched_rate = POINTS / batched_s
    serial_rate = POINTS / serial_s
    speedup = batched_rate / serial_rate
    benchmark.extra_info["speedup"] = speedup
    bench_record.record(
        "cqla_sweep",
        points=POINTS,
        gates=len(circuit),
        batched_points_per_s=batched_rate,
        serial_points_per_s=serial_rate,
        speedup=speedup,
    )
    print()
    print(
        f"  CQLA sweep ({POINTS} pts x {len(circuit)} gates): "
        f"serial {serial_rate:,.0f} pts/s, batched {batched_rate:,.0f} pts/s "
        f"-> {speedup:.1f}x"
    )
    if not PERF_SMOKE:
        assert POINTS >= 64
        assert speedup >= 8.0
