"""Thin setup.py shim.

The offline environment lacks the ``wheel`` package that PEP 517 editable
installs require, so this shim enables the legacy path:
``pip install -e . --no-build-isolation --no-use-pep517``.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
