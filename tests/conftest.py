"""Shared fixtures.

Kernel characterizations are session-scoped: building and analyzing the
32-bit kernels (especially the QFT with synthesized rotations) costs a
few seconds each, and they are immutable once constructed.
"""

import pytest

from repro.kernels import analyze_kernel


@pytest.fixture(scope="session")
def qrca32():
    return analyze_kernel("qrca", 32)


@pytest.fixture(scope="session")
def qcla32():
    return analyze_kernel("qcla", 32)


@pytest.fixture(scope="session")
def qft32():
    return analyze_kernel("qft", 32)


@pytest.fixture(scope="session")
def qrca8():
    return analyze_kernel("qrca", 8)


@pytest.fixture(scope="session")
def qcla8():
    return analyze_kernel("qcla", 8)


@pytest.fixture(scope="session")
def qft8():
    return analyze_kernel("qft", 8)


@pytest.fixture(scope="session")
def all_kernels32(qrca32, qcla32, qft32):
    return [qrca32, qcla32, qft32]
