"""Evaluator batching/fallback paths: CQLA grouping and alias rejection.

The batched sweep suite exercises the happy point-batched path (and
hypothesis drives it over random rate vectors); these tests pin the
batching topology of :mod:`repro.explore.evaluator`:

* CQLA points batch with their configuration group (the lockstep cache
  kernel) — nothing about cache mode forces a per-point walk anymore;
* a lowered point whose supply overrides ``acquire`` (or any other
  spec-coupled method without re-declaring ``ready_spec``) routes
  through the per-point serial engine transparently, with identical
  results;
* the legacy engine and singleton batches never touch the batched
  engine at all;
* the aliased rate-limited supply guard fires if a lowering ever hands
  the same supply object to two points — and the real lowering never
  does, even for duplicate design points.
"""

import pytest

import repro.arch.batched as batched_module
from repro.arch.supply import PI8, ZERO, PooledSupply
from repro.explore.evaluator import (
    Evaluator,
    KernelSummary,
    _lower_point,
    evaluate_design_point,
    evaluate_design_points,
)

POINTS = [
    {"arch": "qla", "factory_area": 400.0},
    {"arch": "qla", "factory_area": 800.0},
    {"arch": "cqla", "factory_area": 400.0, "cqla_cache_fraction": 0.125,
     "cqla_ports": 2},
    {"arch": "cqla", "factory_area": 800.0, "cqla_cache_fraction": 0.125,
     "cqla_ports": 2},
    {"arch": "multiplexed", "factory_area": 400.0, "region_span": 8},
]


@pytest.fixture()
def spy_batch(monkeypatch):
    """Record every simulate_batch call's supply count; keep behavior."""
    calls = []
    real = batched_module.simulate_batch

    def wrapper(circuit, supplies, *args, **kwargs):
        calls.append(list(supplies))
        return real(circuit, supplies, *args, **kwargs)

    monkeypatch.setattr(batched_module, "simulate_batch", wrapper)
    return calls


class TestCqlaBatching:
    def test_every_point_batches_cqla_included(self, qrca8, spy_batch):
        summary = KernelSummary.from_analysis(qrca8)
        canonical = [dict(p) for p in POINTS]
        batch = evaluate_design_points(summary, canonical, None, "compiled")
        serial = [
            evaluate_design_point(summary, dict(p), None, "compiled")
            for p in POINTS
        ]
        assert [e.result for e in batch] == [e.result for e in serial]
        assert [e.point for e in batch] == [e.point for e in serial]
        # Every point entered the batched engine: the two QLA points
        # together, the two CQLA points together (one configuration
        # group), the multiplexed point alone.
        batched_supplies = sum(len(call) for call in spy_batch)
        assert batched_supplies == len(POINTS)
        assert sorted(len(call) for call in spy_batch) == [1, 2, 2]

    def test_cqla_results_match_legacy_engine(self, qrca8):
        compiled = Evaluator(analysis=qrca8).evaluate([POINTS[2]])[0]
        legacy = Evaluator(analysis=qrca8, engine="legacy").evaluate(
            [POINTS[2]]
        )[0]
        assert compiled.result == legacy.result


class TestCustomSupplyFallback:
    def test_overridden_acquire_routes_per_point(self, qrca8, monkeypatch):
        """A lowering that yields a custom supply still evaluates right."""

        class EagerPool(PooledSupply):
            """Subclass overriding acquire: disqualified from batching."""

            def acquire(self, kind, qubit, count, earliest):
                return PooledSupply.acquire(self, kind, qubit, count, earliest)

        import repro.explore.evaluator as evaluator_module

        real_lower = evaluator_module._lower_point

        def lowering(summary, point):
            lowered = real_lower(summary, point)
            if point.get("arch") == "multiplexed":
                rates = {
                    ZERO: (lowered.supply.rate_per_us(ZERO) or 0.0) * 1000.0,
                    PI8: (lowered.supply.rate_per_us(PI8) or 0.0) * 1000.0,
                }
                return evaluator_module._LoweredPoint(
                    supply=EagerPool(rates),
                    move_1q=lowered.move_1q,
                    move_2q=lowered.move_2q,
                    cqla=lowered.cqla,
                    factory_area=lowered.factory_area,
                )
            return lowered

        summary = KernelSummary.from_analysis(qrca8)
        points = [
            {"arch": "multiplexed", "factory_area": 500.0, "region_span": 8},
            {"arch": "multiplexed", "factory_area": 900.0, "region_span": 8},
        ]
        monkeypatch.setattr(evaluator_module, "_lower_point", lowering)
        custom = evaluate_design_points(
            summary, [dict(p) for p in points], None, "compiled"
        )
        monkeypatch.setattr(evaluator_module, "_lower_point", real_lower)
        plain = evaluate_design_points(
            summary, [dict(p) for p in points], None, "compiled"
        )
        # The subclass changes dispatch (per-point fallback inside
        # simulate_batch), not arithmetic: results are identical.
        assert [e.result for e in custom] == [e.result for e in plain]

    def test_legacy_engine_never_calls_batched(self, qrca8, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("legacy engine must not batch")

        monkeypatch.setattr(batched_module, "simulate_batch", boom)
        evaluator = Evaluator(analysis=qrca8, engine="legacy")
        results = evaluator.evaluate([dict(p) for p in POINTS[:2]])
        assert len(results) == 2

    def test_single_point_short_circuits_batching(self, qrca8, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("singleton batches take the serial path")

        monkeypatch.setattr(batched_module, "simulate_batch", boom)
        summary = KernelSummary.from_analysis(qrca8)
        result = evaluate_design_points(
            summary, [dict(POINTS[0])], None, "compiled"
        )
        assert len(result) == 1


class TestAliasedSupplyRejection:
    def test_aliased_lowering_rejected(self, qrca8, monkeypatch):
        """If a lowering aliased one rate-limited supply across points,
        the batched engine's guard fails loud instead of diverging."""
        import repro.explore.evaluator as evaluator_module

        summary = KernelSummary.from_analysis(qrca8)
        shared = _lower_point(
            summary, {"arch": "multiplexed", "factory_area": 500.0,
                      "region_span": 8}
        )
        monkeypatch.setattr(
            evaluator_module, "_lower_point", lambda s, p: shared
        )
        with pytest.raises(ValueError, match="same object"):
            evaluate_design_points(
                summary,
                [
                    {"arch": "multiplexed", "factory_area": 500.0,
                     "region_span": 8},
                    {"arch": "multiplexed", "factory_area": 900.0,
                     "region_span": 8},
                ],
                None,
                "compiled",
            )

    def test_real_lowering_never_aliases(self, qrca8):
        """Duplicate design points dedupe to one canonical evaluation
        upstream, and fresh lowerings build fresh supplies — the alias
        guard stays quiet on every legitimate evaluator path."""
        evaluator = Evaluator(analysis=qrca8)
        duplicated = [dict(POINTS[0]), dict(POINTS[0]), dict(POINTS[1])]
        results = evaluator.evaluate(duplicated)
        assert evaluator.dedup_hits == 1
        assert results[0].result == results[1].result

    def test_aliased_supply_rejected_at_engine_level(self, qrca8):
        supply = PooledSupply({ZERO: 10.0, PI8: 1.0})
        with pytest.raises(ValueError, match="same object"):
            batched_module.simulate_batch(
                qrca8.circuit, [supply, supply], qrca8.tech
            )
