"""Sweep-level reuse and parallel-execution tests.

Simulation is deterministic, so ``workers=N`` must reproduce the serial
sweep exactly (same points, same order, same floats), and the legacy
engine must agree with the compiled one at the sweep level too.
"""

import pytest

from repro.arch import ArchitectureKind
from repro.arch.sweep import area_sweep, throughput_sweep
from repro.circuits.compiled import compile_circuit

AREAS = (100.0, 400.0, 1600.0)
RATES = (5.0, 50.0, 500.0, 5000.0)


class TestThroughputSweep:
    def test_workers_identical_to_serial(self, qrca8):
        serial = throughput_sweep(qrca8, RATES)
        parallel = throughput_sweep(qrca8, RATES, workers=2)
        assert parallel == serial

    def test_legacy_engine_identical(self, qrca8):
        assert throughput_sweep(qrca8, RATES) == throughput_sweep(
            qrca8, RATES, engine="legacy"
        )

    def test_prebuilt_compiled_circuit_accepted(self, qrca8):
        compiled = compile_circuit(qrca8.circuit, qrca8.tech)
        assert throughput_sweep(qrca8, RATES, compiled=compiled) == (
            throughput_sweep(qrca8, RATES)
        )

    def test_unknown_engine_rejected(self, qrca8):
        with pytest.raises(ValueError, match="engine"):
            throughput_sweep(qrca8, RATES, engine="vectorized")


class TestAreaSweep:
    def test_workers_identical_to_serial(self, qcla8):
        serial = area_sweep(qcla8, areas=AREAS)
        parallel = area_sweep(qcla8, areas=AREAS, workers=3)
        assert parallel == serial

    def test_workers_exceeding_points_identical(self, qrca8):
        areas = AREAS[:1]
        kinds = (ArchitectureKind.QLA,)
        serial = area_sweep(qrca8, areas=areas, kinds=kinds)
        parallel = area_sweep(qrca8, areas=areas, kinds=kinds, workers=8)
        assert parallel == serial

    def test_legacy_engine_identical(self, qcla8):
        assert area_sweep(qcla8, areas=AREAS) == area_sweep(
            qcla8, areas=AREAS, engine="legacy"
        )

    def test_prebuilt_compiled_circuit_accepted(self, qcla8):
        compiled = qcla8.compiled_circuit()
        assert area_sweep(qcla8, areas=AREAS, compiled=compiled) == (
            area_sweep(qcla8, areas=AREAS)
        )

    def test_curve_structure_preserved(self, qrca8):
        curves = area_sweep(qrca8, areas=AREAS, workers=2)
        assert set(curves) == set(ArchitectureKind)
        for points in curves.values():
            assert [p.x for p in points] == list(AREAS)
