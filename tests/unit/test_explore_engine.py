"""Exploration engine and evaluator tests, including the PR's acceptance
criteria:

* a grid exploration of the Figure 15/16 space reproduces the same
  ADCR-optimal point as the existing sweep path;
* the adaptive strategy matches or beats the grid optimum using at most
  half the grid's evaluation budget;
* re-running an exploration against a warm result store performs zero
  new simulator evaluations.
"""

import math

import pytest

from repro.arch import ArchitectureKind
from repro.arch.provisioning import area_breakdown, factory_area_for_rates
from repro.arch.sweep import area_sweep, throughput_sweep
from repro.explore import (
    AdaptiveStrategy,
    AdcrObjective,
    DesignSpace,
    Continuous,
    Evaluator,
    GridStrategy,
    LatencyObjective,
    RandomStrategy,
    ResultStore,
    architecture_space,
    explore,
    format_exploration,
    get_strategy,
    pareto_front,
    throughput_space,
)


def sweep_adcr_optimum(analysis, curves):
    """The ADCR-optimal (kind, point) of an area_sweep, computed the
    pedestrian way — the reference the exploration engine must match."""
    data_area = area_breakdown(analysis).data_area
    best_kind, best_point, best_adcr = None, None, math.inf
    for kind, points in curves.items():
        for point in points:
            adcr = (point.x + data_area) * (point.makespan_us / 1000.0)
            if adcr < best_adcr:
                best_kind, best_point, best_adcr = kind, point, adcr
    return best_kind, best_point, best_adcr


class TestGridReproducesSweep:
    def test_grid_explore_matches_fig15_sweep_optimum_qcla32(self, qcla32):
        """Acceptance: `explore qcla-32 --objective adcr --strategy grid`
        lands on the same optimum as the Figure 15/16 sweep path."""
        best_kind, best_point, best_adcr = sweep_adcr_optimum(
            qcla32, area_sweep(qcla32)
        )
        space = architecture_space(qcla32)
        result = explore(
            space,
            AdcrObjective(),
            GridStrategy(space),
            evaluator=Evaluator(analysis=qcla32),
            budget=space.grid_size(),
        )
        assert result.evaluated == space.grid_size()
        picked = result.best.point_dict
        assert picked["arch"] == best_kind.value
        assert picked["factory_area"] == best_point.x
        assert result.best_score == pytest.approx(best_adcr)

    def test_grid_explore_matches_sweep_optimum_qrca8(self, qrca8):
        best_kind, best_point, best_adcr = sweep_adcr_optimum(
            qrca8, area_sweep(qrca8)
        )
        space = architecture_space(qrca8)
        result = explore(
            space,
            AdcrObjective(),
            GridStrategy(space),
            evaluator=Evaluator(analysis=qrca8),
            budget=space.grid_size(),
        )
        assert result.best.point_dict["arch"] == best_kind.value
        assert result.best.point_dict["factory_area"] == best_point.x
        assert result.best_score == pytest.approx(best_adcr)


class TestAdaptiveStrategy:
    def test_adaptive_beats_grid_at_half_budget(self, qrca8):
        """Acceptance: adaptive finds ADCR <= the grid optimum with <=
        half the grid's evaluation budget."""
        space = architecture_space(qrca8)
        grid = explore(
            space,
            AdcrObjective(),
            GridStrategy(space),
            evaluator=Evaluator(analysis=qrca8),
            budget=space.grid_size(),
        )
        half = space.grid_size() // 2
        adaptive = explore(
            space,
            AdcrObjective(),
            AdaptiveStrategy(space, seed=0),
            evaluator=Evaluator(analysis=qrca8),
            budget=half,
        )
        assert adaptive.evaluated <= half
        assert adaptive.best_score <= grid.best_score

    def test_adaptive_budget_respected(self, qrca8):
        space = architecture_space(qrca8)
        result = explore(
            space,
            LatencyObjective(),
            AdaptiveStrategy(space, seed=1),
            evaluator=Evaluator(analysis=qrca8),
            budget=7,
        )
        assert result.evaluated <= 7


class TestResultStoreIntegration:
    def test_warm_store_runs_zero_simulations(self, tmp_path):
        """Acceptance: a warm re-run is answered entirely from disk."""
        store = ResultStore(tmp_path)
        space_analysis = None

        def run():
            evaluator = Evaluator(kernel="qrca", width=8, store=store)
            from repro.kernels import analyze_kernel

            space = architecture_space(analyze_kernel("qrca", 8))
            result = explore(
                space,
                AdcrObjective(),
                GridStrategy(space),
                evaluator=evaluator,
                budget=18,
            )
            return result

        cold = run()
        assert cold.simulations_run == 18
        assert cold.cache_hits == 0
        warm = run()
        assert warm.simulations_run == 0
        assert warm.cache_hits == 18
        assert warm.best_score == cold.best_score
        assert warm.best.point_dict == cold.best.point_dict

    def test_refinement_is_incremental(self, tmp_path, qrca8):
        """A refined search only simulates points it has never seen."""
        store = ResultStore(tmp_path)
        space = architecture_space(qrca8)
        grid = explore(
            space,
            AdcrObjective(),
            GridStrategy(space),
            evaluator=Evaluator(kernel="qrca", width=8, store=store),
            budget=space.grid_size(),
        )
        adaptive = explore(
            space,
            AdcrObjective(),
            AdaptiveStrategy(space, seed=0),
            evaluator=Evaluator(kernel="qrca", width=8, store=store),
            budget=space.grid_size() // 2,
        )
        # The coarse pass subsamples the already-evaluated grid: free.
        assert adaptive.cache_hits >= 9
        assert adaptive.simulations_run < adaptive.evaluated

    def test_different_tech_misses_cache(self, tmp_path):
        from repro.tech import ION_TRAP

        store = ResultStore(tmp_path)
        point = {"arch": "qla", "factory_area": 100.0}
        e1 = Evaluator(kernel="qrca", width=8, store=store)
        e1.evaluate([point])
        e2 = Evaluator(
            kernel="qrca", width=8, tech=ION_TRAP.scaled(0.5), store=store
        )
        e2.evaluate([point])
        assert e2.cache_hits == 0 and e2.simulations_run == 1


class TestEvaluator:
    def test_matches_area_sweep_bit_for_bit(self, qrca8):
        curves = area_sweep(qrca8, areas=(100.0, 1000.0))
        evaluator = Evaluator(analysis=qrca8)
        for kind, points in curves.items():
            for point in points:
                (evaluation,) = evaluator.evaluate(
                    [{"arch": kind.value, "factory_area": point.x}]
                )
                assert evaluation.result == point.result

    def test_matches_throughput_sweep_bit_for_bit(self, qrca8):
        rates = (5.0, 500.0)
        ratio = qrca8.pi8_bandwidth_per_ms / qrca8.zero_bandwidth_per_ms
        points = throughput_sweep(qrca8, rates)
        evaluator = Evaluator(analysis=qrca8)
        evaluations = evaluator.evaluate(
            [{"zero_rate": r, "pi8_ratio": ratio} for r in rates]
        )
        for point, evaluation in zip(points, evaluations):
            assert evaluation.result == point.result

    def test_steady_point_prices_factory_area(self, qrca8):
        evaluator = Evaluator(analysis=qrca8)
        (evaluation,) = evaluator.evaluate(
            [{"zero_rate": 100.0, "pi8_ratio": 0.5}]
        )
        expected = factory_area_for_rates(100.0, 50.0, qrca8.tech)
        assert evaluation.factory_area == pytest.approx(expected)

    def test_batch_dedupe(self, qrca8):
        evaluator = Evaluator(analysis=qrca8)
        point = {"arch": "qla", "factory_area": 100.0}
        evaluations = evaluator.evaluate([point, dict(point), dict(point)])
        assert evaluator.simulations_run == 1
        assert evaluator.dedup_hits == 2
        assert evaluations[0] == evaluations[1] == evaluations[2]

    def test_irrelevant_dims_collapse(self, qrca8):
        """CQLA knobs on a QLA point do not fragment the cache."""
        evaluator = Evaluator(analysis=qrca8)
        a = {"arch": "qla", "factory_area": 100.0, "cqla_ports": 4}
        b = {"arch": "qla", "factory_area": 100.0}
        evaluator.evaluate([a, b])
        assert evaluator.simulations_run == 1

    def test_cqla_defaults_resolved(self, qrca8):
        evaluator = Evaluator(analysis=qrca8)
        canonical = evaluator.canonicalize(
            {"arch": "cqla", "factory_area": 50.0}
        )
        assert canonical["cqla_cache_fraction"] == 0.125
        assert canonical["cqla_ports"] == 2

    def test_workers_identical_to_serial(self, qrca8):
        space = architecture_space(qrca8, areas=(100.0, 400.0, 1600.0))
        points = space.grid_points()
        serial = Evaluator(analysis=qrca8).evaluate(points)
        parallel = Evaluator(analysis=qrca8, workers=3).evaluate(points)
        assert parallel == serial

    def test_spec_mode_workers_identical_to_serial(self):
        points = [
            {"arch": "multiplexed", "factory_area": a} for a in (50.0, 200.0)
        ]
        serial = Evaluator(kernel="qrca", width=8).evaluate(points)
        parallel = Evaluator(kernel="qrca", width=8, workers=2).evaluate(points)
        assert parallel == serial

    def test_legacy_engine_identical(self, qrca8):
        point = {"arch": "multiplexed", "factory_area": 300.0}
        compiled = Evaluator(analysis=qrca8).evaluate([point])
        legacy = Evaluator(analysis=qrca8, engine="legacy").evaluate([point])
        assert compiled[0].result == legacy[0].result

    def test_tech_scale_requires_spec_mode(self, qrca8):
        evaluator = Evaluator(analysis=qrca8)
        with pytest.raises(ValueError, match="tech_scale"):
            evaluator.evaluate(
                [{"arch": "qla", "factory_area": 10.0, "tech_scale": 0.5}]
            )

    def test_tech_scale_changes_result(self):
        base = Evaluator(kernel="qrca", width=8)
        point = {"arch": "multiplexed", "factory_area": 300.0}
        (slow,) = base.evaluate([point])
        (fast,) = base.evaluate([{**point, "tech_scale": 0.5}])
        assert fast.result.makespan_us < slow.result.makespan_us

    def test_unknown_dimension_rejected(self, qrca8):
        with pytest.raises(ValueError, match="unknown dimensions"):
            Evaluator(analysis=qrca8).evaluate([{"frobnicate": 1.0}])

    def test_mixed_steady_and_arch_rejected(self, qrca8):
        with pytest.raises(ValueError, match="either"):
            Evaluator(analysis=qrca8).evaluate(
                [{"zero_rate": 1.0, "arch": "qla", "factory_area": 1.0}]
            )

    def test_bad_engine_rejected(self, qrca8):
        with pytest.raises(ValueError, match="engine"):
            Evaluator(analysis=qrca8, engine="vectorized")

    def test_needs_exactly_one_mode(self, qrca8):
        with pytest.raises(ValueError):
            Evaluator()
        with pytest.raises(ValueError):
            Evaluator(analysis=qrca8, kernel="qrca", width=8)


class TestEngine:
    def test_random_strategy_respects_budget(self, qrca8):
        space = architecture_space(qrca8)
        result = explore(
            space,
            AdcrObjective(),
            RandomStrategy(space, seed=3),
            evaluator=Evaluator(analysis=qrca8),
            budget=5,
        )
        assert result.evaluated <= 5
        assert result.best_score < math.inf

    def test_engine_dedupes_across_batches(self, qrca8):
        """A strategy re-proposing seen points stalls out, not loops."""

        class Stubborn:
            def __init__(self):
                self.point = {"arch": "qla", "factory_area": 100.0}

            def ask(self, remaining):
                return [dict(self.point)]

            def tell(self, scored):
                pass

        evaluator = Evaluator(analysis=qrca8)
        result = explore(
            DesignSpace((Continuous("factory_area", lo=1.0, hi=2.0),)),
            AdcrObjective(),
            Stubborn(),
            evaluator=evaluator,
            budget=10,
        )
        assert result.evaluated == 1
        assert evaluator.simulations_run == 1

    def test_best_per_architecture(self, qrca8):
        space = architecture_space(qrca8, areas=(100.0, 1000.0))
        result = explore(
            space,
            AdcrObjective(),
            GridStrategy(space),
            evaluator=Evaluator(analysis=qrca8),
            budget=space.grid_size(),
        )
        winners = result.best_per("arch")
        assert set(winners) == {k.value for k in ArchitectureKind}

    def test_pareto_front_is_nondominated(self, qrca8):
        space = architecture_space(qrca8)
        result = explore(
            space,
            AdcrObjective(),
            GridStrategy(space),
            evaluator=Evaluator(analysis=qrca8),
            budget=space.grid_size(),
        )
        front = result.pareto_front()
        assert front
        for i, a in enumerate(front):
            for b in front[i + 1 :]:
                assert b.total_area > a.total_area
                assert b.result.makespan_us < a.result.makespan_us

    def test_format_exploration_mentions_counters(self, qrca8):
        space = architecture_space(qrca8, areas=(100.0,))
        result = explore(
            space,
            AdcrObjective(),
            GridStrategy(space),
            evaluator=Evaluator(analysis=qrca8),
            budget=3,
        )
        text = format_exploration(result)
        assert "3 new simulations" in text
        assert "best:" in text
        assert "Pareto front" in text

    def test_get_strategy_names(self, qrca8):
        space = architecture_space(qrca8)
        assert isinstance(get_strategy("grid", space), GridStrategy)
        assert isinstance(get_strategy("random", space, seed=1), RandomStrategy)
        assert isinstance(get_strategy("adaptive", space), AdaptiveStrategy)
        with pytest.raises(ValueError, match="unknown strategy"):
            get_strategy("bayesian", space)

    def test_budget_validation(self, qrca8):
        space = architecture_space(qrca8)
        with pytest.raises(ValueError, match="budget"):
            explore(
                space,
                AdcrObjective(),
                GridStrategy(space),
                evaluator=Evaluator(analysis=qrca8),
                budget=0,
            )

    def test_empty_pareto(self):
        assert pareto_front([]) == []
