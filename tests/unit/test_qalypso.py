"""Unit tests for repro.arch.qalypso."""

import pytest

from repro.arch.qalypso import (
    QalypsoTile,
    compare_with_cqla,
    teleport_qec_ancilla_overhead,
    tile_for_kernel,
)
from repro.factory import Pi8Factory, PipelinedZeroFactory


class TestTile:
    def test_area_accounting(self):
        tile = QalypsoTile(data_qubits=10, zero_factories=2, pi8_factories=1)
        assert tile.data_area == 70
        assert tile.factory_area == 2 * 298 + 403
        assert tile.total_area == tile.data_area + tile.factory_area

    def test_bandwidths(self):
        tile = QalypsoTile(data_qubits=10, zero_factories=3, pi8_factories=1)
        zero = PipelinedZeroFactory()
        pi8 = Pi8Factory()
        assert tile.pi8_bandwidth_per_ms == pytest.approx(pi8.throughput_per_ms)
        expected_net = 3 * zero.throughput_per_ms - pi8.throughput_per_ms
        assert tile.zero_bandwidth_per_ms == pytest.approx(expected_net)

    def test_zero_bandwidth_never_negative(self):
        tile = QalypsoTile(data_qubits=10, zero_factories=1, pi8_factories=3)
        assert tile.zero_bandwidth_per_ms == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QalypsoTile(data_qubits=0, zero_factories=1, pi8_factories=0)
        with pytest.raises(ValueError):
            QalypsoTile(data_qubits=1, zero_factories=-1, pi8_factories=0)

    def test_distribution_latency_scales_with_region(self):
        small = QalypsoTile(data_qubits=4, zero_factories=1, pi8_factories=0)
        large = QalypsoTile(data_qubits=400, zero_factories=1, pi8_factories=0)
        assert large.distribution_latency_us() > small.distribution_latency_us()


class TestTileForKernel:
    def test_provisioned_tile_meets_demand(self, qrca8):
        tile = tile_for_kernel(qrca8)
        assert tile.zero_bandwidth_per_ms >= qrca8.zero_bandwidth_per_ms
        assert tile.pi8_bandwidth_per_ms >= qrca8.pi8_bandwidth_per_ms

    def test_tile_data_matches_kernel(self, qrca8):
        assert tile_for_kernel(qrca8).data_qubits == qrca8.data_qubits


class TestComparison:
    def test_qalypso_faster_than_cqla(self, qrca8):
        comparison = compare_with_cqla(qrca8)
        assert comparison.speedup > 1.0

    def test_speedup_definition(self, qrca8):
        comparison = compare_with_cqla(qrca8)
        assert comparison.speedup == pytest.approx(
            comparison.cqla.makespan_us / comparison.qalypso.makespan_us
        )

    def test_explicit_area(self, qrca8):
        comparison = compare_with_cqla(qrca8, factory_area=5000.0)
        assert comparison.factory_area == 5000.0


class TestAside:
    def test_teleport_qec_doubles_ancillae(self):
        overhead = teleport_qec_ancilla_overhead()
        assert overhead["qec_via_teleport"] == 2 * overhead["qec_step"]
