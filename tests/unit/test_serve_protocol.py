"""Unit tests for the serve wire format (repro.serve.protocol)."""

import json

import pytest

from repro.explore import Evaluator
from repro.serve import protocol
from repro.serve.protocol import ProtocolError

POINTS = [
    {"arch": "qla", "factory_area": 40.0},
    {"arch": "qla", "factory_area": 80.0},
]


class TestRequestRoundtrip:
    def test_roundtrip(self):
        body = protocol.encode_request("qcla", 32, POINTS, engine="legacy")
        request = protocol.decode_request(body)
        assert request["kernel"] == "qcla"
        assert request["width"] == 32
        assert request["engine"] == "legacy"
        assert request["points"] == POINTS

    def test_engine_defaults_to_compiled(self):
        raw = json.dumps(
            {"kernel": "qrca", "width": 8, "points": POINTS}
        ).encode()
        assert protocol.decode_request(raw)["engine"] == "compiled"

    @pytest.mark.parametrize(
        "mutation, match",
        [
            ({"kernel": ""}, "kernel"),
            ({"kernel": 3}, "kernel"),
            ({"width": 0}, "width"),
            ({"width": True}, "width"),
            ({"width": "32"}, "width"),
            ({"engine": "warp"}, "engine"),
            ({"points": []}, "points"),
            ({"points": "all"}, "points"),
            ({"points": [["arch", "qla"]]}, "point"),
        ],
    )
    def test_invalid_requests_rejected(self, mutation, match):
        document = {
            "kernel": "qrca", "width": 8,
            "engine": "compiled", "points": POINTS,
        }
        document.update(mutation)
        with pytest.raises(ProtocolError, match=match):
            protocol.decode_request(json.dumps(document).encode())

    def test_garbage_bytes_rejected(self):
        with pytest.raises(ProtocolError, match="JSON"):
            protocol.decode_request(b"\x00\xffnot json")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="object"):
            protocol.decode_request(b"[1, 2]")


class TestResponseRoundtrip:
    @pytest.fixture(scope="class")
    def evaluations(self):
        return Evaluator(kernel="qrca", width=8).evaluate(POINTS)

    def test_evaluations_roundtrip_bit_identically(self, evaluations):
        payload = protocol.encode_response(evaluations, {"simulations_run": 2})
        decoded, stats = protocol.decode_response(payload)
        assert stats == {"simulations_run": 2}
        assert len(decoded) == len(evaluations)
        for have, want in zip(decoded, evaluations):
            assert have.point == want.point
            assert have.result == want.result
            assert have.factory_area == want.factory_area
            assert have.data_area == want.data_area
            assert have.total_area == want.total_area
            assert have.from_cache == want.from_cache
            assert have.ok

    def test_failed_evaluation_roundtrips(self, evaluations):
        from repro.explore.evaluator import Evaluation

        failed = Evaluation(
            point=evaluations[0].point,
            result=None,
            factory_area=0.0,
            data_area=0.0,
            total_area=0.0,
            error="PoisonPoint: injected",
        )
        decoded, _ = protocol.decode_response(
            protocol.encode_response([failed], {})
        )
        assert not decoded[0].ok
        assert decoded[0].result is None
        assert decoded[0].error == "PoisonPoint: injected"

    def test_torn_body_raises_protocol_error(self, evaluations):
        payload = protocol.encode_response(evaluations, {})
        with pytest.raises(ProtocolError):
            protocol.decode_response(payload[: len(payload) // 2])

    def test_wrong_shape_rejected(self):
        with pytest.raises(ProtocolError, match="evaluations"):
            protocol.decode_response(b'{"stats": {}}')


class TestErrors:
    def test_error_roundtrip(self):
        assert protocol.error_message(protocol.encode_error("boom")) == "boom"

    def test_error_message_survives_garbage(self):
        assert "oops" in protocol.error_message(b"oops, not json")
        protocol.error_message(b"\xff\xfe")  # must not raise
