"""Unit tests for repro.arch.architectures."""

import pytest

from repro.arch.architectures import (
    ArchitectureKind,
    CqlaConfig,
    MultiplexedConfig,
    QlaConfig,
    architecture_for_area,
    ballistic_hop_latency,
    factory_exchange_rates,
    split_area,
    teleport_latency,
)
from repro.arch.supply import PI8, ZERO, DedicatedSupply, PooledSupply
from repro.tech import ION_TRAP


class TestLatencyHelpers:
    def test_teleport_cost(self):
        # CX + measure + correct + channel entry/exit: 10+50+1+20+2 = 83.
        assert teleport_latency(ION_TRAP) == 83.0

    def test_ballistic_cheaper_than_teleport(self):
        assert ballistic_hop_latency(ION_TRAP) < teleport_latency(ION_TRAP)

    def test_ballistic_scales_with_span(self):
        assert ballistic_hop_latency(ION_TRAP, 16) > ballistic_hop_latency(ION_TRAP, 4)


class TestExchangeRates:
    def test_zero_cost_is_area_over_throughput(self):
        zero_cost, pi8_cost = factory_exchange_rates()
        assert zero_cost == pytest.approx(298 / 10.506, rel=0.01)

    def test_pi8_includes_zero_supply(self):
        zero_cost, pi8_cost = factory_exchange_rates()
        assert pi8_cost > 403 / 18.35  # conversion alone is not enough


class TestSplitArea:
    def test_rates_proportional_to_demand(self):
        rates = split_area(10000.0, zero_demand_per_ms=100.0, pi8_demand_per_ms=20.0)
        assert rates[ZERO] / rates[PI8] == pytest.approx(5.0)

    def test_scale_linearity(self):
        small = split_area(1000.0, 50.0, 10.0)
        large = split_area(2000.0, 50.0, 10.0)
        assert large[ZERO] == pytest.approx(2 * small[ZERO])

    def test_matched_area_reproduces_demand(self):
        zero_cost, pi8_cost = factory_exchange_rates()
        demand_area = 50.0 * zero_cost + 10.0 * pi8_cost
        rates = split_area(demand_area, 50.0, 10.0)
        assert rates[ZERO] == pytest.approx(50.0)
        assert rates[PI8] == pytest.approx(10.0)

    def test_zero_demand_zero_rates(self):
        rates = split_area(1000.0, 0.0, 0.0)
        assert rates == {ZERO: 0.0, PI8: 0.0}

    def test_negative_area_rejected(self):
        with pytest.raises(ValueError):
            split_area(-1.0, 1.0, 1.0)


class TestConfigs:
    def test_qla_builds_dedicated_supply(self):
        supply = QlaConfig().build_supply(1000.0, 10, 50.0, 10.0, ION_TRAP)
        assert isinstance(supply, DedicatedSupply)

    def test_multiplexed_builds_pooled_supply(self):
        supply = MultiplexedConfig().build_supply(1000.0, 10, 50.0, 10.0, ION_TRAP)
        assert isinstance(supply, PooledSupply)

    def test_cqla_builds_pooled_supply(self):
        supply = CqlaConfig().build_supply(1000.0, 10, 50.0, 10.0, ION_TRAP)
        assert isinstance(supply, PooledSupply)

    def test_qla_two_qubit_movement_is_two_teleports(self):
        config = QlaConfig()
        assert config.movement_penalty(True, ION_TRAP) == 2 * teleport_latency(ION_TRAP)
        assert config.movement_penalty(False, ION_TRAP) == 0.0

    def test_multiplexed_movement_is_ballistic(self):
        config = MultiplexedConfig()
        assert config.movement_penalty(True, ION_TRAP) < teleport_latency(ION_TRAP)

    def test_cqla_cache_size(self):
        assert CqlaConfig(cache_fraction=0.25).cache_size(100) == 25
        assert CqlaConfig(cache_fraction=0.01).cache_size(10) == 2  # floor

    def test_cqla_validation(self):
        with pytest.raises(ValueError):
            CqlaConfig(cache_fraction=0.0)
        with pytest.raises(ValueError):
            CqlaConfig(ports=0)

    def test_architecture_for_area_covers_all_kinds(self):
        for kind in ArchitectureKind:
            config = architecture_for_area(kind)
            assert config.kind is kind
