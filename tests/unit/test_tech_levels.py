"""Unit tests: concatenation-level technology re-characterization."""

import pytest

from repro.factory.simple import SimpleZeroFactory
from repro.tech import ION_TRAP, ErrorRates, TechnologyParams, at_level
from repro.tech.levels import (
    BLOCK_SIZE,
    DEFAULT_CALIBRATION_SEED,
    DEFAULT_CALIBRATION_TRIALS,
    level_one_logical_error_rate,
)


class TestLevelOne:
    def test_level_one_is_identity(self):
        assert at_level(ION_TRAP, 1) is ION_TRAP
        assert ION_TRAP.at_level(1) is ION_TRAP

    def test_invalid_levels_rejected(self):
        with pytest.raises(ValueError):
            at_level(ION_TRAP, 0)
        with pytest.raises(TypeError):
            at_level(ION_TRAP, 2.0)


class TestLeveledLatencies:
    def test_level_two_latency_model(self):
        level2 = ION_TRAP.at_level(2)
        qec = 2.0 * (ION_TRAP.t_2q + ION_TRAP.t_meas + ION_TRAP.t_1q)
        assert level2.t_1q == ION_TRAP.t_1q + qec
        assert level2.t_2q == ION_TRAP.t_2q + qec
        assert level2.t_meas == ION_TRAP.t_meas
        # Encoded prep is a full simple-factory pass at the level below
        # (323 us with the paper's latencies).
        assert level2.t_prep == SimpleZeroFactory(ION_TRAP).latency_us == 323.0
        assert level2.t_move == ION_TRAP.t_move * BLOCK_SIZE
        assert level2.t_turn == ION_TRAP.t_turn * BLOCK_SIZE
        assert level2.name == "ion-trap@L2"

    def test_level_three_recursion(self):
        level2 = ION_TRAP.at_level(2)
        level3 = ION_TRAP.at_level(3)
        qec2 = 2.0 * (level2.t_2q + level2.t_meas + level2.t_1q)
        assert level3.t_1q == level2.t_1q + qec2
        assert level3.t_prep == SimpleZeroFactory(level2).latency_us
        assert level3.t_1q > level2.t_1q > ION_TRAP.t_1q

    def test_memoized_per_tech_and_level(self):
        assert ION_TRAP.at_level(2) is ION_TRAP.at_level(2)
        assert ION_TRAP.at_level(3) is at_level(ION_TRAP, 3)
        other = ION_TRAP.scaled(2.0)
        assert other.at_level(2) is not ION_TRAP.at_level(2)

    def test_scaled_then_leveled_composes(self):
        fast = ION_TRAP.scaled(0.5)
        leveled = fast.at_level(2)
        qec = 2.0 * (fast.t_2q + fast.t_meas + fast.t_1q)
        assert leveled.t_1q == fast.t_1q + qec


class TestLeveledErrors:
    def test_calibration_is_deterministic_and_memoized(self):
        first = level_one_logical_error_rate(ION_TRAP.errors)
        second = level_one_logical_error_rate(ION_TRAP.errors)
        assert first == second
        assert 0.0 <= first <= 1.0

    def test_level_two_gate_error_is_the_mc_rate(self):
        """The scaling law is anchored so p(2) == the measured level-1
        logical rate: C = p1/p0^2 and p(2) = C * p0^2 = p1."""
        p1 = level_one_logical_error_rate(
            ION_TRAP.errors, DEFAULT_CALIBRATION_TRIALS, DEFAULT_CALIBRATION_SEED
        )
        assert ION_TRAP.at_level(2).errors.gate == pytest.approx(p1)

    def test_scaling_law_square(self):
        """p(L+1)/p(L) follows the quadratic law with the same constant."""
        p0 = ION_TRAP.errors.gate
        p2 = ION_TRAP.at_level(2).errors.gate
        p3 = ION_TRAP.at_level(3).errors.gate
        constant = p2 / (p0 * p0)
        assert p3 == pytest.approx(min(1.0, constant * p2 * p2))

    def test_suppression_below_pseudothreshold(self):
        """A technology above the protocol's pseudothreshold is
        *suppressed* level over level (p1 < p0 forces a shrinking
        quadratic law), while the default ion-trap point sits below it
        and degrades — both faces of the same threshold law."""
        clean = ION_TRAP.with_errors(
            ErrorRates(gate=1e-5, movement=1e-8, measurement=0.0)
        )
        trials = 400_000
        p1 = level_one_logical_error_rate(clean.errors, trials=trials)
        assert p1 < clean.errors.gate  # suppressing regime at this point
        level2 = clean.at_level(2, mc_trials=trials)
        level3 = clean.at_level(3, mc_trials=trials)
        assert level2.errors.gate < clean.errors.gate
        assert level3.errors.gate < level2.errors.gate

    def test_zero_event_measurement_reports_resolution_floor(self):
        """Zero observed failures must not report an exact zero rate."""
        spotless = ErrorRates(gate=1e-9, movement=0.0, measurement=0.0)
        rate = level_one_logical_error_rate(spotless, trials=2_000)
        assert 0.0 < rate <= 1.0 / 1_000

    def test_zero_error_stays_zero(self):
        perfect = ION_TRAP.with_errors(
            ErrorRates(gate=0.0, movement=0.0, measurement=0.0)
        )
        leveled = perfect.at_level(2)
        assert leveled.errors.gate == 0.0
        assert leveled.errors.movement == 0.0


class TestLeveledAnalysis:
    def test_analyze_kernel_code_level_equals_leveled_tech(self):
        from repro.kernels import analyze_kernel

        direct = analyze_kernel("qrca", 8, ION_TRAP.at_level(2))
        via_level = analyze_kernel("qrca", 8, code_level=2)
        assert via_level is direct  # one shared memoized characterization

    def test_leveled_execution_slower_but_same_circuit(self):
        from repro.kernels import analyze_kernel

        level1 = analyze_kernel("qcla", 8)
        level2 = analyze_kernel("qcla", 8, code_level=2)
        # Same logical kernel (the decomposition is level-independent)...
        assert len(level2.circuit) == len(level1.circuit)
        assert level2.circuit.num_qubits == level1.circuit.num_qubits
        assert level2.data_qubits == level1.data_qubits
        # ...characterized under slower effective operations.
        assert level2.execution_time_us > level1.execution_time_us
        assert level2.zero_bandwidth_per_ms < level1.zero_bandwidth_per_ms
