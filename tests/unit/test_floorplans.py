"""Unit tests for repro.layout.floorplans: Figure 13 unit layouts."""

import pytest

from repro.layout.floorplans import (
    EXPECTED_UNIT_AREAS,
    all_unit_grids,
    crossbar_grid,
)


class TestUnitFloorplans:
    @pytest.mark.parametrize("name", sorted(EXPECTED_UNIT_AREAS))
    def test_area_matches_table5(self, name):
        grids = all_unit_grids()
        assert grids[name].area == EXPECTED_UNIT_AREAS[name]

    @pytest.mark.parametrize("name", sorted(EXPECTED_UNIT_AREAS))
    def test_connected(self, name):
        all_unit_grids()[name].validate_connected()

    def test_cx_stage_gate_capacity(self):
        """Three rows of seven gate locations hold the three in-flight
        seven-qubit batches of the pipelined CX stage."""
        grid = all_unit_grids()["cx_stage_unit"]
        assert len(grid.gate_locations) == 21

    def test_verification_holds_ten_qubits(self):
        grid = all_unit_grids()["verification_unit"]
        assert len(grid.gate_locations) == 10

    def test_bp_correction_holds_three_ancillae(self):
        grid = all_unit_grids()["bp_correction_unit"]
        assert len(grid.gate_locations) == 21


class TestCrossbars:
    def test_area_is_height_times_columns(self):
        assert crossbar_grid(30, columns=2).area == 60
        assert crossbar_grid(24, columns=1).area == 24

    def test_connected(self):
        crossbar_grid(10, columns=2).validate_connected()

    def test_invalid_height(self):
        with pytest.raises(ValueError):
            crossbar_grid(0)

    def test_invalid_columns(self):
        with pytest.raises(ValueError):
            crossbar_grid(5, columns=0)
