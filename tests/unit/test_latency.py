"""Unit tests for repro.circuits.latency."""

from repro.circuits.gate import Gate, GateType
from repro.circuits.latency import LogicalLatencyModel, PhysicalLatencyModel
from repro.tech import ION_TRAP


class TestPhysicalLatencyModel:
    model = PhysicalLatencyModel(ION_TRAP)

    def test_one_qubit(self):
        assert self.model.gate_latency(Gate(GateType.H, (0,))) == 1.0

    def test_two_qubit(self):
        assert self.model.gate_latency(Gate(GateType.CX, (0, 1))) == 10.0

    def test_measurement(self):
        gate = Gate(GateType.MEASURE_Z, (0,), result="m")
        assert self.model.gate_latency(gate) == 50.0

    def test_prep(self):
        assert self.model.gate_latency(Gate(GateType.PREP_0, (0,))) == 51.0


class TestLogicalLatencyModel:
    model = LogicalLatencyModel(ION_TRAP)

    def test_transversal_one_qubit_costs_physical(self):
        assert self.model.gate_latency(Gate(GateType.H, (0,))) == ION_TRAP.t_1q

    def test_transversal_two_qubit_costs_physical(self):
        assert self.model.gate_latency(Gate(GateType.CX, (0, 1))) == ION_TRAP.t_2q

    def test_t_gate_costs_ancilla_interaction(self):
        expected = ION_TRAP.t_2q + ION_TRAP.t_meas + ION_TRAP.t_1q
        assert self.model.gate_latency(Gate(GateType.T, (0,))) == expected

    def test_interaction_latency_value(self):
        # CX + measure + conditional correct = 10 + 50 + 1 = 61us.
        assert self.model.non_transversal_interaction_latency() == 61.0

    def test_qec_interaction_is_two_corrections(self):
        # Bit plus phase correction: 2 x 61 = 122us.
        assert self.model.qec_interaction_latency() == 122.0

    def test_tdg_same_as_t(self):
        t = self.model.gate_latency(Gate(GateType.T, (0,)))
        tdg = self.model.gate_latency(Gate(GateType.T_DAG, (0,)))
        assert t == tdg

    def test_scaled_technology_scales_qec(self):
        fast = LogicalLatencyModel(ION_TRAP.scaled(0.5))
        assert fast.qec_interaction_latency() == 61.0
