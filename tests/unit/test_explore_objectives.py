"""Unit tests for exploration objectives."""

import math

import pytest

from repro.arch.simulator import SimulationResult
from repro.explore import (
    AdcrObjective,
    AncillaQualityObjective,
    AreaObjective,
    ConstrainedObjective,
    LatencyObjective,
    ResultStore,
    get_objective,
    objective_names,
    pi8_ancilla_quality,
)
from repro.explore.evaluator import Evaluation

#: Small but statistically meaningful trial count for unit tests.
MC_TRIALS = 4000


def make_evaluation(makespan_us=2000.0, factory=300.0, data=100.0):
    return Evaluation(
        point=(("arch", "qla"), ("factory_area", factory)),
        result=SimulationResult(
            makespan_us=makespan_us,
            gates=10,
            zero_ancillae_consumed=20,
            pi8_ancillae_consumed=4,
        ),
        factory_area=factory,
        data_area=data,
        total_area=factory + data,
    )


class TestObjectives:
    def test_adcr_is_area_times_delay(self):
        e = make_evaluation(makespan_us=2000.0, factory=300.0, data=100.0)
        assert AdcrObjective().score(e) == pytest.approx(400.0 * 2.0)

    def test_latency(self):
        assert LatencyObjective().score(make_evaluation(1500.0)) == pytest.approx(1.5)

    def test_area(self):
        assert AreaObjective().score(make_evaluation(factory=50.0, data=10.0)) == 60.0

    def test_constrained_feasible_passes_through(self):
        obj = ConstrainedObjective(AdcrObjective(), max_total_area=1000.0)
        e = make_evaluation()
        assert obj.score(e) == AdcrObjective().score(e)

    def test_constrained_area_violation_is_inf(self):
        obj = ConstrainedObjective(AdcrObjective(), max_total_area=100.0)
        assert obj.score(make_evaluation(factory=300.0)) == math.inf

    def test_constrained_latency_violation_is_inf(self):
        obj = ConstrainedObjective(LatencyObjective(), max_makespan_ms=1.0)
        assert obj.score(make_evaluation(makespan_us=2000.0)) == math.inf

    def test_constrained_name_mentions_limits(self):
        obj = ConstrainedObjective(
            AdcrObjective(), max_total_area=100.0, max_makespan_ms=5.0
        )
        assert "area<=100" in obj.name and "latency<=5ms" in obj.name


class TestAncillaQuality:
    def test_score_is_pi8_error_rate(self):
        obj = AncillaQualityObjective(trials=MC_TRIALS, seed=3)
        rate = obj.score(make_evaluation())
        assert 0.0 <= rate < 0.1
        assert rate == obj.result().error_rate

    def test_score_independent_of_design_point(self):
        """Area/rate dimensions do not perturb the fault model."""
        obj = AncillaQualityObjective(trials=MC_TRIALS, seed=3)
        assert obj.score(make_evaluation(factory=50.0)) == obj.score(
            make_evaluation(factory=5000.0)
        )

    def test_in_process_memoization(self):
        first = pi8_ancilla_quality(trials=MC_TRIALS, seed=5)
        assert pi8_ancilla_quality(trials=MC_TRIALS, seed=5) is first

    def test_store_round_trip(self, tmp_path):
        from repro.explore.objectives import _MC_CACHE

        store = ResultStore(tmp_path)
        cold = pi8_ancilla_quality(trials=MC_TRIALS, seed=9, store=store)
        _MC_CACHE.clear()
        warm = pi8_ancilla_quality(trials=MC_TRIALS, seed=9, store=store)
        assert (warm.trials, warm.good, warm.bad, warm.discarded) == (
            cold.trials,
            cold.good,
            cold.bad,
            cold.discarded,
        )

    def test_trials_knob_lands_on_distinct_cache_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        small = pi8_ancilla_quality(trials=MC_TRIALS, seed=5, store=store)
        large = pi8_ancilla_quality(trials=2 * MC_TRIALS, seed=5, store=store)
        assert small.trials == MC_TRIALS
        assert large.trials == 2 * MC_TRIALS

    def test_quality_constraint_gates_feasibility(self):
        quality = AncillaQualityObjective(trials=MC_TRIALS, seed=3)
        tight = ConstrainedObjective(
            AdcrObjective(), max_pi8_error_rate=0.0, quality=quality
        )
        loose = ConstrainedObjective(
            AdcrObjective(), max_pi8_error_rate=1.0, quality=quality
        )
        e = make_evaluation()
        # The pipeline has a nonzero error rate at these trial counts.
        assert quality.score(e) > 0.0
        assert tight.score(e) == math.inf
        assert loose.score(e) == AdcrObjective().score(e)
        assert "pi8err<=0" in tight.name


class TestRegistry:
    def test_names(self):
        assert objective_names() == ["adcr", "ancilla_quality", "area", "latency"]

    def test_lookup(self):
        assert get_objective("adcr").name == "adcr"

    def test_ancilla_quality_lookup_threads_knobs(self):
        obj = get_objective("ancilla_quality", mc_trials=MC_TRIALS, mc_seed=3)
        assert isinstance(obj, AncillaQualityObjective)
        assert obj.trials == MC_TRIALS

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown objective"):
            get_objective("speed")

    def test_constraints_wrap(self):
        obj = get_objective("area", max_makespan_ms=50.0)
        assert isinstance(obj, ConstrainedObjective)
        assert obj.base.name == "area"

    def test_pi8_constraint_wraps_with_quality(self):
        obj = get_objective(
            "adcr", max_pi8_error_rate=0.5, mc_trials=MC_TRIALS, mc_seed=3
        )
        assert isinstance(obj, ConstrainedObjective)
        assert obj.quality is not None
        assert obj.quality.trials == MC_TRIALS
