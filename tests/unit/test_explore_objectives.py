"""Unit tests for exploration objectives."""

import math

import pytest

from repro.arch.simulator import SimulationResult
from repro.explore import (
    AdcrObjective,
    AreaObjective,
    ConstrainedObjective,
    LatencyObjective,
    get_objective,
    objective_names,
)
from repro.explore.evaluator import Evaluation


def make_evaluation(makespan_us=2000.0, factory=300.0, data=100.0):
    return Evaluation(
        point=(("arch", "qla"), ("factory_area", factory)),
        result=SimulationResult(
            makespan_us=makespan_us,
            gates=10,
            zero_ancillae_consumed=20,
            pi8_ancillae_consumed=4,
        ),
        factory_area=factory,
        data_area=data,
        total_area=factory + data,
    )


class TestObjectives:
    def test_adcr_is_area_times_delay(self):
        e = make_evaluation(makespan_us=2000.0, factory=300.0, data=100.0)
        assert AdcrObjective().score(e) == pytest.approx(400.0 * 2.0)

    def test_latency(self):
        assert LatencyObjective().score(make_evaluation(1500.0)) == pytest.approx(1.5)

    def test_area(self):
        assert AreaObjective().score(make_evaluation(factory=50.0, data=10.0)) == 60.0

    def test_constrained_feasible_passes_through(self):
        obj = ConstrainedObjective(AdcrObjective(), max_total_area=1000.0)
        e = make_evaluation()
        assert obj.score(e) == AdcrObjective().score(e)

    def test_constrained_area_violation_is_inf(self):
        obj = ConstrainedObjective(AdcrObjective(), max_total_area=100.0)
        assert obj.score(make_evaluation(factory=300.0)) == math.inf

    def test_constrained_latency_violation_is_inf(self):
        obj = ConstrainedObjective(LatencyObjective(), max_makespan_ms=1.0)
        assert obj.score(make_evaluation(makespan_us=2000.0)) == math.inf

    def test_constrained_name_mentions_limits(self):
        obj = ConstrainedObjective(
            AdcrObjective(), max_total_area=100.0, max_makespan_ms=5.0
        )
        assert "area<=100" in obj.name and "latency<=5ms" in obj.name


class TestRegistry:
    def test_names(self):
        assert objective_names() == ["adcr", "area", "latency"]

    def test_lookup(self):
        assert get_objective("adcr").name == "adcr"

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown objective"):
            get_objective("speed")

    def test_constraints_wrap(self):
        obj = get_objective("area", max_makespan_ms=50.0)
        assert isinstance(obj, ConstrainedObjective)
        assert obj.base.name == "area"
