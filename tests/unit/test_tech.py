"""Unit tests for repro.tech: technology parameter records."""

import pytest

from repro.tech import ERROR_MODEL_PAPER, ION_TRAP, ErrorRates, TechnologyParams


class TestErrorRates:
    def test_paper_defaults(self):
        rates = ErrorRates()
        assert rates.gate == 1e-4
        assert rates.movement == 1e-6

    def test_paper_model_constant(self):
        assert ERROR_MODEL_PAPER.gate == 1e-4

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            ErrorRates(gate=-0.1)

    def test_rejects_rate_above_one(self):
        with pytest.raises(ValueError):
            ErrorRates(movement=1.5)

    def test_zero_rates_allowed(self):
        rates = ErrorRates(gate=0.0, movement=0.0, measurement=0.0)
        assert rates.gate == 0.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ErrorRates().gate = 0.5


class TestTechnologyParams:
    def test_table1_latencies(self):
        assert ION_TRAP.t_1q == 1.0
        assert ION_TRAP.t_2q == 10.0
        assert ION_TRAP.t_meas == 50.0
        assert ION_TRAP.t_prep == 51.0

    def test_table4_latencies(self):
        assert ION_TRAP.t_move == 1.0
        assert ION_TRAP.t_turn == 10.0

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            TechnologyParams(t_2q=-1.0)

    def test_scaled_multiplies_all_latencies(self):
        fast = ION_TRAP.scaled(0.5)
        assert fast.t_2q == 5.0
        assert fast.t_meas == 25.0
        assert fast.t_move == 0.5

    def test_scaled_keeps_error_rates(self):
        fast = ION_TRAP.scaled(0.1)
        assert fast.errors == ION_TRAP.errors

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ION_TRAP.scaled(0.0)

    def test_scaled_names_derivative(self):
        assert "x2" in ION_TRAP.scaled(2.0).name

    def test_with_errors_swaps_only_errors(self):
        new = ION_TRAP.with_errors(ErrorRates(gate=1e-3))
        assert new.errors.gate == 1e-3
        assert new.t_2q == ION_TRAP.t_2q

    def test_default_is_ion_trap(self):
        assert TechnologyParams().name == "ion-trap"
