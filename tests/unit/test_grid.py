"""Unit tests for repro.layout.grid."""

import pytest

from repro.layout.grid import Grid, GridError
from repro.layout.macroblock import (
    Direction,
    four_way,
    straight_channel,
    straight_channel_gate,
)


def channel_row(length):
    grid = Grid()
    for col in range(length):
        grid.place((0, col), straight_channel("ew"))
    return grid


class TestPlacement:
    def test_area_counts_blocks(self):
        assert channel_row(5).area == 5

    def test_double_placement_rejected(self):
        grid = Grid()
        grid.place((0, 0), four_way())
        with pytest.raises(GridError):
            grid.place((0, 0), four_way())

    def test_block_at(self):
        grid = Grid()
        block = four_way()
        grid.place((2, 3), block)
        assert grid.block_at((2, 3)) is block
        assert grid.block_at((0, 0)) is None

    def test_contains(self):
        grid = Grid()
        grid.place((1, 1), four_way())
        assert (1, 1) in grid
        assert (0, 0) not in grid

    def test_gate_locations(self):
        grid = Grid()
        grid.place((0, 0), straight_channel_gate())
        grid.place((0, 1), four_way())
        assert grid.gate_locations == [(0, 0)]

    def test_bounding_box(self):
        grid = Grid()
        grid.place((1, 2), four_way())
        grid.place((4, 7), four_way())
        assert grid.bounding_box() == (1, 2, 4, 7)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(GridError):
            Grid().bounding_box()


class TestConnectivity:
    def test_neighbors_require_facing_ports(self):
        grid = channel_row(3)
        nbrs = [cell for cell, _ in grid.neighbors((0, 1))]
        assert set(nbrs) == {(0, 0), (0, 2)}

    def test_mismatched_ports_not_neighbors(self):
        grid = Grid()
        grid.place((0, 0), straight_channel("ns"))
        grid.place((0, 1), straight_channel("ns"))
        assert grid.neighbors((0, 0)) == []

    def test_validate_connected_passes(self):
        channel_row(4).validate_connected()

    def test_validate_connected_detects_islands(self):
        grid = Grid()
        grid.place((0, 0), straight_channel("ew"))
        grid.place((5, 5), straight_channel("ew"))
        with pytest.raises(GridError):
            grid.validate_connected()

    def test_validate_empty_ok(self):
        Grid().validate_connected()


class TestRender:
    def test_render_shape(self):
        grid = channel_row(4)
        rendered = grid.render()
        assert rendered == "----"

    def test_render_gate_symbol(self):
        grid = Grid()
        grid.place((0, 0), straight_channel_gate("ns"))
        assert grid.render() == "G"

    def test_render_gap(self):
        grid = Grid()
        grid.place((0, 0), four_way())
        grid.place((0, 2), four_way())
        assert grid.render() == "+ +"
