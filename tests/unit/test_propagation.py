"""Unit tests for repro.error.propagation: Clifford conjugation rules."""

import pytest

from repro.circuits.gate import Gate, GateType
from repro.error.pauli import PauliFrame
from repro.error.propagation import measurement_flipped, propagate_gate


def frame_with(n, **paulis):
    frame = PauliFrame(n)
    for key, qubit in paulis.items():
        frame.apply_pauli(qubit, key.rstrip("_").upper()[0])
    return frame


class TestHadamard:
    def test_x_becomes_z(self):
        frame = frame_with(1, x=0)
        propagate_gate(frame, Gate(GateType.H, (0,)))
        assert frame.pauli_on(0) == "Z"

    def test_z_becomes_x(self):
        frame = frame_with(1, z=0)
        propagate_gate(frame, Gate(GateType.H, (0,)))
        assert frame.pauli_on(0) == "X"

    def test_y_stays_y(self):
        frame = frame_with(1, y=0)
        propagate_gate(frame, Gate(GateType.H, (0,)))
        assert frame.pauli_on(0) == "Y"


class TestPhaseGate:
    def test_x_becomes_y(self):
        frame = frame_with(1, x=0)
        propagate_gate(frame, Gate(GateType.S, (0,)))
        assert frame.pauli_on(0) == "Y"

    def test_z_fixed(self):
        frame = frame_with(1, z=0)
        propagate_gate(frame, Gate(GateType.S, (0,)))
        assert frame.pauli_on(0) == "Z"

    def test_sdg_matches_s_on_frames(self):
        a = frame_with(1, x=0)
        b = frame_with(1, x=0)
        propagate_gate(a, Gate(GateType.S, (0,)))
        propagate_gate(b, Gate(GateType.S_DAG, (0,)))
        assert a == b


class TestCx:
    def test_x_on_control_spreads(self):
        frame = frame_with(2, x=0)
        propagate_gate(frame, Gate(GateType.CX, (0, 1)))
        assert frame.pauli_on(0) == "X"
        assert frame.pauli_on(1) == "X"

    def test_z_on_target_spreads(self):
        frame = frame_with(2, z=1)
        propagate_gate(frame, Gate(GateType.CX, (0, 1)))
        assert frame.pauli_on(0) == "Z"
        assert frame.pauli_on(1) == "Z"

    def test_x_on_target_stays(self):
        frame = frame_with(2, x=1)
        propagate_gate(frame, Gate(GateType.CX, (0, 1)))
        assert frame.pauli_on(0) == "I"
        assert frame.pauli_on(1) == "X"

    def test_z_on_control_stays(self):
        frame = frame_with(2, z=0)
        propagate_gate(frame, Gate(GateType.CX, (0, 1)))
        assert frame.pauli_on(1) == "I"


class TestCz:
    def test_x_picks_up_z_on_partner(self):
        frame = frame_with(2, x=0)
        propagate_gate(frame, Gate(GateType.CZ, (0, 1)))
        assert frame.pauli_on(0) == "X"
        assert frame.pauli_on(1) == "Z"

    def test_symmetric(self):
        frame = frame_with(2, x=1)
        propagate_gate(frame, Gate(GateType.CZ, (0, 1)))
        assert frame.pauli_on(0) == "Z"

    def test_z_fixed(self):
        frame = frame_with(2, z=0)
        propagate_gate(frame, Gate(GateType.CZ, (0, 1)))
        assert frame.pauli_on(1) == "I"


class TestSwapAndPrep:
    def test_swap_exchanges(self):
        frame = frame_with(2, y=0)
        propagate_gate(frame, Gate(GateType.SWAP, (0, 1)))
        assert frame.pauli_on(0) == "I"
        assert frame.pauli_on(1) == "Y"

    def test_prep_clears(self):
        frame = frame_with(1, y=0)
        propagate_gate(frame, Gate(GateType.PREP_0, (0,)))
        assert frame.is_identity()

    def test_pauli_gates_noop_on_frame(self):
        frame = frame_with(1, x=0)
        propagate_gate(frame, Gate(GateType.Z, (0,)))
        assert frame.pauli_on(0) == "X"

    def test_t_passes_pauli_part(self):
        frame = frame_with(1, x=0)
        propagate_gate(frame, Gate(GateType.T, (0,)))
        assert frame.pauli_on(0) == "X"


class TestMeasurementFlips:
    def test_z_measure_flipped_by_x(self):
        frame = frame_with(1, x=0)
        gate = Gate(GateType.MEASURE_Z, (0,), result="m")
        assert measurement_flipped(frame, gate)

    def test_z_measure_unaffected_by_z(self):
        frame = frame_with(1, z=0)
        gate = Gate(GateType.MEASURE_Z, (0,), result="m")
        assert not measurement_flipped(frame, gate)

    def test_x_measure_flipped_by_z(self):
        frame = frame_with(1, z=0)
        gate = Gate(GateType.MEASURE_X, (0,), result="m")
        assert measurement_flipped(frame, gate)

    def test_y_flips_both_bases(self):
        frame = frame_with(1, y=0)
        assert measurement_flipped(frame, Gate(GateType.MEASURE_Z, (0,), result="a"))
        assert measurement_flipped(frame, Gate(GateType.MEASURE_X, (0,), result="b"))

    def test_non_measurement_rejected(self):
        with pytest.raises(ValueError):
            measurement_flipped(PauliFrame(1), Gate(GateType.H, (0,)))
