"""Unit tests for repro.circuits.circuit."""

import pytest

from repro.circuits import Circuit, CircuitError
from repro.circuits.gate import Gate, GateType


class TestConstruction:
    def test_empty_circuit(self):
        circ = Circuit(3)
        assert len(circ) == 0
        assert circ.num_qubits == 3

    def test_negative_qubits_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(-1)

    def test_builder_methods_chain(self):
        circ = Circuit(2).h(0).cx(0, 1).t(1)
        assert len(circ) == 3

    def test_out_of_range_qubit_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(2).h(2)

    def test_duplicate_result_bit_rejected(self):
        circ = Circuit(2).measure_z(0, "m")
        with pytest.raises(CircuitError):
            circ.measure_z(1, "m")

    def test_condition_on_unwritten_bit_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(1).x(0, condition="nope")

    def test_condition_after_measurement_allowed(self):
        circ = Circuit(2).measure_z(0, "m").x(1, condition="m")
        assert circ[1].condition == "m"

    def test_iteration_yields_gates(self):
        circ = Circuit(1).h(0).t(0)
        types = [g.gate_type for g in circ]
        assert types == [GateType.H, GateType.T]

    def test_indexing(self):
        circ = Circuit(1).h(0).s(0)
        assert circ[1].gate_type is GateType.S

    def test_repr_contains_name(self):
        assert "my" in repr(Circuit(1, name="my"))


class TestCounting:
    def test_gate_counts(self):
        circ = Circuit(2).h(0).h(1).cx(0, 1)
        counts = circ.gate_counts()
        assert counts[GateType.H] == 2
        assert counts[GateType.CX] == 1

    def test_count_single_type(self):
        circ = Circuit(1).t(0).t(0).tdg(0)
        assert circ.count(GateType.T) == 2

    def test_non_transversal_count(self):
        circ = Circuit(2).h(0).t(0).tdg(1).cx(0, 1)
        assert circ.non_transversal_count() == 2

    def test_two_qubit_count(self):
        circ = Circuit(3).cx(0, 1).cz(1, 2).h(0)
        assert circ.two_qubit_count() == 2

    def test_qubits_used(self):
        circ = Circuit(5).h(1).cx(3, 4)
        assert circ.qubits_used() == (1, 3, 4)

    def test_depth_serial(self):
        circ = Circuit(1).h(0).t(0).h(0)
        assert circ.depth() == 3

    def test_depth_parallel(self):
        circ = Circuit(2).h(0).h(1)
        assert circ.depth() == 1

    def test_depth_two_qubit_sync(self):
        circ = Circuit(2).h(0).cx(0, 1).h(1)
        assert circ.depth() == 3

    def test_depth_empty(self):
        assert Circuit(4).depth() == 0


class TestCompose:
    def test_identity_mapping(self):
        inner = Circuit(2).cx(0, 1)
        outer = Circuit(2).h(0)
        outer.compose(inner)
        assert outer[1].qubits == (0, 1)

    def test_remapping(self):
        inner = Circuit(2).cx(0, 1)
        outer = Circuit(4)
        outer.compose(inner, qubit_map=[2, 3])
        assert outer[0].qubits == (2, 3)

    def test_short_map_rejected(self):
        inner = Circuit(3).h(2)
        with pytest.raises(CircuitError):
            Circuit(5).compose(inner, qubit_map=[0, 1])

    def test_result_bit_collision_renamed(self):
        inner = Circuit(1, name="sub").measure_z(0, "m")
        outer = Circuit(2).measure_z(0, "m")
        outer.compose(inner, qubit_map=[1])
        assert len(outer.result_bits) == 2
        assert "m" in outer.result_bits

    def test_condition_renamed_with_result(self):
        inner = Circuit(1, name="sub").measure_z(0, "m").x(0, condition="m")
        outer = Circuit(2).measure_z(0, "m")
        outer.compose(inner, qubit_map=[1])
        conditioned = outer[2]
        assert conditioned.condition == outer[1].result

    def test_copy_is_independent(self):
        original = Circuit(1).h(0)
        dup = original.copy()
        dup.t(0)
        assert len(original) == 1
        assert len(dup) == 2


class TestAppendValidation:
    def test_append_prebuilt_gate(self):
        circ = Circuit(2)
        circ.append(Gate(GateType.CX, (0, 1)))
        assert len(circ) == 1

    def test_extend(self):
        circ = Circuit(1)
        circ.extend([Gate(GateType.H, (0,)), Gate(GateType.T, (0,))])
        assert len(circ) == 2
