"""Unit tests for repro.kernels.qcla."""

import pytest

from repro.circuits.gate import GateType
from repro.kernels.classical import run_adder
from repro.kernels.qcla import qcla_circuit, qcla_registers


class TestRegisters:
    def test_paper_qubit_count_32(self):
        # 123 qubits matches Table 9's 861-macroblock data area (861/7).
        assert qcla_registers(32).num_qubits == 123

    def test_tree_ancilla_count_32(self):
        # sum over t of (floor(n / 2^t) - 1) = 15+7+3+1 = 26 at n=32.
        assert qcla_registers(32).tree_ancillae == 26

    def test_p0_aliases_onto_b(self):
        regs = qcla_registers(8)
        assert regs.p(0, 3) == regs.b[3]

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            qcla_circuit(0)


class TestStructure:
    def test_log_depth_advantage(self):
        """The QCLA must be much shallower than the QRCA at equal width —
        the source of its higher ancilla bandwidth demand (Table 3)."""
        from repro.kernels.qrca import qrca_circuit

        assert qcla_circuit(32).depth() < qrca_circuit(32).depth() / 4

    def test_toffoli_count_32(self):
        # init(32) + P(26) + G(31) + C(26) + inverse P(26) = 141: matches
        # the paper-implied pi/8 demand of the 32-bit QCLA (987 T = 141x7).
        assert qcla_circuit(32).count(GateType.CCX) == 141

    def test_reversible_gate_set(self):
        circ = qcla_circuit(8)
        assert set(circ.gate_counts()) <= {GateType.CX, GateType.CCX}


class TestCorrectness:
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 5, 8, 16])
    def test_exhaustive_small_or_sampled(self, width):
        import random

        regs = qcla_registers(width)
        circ = qcla_circuit(width)
        rng = random.Random(width)
        pairs = (
            [(a, b) for a in range(1 << width) for b in range(1 << width)]
            if width <= 2
            else [(rng.randrange(1 << width), rng.randrange(1 << width)) for _ in range(25)]
        )
        tree = [regs.p(t, i) for (t, i) in regs._p_tree]
        for a, b in pairs:
            out = run_adder(circ, regs.a, regs.b, regs.z, a, b, tree)
            assert out["sum"] == a + b, (width, a, b)
            assert out["a"] == a
            assert out["ancilla"] == 0  # tree ancillae uncomputed

    def test_inputs_restored(self):
        regs = qcla_registers(8)
        circ = qcla_circuit(8)
        out = run_adder(circ, regs.a, regs.b, regs.z, 201, 47, [])
        assert out["a"] == 201

    def test_without_restore_b_holds_propagate(self):
        regs = qcla_registers(4)
        circ = qcla_circuit(4, restore_inputs=False)
        out = run_adder(circ, regs.a, regs.b, regs.z, 5, 3, [])
        assert out["sum"] == 8  # sum still correct

    def test_full_carry_32(self):
        regs = qcla_registers(32)
        circ = qcla_circuit(32)
        a = (1 << 32) - 1
        out = run_adder(circ, regs.a, regs.b, regs.z, a, 1, [])
        assert out["sum"] == 1 << 32
