"""CLI tests for the argparse subcommands, especially `explore`."""

import pytest

from repro.__main__ import _parse_kernel, build_parser, main


class TestParseKernel:
    def test_name_width(self):
        assert _parse_kernel("qcla-32") == ("qcla", 32)

    def test_bare_name_defaults(self):
        assert _parse_kernel("QFT") == ("qft", 32)

    def test_bad_width(self):
        with pytest.raises(ValueError, match="kernel spec"):
            _parse_kernel("qcla-xl")


class TestSubcommands:
    def test_run_subcommand(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "t1q" in capsys.readouterr().out

    def test_bare_key_aliases_run(self, capsys):
        assert main(["table1"]) == 0
        assert "t1q" in capsys.readouterr().out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "tableXX"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_subcommand_exits_2(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "error" in capsys.readouterr().err

    def test_subcommand_help_exits_0(self, capsys):
        assert main(["explore", "--help"]) == 0
        out = capsys.readouterr().out
        assert "--strategy" in out and "--budget" in out

    def test_run_rejects_bad_engine(self, capsys):
        assert main(["run", "fig15", "--engine", "warp"]) == 2

    def test_parser_prog_names_module(self):
        assert build_parser().prog == "python -m repro"


class TestExploreCommand:
    def test_explore_grid(self, tmp_path, capsys):
        code = main(
            [
                "explore", "qrca-8",
                "--strategy", "grid",
                "--budget", "6",
                "--cache-dir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "best:" in out
        assert "6 new simulations" in out

    def test_explore_warm_cache_and_clear(self, tmp_path, capsys):
        args = [
            "explore", "qrca-8",
            "--strategy", "grid",
            "--budget", "4",
            "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "0 new simulations" in capsys.readouterr().out
        assert main(["explore", "--clear-cache", "--cache-dir", str(tmp_path)]) == 0
        assert "cleared 4" in capsys.readouterr().out
        # Store is cold again.
        assert main(args) == 0
        assert "4 new simulations" in capsys.readouterr().out

    def test_explore_no_cache_leaves_no_files(self, tmp_path, capsys):
        code = main(
            [
                "explore", "qrca-8",
                "--budget", "3",
                "--no-cache",
                "--cache-dir", str(tmp_path),
            ]
        )
        assert code == 0
        assert not (tmp_path / "explore").exists()

    def test_explore_requires_kernel(self, capsys):
        assert main(["explore"]) == 2
        assert "kernel" in capsys.readouterr().err

    def test_explore_unknown_kernel(self, tmp_path, capsys):
        assert main(
            ["explore", "warp-8", "--cache-dir", str(tmp_path)]
        ) == 2
        assert "error" in capsys.readouterr().err

    def test_explore_bad_budget_is_clean_error(self, tmp_path, capsys):
        code = main(
            [
                "explore", "qrca-8",
                "--budget", "0",
                "--cache-dir", str(tmp_path),
            ]
        )
        assert code == 2
        assert "budget" in capsys.readouterr().err

    def test_explore_infeasible_constraints_reported(self, tmp_path, capsys):
        code = main(
            [
                "explore", "qrca-8",
                "--budget", "3",
                "--max-latency-ms", "1e-9",
                "--cache-dir", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no feasible point found" in out
        assert "best:" not in out

    def test_explore_objective_and_constraints(self, tmp_path, capsys):
        code = main(
            [
                "explore", "qrca-8",
                "--objective", "latency",
                "--max-area", "1e9",
                "--strategy", "random",
                "--seed", "5",
                "--budget", "4",
                "--cache-dir", str(tmp_path),
            ]
        )
        assert code == 0
        assert "latency[area<=1e+09]" in capsys.readouterr().out

    def test_explore_pi8_error_constraint(self, tmp_path, capsys):
        code = main(
            [
                "explore", "qrca-8",
                "--budget", "3",
                "--max-pi8-error", "0.9",
                "--mc-trials", "2000",
                "--cache-dir", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adcr[pi8err<=0.9]" in out
        assert "best:" in out  # a loose quality gate stays feasible

    def test_explore_code_level_grid(self, tmp_path, capsys):
        """--code-level 1 2 sweeps the concatenation axis through the
        spec-mode evaluator (level-2 points re-characterize the kernel)."""
        code = main(
            [
                "explore", "qrca-8",
                "--code-level", "1", "2",
                "--strategy", "grid",
                "--budget", "6",
                "--cache-dir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "best:" in out
        # The grid interleaves both levels: 3 areas x 2 levels.
        assert "6 new simulations" in out
        # Level-1 points canonicalize identically to unannotated points,
        # so a plain (no --code-level) run is served from the store...
        assert main(
            [
                "explore", "qrca-8",
                "--strategy", "grid",
                "--budget", "3",
                "--cache-dir", str(tmp_path),
            ]
        ) == 0
        assert "0 new simulations" in capsys.readouterr().out
        # ...while the level-2 half of the grid was genuinely distinct
        # (6 unique evaluations landed in the store, not 3).
        from repro.explore import ResultStore

        assert ResultStore(str(tmp_path)).clear() == 6

    def test_explore_code_level_invalid(self, tmp_path, capsys):
        code = main(
            [
                "explore", "qrca-8",
                "--code-level", "0",
                "--cache-dir", str(tmp_path),
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_explore_ancilla_quality_objective(self, tmp_path, capsys):
        code = main(
            [
                "explore", "qrca-8",
                "--objective", "ancilla_quality",
                "--budget", "2",
                "--mc-trials", "2000",
                "--cache-dir", str(tmp_path),
            ]
        )
        assert code == 0
        assert "objective ancilla_quality" in capsys.readouterr().out
