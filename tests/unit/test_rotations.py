"""Unit tests for repro.ancilla.rotations: Fowler synthesis."""

import math

import numpy as np
import pytest

from repro.ancilla.rotations import (
    PRECOMPUTED_WORDS,
    RotationSynthesizer,
    crz_decomposition_t_count,
    default_synthesizer,
    recursive_rotation_expected_latency,
    rz_matrix,
    trace_distance,
)
from repro.circuits.gate import GateType
from repro.tech import ION_TRAP

_MATRICES = {
    GateType.H: np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2),
    GateType.T: np.diag([1, np.exp(1j * math.pi / 4)]),
    GateType.T_DAG: np.diag([1, np.exp(-1j * math.pi / 4)]),
    GateType.S: np.diag([1, 1j]),
    GateType.S_DAG: np.diag([1, -1j]),
    GateType.Z: np.diag([1, -1]),
}


def word_matrix(gates):
    m = np.eye(2, dtype=complex)
    for g in gates:
        m = _MATRICES[g] @ m
    return m


class TestDistanceMetric:
    def test_zero_for_equal(self):
        assert trace_distance(np.eye(2), np.eye(2)) == 0.0

    def test_phase_invariant(self):
        u = rz_matrix(0.3)
        assert trace_distance(u, np.exp(1j * 1.2) * u) < 1e-12

    def test_positive_for_different(self):
        assert trace_distance(np.eye(2), rz_matrix(math.pi)) > 0.5


class TestExactCases:
    def test_k0_is_z(self):
        assert default_synthesizer().synthesize(0).gates == (GateType.Z,)

    def test_k1_is_s(self):
        r = default_synthesizer().synthesize(1)
        assert r.gates == (GateType.S,)
        assert r.exact

    def test_k2_is_t(self):
        r = default_synthesizer().synthesize(2)
        assert r.gates == (GateType.T,)
        assert r.t_count == 1

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            default_synthesizer().synthesize(-1)


class TestPrecomputedWords:
    @pytest.mark.parametrize("k", sorted(PRECOMPUTED_WORDS))
    def test_claimed_error_is_accurate(self, k):
        word, claimed = PRECOMPUTED_WORDS[k]
        actual = trace_distance(word_matrix(word), rz_matrix(math.pi / 2 ** k))
        assert actual == pytest.approx(claimed, abs=1e-4)

    @pytest.mark.parametrize("k", sorted(PRECOMPUTED_WORDS))
    def test_word_beats_identity(self, k):
        word, claimed = PRECOMPUTED_WORDS[k]
        identity_err = trace_distance(np.eye(2), rz_matrix(math.pi / 2 ** k))
        assert claimed < identity_err

    def test_synthesizer_uses_precomputed(self):
        r = default_synthesizer().synthesize(4)
        assert r.gates == PRECOMPUTED_WORDS[4][0]


class TestSynthesizedRotation:
    def test_t_count_counts_both_t_types(self):
        r = default_synthesizer().synthesize(5)
        manual = sum(1 for g in r.gates if g in (GateType.T, GateType.T_DAG))
        assert r.t_count == manual

    def test_as_circuit_roundtrip(self):
        r = default_synthesizer().synthesize(4)
        circ = r.as_circuit()
        assert len(circ) == r.length

    def test_tiny_rotation_is_identity_word(self):
        r = default_synthesizer().synthesize(12)
        assert r.length == 0
        assert r.error < 0.01

    def test_search_improves_with_tolerance_for_k3(self):
        loose = RotationSynthesizer(max_length=6, tolerance=0.2).synthesize(3)
        assert loose.error <= 0.2


class TestSynthesizerValidation:
    def test_bad_max_length(self):
        with pytest.raises(ValueError):
            RotationSynthesizer(max_length=0)

    def test_bad_tolerance(self):
        with pytest.raises(ValueError):
            RotationSynthesizer(tolerance=0.0)

    def test_cache_returns_same_object(self):
        synth = RotationSynthesizer()
        assert synth.synthesize(4) is synth.synthesize(4)


class TestRecursiveConstruction:
    def test_rejects_small_k(self):
        with pytest.raises(ValueError):
            recursive_rotation_expected_latency(2, ION_TRAP)

    def test_k3_single_stage(self):
        # One CX + one measurement expected, no X in expectation.
        latency = recursive_rotation_expected_latency(3, ION_TRAP)
        assert latency == ION_TRAP.t_2q + ION_TRAP.t_meas

    def test_expected_latency_bounded_by_two_stages(self):
        """Expected CX count converges to 2, so latency is bounded."""
        deep = recursive_rotation_expected_latency(20, ION_TRAP)
        bound = 2 * (ION_TRAP.t_2q + ION_TRAP.t_meas) + ION_TRAP.t_1q
        assert deep < bound

    def test_monotone_in_k(self):
        values = [
            recursive_rotation_expected_latency(k, ION_TRAP) for k in range(3, 10)
        ]
        assert values == sorted(values)


class TestCrzTCount:
    def test_cz_needs_no_ancillae(self):
        assert crz_decomposition_t_count(1, default_synthesizer()) == 0

    def test_crz_k3_uses_three_rotations(self):
        synth = default_synthesizer()
        expected = 3 * synth.synthesize(4).t_count
        assert crz_decomposition_t_count(3, synth) == expected
