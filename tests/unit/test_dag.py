"""Unit tests for repro.circuits.dag: dependency analysis and scheduling."""

import pytest

from repro.circuits import Circuit, CircuitDag, asap_schedule, critical_path
from repro.circuits.dag import critical_path_gates, schedule_makespan
from repro.circuits.latency import PhysicalLatencyModel
from repro.tech import ION_TRAP

LAT = PhysicalLatencyModel(ION_TRAP)


class TestCircuitDag:
    def test_serial_chain_dependencies(self):
        circ = Circuit(1).h(0).t(0).h(0)
        dag = CircuitDag(circ)
        assert dag.predecessors(1) == (0,)
        assert dag.successors(1) == (2,)

    def test_parallel_gates_independent(self):
        circ = Circuit(2).h(0).h(1)
        dag = CircuitDag(circ)
        assert dag.predecessors(1) == ()

    def test_two_qubit_gate_joins_lines(self):
        circ = Circuit(2).h(0).h(1).cx(0, 1)
        dag = CircuitDag(circ)
        assert set(dag.predecessors(2)) == {0, 1}

    def test_classical_dependency(self):
        circ = Circuit(2).measure_z(0, "m").x(1, condition="m")
        dag = CircuitDag(circ)
        assert dag.predecessors(1) == (0,)

    def test_sources_and_sinks(self):
        circ = Circuit(2).h(0).h(1).cx(0, 1)
        dag = CircuitDag(circ)
        assert set(dag.sources()) == {0, 1}
        assert dag.sinks() == (2,)

    def test_levels_monotone(self):
        circ = Circuit(2).h(0).cx(0, 1).h(1)
        levels = CircuitDag(circ).levels()
        assert levels == [0, 1, 2]


class TestAsapSchedule:
    def test_empty_circuit(self):
        assert asap_schedule(Circuit(3), LAT) == []

    def test_serial_latencies_accumulate(self):
        circ = Circuit(1).h(0).h(0)
        entries = asap_schedule(circ, LAT)
        assert entries[0].start == 0.0
        assert entries[1].start == ION_TRAP.t_1q

    def test_parallel_gates_start_together(self):
        circ = Circuit(2).h(0).cx(0, 1)
        entries = asap_schedule(circ, LAT)
        assert entries[1].start == entries[0].finish

    def test_durations_match_model(self):
        circ = Circuit(2).cx(0, 1)
        entry = asap_schedule(circ, LAT)[0]
        assert entry.duration == ION_TRAP.t_2q

    def test_makespan(self):
        circ = Circuit(1).h(0).measure_z(0, "m")
        entries = asap_schedule(circ, LAT)
        assert schedule_makespan(entries) == ION_TRAP.t_1q + ION_TRAP.t_meas


class TestCriticalPath:
    def test_single_gate(self):
        assert critical_path(Circuit(1).h(0), LAT) == ION_TRAP.t_1q

    def test_parallel_branches_take_max(self):
        circ = Circuit(2).measure_z(0, "m").h(1)
        assert critical_path(circ, LAT) == ION_TRAP.t_meas

    def test_chain_gates_returned_in_order(self):
        circ = Circuit(2).h(0).cx(0, 1).h(1)
        chain = critical_path_gates(circ, LAT)
        assert chain == [0, 1, 2]

    def test_empty_chain(self):
        assert critical_path_gates(Circuit(1), LAT) == []

    def test_critical_path_at_least_depth_times_min_latency(self):
        circ = Circuit(1)
        for _ in range(10):
            circ.h(0)
        assert critical_path(circ, LAT) == 10 * ION_TRAP.t_1q
