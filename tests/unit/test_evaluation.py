"""Unit tests for repro.ancilla.evaluation (fast, inflated error rates).

The benchmark suite measures the Figure 4 rates at the paper's error
rates; these tests exercise the protocols at inflated rates so the
statistics converge in fractions of a second.
"""

import pytest

from repro.ancilla.evaluation import (
    PAPER_ERROR_RATES,
    PrepStrategy,
    evaluate_strategies,
    evaluate_strategy,
)
from repro.error.montecarlo import TrialOutcome
from repro.tech import ErrorRates

FAST = ErrorRates(gate=2e-3, movement=2e-5, measurement=0.0)


class TestEvaluateStrategy:
    def test_returns_report_with_paper_value(self):
        report = evaluate_strategy(PrepStrategy.BASIC, trials=200, seed=0, errors=FAST)
        assert report.paper_error_rate == PAPER_ERROR_RATES[PrepStrategy.BASIC]

    def test_reproducible(self):
        a = evaluate_strategy(PrepStrategy.BASIC, trials=500, seed=5, errors=FAST)
        b = evaluate_strategy(PrepStrategy.BASIC, trials=500, seed=5, errors=FAST)
        assert a.result.bad == b.result.bad

    def test_summary_mentions_strategy(self):
        report = evaluate_strategy(
            PrepStrategy.VERIFY_ONLY, trials=200, seed=0, errors=FAST
        )
        assert "verify_only" in report.summary()

    def test_all_strategies_run(self):
        reports = evaluate_strategies(trials=100, seed=0, errors=FAST)
        assert set(reports) == set(PrepStrategy)

    def test_trials_accounted(self):
        report = evaluate_strategy(PrepStrategy.BASIC, trials=321, seed=0, errors=FAST)
        assert report.result.trials == 321


class TestStrategyBehavior:
    def test_verification_discards_occur(self):
        report = evaluate_strategy(
            PrepStrategy.VERIFY_ONLY, trials=4000, seed=1, errors=FAST
        )
        assert report.discard_rate > 0.0

    def test_basic_never_discards(self):
        report = evaluate_strategy(PrepStrategy.BASIC, trials=1000, seed=1, errors=FAST)
        assert report.result.discarded == 0

    def test_verify_and_correct_retries_internally(self):
        report = evaluate_strategy(
            PrepStrategy.VERIFY_AND_CORRECT, trials=500, seed=1, errors=FAST
        )
        assert report.result.discarded == 0  # retries hide discards

    def test_verify_only_beats_basic(self):
        basic = evaluate_strategy(PrepStrategy.BASIC, trials=8000, seed=2, errors=FAST)
        verify = evaluate_strategy(
            PrepStrategy.VERIFY_ONLY, trials=8000, seed=2, errors=FAST
        )
        assert verify.error_rate < basic.error_rate

    def test_verify_and_correct_beats_correct_only(self):
        """Verification before correction must pay off (the Figure 4 story)."""
        vc = evaluate_strategy(
            PrepStrategy.VERIFY_AND_CORRECT, trials=8000, seed=2, errors=FAST
        )
        correct = evaluate_strategy(
            PrepStrategy.CORRECT_ONLY, trials=8000, seed=2, errors=FAST
        )
        assert vc.error_rate < correct.error_rate

    def test_zero_error_rates_give_zero_failures(self):
        clean = ErrorRates(gate=0.0, movement=0.0, measurement=0.0)
        for strategy in PrepStrategy:
            report = evaluate_strategy(strategy, trials=50, seed=0, errors=clean)
            assert report.result.bad == 0
            assert report.result.discarded == 0
