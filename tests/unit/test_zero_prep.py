"""Unit tests for repro.ancilla.zero_prep circuit constructions."""

from repro.ancilla.zero_prep import (
    VERIFY_SUPPORT,
    basic_zero_circuit,
    correct_only_circuit,
    verify_and_correct_circuit,
    verify_only_circuit,
)
from repro.circuits.gate import GateType
from repro.codes.steane import STEANE

import numpy as np


class TestVerifySupport:
    def test_support_is_logical_z_representative(self):
        rep = np.zeros(7, dtype=np.uint8)
        rep[list(VERIFY_SUPPORT)] = 1
        assert not STEANE.z_error_syndrome(rep).any()
        assert STEANE.is_logical_z(rep)


class TestBasic:
    def test_is_encoder(self):
        circ = basic_zero_circuit()
        assert circ.num_qubits == 7
        assert circ.count(GateType.CX) == 9


class TestVerifyOnly:
    def test_width(self):
        assert verify_only_circuit().num_qubits == 10

    def test_has_three_measurements(self):
        circ = verify_only_circuit()
        assert circ.count(GateType.MEASURE_Z) == 3

    def test_verification_cx_count(self):
        # 9 encoder + 2 cat chain + 3 parity check.
        assert verify_only_circuit().count(GateType.CX) == 14


class TestCorrectOnly:
    def test_width_three_blocks(self):
        assert correct_only_circuit().num_qubits == 21

    def test_three_encoders(self):
        circ = correct_only_circuit()
        assert circ.count(GateType.PREP_0) == 21
        assert circ.count(GateType.H) == 9

    def test_correction_measurements(self):
        circ = correct_only_circuit()
        assert circ.count(GateType.MEASURE_Z) == 7
        assert circ.count(GateType.MEASURE_X) == 7

    def test_conditional_correction_layers_tagged(self):
        tags = [g.tag for g in correct_only_circuit() if g.tag]
        assert tags.count("conditional-correction") == 14


class TestVerifyAndCorrect:
    def test_width(self):
        assert verify_and_correct_circuit().num_qubits == 30

    def test_three_verifications(self):
        circ = verify_and_correct_circuit()
        # 9 verification measurements + 7 bit-correct measurements.
        assert circ.count(GateType.MEASURE_Z) == 9 + 7
        assert circ.count(GateType.MEASURE_X) == 7

    def test_cx_census(self):
        circ = verify_and_correct_circuit()
        # 3 x (9 encoder + 2 cat + 3 check) + 7 bit + 7 phase = 56.
        assert circ.count(GateType.CX) == 56

    def test_area_ratio_vs_verify_only(self):
        """Figure 4c uses roughly three times the hardware of 4a
        ('slightly more than three times the area')."""
        vc = verify_and_correct_circuit()
        vo = verify_only_circuit()
        assert vc.num_qubits == 3 * vo.num_qubits
