"""Unit tests for repro.arch.simulator."""

import pytest

from repro.arch.architectures import CqlaConfig
from repro.arch.simulator import DataflowSimulator, ZEROS_PER_QEC
from repro.arch.supply import PI8, ZERO, SteadyRateSupply
from repro.circuits import Circuit
from repro.circuits.latency import LogicalLatencyModel
from repro.tech import ION_TRAP

QEC = LogicalLatencyModel(ION_TRAP).qec_interaction_latency()


class TestSpeedOfDataLimit:
    def test_single_gate(self):
        circ = Circuit(2).cx(0, 1)
        result = DataflowSimulator(circ).run()
        assert result.makespan_us == ION_TRAP.t_2q + QEC

    def test_serial_chain(self):
        circ = Circuit(1).h(0).h(0)
        result = DataflowSimulator(circ).run()
        assert result.makespan_us == 2 * (ION_TRAP.t_1q + QEC)

    def test_parallel_gates_overlap(self):
        circ = Circuit(2).h(0).h(1)
        result = DataflowSimulator(circ).run()
        assert result.makespan_us == ION_TRAP.t_1q + QEC

    def test_t_gate_priced_as_interaction(self):
        circ = Circuit(1).t(0)
        result = DataflowSimulator(circ).run()
        assert result.makespan_us == 61.0 + QEC

    def test_empty_circuit(self):
        result = DataflowSimulator(Circuit(3)).run()
        assert result.makespan_us == 0.0
        assert result.gates == 0


class TestAncillaAccounting:
    def test_zero_consumption(self):
        circ = Circuit(2).h(0).cx(0, 1).t(1)
        result = DataflowSimulator(circ).run()
        assert result.zero_ancillae_consumed == 3 * ZEROS_PER_QEC

    def test_pi8_consumption_counts_t_types(self):
        circ = Circuit(1).t(0).tdg(0).h(0)
        result = DataflowSimulator(circ).run()
        assert result.pi8_ancillae_consumed == 2

    def test_starved_supply_stretches_makespan(self):
        circ = Circuit(1).h(0).h(0)
        slow = SteadyRateSupply({ZERO: 1.0})  # 1 ancilla/ms
        result = DataflowSimulator(circ, supply=slow).run()
        # 4 ancillae at 1/ms: the last pair is ready at 4000us.
        assert result.makespan_us >= 4000.0

    def test_fast_supply_matches_infinite(self):
        circ = Circuit(2).h(0).cx(0, 1)
        fast = SteadyRateSupply({ZERO: 1e9, PI8: 1e9})
        assert DataflowSimulator(circ, supply=fast).run().makespan_us == pytest.approx(
            DataflowSimulator(circ).run().makespan_us
        )


class TestMovementPenalty:
    def test_penalty_adds_per_gate(self):
        circ = Circuit(1).h(0)
        base = DataflowSimulator(circ).run().makespan_us
        moved = DataflowSimulator(circ, movement_penalty_us=10.0).run().makespan_us
        assert moved == base + 10.0

    def test_two_qubit_penalty_separate(self):
        circ = Circuit(2).cx(0, 1)
        result = DataflowSimulator(
            circ, movement_penalty_us=1.0, two_qubit_movement_penalty_us=100.0
        ).run()
        assert result.makespan_us == 100.0 + ION_TRAP.t_2q + QEC

    def test_preps_and_measurements_skip_movement(self):
        circ = Circuit(1).prep_0(0)
        base = DataflowSimulator(circ).run().makespan_us
        moved = DataflowSimulator(circ, movement_penalty_us=50.0).run().makespan_us
        assert moved == base


class TestCqlaCache:
    def test_misses_counted(self):
        circ = Circuit(4).cx(0, 1).cx(2, 3).cx(0, 1)
        config = CqlaConfig(cache_fraction=0.5, ports=1)  # capacity 2
        result = DataflowSimulator(circ, cqla=config).run()
        # Qubits 0,1 miss; 2,3 evict them; 0,1 miss again.
        assert result.cache_misses == 6

    def test_hits_after_fill(self):
        circ = Circuit(2).cx(0, 1).cx(0, 1).cx(0, 1)
        config = CqlaConfig(cache_fraction=1.0)
        result = DataflowSimulator(Circuit(2).cx(0, 1), cqla=config).run()
        assert result.cache_misses == 2  # only the compulsory fills

    def test_teleports_through_limited_ports_serialize(self):
        circ = Circuit(4).cx(0, 1).cx(2, 3)
        narrow = DataflowSimulator(
            circ, cqla=CqlaConfig(cache_fraction=1.0, ports=1)
        ).run()
        wide = DataflowSimulator(
            circ, cqla=CqlaConfig(cache_fraction=1.0, ports=8)
        ).run()
        assert narrow.makespan_us > wide.makespan_us

    def test_conditional_gate_waits_for_result(self):
        circ = Circuit(2).measure_z(0, "m").x(1, condition="m")
        result = DataflowSimulator(circ).run()
        # The conditional X cannot start before the measurement finishes.
        assert result.makespan_us >= ION_TRAP.t_meas + QEC + ION_TRAP.t_1q
