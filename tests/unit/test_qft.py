"""Unit tests for repro.kernels.qft."""

import pytest

from repro.circuits.gate import GateType
from repro.kernels.qft import qft_circuit, qft_rotation_count


class TestStructure:
    def test_hadamard_per_qubit(self):
        circ = qft_circuit(8)
        assert circ.count(GateType.H) == 8

    def test_rotation_count_full(self):
        circ = qft_circuit(8)
        assert circ.count(GateType.CRZ) == 8 * 7 // 2

    def test_rotation_count_helper(self):
        assert qft_rotation_count(32) == 496
        assert qft_rotation_count(8) == 28

    def test_angles_grow_with_distance(self):
        circ = qft_circuit(4)
        ks = [g.angle_k for g in circ if g.gate_type is GateType.CRZ]
        assert ks == [2, 3, 4, 2, 3, 2]

    def test_truncation(self):
        circ = qft_circuit(8, max_rotation_k=3)
        ks = [g.angle_k for g in circ if g.gate_type is GateType.CRZ]
        assert max(ks) == 3
        assert len(ks) == qft_rotation_count(8, max_rotation_k=3)

    def test_swaps_off_by_default(self):
        assert qft_circuit(6).count(GateType.SWAP) == 0

    def test_swaps_on_request(self):
        assert qft_circuit(6, include_swaps=True).count(GateType.SWAP) == 3

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            qft_circuit(0)

    def test_invalid_truncation(self):
        with pytest.raises(ValueError):
            qft_circuit(4, max_rotation_k=0)

    def test_single_qubit_qft_is_hadamard(self):
        circ = qft_circuit(1)
        assert len(circ) == 1
        assert circ[0].gate_type is GateType.H

    def test_controls_precede_targets_structurally(self):
        """Each CRZ is controlled by a later qubit onto an earlier one."""
        for gate in qft_circuit(6):
            if gate.gate_type is GateType.CRZ:
                control, target = gate.qubits
                assert control > target
