"""Tests for repro.obs: span tracer, metrics registry, phase reporting.

Covers the observability acceptance surface: the disabled tracer is a
near-free no-op, spans nest and are thread-safe, histogram bucket edges
follow Prometheus ``le`` semantics exactly, worker spool files merge in
timestamp order (corrupt lines skipped), the Chrome export is valid
trace-event JSON, and — the load-bearing property — tracing changes no
simulation result bit.
"""

import json
import math
import threading
import time

import pytest

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.obs.report import format_phase_table, phase_breakdown
from repro.obs.trace import _NULL_SPAN, SPOOL_ENV, Tracer


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with tracing off and a fresh registry."""
    obs.disable()
    obs_metrics.REGISTRY.reset()
    yield
    obs.disable()
    obs_metrics.REGISTRY.reset()


# ----------------------------------------------------------------------
# Tracer: disabled fast path


class TestDisabledTracer:
    def test_disabled_span_is_shared_null_singleton(self):
        assert not obs.enabled()
        assert obs.span("anything") is _NULL_SPAN
        assert obs.span("other", gates=7) is _NULL_SPAN

    def test_null_span_contextmanager_and_set_are_noops(self):
        with obs.span("x") as sp:
            sp.set(points=3)  # must not raise or allocate state

    def test_disabled_overhead_bound(self):
        """100k disabled spans in well under a second: the off path is a
        global read + truthiness check, nothing that could show up in a
        per-phase hot loop."""
        t0 = time.perf_counter()
        for _ in range(100_000):
            with obs.span("hot"):
                pass
        elapsed = time.perf_counter() - t0
        assert elapsed < 1.0, f"disabled span overhead too high: {elapsed:.3f}s"

    def test_disabled_records_no_metrics(self):
        with obs.span("quiet"):
            pass
        assert obs_metrics.snapshot() == {}


# ----------------------------------------------------------------------
# Tracer: enabled


class TestEnabledTracer:
    def test_enable_disable_roundtrip(self):
        tracer = obs.enable()
        assert obs.enabled() and obs.tracer() is tracer
        obs.disable()
        assert not obs.enabled() and obs.tracer() is None

    def test_span_records_complete_event(self):
        obs.enable()
        with obs.span("phase.one", gates=42) as sp:
            sp.set(levels=3)
        (event,) = obs.tracer().events()
        assert event["name"] == "phase.one"
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["args"] == {"gates": 42, "levels": 3}
        assert event["tid"] == threading.get_ident()

    def test_nested_spans_close_inner_first(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        names = [e["name"] for e in obs.tracer().events()]
        assert names == ["inner", "outer"]
        inner, outer = obs.tracer().events()
        assert inner["dur"] <= outer["dur"]

    def test_span_close_feeds_phase_histogram(self):
        obs.enable()
        with obs.span("fed.phase"):
            pass
        hist = obs_metrics.histogram(obs_metrics.PHASE_SECONDS, phase="fed.phase")
        assert hist.count == 1

    def test_thread_safety(self):
        obs.enable()
        n_threads, per_thread = 8, 200

        def work(i):
            for k in range(per_thread):
                with obs.span(f"thread.{i}", k=k):
                    pass

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = obs.tracer().events()
        assert len(events) == n_threads * per_thread
        # Every thread's spans all arrived (tids recycle, names don't).
        for i in range(n_threads):
            assert sum(e["name"] == f"thread.{i}" for e in events) == per_thread


# ----------------------------------------------------------------------
# Worker spool merge


class TestSpoolMerge:
    def _spool_event(self, name, ts, **extra):
        return {"name": name, "ph": "X", "ts": ts, "dur": 5.0,
                "pid": 99999, "tid": 1, **extra}

    def test_merge_orders_by_timestamp_and_tags_worker(self, tmp_path):
        (tmp_path / "worker-2.jsonl").write_text(
            json.dumps(self._spool_event("late", ts=300.0)) + "\n"
            + json.dumps(self._spool_event("early", ts=100.0)) + "\n"
        )
        (tmp_path / "worker-7.jsonl").write_text(
            json.dumps(self._spool_event("middle", ts=200.0)) + "\n"
        )
        tracer = Tracer()
        assert tracer.merge_spool(str(tmp_path)) == 3
        events = tracer.events()
        assert [e["name"] for e in events] == ["early", "middle", "late"]
        assert events[0]["args"]["worker"] == "worker-2"
        assert events[1]["args"]["worker"] == "worker-7"

    def test_merge_skips_corrupt_lines(self, tmp_path):
        (tmp_path / "worker-1.jsonl").write_text(
            json.dumps(self._spool_event("good", ts=1.0)) + "\n"
            + '{"name": "torn", "ts": 2.0, "du\n'  # killed mid-write
            + "not json at all\n"
            + json.dumps({"ts": 3.0}) + "\n"  # no name: not an event
            + json.dumps(self._spool_event("also.good", ts=4.0)) + "\n"
        )
        tracer = Tracer()
        assert tracer.merge_spool(str(tmp_path)) == 2
        assert [e["name"] for e in tracer.events()] == ["good", "also.good"]

    def test_merge_consumes_spool_files(self, tmp_path):
        (tmp_path / "worker-1.jsonl").write_text(
            json.dumps(self._spool_event("once", ts=1.0)) + "\n"
        )
        tracer = Tracer()
        assert tracer.merge_spool(str(tmp_path)) == 1
        assert tracer.merge_spool(str(tmp_path)) == 0  # consumed, no dupes
        assert len(tracer.events()) == 1

    def test_merge_feeds_phase_histogram(self, tmp_path):
        (tmp_path / "worker-1.jsonl").write_text(
            json.dumps(self._spool_event("spooled", ts=1.0)) + "\n"
        )
        Tracer().merge_spool(str(tmp_path))
        hist = obs_metrics.histogram(obs_metrics.PHASE_SECONDS, phase="spooled")
        assert hist.count == 1

    def test_missing_spool_dir_merges_nothing(self, tmp_path):
        assert Tracer().merge_spool(str(tmp_path / "absent")) == 0

    def test_flush_worker_roundtrip(self, tmp_path):
        """What a pool worker spools, the parent merges — with the
        worker file stem as the tag."""
        worker = Tracer(spool_dir=str(tmp_path), worker=True)
        with worker.span("chunk.work", points=5):
            pass
        path = worker.flush_spool()
        assert path is not None and path.exists()
        assert worker.events() == []  # drained
        assert worker.flush_spool() == path  # idempotent, nothing pending

        parent = Tracer()
        assert parent.merge_spool(str(tmp_path)) == 1
        (event,) = parent.events()
        assert event["name"] == "chunk.work"
        assert event["args"]["worker"] == f"worker-{worker.pid}"

    def test_enable_exports_spool_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(SPOOL_ENV, raising=False)
        import os

        obs.enable(spool_dir=str(tmp_path))
        assert os.environ[SPOOL_ENV] == str(tmp_path)
        obs.disable()
        assert SPOOL_ENV not in os.environ


# ----------------------------------------------------------------------
# Chrome export


class TestChromeExport:
    def test_schema(self, tmp_path):
        obs.enable()
        with obs.span("a", gates=1):
            with obs.span("b"):
                pass
        out = tmp_path / "trace.json"
        obs.tracer().export_chrome(out)
        doc = json.loads(out.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(spans) == 2
        for event in spans:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(event)
            assert event["ts"] >= 0  # rebased to the earliest event
        assert [m["name"] for m in meta] == ["process_name"]
        assert meta[0]["args"]["name"] == "repro"

    def test_worker_pids_get_named_processes(self, tmp_path):
        obs.enable()
        with obs.span("parent.work"):
            pass
        spool = {"name": "w", "ph": "X", "ts": time.time() * 1e6,
                 "dur": 1.0, "pid": 12345, "tid": 1}
        (tmp_path / "worker-12345.jsonl").write_text(json.dumps(spool) + "\n")
        obs.tracer().merge_spool(str(tmp_path))
        out = tmp_path / "trace.json"
        obs.tracer().export_chrome(out)
        doc = json.loads(out.read_text())
        names = {
            m["args"]["name"]
            for m in doc["traceEvents"]
            if m["ph"] == "M"
        }
        assert names == {"repro", "repro worker 12345"}

    def test_jsonl_export(self, tmp_path):
        obs.enable()
        with obs.span("x"):
            pass
        out = obs.tracer().export_jsonl(tmp_path / "events.jsonl")
        lines = out.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "x"


# ----------------------------------------------------------------------
# Metrics registry


class TestCounterGauge:
    def test_counter_increments(self):
        c = obs_metrics.counter("test_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            obs_metrics.counter("test_total").inc(-1)

    def test_same_name_same_labels_is_same_object(self):
        a = obs_metrics.counter("dup_total", k="v")
        b = obs_metrics.counter("dup_total", k="v")
        assert a is b

    def test_labels_distinguish(self):
        a = obs_metrics.counter("lab_total", outcome="hit")
        b = obs_metrics.counter("lab_total", outcome="miss")
        assert a is not b

    def test_type_conflict_raises(self):
        obs_metrics.counter("conflict")
        with pytest.raises(ValueError, match="already registered"):
            obs_metrics.gauge("conflict")

    def test_gauge_set_and_inc(self):
        g = obs_metrics.gauge("test_gauge")
        g.set(10)
        g.inc(-3)
        assert g.value == 7


class TestHistogramEdges:
    def test_value_on_edge_lands_in_its_bucket(self):
        """Prometheus ``le`` is an inclusive upper bound: v == edge
        counts toward that edge's bucket, not the next one."""
        h = obs_metrics.histogram("edge_seconds", edges=(1.0, 2.0, 4.0))
        h.observe(1.0)  # exactly on the first edge
        h.observe(2.0)  # exactly on the second
        h.observe(1.5)
        assert h.bucket_counts() == [1, 2, 0, 0]

    def test_overflow_goes_to_implicit_inf(self):
        h = obs_metrics.histogram("inf_seconds", edges=(1.0,))
        h.observe(100.0)
        assert h.bucket_counts() == [0, 1]
        assert h.cumulative() == [(1.0, 0), (math.inf, 1)]

    def test_cumulative_monotone_and_totals(self):
        h = obs_metrics.histogram("cum_seconds", edges=(1.0, 2.0))
        for v in (0.5, 0.5, 1.5, 9.0):
            h.observe(v)
        assert h.cumulative() == [(1.0, 2), (2.0, 3), (math.inf, 4)]
        assert h.count == 4
        assert h.sum == pytest.approx(11.5)

    def test_edges_must_be_strictly_ascending(self):
        from repro.obs.metrics import Histogram

        with pytest.raises(ValueError, match="strictly ascending"):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError, match="strictly ascending"):
            Histogram((2.0, 1.0))

    def test_edges_must_be_finite_and_nonempty(self):
        from repro.obs.metrics import Histogram

        with pytest.raises(ValueError, match="at least one"):
            Histogram(())
        with pytest.raises(ValueError, match="finite"):
            Histogram((1.0, math.inf))


class TestExport:
    def _populate(self):
        obs_metrics.counter("a_total", help="things done", k="v").inc(3)
        h = obs_metrics.histogram("h_seconds", edges=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)

    def test_prometheus_text(self):
        self._populate()
        text = obs_metrics.prometheus()
        assert "# HELP a_total things done" in text
        assert "# TYPE a_total counter" in text
        assert 'a_total{k="v"} 3' in text
        assert "# TYPE h_seconds histogram" in text
        assert 'h_seconds_bucket{le="0.1"} 1' in text
        assert 'h_seconds_bucket{le="1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 2' in text
        assert "h_seconds_count 2" in text

    def test_prometheus_deterministic(self):
        self._populate()
        assert obs_metrics.prometheus() == obs_metrics.prometheus()

    def test_snapshot_shape(self):
        self._populate()
        snap = obs_metrics.snapshot()
        assert snap["a_total"]["type"] == "counter"
        assert snap["a_total"]["samples"] == [
            {"labels": {"k": "v"}, "value": 3.0}
        ]
        (sample,) = snap["h_seconds"]["samples"]
        assert sample["count"] == 2
        assert sample["buckets"][-1] == ["+Inf", 1]
        json.dumps(snap)  # JSON-able end to end

    def test_reset_empties(self):
        self._populate()
        obs_metrics.REGISTRY.reset()
        assert obs_metrics.snapshot() == {}
        assert obs_metrics.prometheus() == ""


# ----------------------------------------------------------------------
# Phase report


class TestPhaseReport:
    def test_breakdown_aggregates_and_sorts(self):
        events = [
            {"name": "fast", "dur": 1000.0},
            {"name": "slow", "dur": 9000.0},
            {"name": "fast", "dur": 3000.0},
        ]
        stats = phase_breakdown(events)
        assert [s.name for s in stats] == ["slow", "fast"]
        fast = stats[1]
        assert fast.count == 2
        assert fast.total_s == pytest.approx(0.004)
        assert fast.mean_s == pytest.approx(0.002)
        assert fast.max_s == pytest.approx(0.003)

    def test_format_table_renders(self):
        events = [{"name": "phase.x", "dur": 2000.0}]
        table = format_phase_table(events, title="t", wall_s=0.01)
        assert "phase.x" in table
        assert "calls" in table

    def test_format_table_empty(self):
        assert "no spans" in format_phase_table([])


# ----------------------------------------------------------------------
# Bit identity: tracing must never change a simulation result


class TestBitIdentity:
    def test_traced_run_is_bit_identical(self):
        from repro.arch.simulator import DataflowSimulator
        from repro.arch.supply import PI8, ZERO, SteadyRateSupply
        from repro.kernels import analyze_kernel

        analysis = analyze_kernel("qrca", 8)

        def run_once():
            supply = SteadyRateSupply(
                {
                    ZERO: analysis.zero_bandwidth_per_ms / 2.0,
                    PI8: analysis.pi8_bandwidth_per_ms / 2.0,
                }
            )
            return DataflowSimulator(
                analysis.circuit, analysis.tech, supply=supply
            ).run()

        baseline = run_once()
        obs.enable()
        traced = run_once()
        obs.disable()
        untraced_again = run_once()
        assert traced == baseline  # exact equality, every field
        assert untraced_again == baseline

    def test_traced_monte_carlo_is_bit_identical(self):
        from repro.ancilla import evaluate_pi8_ancilla_batched

        baseline = evaluate_pi8_ancilla_batched(trials=4000, seed=3)
        obs.enable()
        traced = evaluate_pi8_ancilla_batched(trials=4000, seed=3)
        obs.disable()
        assert traced.trials == baseline.trials
        assert traced.good == baseline.good
        assert traced.bad == baseline.bad
