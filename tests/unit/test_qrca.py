"""Unit tests for repro.kernels.qrca."""

import pytest

from repro.circuits.gate import GateType
from repro.kernels.classical import run_adder
from repro.kernels.qrca import qrca_circuit, qrca_registers


class TestRegisters:
    def test_paper_qubit_count(self):
        # Two n-bit inputs plus n+1 ancillae (Section 3): 97 qubits at n=32.
        regs = qrca_registers(32)
        assert regs.num_qubits == 97
        assert regs.data_ancillae == 33

    def test_registers_disjoint(self):
        regs = qrca_registers(8)
        all_qubits = regs.a + regs.b + [regs.b_high] + regs.c
        assert len(set(all_qubits)) == regs.num_qubits

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            qrca_circuit(0)


class TestStructure:
    def test_toffoli_count(self):
        # n forward CARRYs (2 each) + n-1 reverse CARRYs (2 each).
        circ = qrca_circuit(8)
        assert circ.count(GateType.CCX) == 2 * 8 + 2 * 7

    def test_gate_types_are_reversible_set(self):
        circ = qrca_circuit(4)
        allowed = {GateType.CX, GateType.CCX, GateType.X}
        assert set(circ.gate_counts()) <= allowed

    def test_depth_linear_in_width(self):
        shallow = qrca_circuit(4).depth()
        deep = qrca_circuit(16).depth()
        assert deep > 3 * shallow  # serial ripple structure


class TestCorrectness:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (255, 255), (170, 85), (200, 56)])
    def test_addition_8bit(self, a, b):
        regs = qrca_registers(8)
        circ = qrca_circuit(8)
        out = run_adder(
            circ, regs.a, regs.b, regs.b + [regs.b_high], a, b, regs.c
        )
        assert out["sum"] == a + b
        assert out["a"] == a
        assert out["ancilla"] == 0

    def test_addition_1bit(self):
        regs = qrca_registers(1)
        circ = qrca_circuit(1)
        for a in (0, 1):
            for b in (0, 1):
                out = run_adder(
                    circ, regs.a, regs.b, regs.b + [regs.b_high], a, b, regs.c
                )
                assert out["sum"] == a + b

    def test_carry_chain_32bit(self):
        """All-ones plus one exercises the full carry ripple."""
        regs = qrca_registers(32)
        circ = qrca_circuit(32)
        a = (1 << 32) - 1
        out = run_adder(circ, regs.a, regs.b, regs.b + [regs.b_high], a, 1, regs.c)
        assert out["sum"] == 1 << 32
        assert out["ancilla"] == 0
