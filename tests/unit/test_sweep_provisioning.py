"""Unit tests for repro.arch.sweep and repro.arch.provisioning."""

import pytest

from repro.arch import ArchitectureKind
from repro.arch.provisioning import area_breakdown
from repro.arch.sweep import (
    area_sweep,
    area_to_reach,
    plateau_makespan,
    throughput_sweep,
)


class TestThroughputSweep:
    def test_monotone_nonincreasing(self, qrca8):
        points = throughput_sweep(qrca8)
        makespans = [p.makespan_us for p in points]
        assert all(a >= b - 1e-6 for a, b in zip(makespans, makespans[1:]))

    def test_starved_end_much_slower(self, qrca8):
        points = throughput_sweep(qrca8)
        assert points[0].makespan_us > 4 * points[-1].makespan_us

    def test_plateau_near_speed_of_data(self, qrca8):
        from repro.arch.simulator import DataflowSimulator

        floor = DataflowSimulator(qrca8.circuit, qrca8.tech).run().makespan_us
        points = throughput_sweep(qrca8)
        assert points[-1].makespan_us == pytest.approx(floor, rel=0.05)

    def test_custom_rates(self, qrca8):
        points = throughput_sweep(qrca8, [1.0, 10.0])
        assert [p.x for p in points] == [1.0, 10.0]

    def test_knee_near_average_bandwidth(self, qcla8):
        """At the Table 3 average bandwidth the kernel should run within
        a small factor of its floor (Figure 8's vertical line)."""
        avg = qcla8.zero_bandwidth_per_ms
        points = throughput_sweep(qcla8, [avg])
        floor = throughput_sweep(qcla8, [avg * 64])[0].makespan_us
        assert points[0].makespan_us < 3 * floor


class TestAreaSweep:
    def test_all_architectures_present(self, qrca8):
        curves = area_sweep(qrca8, areas=[1000.0, 10000.0])
        assert set(curves) == set(ArchitectureKind)

    def test_more_area_never_hurts(self, qrca8):
        curves = area_sweep(qrca8, areas=[500.0, 5000.0, 50000.0])
        for points in curves.values():
            makespans = [p.makespan_us for p in points]
            assert all(a >= b - 1e-6 for a, b in zip(makespans, makespans[1:]))

    def test_multiplexed_dominates_qla_at_small_area(self, qrca8):
        curves = area_sweep(
            qrca8,
            areas=[2000.0],
            kinds=[ArchitectureKind.QLA, ArchitectureKind.MULTIPLEXED],
        )
        qla = curves[ArchitectureKind.QLA][0].makespan_us
        mux = curves[ArchitectureKind.MULTIPLEXED][0].makespan_us
        assert mux < qla

    def test_helpers(self, qrca8):
        curves = area_sweep(qrca8, areas=[1000.0, 100000.0])
        points = curves[ArchitectureKind.MULTIPLEXED]
        assert plateau_makespan(points) == points[-1].makespan_us
        assert area_to_reach(points, points[-1].makespan_us) is not None
        assert area_to_reach(points, 0.0) is None

    def test_plateau_empty_rejected(self):
        with pytest.raises(ValueError):
            plateau_makespan([])


class TestAreaBreakdown:
    def test_factory_area_dominates(self, qrca8, qcla8):
        """Headline: ancilla generation takes the majority of the chip."""
        for ka in (qrca8, qcla8):
            b = area_breakdown(ka)
            assert b.ancilla_fraction > 0.5

    def test_fractions_sum_to_one(self, qrca8):
        b = area_breakdown(qrca8)
        total = b.data_fraction + b.qec_factory_fraction + b.pi8_factory_fraction
        assert total == pytest.approx(1.0)

    def test_data_area_is_seven_per_qubit(self, qrca8):
        b = area_breakdown(qrca8)
        assert b.data_area == 7 * qrca8.data_qubits

    def test_qec_area_scales_with_bandwidth(self, qrca8, qcla8):
        slow = area_breakdown(qrca8)
        fast = area_breakdown(qcla8)
        assert fast.qec_factory_area > slow.qec_factory_area
