"""Unit tests for repro.serve.pool: breakers, failover, probes, hedging.

Breaker timing runs against an injected fake clock (no sleeps); routing
tests use real in-process servers plus dead sockets, with the fault
harness armed in-process for replica-scoped failures.
"""

import socket
import threading

import pytest

from repro.explore import Evaluator, ResultStore
from repro.obs import metrics as _metrics
from repro.serve import (
    AllReplicasUnavailable,
    CircuitBreaker,
    Client,
    ExploreServer,
    ExploreService,
    ReplicaSet,
    RequestError,
    ServerUnavailable,
)
from repro.serve.client import _retry_after
from repro.serve.pool import CLOSED, HALF_OPEN, OPEN
from repro.testing import faults
from repro.testing.faults import FaultPlan, FaultRule, replica_plan
from repro.util.backoff import Backoff

POINTS = [
    {"arch": "qla", "factory_area": area} for area in (40.0, 80.0, 120.0)
]


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture(scope="module")
def reference():
    return Evaluator(kernel="qrca", width=8).evaluate(POINTS)


def _dead_url() -> str:
    """A URL nothing listens on (bound then released, refuses fast)."""
    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    _, port = blocker.getsockname()
    blocker.close()
    return f"http://127.0.0.1:{port}"


def _server(tmp_path, name, *, store=None, replica_id=None):
    store = store if store is not None else ResultStore(tmp_path / name)
    service = ExploreService(store=store, max_queue=4, replica_id=replica_id)
    server = ExploreServer(service)
    server.start_background()
    return server


def _pool(urls, **kwargs):
    kwargs.setdefault("retries", 0)
    kwargs.setdefault("timeout", 5.0)
    kwargs.setdefault("backoff", Backoff(base=0.0))
    return ReplicaSet(urls, **kwargs)


def _assert_identical(got, ref):
    for have, want in zip(got, ref):
        assert have.ok
        assert have.result == want.result
        assert have.total_area == want.total_area


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self, clock):
        breaker = CircuitBreaker(clock=clock)
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_after_consecutive_failures(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_the_failure_streak(self, clock):
        breaker = CircuitBreaker(failure_threshold=2, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_after_cooldown_admits_one_probe(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the single probe slot
        assert not breaker.allow()  # a second concurrent probe is refused

    def test_failed_probe_reopens_and_restarts_cooldown(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == OPEN
        assert breaker.opens == 2
        clock.advance(4.9)
        assert not breaker.allow()  # cooldown restarted at the re-open
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_successful_probe_closes(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_straggler_failure_while_open_is_ignored(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, clock=clock)
        breaker.record_failure()
        breaker.record_failure()  # e.g. a losing hedge reporting late
        assert breaker.opens == 1

    def test_bad_knobs_rejected(self, clock):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0, clock=clock)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown=0.0, clock=clock)

    def test_state_exported_as_gauge(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, name="http://x:1", clock=clock
        )
        gauge = _metrics.gauge("repro_pool_breaker_state", replica="http://x:1")
        assert gauge.value == 0.0
        breaker.record_failure()
        assert gauge.value == 2.0
        clock.advance(breaker.cooldown)
        assert breaker.state == HALF_OPEN
        assert gauge.value == 1.0


class TestReplicaSetValidation:
    def test_needs_at_least_one_server(self):
        with pytest.raises(ValueError, match="at least one"):
            ReplicaSet([])

    def test_rejects_duplicate_replicas(self):
        with pytest.raises(ValueError, match="duplicate"):
            ReplicaSet(["http://127.0.0.1:1", "http://127.0.0.1:1"])

    @pytest.mark.parametrize("knob, value", [
        ("deadline", 0.0), ("hedge_after", -1.0), ("probe_timeout", 0.0),
    ])
    def test_rejects_nonpositive_knobs(self, knob, value):
        with pytest.raises(ValueError, match=knob):
            ReplicaSet(["http://127.0.0.1:1"], **{knob: value})

    def test_introspection(self):
        pool = ReplicaSet(["http://127.0.0.1:1", "http://127.0.0.1:2"])
        assert len(pool) == 2
        assert pool.names == ["http://127.0.0.1:1", "http://127.0.0.1:2"]
        assert pool.states() == {
            "http://127.0.0.1:1": CLOSED, "http://127.0.0.1:2": CLOSED,
        }
        assert pool.breaker("http://127.0.0.1:2").state == CLOSED
        with pytest.raises(KeyError):
            pool.breaker("http://nope:1")

    def test_accepts_prebuilt_clients(self):
        client = Client("http://127.0.0.1:1")
        pool = ReplicaSet([client])
        assert pool.names == ["http://127.0.0.1:1"]


class TestFailover:
    def test_dead_first_replica_fails_over(self, tmp_path, reference):
        server = _server(tmp_path, "b")
        try:
            pool = _pool([_dead_url(), server.url])
            evaluations, stats = pool.evaluate("qrca", 8, POINTS)
            _assert_identical(evaluations, reference)
            assert stats["simulations_run"] == len(POINTS)
            # One failure does not open the (threshold-3) breaker.
            assert pool.states()[server.url] == CLOSED
        finally:
            server.shutdown(drain_timeout=5.0)

    def test_whole_fleet_dead_raises_all_replicas_unavailable(self):
        pool = _pool([_dead_url(), _dead_url()], timeout=1.0)
        with pytest.raises(AllReplicasUnavailable) as excinfo:
            pool.evaluate("qrca", 8, POINTS)
        assert isinstance(excinfo.value, ServerUnavailable)

    def test_open_breakers_refuse_without_network(self):
        pool = _pool([_dead_url()], failure_threshold=1, cooldown=60.0)
        with pytest.raises(AllReplicasUnavailable):
            pool.evaluate("qrca", 8, POINTS)
        assert pool.states() == {pool.names[0]: OPEN}
        # Second call is refused locally by the open breaker.
        with pytest.raises(AllReplicasUnavailable, match="open"):
            pool.evaluate("qrca", 8, POINTS)

    def test_terminal_4xx_never_fails_over(self, tmp_path):
        server = _server(tmp_path, "b")
        try:
            pool = _pool([server.url, _dead_url()])
            with pytest.raises(RequestError):
                pool.evaluate("no-such-kernel", 8, POINTS)
            # The replica answered; its breaker saw a success.
            assert pool.states()[server.url] == CLOSED
        finally:
            server.shutdown(drain_timeout=5.0)

    def test_deadline_shared_across_fleet(self, clock):
        pool = ReplicaSet(
            [_dead_url(), _dead_url()],
            retries=0, backoff=Backoff(base=0.0),
            deadline=10.0, clock=clock,
        )

        def call(replica, remaining):
            # Each hop must see the *remaining* budget, not a fresh one.
            seen.append(remaining)
            clock.advance(6.0)
            raise ServerUnavailable("down")

        seen = []
        with pytest.raises(AllReplicasUnavailable):
            pool._route(call, clock() + 10.0)
        assert seen[0] == pytest.approx(10.0)
        assert len(seen) == 1 or seen[1] == pytest.approx(4.0)


class TestRecoveryProbes:
    def test_try_recover_true_while_any_breaker_closed(self):
        pool = _pool([_dead_url()])
        assert pool.try_recover()

    def test_probe_closes_breaker_when_replica_returns(
        self, tmp_path, clock, monkeypatch
    ):
        server = _server(tmp_path, "b", replica_id="b")
        try:
            pool = _pool(
                [server.url], failure_threshold=1, cooldown=5.0, clock=clock
            )
            monkeypatch.setattr(
                faults, "PLAN",
                FaultPlan([FaultRule(
                    mode="refuse", stage="serve_request",
                    replica="b", times=None,
                )]),
            )
            with pytest.raises(AllReplicasUnavailable):
                pool.evaluate("qrca", 8, POINTS)
            assert pool.states()[server.url] == OPEN
            assert not pool.try_recover()  # still cooling down: no traffic
            clock.advance(5.0)
            assert pool.try_recover()  # half-open probe hits /readyz: up
            assert pool.states()[server.url] == CLOSED
        finally:
            monkeypatch.setattr(faults, "PLAN", None)
            server.shutdown(drain_timeout=5.0)

    def test_failed_probe_reopens_breaker(self, tmp_path, clock, monkeypatch):
        server = _server(tmp_path, "b", replica_id="b")
        try:
            pool = _pool(
                [server.url], failure_threshold=1, cooldown=5.0, clock=clock
            )
            monkeypatch.setattr(
                faults, "PLAN", replica_plan("flapping", "b")
            )
            with pytest.raises(AllReplicasUnavailable):
                pool.evaluate("qrca", 8, POINTS)
            clock.advance(5.0)
            assert not pool.try_recover()  # probe refused: re-open
            assert pool.states()[server.url] == OPEN
            assert pool.breaker(server.url).opens == 2
            monkeypatch.setattr(faults, "PLAN", None)
            clock.advance(5.0)
            assert pool.try_recover()
            assert pool.states()[server.url] == CLOSED
        finally:
            monkeypatch.setattr(faults, "PLAN", None)
            server.shutdown(drain_timeout=5.0)


class TestHedging:
    def test_hedge_wins_when_primary_hangs(
        self, tmp_path, monkeypatch, reference
    ):
        store = ResultStore(tmp_path / "shared")
        slow = _server(tmp_path, "slow", store=store, replica_id="slow")
        fast = _server(tmp_path, "fast", store=store, replica_id="fast")
        try:
            monkeypatch.setattr(
                faults, "PLAN",
                replica_plan("slow-replica", "slow", seconds=3.0, times=None),
            )
            wins = _metrics.counter("repro_pool_hedge_wins_total").value
            pool = _pool(
                [slow.url, fast.url], timeout=10.0, hedge_after=0.2
            )
            evaluations, _ = pool.evaluate("qrca", 8, POINTS)
            _assert_identical(evaluations, reference)
            assert _metrics.counter("repro_pool_hedge_wins_total").value > wins
        finally:
            monkeypatch.setattr(faults, "PLAN", None)
            fast.shutdown(drain_timeout=5.0)
            slow.shutdown(drain_timeout=5.0)


class TestRetryAfterParsing:
    def test_delta_seconds(self):
        assert _retry_after({"Retry-After": "2"}) == 2.0
        assert _retry_after({"Retry-After": "0.5"}) == 0.5

    def test_missing_header_uses_default(self):
        assert _retry_after({}, default=1.5) == 1.5

    def test_http_date_in_the_future(self):
        import datetime
        import email.utils

        when = datetime.datetime.now(datetime.timezone.utc) + (
            datetime.timedelta(seconds=30)
        )
        raw = email.utils.format_datetime(when, usegmt=True)
        delay = _retry_after({"Retry-After": raw})
        assert 25.0 < delay <= 30.0

    def test_http_date_in_the_past_clamps_to_zero(self):
        assert _retry_after(
            {"Retry-After": "Wed, 21 Oct 2015 07:28:00 GMT"}
        ) == 0.0

    def test_garbage_uses_default(self):
        assert _retry_after({"Retry-After": "soonish"}, default=2.5) == 2.5
