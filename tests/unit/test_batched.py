"""Unit tests for repro.error.batched: the general protocol engine."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.error.batched import (
    BatchFrames,
    BatchedSimulator,
    ProtocolLoweringError,
    compile_protocol,
    steane_grade_bad,
)
from repro.codes.steane import HAMMING_PARITY_CHECK, STEANE
from repro.tech import ErrorRates

CLEAN = ErrorRates(gate=0.0, movement=0.0, measurement=0.0)


class TestCompileProtocol:
    def test_memoized_per_circuit_and_map(self):
        circ = Circuit(3).h(0).cx(0, 1).measure_z(1, "m")
        assert compile_protocol(circ) is compile_protocol(circ)
        mapped = compile_protocol(circ, {0: 5, 1: 6, 2: 7})
        assert mapped is compile_protocol(circ, {0: 5, 1: 6, 2: 7})
        assert mapped is not compile_protocol(circ)

    def test_qubit_map_sets_frame_width(self):
        circ = Circuit(2).h(0).cx(0, 1)
        program = compile_protocol(circ, {0: 9, 1: 4})
        assert program.num_qubits == 10
        assert program.q0 == [9, 9]
        assert program.q1 == [-1, 4]

    def test_bits_interned_in_program_order(self):
        circ = Circuit(2)
        circ.measure_z(0, "a").measure_z(1, "b").x(0, condition="b")
        program = compile_protocol(circ)
        assert program.bit_names == ("a", "b")
        assert program.cond == [-1, -1, 1]
        assert program.result == [0, 1, -1]

    def test_unsupported_gate_rejected(self):
        circ = Circuit(3).ccx(0, 1, 2)
        with pytest.raises(ProtocolLoweringError):
            compile_protocol(circ)

    def test_append_after_compile_recompiles(self):
        circ = Circuit(2).h(0)
        first = compile_protocol(circ)
        circ.cx(0, 1)
        second = compile_protocol(circ)
        assert second is not first
        assert second.num_gates == 2


class TestCleanExecution:
    def run(self, circ, frames, **kw):
        sim = BatchedSimulator(errors=CLEAN)
        active = np.ones(frames.x.shape[0], dtype=bool)
        return sim.run_circuit(circ, frames, active=active, **kw)

    def test_h_swaps_x_and_z(self):
        frames = BatchFrames(2, 1)
        frames.x[0, 0] = 1
        frames.z[1, 0] = 1
        self.run(Circuit(1).h(0), frames)
        assert frames.x[0, 0] == 0 and frames.z[0, 0] == 1
        assert frames.x[1, 0] == 1 and frames.z[1, 0] == 0

    def test_cx_spreads_flips(self):
        frames = BatchFrames(1, 2)
        frames.x[0, 0] = 1  # X on control spreads to target
        self.run(Circuit(2).cx(0, 1), frames)
        assert frames.x[0, 1] == 1

    def test_cz_spreads_phase(self):
        frames = BatchFrames(1, 2)
        frames.x[0, 0] = 1  # X_a -> X_a Z_b under CZ
        self.run(Circuit(2).cz(0, 1), frames)
        assert frames.z[0, 1] == 1
        assert frames.x[0, 0] == 1

    def test_swap_exchanges_frames(self):
        frames = BatchFrames(1, 2)
        frames.x[0, 0] = 1
        frames.z[0, 1] = 1
        self.run(Circuit(2).swap(0, 1), frames)
        assert frames.x[0, 1] == 1 and frames.x[0, 0] == 0
        assert frames.z[0, 0] == 1 and frames.z[0, 1] == 0

    def test_s_maps_x_to_y(self):
        frames = BatchFrames(1, 1)
        frames.x[0, 0] = 1
        self.run(Circuit(1).s(0), frames)
        assert frames.z[0, 0] == 1

    def test_prep_clears_active_only(self):
        frames = BatchFrames(2, 1)
        frames.x[:, 0] = 1
        sim = BatchedSimulator(errors=CLEAN)
        active = np.array([True, False])
        sim.run_circuit(Circuit(1).prep_0(0), frames, active=active)
        assert frames.x[0, 0] == 0
        assert frames.x[1, 0] == 1

    def test_measurement_records_flip_and_clears(self):
        frames = BatchFrames(2, 1)
        frames.x[0, 0] = 1
        flips = self.run(Circuit(1).measure_z(0, "m"), frames)
        assert flips["m"].tolist() == [1, 0]
        assert not frames.x.any() and not frames.z.any()

    def test_measure_x_reads_z(self):
        frames = BatchFrames(1, 1)
        frames.z[0, 0] = 1
        flips = self.run(Circuit(1).measure_x(0, "m"), frames)
        assert flips["m"].tolist() == [1]

    def test_conditional_fires_per_trial(self):
        # X flip on qubit 0 flips the Z measurement, which conditions an
        # X on qubit 1: only the flipped trial picks up the correction.
        circ = Circuit(2).measure_z(0, "m").x(1, condition="m").h(1, condition="m")
        frames = BatchFrames(2, 2)
        frames.x[0, 0] = 1
        frames.x[:, 1] = 1  # existing X on qubit 1 for both trials
        self.run(circ, frames)
        # Trial 0 fired: H swapped its X into Z. Trial 1 did not fire.
        assert frames.z[0, 1] == 1 and frames.x[0, 1] == 0
        assert frames.x[1, 1] == 1 and frames.z[1, 1] == 0

    def test_condition_never_flipped_skips_everywhere(self):
        circ = Circuit(2).measure_z(0, "m").h(1, condition="m")
        frames = BatchFrames(3, 2)
        frames.z[:, 1] = 1  # would swap into X if the H ever fired
        self.run(circ, frames)
        assert not frames.x.any()
        assert (frames.z[:, 1] == 1).all()

    def test_conditional_measurement_skipped_reads_zero(self):
        # The conditional measurement only fires in flipped trials; a
        # later gate conditioned on its bit sees 0 in skipped trials.
        circ = Circuit(3)
        circ.measure_z(0, "a")
        circ.measure_z(1, "b", condition="a")
        circ.h(2, condition="b")
        frames = BatchFrames(2, 3)
        frames.x[0, 0] = 1  # trial 0: 'a' flips, 'b' measured
        frames.x[0, 1] = 1  # ... and 'b' flips too, so the H fires
        frames.x[1, 1] = 1  # trial 1: 'a' clean, 'b' never measured
        frames.z[:, 2] = 1  # the H, where fired, swaps this into X
        self.run(circ, frames)
        assert frames.x[0, 2] == 1 and frames.z[0, 2] == 0
        assert frames.x[1, 2] == 0 and frames.z[1, 2] == 1

    def test_frames_too_small_rejected(self):
        sim = BatchedSimulator(errors=CLEAN)
        frames = BatchFrames(1, 2)
        with pytest.raises(ValueError):
            sim.run_circuit(
                Circuit(3).cx(0, 2), frames, active=np.ones(1, dtype=bool)
            )


class TestStochasticBehavior:
    def test_reproducible_per_seed(self):
        circ = Circuit(4)
        for q in range(4):
            circ.prep_0(q)
        circ.h(0).cx(0, 1).cx(1, 2).cx(2, 3)
        noisy = ErrorRates(gate=0.05, movement=1e-3, measurement=0.0)
        outs = []
        for _ in range(2):
            sim = BatchedSimulator(errors=noisy, seed=42)
            frames = BatchFrames(500, 4)
            sim.run_circuit(
                circ, frames, active=np.ones(500, dtype=bool),
                moves_per_qubit_per_gate=2.0,
            )
            outs.append((frames.x.copy(), frames.z.copy()))
        assert np.array_equal(outs[0][0], outs[1][0])
        assert np.array_equal(outs[0][1], outs[1][1])

    def test_inactive_trials_untouched_under_noise(self):
        circ = Circuit(2).prep_0(0).h(0).cx(0, 1)
        noisy = ErrorRates(gate=0.5, movement=0.01, measurement=0.0)
        sim = BatchedSimulator(errors=noisy, seed=1)
        frames = BatchFrames(200, 2)
        frames.x[:, 1] = 1
        active = np.zeros(200, dtype=bool)
        active[:100] = True
        sim.run_circuit(circ, frames, active=active,
                        moves_per_qubit_per_gate=2.0)
        assert (frames.x[100:, 1] == 1).all()
        assert not frames.x[100:, 0].any()
        assert not frames.z[100:, :].any()

    def test_measurement_error_flips_outcomes(self):
        circ = Circuit(1).measure_z(0, "m")
        sim = BatchedSimulator(
            errors=ErrorRates(gate=0.0, movement=0.0, measurement=1.0), seed=0
        )
        frames = BatchFrames(50, 1)
        flips = sim.run_circuit(circ, frames, active=np.ones(50, dtype=bool))
        assert (flips["m"] == 1).all()  # clean qubit + certain readout flip


class TestSteaneGrading:
    def test_agrees_with_scalar_grading(self):
        rng = np.random.default_rng(5)
        patterns = rng.integers(0, 2, size=(200, 7), dtype=np.uint8)
        z_patterns = rng.integers(0, 2, size=(200, 7), dtype=np.uint8)
        frames = BatchFrames(200, 7)
        frames.x[:] = patterns
        frames.z[:] = z_patterns
        vec = steane_grade_bad(frames, range(7))
        for i in range(200):
            assert bool(vec[i]) == STEANE.is_uncorrectable(
                patterns[i], z_patterns[i]
            ), i

    def test_stabilizer_row_graded_good(self):
        frames = BatchFrames(1, 7)
        frames.z[0, :] = HAMMING_PARITY_CHECK[1]
        assert not steane_grade_bad(frames, range(7)).any()
