"""CLI tests for the observability surface: --trace/--metrics, profile,
and evaluator stats surviving the failure path."""

import json

import pytest

from repro import obs
from repro.__main__ import main
from repro.obs import metrics as obs_metrics


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs_metrics.REGISTRY.reset()
    yield
    obs.disable()
    obs_metrics.REGISTRY.reset()


class TestExploreTraceMetrics:
    def _explore(self, tmp_path, *extra):
        return main(
            [
                "explore", "qrca-8",
                "--strategy", "grid",
                "--budget", "3",
                "--cache-dir", str(tmp_path / "cache"),
                *extra,
            ]
        )

    def test_trace_written_and_parses(self, tmp_path, capsys):
        trace = tmp_path / "out.json"
        assert self._explore(tmp_path, "--trace", str(trace)) == 0
        assert f"trace: {trace}" in capsys.readouterr().out
        doc = json.loads(trace.read_text())
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        names = {e["name"] for e in spans}
        assert "explore.round" in names
        assert "evaluate.batch" in names
        # Engine spans always fire on a cold store; compile.* spans may
        # be absent when another test already warmed the analysis LRU.
        assert any(n.startswith("batched.") or n.startswith("simulate.")
                   for n in names)

    def test_metrics_prometheus_written(self, tmp_path, capsys):
        prom = tmp_path / "out.prom"
        assert self._explore(tmp_path, "--metrics", str(prom)) == 0
        assert f"metrics: {prom}" in capsys.readouterr().out
        text = prom.read_text()
        assert "repro_simulations_run_total 3" in text
        assert "repro_cache_hits_total 0" in text
        assert "repro_phase_seconds_bucket" in text
        assert 'repro_store_get_total{outcome="miss"} 3' in text
        assert 'repro_store_put_total{outcome="ok"} 3' in text
        assert "repro_store_op_seconds_bucket" in text

    def test_metrics_json_snapshot(self, tmp_path):
        snap_path = tmp_path / "out.json"
        assert self._explore(tmp_path, "--metrics", str(snap_path)) == 0
        snap = json.loads(snap_path.read_text())
        assert snap["repro_simulations_run_total"]["type"] == "counter"
        assert obs_metrics.PHASE_SECONDS in snap

    def test_tracing_torn_down_after_run(self, tmp_path):
        assert self._explore(tmp_path, "--trace", str(tmp_path / "t.json")) == 0
        assert not obs.enabled()

    def test_no_flags_means_no_tracing(self, tmp_path, capsys):
        assert self._explore(tmp_path) == 0
        out = capsys.readouterr().out
        assert "trace:" not in out
        assert "metrics:" not in out

    def test_warm_cache_counts_hits(self, tmp_path, capsys):
        assert self._explore(tmp_path) == 0
        capsys.readouterr()
        prom = tmp_path / "warm.prom"
        assert self._explore(tmp_path, "--metrics", str(prom)) == 0
        text = prom.read_text()
        # Counters are process-global and cumulative: the cold run put 3
        # simulations on the board, the warm run added 3 cache hits.
        assert "repro_cache_hits_total 3" in text
        assert "repro_simulations_run_total 3" in text
        assert 'repro_store_get_total{outcome="hit"} 3' in text


class TestStatsOnFailurePath:
    def test_stats_printed_when_exploration_raises(self, tmp_path, capsys,
                                                   monkeypatch):
        import repro.explore

        def boom(*args, **kwargs):
            raise ValueError("injected mid-exploration failure")

        monkeypatch.setattr(repro.explore, "explore", boom)
        code = main(
            [
                "explore", "qrca-8",
                "--budget", "2",
                "--cache-dir", str(tmp_path),
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "injected mid-exploration failure" in captured.err
        # The whole point: counters still reported on the failure path.
        assert "evaluator:" in captured.out

    def test_trace_still_written_when_exploration_raises(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.explore

        monkeypatch.setattr(
            repro.explore, "explore",
            lambda *a, **k: (_ for _ in ()).throw(ValueError("boom")),
        )
        trace = tmp_path / "fail.json"
        code = main(
            [
                "explore", "qrca-8",
                "--budget", "2",
                "--cache-dir", str(tmp_path / "cache"),
                "--trace", str(trace),
            ]
        )
        assert code == 2
        assert trace.exists()
        json.loads(trace.read_text())  # parseable even from a failed run


class TestProfile:
    # fig15 actually runs the simulation stack, so spans get recorded;
    # static tables like table1 produce an (acceptable) empty breakdown.
    def test_profile_prints_breakdown(self, capsys):
        assert main(["profile", "fig15"]) == 0
        out = capsys.readouterr().out
        assert "per-phase breakdown" in out
        assert "phase" in out and "calls" in out
        # Every fig15 ladder batches now (CQLA included), so the profile
        # shows the batched kernels rather than per-point simulate spans.
        assert "batched.level_sweep" in out
        assert "batched.cqla_lockstep" in out

    def test_profile_writes_trace(self, tmp_path, capsys):
        trace = tmp_path / "profile.json"
        assert main(["profile", "fig15", "--trace", str(trace)]) == 0
        doc = json.loads(trace.read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_profile_show_output(self, capsys):
        assert main(["profile", "fig15", "--show-output"]) == 0
        out = capsys.readouterr().out
        assert "Figure 15" in out  # the experiment's own output
        assert "per-phase breakdown" in out

    def test_profile_spanless_experiment_reports_no_spans(self, capsys):
        assert main(["profile", "table1"]) == 0
        assert "no spans recorded" in capsys.readouterr().out

    def test_profile_unknown_experiment(self, capsys):
        assert main(["profile", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_profile_tears_down_tracing(self, capsys):
        assert main(["profile", "fig15"]) == 0
        assert not obs.enabled()
