"""Unit tests for the factory models (Figure 11, Tables 6 and 8)."""

import pytest

from repro.factory import Pi8Factory, PipelinedZeroFactory, SimpleZeroFactory
from repro.factory.simple import simple_factory_grid
from repro.tech import ION_TRAP


class TestSimpleFactory:
    factory = SimpleZeroFactory()

    def test_latency_323us(self):
        assert self.factory.latency_us == 323.0

    def test_throughput_3_1_per_ms(self):
        assert self.factory.throughput_per_ms == pytest.approx(3.1, abs=0.05)

    def test_area_90_macroblocks(self):
        assert self.factory.area == 90

    def test_grid_connected(self):
        simple_factory_grid().validate_connected()

    def test_grid_has_30_gate_locations(self):
        # Three rows of ten (seven encode + three verify qubits each).
        assert len(simple_factory_grid().gate_locations) == 30

    def test_replication_area(self):
        # 10 anc/ms needs ceil(10/3.1) = 4 copies = 360 macroblocks.
        assert self.factory.replicated_area_for_bandwidth(10.0) == 360

    def test_replication_rejects_negative(self):
        with pytest.raises(ValueError):
            self.factory.replicated_area_for_bandwidth(-1.0)

    def test_faster_technology_raises_throughput(self):
        fast = SimpleZeroFactory(tech=ION_TRAP.scaled(0.5))
        assert fast.throughput_per_ms == pytest.approx(
            2 * self.factory.throughput_per_ms
        )


class TestPipelinedZeroFactory:
    factory = PipelinedZeroFactory()

    def test_table6_unit_counts(self):
        assert self.factory.unit_counts == {
            "zero_prep": 24,
            "cx_stage": 1,
            "cat_prep": 1,
            "verification": 3,
            "bp_correction": 2,
        }

    def test_functional_area_130(self):
        assert self.factory.functional_area == 130

    def test_crossbar_areas(self):
        assert self.factory.crossbar_areas == [24, 60, 84]
        assert self.factory.crossbar_area == 168

    def test_total_area_298(self):
        assert self.factory.area == 298

    def test_throughput_10_5(self):
        assert self.factory.throughput_per_ms == pytest.approx(10.5, abs=0.05)

    def test_pipelining_buys_no_density(self):
        """Section 5.3: virtually the same bandwidth per unit area as the
        simple factory — the win is port concentration, not density."""
        simple = SimpleZeroFactory()
        ratio = self.factory.bandwidth_per_area / simple.bandwidth_per_area
        assert 0.8 < ratio < 1.25

    def test_area_for_bandwidth_linear(self):
        area = self.factory.area_for_bandwidth(self.factory.throughput_per_ms)
        assert area == pytest.approx(self.factory.area)

    def test_scaling_cx_units_scales_throughput(self):
        double = PipelinedZeroFactory(cx_units=2)
        assert double.throughput_per_ms == pytest.approx(
            2 * self.factory.throughput_per_ms
        )

    def test_invalid_cx_units(self):
        with pytest.raises(ValueError):
            PipelinedZeroFactory(cx_units=0)

    def test_serial_latency_includes_all_stages(self):
        # 73 + 95 + 82 + 138 = 388us through the four stages.
        assert self.factory.serial_latency_us() == 388.0


class TestPi8Factory:
    factory = Pi8Factory()

    def test_table8_unit_counts(self):
        assert self.factory.unit_counts == {
            "cat_state_prepare": 4,
            "transversal_interact": 1,
            "decode_store": 4,
            "h_measure_correct": 2,
        }

    def test_functional_area_147(self):
        assert self.factory.functional_area == 147

    def test_crossbar_areas(self):
        assert self.factory.crossbar_areas == [48, 104, 104]
        assert self.factory.crossbar_area == 256

    def test_total_area_403(self):
        assert self.factory.area == 403

    def test_throughput_18_3(self):
        assert self.factory.throughput_per_ms == pytest.approx(18.3, abs=0.05)

    def test_zero_demand_matches_output(self):
        assert self.factory.zero_ancilla_demand_per_ms == pytest.approx(
            self.factory.throughput_per_ms
        )

    def test_serial_latency_563us(self):
        assert self.factory.serial_latency_us() == 563.0

    def test_invalid_cat_units(self):
        with pytest.raises(ValueError):
            Pi8Factory(cat_units=0)

    def test_cat_stage_is_bottleneck(self):
        """Every non-driver stage must have capacity for the cat flow."""
        cat_flow = 2 * self.factory.stages["cat_state_prepare"].capacity_out(ION_TRAP)
        for name in ("transversal_interact", "decode_store"):
            capacity = self.factory.stages[name].capacity_in(ION_TRAP)
            assert capacity >= cat_flow * 0.97
