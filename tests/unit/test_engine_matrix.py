"""The cross-engine equivalence test matrix.

One parameterized suite asserting ``run_legacy() == run() ==
simulate_batch()`` — exact equality of every ``SimulationResult`` field —
across every architecture/supply model x kernel x code level. This
consolidates what test_compiled_engine (legacy vs compiled) and
test_batched_sweep (compiled vs batched) assert piecemeal, and extends
the matrix along the concatenation-level axis: at ``code_level`` L the
same three engines run under ``tech.at_level(L)``'s re-characterized
latency tables and must still agree bit for bit.

Supplies are constructed fresh per engine (rate-limited supplies carry
consumption state), and the batched engine is exercised both as a
singleton batch and as one grouped batch of rate-scaled variants.
"""

import pytest

from repro.arch.architectures import (
    CqlaConfig,
    MultiplexedConfig,
    QlaConfig,
)
from repro.arch.batched import simulate_batch
from repro.arch.simulator import DataflowSimulator
from repro.arch.supply import PI8, ZERO, SteadyRateSupply
from repro.kernels import analyze_kernel
from repro.tech import ION_TRAP

KERNELS = ("qrca", "qcla", "qft")

#: Every supply/architecture model the simulator stack distinguishes.
SUPPLY_MODES = (
    "infinite",
    "steady-rate",
    "zero-rate",
    "qla",
    "cqla",
    "multiplexed",
    "custom",
)

CODE_LEVELS = (1, 2)

_FACTORY_AREA = 500.0


class _EveryMillisecond:
    """Custom supply protocol: ancillae materialize on 1 ms boundaries."""

    def acquire(self, kind, qubit, count, earliest):
        import math

        return math.ceil(earliest / 1000.0) * 1000.0


def _configuration(analysis, mode):
    """(supply, move_1q, move_2q, cqla) with *fresh* supply state."""
    tech = analysis.tech
    zero_bw = analysis.zero_bandwidth_per_ms
    pi8_bw = analysis.pi8_bandwidth_per_ms
    nq = analysis.circuit.num_qubits
    if mode == "infinite":
        return None, 0.0, 0.0, None
    if mode == "steady-rate":
        # Half the matched demand, so gates actually wait on the supply.
        supply = SteadyRateSupply({ZERO: zero_bw / 2.0, PI8: pi8_bw / 2.0})
        return supply, 0.0, 0.0, None
    if mode == "zero-rate":
        return SteadyRateSupply({ZERO: 0.0, PI8: pi8_bw}), 0.0, 0.0, None
    if mode == "custom":
        return _EveryMillisecond(), 0.0, 0.0, None
    config = {
        "qla": QlaConfig(),
        "cqla": CqlaConfig(),
        "multiplexed": MultiplexedConfig(),
    }[mode]
    supply = config.build_supply(_FACTORY_AREA, nq, zero_bw, pi8_bw, tech)
    return (
        supply,
        config.movement_penalty(False, tech),
        config.movement_penalty(True, tech),
        config if mode == "cqla" else None,
    )


def _simulator(analysis, mode):
    supply, move_1q, move_2q, cqla = _configuration(analysis, mode)
    return DataflowSimulator(
        analysis.circuit,
        analysis.tech,
        supply=supply,
        movement_penalty_us=move_1q,
        two_qubit_movement_penalty_us=move_2q,
        cqla=cqla,
    )


def _batched(analysis, mode):
    supply, move_1q, move_2q, cqla = _configuration(analysis, mode)
    if supply is None:
        from repro.arch.supply import InfiniteSupply

        supply = InfiniteSupply()
    return simulate_batch(
        analysis.circuit,
        [supply],
        analysis.tech,
        movement_penalty_us=move_1q,
        two_qubit_movement_penalty_us=move_2q,
        cqla=cqla,
    )[0]


@pytest.fixture(scope="module", params=CODE_LEVELS, ids=lambda l: f"L{l}")
def code_level(request):
    return request.param


class TestEngineMatrix:
    """run_legacy == run == simulate_batch, everywhere."""

    @pytest.mark.parametrize("mode", SUPPLY_MODES)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_three_engines_identical(self, kernel, mode, code_level):
        analysis = analyze_kernel(kernel, 8, code_level=code_level)
        legacy = _simulator(analysis, mode).run_legacy()
        compiled = _simulator(analysis, mode).run()
        batched = _batched(analysis, mode)
        # Dataclass equality covers makespan, gate count, both ancilla
        # counts, cache misses and teleports — all exactly.
        assert compiled == legacy
        assert batched == legacy

    @pytest.mark.parametrize("mode", ("steady-rate", "qla", "multiplexed"))
    def test_grouped_batch_matches_serial_runs(self, mode, code_level):
        """A real multi-point batch equals N independent serial runs."""
        analysis = analyze_kernel("qrca", 8, code_level=code_level)

        def variants():
            out = []
            for factor in (0.5, 1.0, 2.0):
                supply, move_1q, move_2q, _ = _configuration(analysis, mode)
                if mode == "steady-rate":
                    supply = SteadyRateSupply(
                        {
                            ZERO: analysis.zero_bandwidth_per_ms * factor,
                            PI8: analysis.pi8_bandwidth_per_ms * factor,
                        }
                    )
                out.append((supply, move_1q, move_2q))
            return out

        serial = [
            DataflowSimulator(
                analysis.circuit,
                analysis.tech,
                supply=supply,
                movement_penalty_us=m1,
                two_qubit_movement_penalty_us=m2,
            ).run()
            for supply, m1, m2 in variants()
        ]
        fresh = variants()
        batched = simulate_batch(
            analysis.circuit,
            [supply for supply, _, _ in fresh],
            analysis.tech,
            movement_penalty_us=fresh[0][1],
            two_qubit_movement_penalty_us=fresh[0][2],
        )
        assert batched == serial

    def test_level_two_actually_recharacterizes(self):
        """The level axis is not a no-op: leveled latencies slow the run."""
        level1 = analyze_kernel("qrca", 8)
        level2 = analyze_kernel("qrca", 8, code_level=2)
        assert level2.tech is ION_TRAP.at_level(2)
        m1 = DataflowSimulator(level1.circuit, level1.tech).run().makespan_us
        m2 = DataflowSimulator(level2.circuit, level2.tech).run().makespan_us
        assert m2 > 2.0 * m1

    def test_supply_state_identical_across_engines(self, code_level):
        """Observable supply state advances identically in all engines."""
        analysis = analyze_kernel("qcla", 8, code_level=code_level)

        def fresh():
            return SteadyRateSupply(
                {
                    ZERO: analysis.zero_bandwidth_per_ms,
                    PI8: analysis.pi8_bandwidth_per_ms,
                }
            )

        states = []
        for runner in (
            lambda s: DataflowSimulator(
                analysis.circuit, analysis.tech, supply=s
            ).run_legacy(),
            lambda s: DataflowSimulator(
                analysis.circuit, analysis.tech, supply=s
            ).run(),
            lambda s: simulate_batch(analysis.circuit, [s], analysis.tech),
        ):
            supply = fresh()
            runner(supply)
            states.append(
                (supply.consumed_so_far(ZERO), supply.consumed_so_far(PI8))
            )
        assert states[0] == states[1] == states[2]
