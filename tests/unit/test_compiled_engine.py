"""Equivalence tests: compiled dataflow engine vs the legacy per-gate loop.

The compiled engine must be *bit-identical* to the reference loop — every
``SimulationResult`` field compared with exact equality (no approx), for
all three kernels under all five supply/architecture models. The fixtures
run the 8-bit kernels; engine dispatch does not depend on width.
"""

import pytest

from repro.arch.architectures import (
    CqlaConfig,
    MultiplexedConfig,
    QlaConfig,
)
from repro.arch.simulator import DataflowSimulator
from repro.arch.supply import PI8, ZERO, SteadyRateSupply
from repro.circuits import Circuit, CompiledCircuit, compile_circuit
from repro.kernels import analyze_kernel
from repro.tech import ION_TRAP

KERNELS = ("qrca", "qcla", "qft")
SUPPLY_MODES = ("infinite", "steady-rate", "qla", "cqla", "multiplexed")

_FACTORY_AREA = 500.0


def _build_simulator(analysis, mode):
    """A fresh simulator (fresh supply state) for one supply mode."""
    circuit, tech = analysis.circuit, analysis.tech
    zero_bw = analysis.zero_bandwidth_per_ms
    pi8_bw = analysis.pi8_bandwidth_per_ms
    nq = circuit.num_qubits
    if mode == "infinite":
        return DataflowSimulator(circuit, tech)
    if mode == "steady-rate":
        # Half the matched demand, so gates actually wait on the supply.
        supply = SteadyRateSupply({ZERO: zero_bw / 2.0, PI8: pi8_bw / 2.0})
        return DataflowSimulator(circuit, tech, supply=supply)
    if mode == "qla":
        config = QlaConfig()
    elif mode == "cqla":
        config = CqlaConfig()
    elif mode == "multiplexed":
        config = MultiplexedConfig()
    else:
        raise ValueError(mode)
    supply = config.build_supply(_FACTORY_AREA, nq, zero_bw, pi8_bw, tech)
    return DataflowSimulator(
        circuit,
        tech,
        supply=supply,
        movement_penalty_us=config.movement_penalty(False, tech),
        two_qubit_movement_penalty_us=config.movement_penalty(True, tech),
        cqla=config if mode == "cqla" else None,
    )


class TestEngineEquivalence:
    @pytest.mark.parametrize("mode", SUPPLY_MODES)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_identical_results_across_kernels_and_supplies(self, kernel, mode):
        analysis = analyze_kernel(kernel, 8)
        legacy = _build_simulator(analysis, mode).run_legacy()
        compiled = _build_simulator(analysis, mode).run()
        # Dataclass equality covers makespan, gate count, both ancilla
        # counts, cache misses and teleports — all exactly.
        assert compiled == legacy

    def test_steady_supply_state_matches_after_run(self, qrca8):
        def fresh():
            return SteadyRateSupply(
                {ZERO: qrca8.zero_bandwidth_per_ms, PI8: qrca8.pi8_bandwidth_per_ms}
            )

        legacy_supply, compiled_supply = fresh(), fresh()
        DataflowSimulator(
            qrca8.circuit, qrca8.tech, supply=legacy_supply
        ).run_legacy()
        DataflowSimulator(
            qrca8.circuit, qrca8.tech, supply=compiled_supply
        ).run()
        for kind in (ZERO, PI8):
            assert compiled_supply.consumed_so_far(kind) == (
                legacy_supply.consumed_so_far(kind)
            )

    def test_zero_rate_supply_starves_both_engines(self):
        circuit = Circuit(1).h(0)
        starved = SteadyRateSupply({ZERO: 0.0})
        legacy = DataflowSimulator(
            circuit, supply=SteadyRateSupply({ZERO: 0.0})
        ).run_legacy()
        compiled = DataflowSimulator(circuit, supply=starved).run()
        assert legacy.makespan_us == float("inf")
        assert compiled == legacy

    def test_conditional_toffoli_circuit(self):
        """Exercises arity-3 gates, measurements and condition bits."""
        circuit = (
            Circuit(4)
            .ccx(0, 1, 2)
            .measure_z(2, "m0")
            .x(3, condition="m0")
            .t(3)
            .measure_x(3, "m1")
            .z(0, condition="m1")
        )
        legacy = DataflowSimulator(circuit).run_legacy()
        compiled = DataflowSimulator(circuit).run()
        assert compiled == legacy

    def test_custom_supply_protocol_falls_back_to_per_gate_queries(self):
        class EveryOtherMillisecond:
            """Ancillae materialize on 1 ms boundaries."""

            def acquire(self, kind, qubit, count, earliest):
                import math

                return math.ceil(earliest / 1000.0) * 1000.0

        circuit = Circuit(2).h(0).cx(0, 1).t(1)
        legacy = DataflowSimulator(
            circuit, supply=EveryOtherMillisecond()
        ).run_legacy()
        compiled = DataflowSimulator(circuit, supply=EveryOtherMillisecond()).run()
        assert compiled == legacy

    def test_instance_level_acquire_override_honored(self):
        """A monkeypatched acquire must reach the compiled engine too."""

        def delayed(kind, qubit, count, earliest):
            return earliest + 100.0

        circuit = Circuit(2).h(0).cx(0, 1).t(1)

        def patched():
            from repro.arch.supply import InfiniteSupply

            supply = InfiniteSupply()
            supply.acquire = delayed
            return supply

        legacy = DataflowSimulator(circuit, supply=patched()).run_legacy()
        compiled = DataflowSimulator(circuit, supply=patched()).run()
        assert compiled == legacy
        # And the delay really was applied (not the infinite fast path).
        assert compiled.makespan_us > DataflowSimulator(circuit).run().makespan_us

    def test_empty_circuit(self):
        result = DataflowSimulator(Circuit(3)).run()
        assert result == DataflowSimulator(Circuit(3)).run_legacy()
        assert result.makespan_us == 0.0


class TestCompilation:
    def test_compile_is_memoized_per_circuit_and_tech(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        assert compile_circuit(circuit, ION_TRAP) is compile_circuit(
            circuit, ION_TRAP
        )

    def test_append_invalidates_cached_compilation(self):
        circuit = Circuit(2).h(0)
        first = compile_circuit(circuit, ION_TRAP)
        circuit.cx(0, 1)
        second = compile_circuit(circuit, ION_TRAP)
        assert second is not first
        assert second.num_gates == 2

    def test_compiled_form_contents(self):
        circuit = Circuit(3).t(0).ccx(0, 1, 2).measure_z(1, "m").x(2, condition="m")
        compiled = compile_circuit(circuit, ION_TRAP)
        assert isinstance(compiled, CompiledCircuit)
        assert compiled.num_gates == 4
        assert compiled.q0 == [0, 0, 1, 2]
        assert compiled.q1 == [-1, 1, -1, -1]
        assert compiled.q2 == [-1, 2, -1, -1]
        assert compiled.pi8_flag == [1, 0, 0, 0]
        assert compiled.pi8_count == 1
        assert compiled.bit_names == ("m",)
        assert compiled.result_id == [-1, -1, 0, -1]
        assert compiled.cond_id == [-1, -1, -1, 0]
        # prep/measure gates are movement-exempt; CCX (arity 3) takes the
        # one-qubit movement penalty, mirroring the reference loop's
        # ``is_two_qubit`` dispatch.
        assert compiled.one_qubit_moves == 3  # T, CCX, conditional X
        assert compiled.two_qubit_moves == 0

    def test_mismatched_compiled_circuit_rejected(self):
        circuit = Circuit(2).h(0).cx(0, 1)
        other = compile_circuit(Circuit(2).h(0), ION_TRAP)
        with pytest.raises(ValueError):
            DataflowSimulator(circuit, compiled=other)

    def test_same_shape_different_circuit_rejected(self):
        """Equal gate/qubit counts are not enough: identity is checked."""
        circuit = Circuit(2).h(0).cx(0, 1)
        twin = Circuit(2).h(0).cx(0, 1)
        with pytest.raises(ValueError):
            DataflowSimulator(circuit, compiled=compile_circuit(twin, ION_TRAP))

    def test_orphaned_compiled_circuit_rejected(self):
        """A compiled form whose source was collected is never accepted."""
        import gc

        compiled = compile_circuit(Circuit(2).h(0).cx(0, 1), ION_TRAP)
        gc.collect()
        with pytest.raises(ValueError):
            DataflowSimulator(Circuit(2).h(0).cx(0, 1), compiled=compiled)

    def test_prebuilt_compiled_circuit_reused(self, qrca8):
        compiled = qrca8.compiled_circuit()
        sim = DataflowSimulator(qrca8.circuit, qrca8.tech, compiled=compiled)
        assert sim.compiled is compiled
        assert sim.run() == DataflowSimulator(qrca8.circuit, qrca8.tech).run_legacy()
