"""CLI tests for `repro serve` and the serve/lease knobs on `repro explore`."""

import socket

import pytest

from repro.__main__ import build_parser, main
from repro.explore import ServeDegradedWarning


class TestServeParser:
    def test_help_exits_zero(self, capsys):
        assert main(["serve", "--help"]) == 0
        out = capsys.readouterr().out
        for flag in ("--host", "--port", "--max-queue", "--drain-timeout",
                     "--lease-ttl", "--heartbeat-interval"):
            assert flag in out

    def test_defaults(self):
        ns = build_parser().parse_args(["serve"])
        assert ns.host == "127.0.0.1"
        assert ns.port == 8642
        assert ns.max_queue == 8
        assert ns.drain_timeout == 30.0
        assert ns.lease_ttl is None
        assert ns.heartbeat_interval is None

    def test_port_in_use_exits_2(self, tmp_path, capsys):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        _, port = blocker.getsockname()
        try:
            code = main([
                "serve", "--port", str(port),
                "--cache-dir", str(tmp_path),
            ])
        finally:
            blocker.close()
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_bad_max_queue_exits_2(self, tmp_path, capsys):
        code = main([
            "serve", "--max-queue", "0", "--cache-dir", str(tmp_path),
        ])
        assert code == 2
        assert "max_queue" in capsys.readouterr().err


class TestLeaseKnobs:
    @pytest.mark.parametrize("command", ["explore", "serve"])
    def test_nonpositive_ttl_rejected(self, command, tmp_path, capsys):
        argv = [command, "--lease-ttl", "0", "--cache-dir", str(tmp_path)]
        if command == "explore":
            argv.insert(1, "qrca-8")
        assert main(argv) == 2
        assert "--lease-ttl" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["explore", "serve"])
    def test_heartbeat_must_beat_ttl(self, command, tmp_path, capsys):
        argv = [
            command, "--lease-ttl", "10", "--heartbeat-interval", "10",
            "--cache-dir", str(tmp_path),
        ]
        if command == "explore":
            argv.insert(1, "qrca-8")
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "--heartbeat-interval" in err and "lease TTL" in err

    def test_nonpositive_heartbeat_rejected(self, tmp_path, capsys):
        assert main([
            "explore", "qrca-8", "--heartbeat-interval", "-1",
            "--cache-dir", str(tmp_path),
        ]) == 2
        assert "--heartbeat-interval" in capsys.readouterr().err

    def test_valid_knobs_accepted(self, tmp_path, capsys):
        code = main([
            "explore", "qrca-8", "--budget", "2",
            "--lease-ttl", "60", "--heartbeat-interval", "5",
            "--cache-dir", str(tmp_path),
        ])
        assert code == 0
        assert "best" in capsys.readouterr().out


class TestExploreServerFlag:
    def test_explore_help_lists_server_knobs(self, capsys):
        assert main(["explore", "--help"]) == 0
        out = capsys.readouterr().out
        for flag in ("--server", "--server-timeout", "--server-retries",
                     "--server-deadline"):
            assert flag in out

    def test_bad_server_url_exits_2(self, tmp_path, capsys):
        assert main([
            "explore", "qrca-8", "--server", "https://example.com",
            "--cache-dir", str(tmp_path),
        ]) == 2
        assert "http" in capsys.readouterr().err

    def test_dead_server_degrades_and_completes(self, tmp_path, capsys):
        """explore --server against a dead URL finishes locally, exit 0."""
        with pytest.warns(ServeDegradedWarning):
            code = main([
                "explore", "qrca-8", "--budget", "2",
                "--server", "http://127.0.0.1:9",
                "--server-timeout", "0.5",
                "--server-retries", "0",
                "--cache-dir", str(tmp_path),
            ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best" in out
        assert "degraded=1" in out  # the evaluator stats line


class TestReplicaSetFlags:
    def test_explore_help_lists_pool_knobs(self, capsys):
        assert main(["explore", "--help"]) == 0
        out = capsys.readouterr().out
        for flag in ("--breaker-threshold", "--breaker-cooldown",
                     "--hedge-after"):
            assert flag in out

    def test_serve_help_lists_fleet_knobs(self, capsys):
        assert main(["serve", "--help"]) == 0
        out = capsys.readouterr().out
        for flag in ("--coalesce", "--no-coalesce", "--replica-id",
                     "--port-file"):
            assert flag in out

    def test_server_flag_repeats_and_splits_commas(self):
        ns = build_parser().parse_args([
            "explore", "qrca-8",
            "--server", "http://a:1,http://b:2",
            "--server", "http://c:3",
        ])
        assert ns.server == ["http://a:1,http://b:2", "http://c:3"]

    def test_serve_defaults(self):
        ns = build_parser().parse_args(["serve"])
        assert ns.coalesce is True
        assert ns.replica_id is None
        assert ns.port_file is None
        ns = build_parser().parse_args(["serve", "--no-coalesce"])
        assert ns.coalesce is False

    def test_breaker_defaults(self):
        ns = build_parser().parse_args(["explore", "qrca-8"])
        assert ns.breaker_threshold == 3
        assert ns.breaker_cooldown == 5.0
        assert ns.hedge_after is None

    def test_duplicate_replica_urls_exit_2(self, tmp_path, capsys):
        assert main([
            "explore", "qrca-8",
            "--server", "http://127.0.0.1:9,http://127.0.0.1:9",
            "--cache-dir", str(tmp_path),
        ]) == 2
        assert "duplicate" in capsys.readouterr().err

    def test_dead_fleet_degrades_and_completes(self, tmp_path, capsys):
        """Two dead replicas: the whole fleet is down, the exploration
        still completes locally with exit 0."""
        with pytest.warns(ServeDegradedWarning):
            code = main([
                "explore", "qrca-8", "--budget", "2",
                "--server", "http://127.0.0.1:9",
                "--server", "http://127.0.0.1:10",
                "--server-timeout", "0.5",
                "--server-retries", "0",
                "--breaker-threshold", "1",
                "--cache-dir", str(tmp_path),
            ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best" in out
        assert "degraded=1" in out
