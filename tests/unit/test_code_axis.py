"""Unit tests: the code axis threaded through factories, spaces and CLI.

Level-1 / Steane instantiations must be drift-free against the paper
constants; explicit codes reshape unit geometry consistently; the
``code_level`` dimension flows from :mod:`repro.explore.space` through
the evaluator's canonicalization into the CLI.
"""

import pytest

from repro.codes import ConcatenatedCode, css_encoder_layout, steane_code
from repro.codes.steane import ENCODER_CX_ROUNDS, ENCODER_H_QUBITS
from repro.explore.space import (
    Categorical,
    Integer,
    architecture_space,
    throughput_space,
)
from repro.factory import Pi8Factory, PipelinedZeroFactory, SimpleZeroFactory
from repro.factory.units import code_profile, pi8_units, zero_factory_units
from repro.tech import ION_TRAP

STEANE = steane_code()


class TestEncoderLayout:
    def test_steane_layout_matches_figure_3b(self):
        layout = css_encoder_layout(STEANE)
        assert layout.h_qubits == ENCODER_H_QUBITS
        assert layout.num_cx_rounds == len(ENCODER_CX_ROUNDS)
        paper_edges = {pair for rnd in ENCODER_CX_ROUNDS for pair in rnd}
        assert set(layout.cx_list()) == paper_edges

    def test_rounds_touch_disjoint_qubits(self):
        for level in (1, 2):
            layout = css_encoder_layout(ConcatenatedCode(STEANE, level))
            for rnd in layout.cx_rounds:
                touched = [q for pair in rnd for q in pair]
                assert len(set(touched)) == len(touched)


class TestFactoryCodeParameter:
    def test_default_profile_is_steane(self):
        assert code_profile(None) == (7, 3, 3)
        assert code_profile(STEANE) == (7, 3, 3)
        assert code_profile(ConcatenatedCode(STEANE, 1)) == (7, 3, 3)
        assert code_profile(ConcatenatedCode(STEANE, 2)) == (49, 24, 6)

    def test_steane_units_equal_paper_units(self):
        for derived, default in (
            (zero_factory_units(code=STEANE), zero_factory_units()),
            (pi8_units(code=STEANE), pi8_units()),
        ):
            assert set(derived) == set(default)
            for name in default:
                assert derived[name] == default[name], name

    def test_level_two_factory_scales_consistently(self):
        code = ConcatenatedCode(STEANE, 2)
        tech = ION_TRAP.at_level(2)
        factory = PipelinedZeroFactory(tech=tech, code=code)
        baseline = PipelinedZeroFactory()
        assert factory.encoded_qubits == 49
        assert factory.cat_qubits == 24
        assert factory.area > baseline.area
        assert 0.0 < factory.throughput_per_ms < baseline.throughput_per_ms
        pi8 = Pi8Factory(tech=tech, code=code)
        assert pi8.area > Pi8Factory().area
        assert pi8.throughput_per_ms > 0.0

    def test_simple_factory_row_width_follows_code(self):
        simple = SimpleZeroFactory(code=ConcatenatedCode(STEANE, 2))
        # 9 rows of (49 + 24) macroblocks.
        assert simple.area == 9 * 73
        assert SimpleZeroFactory().area == 90

    def test_degenerate_code_rejected(self):
        class Degenerate:
            n = 1
            x_stabilizers = []

        with pytest.raises(ValueError):
            code_profile(Degenerate())


class TestDecomposeCodeParameter:
    def test_self_dual_codes_accepted(self):
        from repro.circuits import Circuit
        from repro.kernels.decompose import decompose_to_encoded_gates

        circuit = Circuit(2).h(0).cx(0, 1)
        for code in (STEANE, ConcatenatedCode(STEANE, 2)):
            lowered = decompose_to_encoded_gates(circuit, code=code)
            assert len(lowered) == len(circuit)

    def test_non_self_dual_code_rejected(self):
        import numpy as np

        from repro.circuits import Circuit
        from repro.codes.css import CssCode
        from repro.kernels.decompose import decompose_to_encoded_gates

        shor = CssCode(
            name="Shor",
            n=9,
            k=1,
            d=3,
            x_stabilizers=np.array(
                [[1, 1, 1, 1, 1, 1, 0, 0, 0], [0, 0, 0, 1, 1, 1, 1, 1, 1]]
            ),
            z_stabilizers=np.array(
                [
                    [1, 1, 0, 0, 0, 0, 0, 0, 0],
                    [0, 1, 1, 0, 0, 0, 0, 0, 0],
                    [0, 0, 0, 1, 1, 0, 0, 0, 0],
                    [0, 0, 0, 0, 1, 1, 0, 0, 0],
                    [0, 0, 0, 0, 0, 0, 1, 1, 0],
                    [0, 0, 0, 0, 0, 0, 0, 1, 1],
                ]
            ),
            logical_x=np.array([1, 1, 1, 0, 0, 0, 0, 0, 0]),
            logical_z=np.array([1, 0, 0, 1, 0, 0, 1, 0, 0]),
        )
        with pytest.raises(ValueError, match="self-dual"):
            decompose_to_encoded_gates(Circuit(1).h(0), code=shor)


class TestCodeLevelDimension:
    def test_default_spaces_have_no_level_axis(self, qrca8):
        assert "code_level" not in architecture_space(qrca8).names
        assert "code_level" not in throughput_space(qrca8).names

    def test_contiguous_levels_become_integer_axis(self, qrca8):
        space = architecture_space(qrca8, code_levels=(1, 2))
        dim = space.dimension("code_level")
        assert isinstance(dim, Integer)
        assert (dim.lo, dim.hi) == (1, 2)
        assert space.grid_size() == architecture_space(qrca8).grid_size() * 2

    def test_sparse_levels_become_categorical_axis(self, qrca8):
        space = throughput_space(qrca8, code_levels=(1, 3))
        dim = space.dimension("code_level")
        assert isinstance(dim, Categorical)
        assert dim.choices == (1, 3)

    def test_invalid_levels_rejected(self, qrca8):
        with pytest.raises(ValueError):
            architecture_space(qrca8, code_levels=())
        with pytest.raises(ValueError):
            architecture_space(qrca8, code_levels=(0, 1))

    def test_fractional_code_level_rejected_not_truncated(self):
        from repro.explore.evaluator import Evaluator

        evaluator = Evaluator(kernel="qrca", width=8)
        with pytest.raises(ValueError, match="integer"):
            evaluator.canonicalize(
                {"arch": "qla", "factory_area": 500.0, "code_level": 1.9}
            )
        # Integral floats (e.g. from a numeric grid) are fine.
        canonical = evaluator.canonicalize(
            {"arch": "qla", "factory_area": 500.0, "code_level": 2.0}
        )
        assert canonical["code_level"] == 2

    def test_grid_enumeration_order_preserves_level1_prefix(self, qrca8):
        """The level axis appends; (arch, area) ordering is unchanged."""
        base = architecture_space(qrca8).grid_points()
        leveled = architecture_space(qrca8, code_levels=(1, 2)).grid_points()
        stripped = [
            {k: v for k, v in p.items() if k != "code_level"}
            for p in leveled
            if p["code_level"] == 1
        ]
        assert stripped == base
