"""Unit tests for the CLI entry point and the GQLA generalization."""

import pytest

from repro.__main__ import main
from repro.arch.architectures import GqlaConfig, QlaConfig
from repro.arch.supply import ZERO, DedicatedSupply
from repro.tech import ION_TRAP


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table9" in out and "fig15" in out

    def test_table(self, capsys):
        assert main(["table4"]) == 0
        assert "tturn" in capsys.readouterr().out

    def test_unknown(self, capsys):
        assert main(["tableXX"]) == 2
        assert "error" in capsys.readouterr().err

    def test_help(self, capsys):
        assert main(["--help"]) == 0
        assert "python -m repro" in capsys.readouterr().out

    def test_no_args_shows_help(self, capsys):
        assert main([]) == 0


class TestGqla:
    def test_is_a_qla(self):
        assert isinstance(GqlaConfig(), QlaConfig)

    def test_replication_validation(self):
        with pytest.raises(ValueError):
            GqlaConfig(replication=0)

    def test_per_qubit_area(self):
        config = GqlaConfig(replication=3)
        assert config.per_qubit_area() == 3 * 298

    def test_total_area(self):
        config = GqlaConfig(replication=2)
        assert config.area_for(10) == 10 * 2 * 298

    def test_builds_dedicated_supply(self):
        supply = GqlaConfig().build_supply(1000.0, 4, 10.0, 2.0, ION_TRAP)
        assert isinstance(supply, DedicatedSupply)

    def test_replication_buys_per_qubit_rate(self):
        """At the per-qubit hardware allowance, higher replication means
        proportionally more private bandwidth for a serial consumer."""
        base = GqlaConfig(replication=1)
        doubled = GqlaConfig(replication=2)
        nq = 4
        s1 = base.build_supply(base.area_for(nq), nq, 10.0, 2.0, ION_TRAP)
        s2 = doubled.build_supply(doubled.area_for(nq), nq, 10.0, 2.0, ION_TRAP)
        t1 = s1.acquire(ZERO, 0, 10, 0.0)
        t2 = s2.acquire(ZERO, 0, 10, 0.0)
        assert t2 == pytest.approx(t1 / 2)

    def test_dedication_pathology_persists(self):
        """Replication cannot move idle capacity between qubits: a serial
        consumer on one qubit still waits while others idle."""
        config = GqlaConfig(replication=4)
        nq = 8
        supply = config.build_supply(config.area_for(nq), nq, 10.0, 2.0, ION_TRAP)
        busy = supply.acquire(ZERO, 0, 100, 0.0)
        idle = supply.acquire(ZERO, 7, 1, 0.0)
        assert busy > 50 * idle  # qubit 7's generator barely touched
