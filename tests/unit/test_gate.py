"""Unit tests for repro.circuits.gate."""

import pytest

from repro.circuits.gate import (
    CLIFFORD_GATES,
    GATE_ARITY,
    NON_TRANSVERSAL_GATES,
    TRANSVERSAL_GATES,
    Gate,
    GateKind,
    GateType,
)


class TestGateConstruction:
    def test_one_qubit_gate(self):
        gate = Gate(GateType.H, (3,))
        assert gate.qubits == (3,)

    def test_two_qubit_gate(self):
        gate = Gate(GateType.CX, (0, 1))
        assert gate.is_two_qubit

    def test_toffoli_arity(self):
        gate = Gate(GateType.CCX, (0, 1, 2))
        assert len(gate.qubits) == 3

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            Gate(GateType.CX, (0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate(GateType.CX, (2, 2))

    def test_negative_qubit_rejected(self):
        with pytest.raises(ValueError):
            Gate(GateType.X, (-1,))

    def test_rz_requires_angle(self):
        with pytest.raises(ValueError):
            Gate(GateType.RZ, (0,))

    def test_rz_rejects_angle_below_one(self):
        with pytest.raises(ValueError):
            Gate(GateType.RZ, (0,), angle_k=0)

    def test_crz_carries_angle(self):
        gate = Gate(GateType.CRZ, (0, 1), angle_k=5)
        assert gate.angle_k == 5

    def test_measurement_requires_result(self):
        with pytest.raises(ValueError):
            Gate(GateType.MEASURE_Z, (0,))

    def test_measurement_with_result(self):
        gate = Gate(GateType.MEASURE_Z, (0,), result="m0")
        assert gate.is_measurement


class TestGateKind:
    def test_prep_kind(self):
        assert Gate(GateType.PREP_0, (0,)).kind is GateKind.PREP

    def test_measure_kind(self):
        assert Gate(GateType.MEASURE_X, (0,), result="m").kind is GateKind.MEASURE

    def test_two_qubit_kind(self):
        assert Gate(GateType.CZ, (0, 1)).kind is GateKind.TWO_QUBIT

    def test_toffoli_counts_as_multiqubit(self):
        assert Gate(GateType.CCX, (0, 1, 2)).kind is GateKind.TWO_QUBIT

    def test_one_qubit_kind(self):
        assert Gate(GateType.T, (0,)).kind is GateKind.ONE_QUBIT


class TestGateSets:
    def test_every_type_has_arity(self):
        for gate_type in GateType:
            assert gate_type in GATE_ARITY

    def test_transversal_and_non_transversal_disjoint(self):
        assert not (TRANSVERSAL_GATES & NON_TRANSVERSAL_GATES)

    def test_t_gate_non_transversal(self):
        assert GateType.T in NON_TRANSVERSAL_GATES

    def test_cx_transversal(self):
        assert GateType.CX in TRANSVERSAL_GATES

    def test_t_not_clifford(self):
        assert GateType.T not in CLIFFORD_GATES

    def test_h_s_cx_clifford(self):
        assert {GateType.H, GateType.S, GateType.CX} <= CLIFFORD_GATES

    def test_prep_is_transversal_property(self):
        assert Gate(GateType.PREP_0, (0,)).is_transversal

    def test_describe_mentions_gate_and_qubits(self):
        text = Gate(GateType.CX, (1, 4)).describe()
        assert "CX" in text and "q1" in text and "q4" in text

    def test_describe_mentions_angle(self):
        text = Gate(GateType.RZ, (0,), angle_k=4).describe()
        assert "2^4" in text

    def test_describe_mentions_condition(self):
        gate = Gate(GateType.X, (0,), condition="m0")
        assert "if m0" in gate.describe()
