"""Unit tests for repro.arch.supply."""

import pytest

from repro.arch.supply import (
    PI8,
    ZERO,
    DedicatedSupply,
    InfiniteSupply,
    PooledSupply,
    SteadyRateSupply,
)


class TestInfiniteSupply:
    def test_always_ready(self):
        supply = InfiniteSupply()
        assert supply.acquire(ZERO, 0, 100, 42.0) == 42.0


class TestSteadyRateSupply:
    def test_first_tokens_take_time(self):
        # 1 ancilla per ms = 0.001 per us: two tokens ready at t=2000.
        supply = SteadyRateSupply({ZERO: 1.0})
        assert supply.acquire(ZERO, 0, 2, 0.0) == pytest.approx(2000.0)

    def test_consumption_is_cumulative(self):
        supply = SteadyRateSupply({ZERO: 1.0})
        supply.acquire(ZERO, 0, 2, 0.0)
        assert supply.acquire(ZERO, 0, 1, 0.0) == pytest.approx(3000.0)

    def test_earliest_dominates_when_buffered(self):
        supply = SteadyRateSupply({ZERO: 1000.0})
        assert supply.acquire(ZERO, 0, 1, 500.0) == 500.0

    def test_zero_rate_never_ready(self):
        supply = SteadyRateSupply({ZERO: 0.0})
        assert supply.acquire(ZERO, 0, 1, 0.0) == float("inf")

    def test_unknown_kind_always_ready(self):
        supply = SteadyRateSupply({ZERO: 1.0})
        assert supply.acquire(PI8, 0, 5, 7.0) == 7.0

    def test_zero_count_noop(self):
        supply = SteadyRateSupply({ZERO: 1.0})
        assert supply.acquire(ZERO, 0, 0, 3.0) == 3.0
        assert supply.acquire(ZERO, 0, 1, 0.0) == pytest.approx(1000.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            SteadyRateSupply({ZERO: -1.0})

    def test_kinds_independent(self):
        supply = SteadyRateSupply({ZERO: 1.0, PI8: 2.0})
        supply.acquire(ZERO, 0, 10, 0.0)
        assert supply.acquire(PI8, 0, 1, 0.0) == pytest.approx(500.0)


class TestPooledSupply:
    def test_shared_across_qubits(self):
        supply = PooledSupply({ZERO: 1.0})
        supply.acquire(ZERO, 0, 1, 0.0)
        # A different qubit draws from the same pool.
        assert supply.acquire(ZERO, 99, 1, 0.0) == pytest.approx(2000.0)


class TestDedicatedSupply:
    def test_per_qubit_counters(self):
        supply = DedicatedSupply({ZERO: 1.0}, num_qubits=2)
        supply.acquire(ZERO, 0, 5, 0.0)
        # Qubit 1's generator is untouched by qubit 0's consumption.
        assert supply.acquire(ZERO, 1, 1, 0.0) == pytest.approx(1000.0)

    def test_idle_generators_cannot_help(self):
        """The QLA pathology: one busy qubit waits on its own generator
        while the others idle."""
        pooled = PooledSupply({ZERO: 4.0})
        dedicated = DedicatedSupply({ZERO: 1.0}, num_qubits=4)
        # Same aggregate capacity; serial consumer on qubit 0.
        t_pool = max(pooled.acquire(ZERO, 0, 2, 0.0) for _ in range(2))
        t_dedicated = max(dedicated.acquire(ZERO, 0, 2, 0.0) for _ in range(2))
        assert t_dedicated > t_pool

    def test_invalid_qubit_count(self):
        with pytest.raises(ValueError):
            DedicatedSupply({ZERO: 1.0}, num_qubits=0)

    def test_unknown_kind_ready(self):
        supply = DedicatedSupply({ZERO: 1.0}, num_qubits=1)
        assert supply.acquire(PI8, 0, 3, 1.0) == 1.0
