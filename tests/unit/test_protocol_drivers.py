"""Scalar-vs-batched statistical equivalence of the protocol drivers.

The batched engine must be a drop-in statistical replacement for the
scalar reference on every protocol, not just the Figure 4 strategies
(those are covered in test_vectorized.py). Error rates are inflated so
the Wilson intervals resolve in fractions of a second.
"""

import pytest

from repro.ancilla import (
    evaluate_cat_prep,
    evaluate_cat_prep_batched,
    evaluate_pi8_ancilla,
    evaluate_pi8_ancilla_batched,
)
from repro.tech import ErrorRates

FAST = ErrorRates(gate=2e-3, movement=2e-5, measurement=1e-3)
CLEAN = ErrorRates(gate=0.0, movement=0.0, measurement=0.0)


def _intervals_overlap(a, b):
    (lo_a, hi_a), (lo_b, hi_b) = a, b
    return lo_a <= hi_b and lo_b <= hi_a


class TestCatPrep:
    @pytest.mark.parametrize("width", [3, 7])
    def test_rates_agree(self, width):
        scalar = evaluate_cat_prep(width, trials=4000, seed=11, errors=FAST)
        batched = evaluate_cat_prep_batched(width, trials=40000, seed=13, errors=FAST)
        assert _intervals_overlap(
            scalar.error_rate_interval(), batched.error_rate_interval()
        )

    def test_clean_prep_never_bad(self):
        assert evaluate_cat_prep(3, trials=200, errors=CLEAN).bad == 0
        assert evaluate_cat_prep_batched(3, trials=200, errors=CLEAN).bad == 0

    def test_wider_cats_fail_more(self):
        narrow = evaluate_cat_prep_batched(3, trials=60000, seed=5, errors=FAST)
        wide = evaluate_cat_prep_batched(7, trials=60000, seed=5, errors=FAST)
        assert wide.error_rate > narrow.error_rate

    def test_reproducible(self):
        a = evaluate_cat_prep_batched(7, trials=20000, seed=3, errors=FAST)
        b = evaluate_cat_prep_batched(7, trials=20000, seed=3, errors=FAST)
        assert a.bad == b.bad

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            evaluate_cat_prep(3, trials=0)
        with pytest.raises(ValueError):
            evaluate_cat_prep_batched(3, trials=-1)


class TestPi8Ancilla:
    def test_rates_agree(self):
        scalar = evaluate_pi8_ancilla(trials=3000, seed=11, errors=FAST)
        batched = evaluate_pi8_ancilla_batched(trials=40000, seed=13, errors=FAST)
        assert _intervals_overlap(
            scalar.error_rate_interval(), batched.error_rate_interval()
        )

    def test_clean_pipeline_never_bad(self):
        assert evaluate_pi8_ancilla(trials=100, errors=CLEAN).bad == 0
        assert evaluate_pi8_ancilla_batched(trials=100, errors=CLEAN).bad == 0

    def test_reproducible(self):
        a = evaluate_pi8_ancilla_batched(trials=20000, seed=3, errors=FAST)
        b = evaluate_pi8_ancilla_batched(trials=20000, seed=3, errors=FAST)
        assert a.bad == b.bad

    def test_batching_equivalent_totals(self):
        report = evaluate_pi8_ancilla_batched(trials=2500, seed=1, errors=FAST)
        assert report.trials == 2500
        assert report.good + report.bad == 2500

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            evaluate_pi8_ancilla(trials=0)
        with pytest.raises(ValueError):
            evaluate_pi8_ancilla_batched(trials=0)
