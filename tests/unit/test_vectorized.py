"""Unit tests for repro.error.vectorized: batch Monte Carlo engine."""

import numpy as np
import pytest

from repro.ancilla.evaluation import PrepStrategy, evaluate_strategy
from repro.error.vectorized import (
    BatchFrames,
    VectorizedSimulator,
    _DECODE,
    evaluate_strategy_vectorized,
)
from repro.codes.steane import HAMMING_PARITY_CHECK, STEANE
from repro.tech import ErrorRates

CLEAN = ErrorRates(gate=0.0, movement=0.0, measurement=0.0)
FAST = ErrorRates(gate=2e-3, movement=2e-5, measurement=0.0)


class TestDecodeTable:
    def test_zero_syndrome_zero_correction(self):
        assert not _DECODE[0].any()

    def test_single_errors_decode_to_themselves(self):
        for q in range(7):
            err = np.zeros((1, 7), dtype=np.uint8)
            err[0, q] = 1
            syndrome = (err @ HAMMING_PARITY_CHECK.T) % 2
            key = syndrome[0, 0] | (syndrome[0, 1] << 1) | (syndrome[0, 2] << 2)
            assert np.array_equal(_DECODE[key], err[0])


class TestCleanExecution:
    def test_clean_encode_leaves_no_error(self):
        sim = VectorizedSimulator(errors=CLEAN)
        frames = BatchFrames(100, 7)
        sim.encode(frames, range(7), np.ones(100, dtype=bool))
        assert not frames.x.any()
        assert not frames.z.any()

    def test_clean_verification_passes_all(self):
        sim = VectorizedSimulator(errors=CLEAN)
        frames = BatchFrames(50, 10)
        passed = sim.verify_after_encode(
            frames, range(7), (7, 8, 9), np.ones(50, dtype=bool)
        )
        assert passed.all()

    def test_clean_strategies_zero_error(self):
        for strategy in PrepStrategy:
            report = evaluate_strategy_vectorized(
                strategy, trials=500, seed=0, errors=CLEAN
            )
            assert report.result.bad == 0
            assert report.result.discarded == 0

    def test_inactive_trials_untouched(self):
        sim = VectorizedSimulator(errors=CLEAN)
        frames = BatchFrames(10, 7)
        frames.x[5, 3] = 1
        active = np.zeros(10, dtype=bool)
        sim.encode(frames, range(7), active)
        assert frames.x[5, 3] == 1  # preps did not clear inactive trials


class TestGradeBad:
    def test_clean_frames_good(self):
        sim = VectorizedSimulator(errors=CLEAN)
        frames = BatchFrames(5, 7)
        assert not sim.grade_bad(frames, range(7)).any()

    def test_single_error_good(self):
        sim = VectorizedSimulator(errors=CLEAN)
        frames = BatchFrames(1, 7)
        frames.x[0, 2] = 1
        assert not sim.grade_bad(frames, range(7)).any()

    def test_logical_bad(self):
        sim = VectorizedSimulator(errors=CLEAN)
        frames = BatchFrames(1, 7)
        frames.x[0, :] = 1  # logical X
        assert sim.grade_bad(frames, range(7)).all()

    def test_stabilizer_good(self):
        sim = VectorizedSimulator(errors=CLEAN)
        frames = BatchFrames(1, 7)
        frames.z[0, :] = HAMMING_PARITY_CHECK[1]
        assert not sim.grade_bad(frames, range(7)).any()

    def test_agrees_with_scalar_grading(self):
        """Random patterns grade identically to the scalar code path."""
        rng = np.random.default_rng(5)
        sim = VectorizedSimulator(errors=CLEAN)
        patterns = rng.integers(0, 2, size=(200, 7), dtype=np.uint8)
        z_patterns = rng.integers(0, 2, size=(200, 7), dtype=np.uint8)
        frames = BatchFrames(200, 7)
        frames.x[:] = patterns
        frames.z[:] = z_patterns
        vec = sim.grade_bad(frames, range(7))
        for i in range(200):
            scalar = STEANE.is_uncorrectable(patterns[i], z_patterns[i])
            assert bool(vec[i]) == scalar, i


class TestEngineAgreement:
    """The two engines implement the same protocol; rates must agree
    within sampling noise at inflated error rates."""

    @pytest.mark.parametrize(
        "strategy",
        [PrepStrategy.BASIC, PrepStrategy.VERIFY_ONLY, PrepStrategy.CORRECT_ONLY],
    )
    def test_rates_agree(self, strategy):
        scalar = evaluate_strategy(strategy, trials=4000, seed=11, errors=FAST)
        vector = evaluate_strategy_vectorized(
            strategy, trials=40000, seed=13, errors=FAST
        )
        lo_s, hi_s = scalar.result.error_rate_interval()
        lo_v, hi_v = vector.result.error_rate_interval()
        assert lo_s <= hi_v and lo_v <= hi_s  # overlapping intervals

    def test_discard_rates_agree(self):
        scalar = evaluate_strategy(
            PrepStrategy.VERIFY_ONLY, trials=4000, seed=11, errors=FAST
        )
        vector = evaluate_strategy_vectorized(
            PrepStrategy.VERIFY_ONLY, trials=40000, seed=13, errors=FAST
        )
        assert vector.discard_rate == pytest.approx(scalar.discard_rate, rel=0.4)

    def test_reproducible(self):
        a = evaluate_strategy_vectorized(
            PrepStrategy.BASIC, trials=20000, seed=3, errors=FAST
        )
        b = evaluate_strategy_vectorized(
            PrepStrategy.BASIC, trials=20000, seed=3, errors=FAST
        )
        assert a.result.bad == b.result.bad

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            evaluate_strategy_vectorized(PrepStrategy.BASIC, trials=0)

    def test_batching_equivalent_totals(self):
        import repro.error.vectorized as vec

        old = vec._BATCH
        try:
            vec._BATCH = 1000
            report = evaluate_strategy_vectorized(
                PrepStrategy.BASIC, trials=2500, seed=1, errors=FAST
            )
            assert report.result.trials == 2500
        finally:
            vec._BATCH = old
