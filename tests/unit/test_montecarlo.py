"""Unit tests for repro.error.montecarlo."""

import pytest

from repro.circuits import Circuit
from repro.error.montecarlo import (
    MonteCarloResult,
    MonteCarloSimulator,
    TrialOutcome,
)
from repro.error.pauli import PauliFrame
from repro.tech import ErrorRates


class TestMonteCarloResult:
    def test_error_rate_over_accepted(self):
        result = MonteCarloResult(trials=100, good=80, bad=10, discarded=10)
        assert result.error_rate == pytest.approx(10 / 90)

    def test_discard_rate_over_all(self):
        result = MonteCarloResult(trials=100, good=80, bad=10, discarded=10)
        assert result.discard_rate == pytest.approx(0.1)

    def test_empty_result_rates(self):
        result = MonteCarloResult()
        assert result.error_rate == 0.0
        assert result.discard_rate == 0.0

    def test_record(self):
        result = MonteCarloResult()
        result.record(TrialOutcome.GOOD)
        result.record(TrialOutcome.BAD)
        result.record(TrialOutcome.DISCARDED)
        assert (result.good, result.bad, result.discarded) == (1, 1, 1)

    def test_merge(self):
        a = MonteCarloResult(trials=10, good=9, bad=1)
        b = MonteCarloResult(trials=5, good=5)
        merged = a.merge(b)
        assert merged.trials == 15
        assert merged.bad == 1

    def test_wilson_interval_brackets_estimate(self):
        result = MonteCarloResult(trials=1000, good=990, bad=10)
        lo, hi = result.error_rate_interval()
        assert lo < result.error_rate < hi

    def test_wilson_interval_empty(self):
        assert MonteCarloResult().error_rate_interval() == (0.0, 1.0)


class TestErrorInjection:
    def test_zero_rates_inject_nothing(self):
        sim = MonteCarloSimulator(ErrorRates(gate=0.0, movement=0.0, measurement=0.0))
        frame = PauliFrame(2)
        circ = Circuit(2).h(0).cx(0, 1).t(1)
        sim.run_circuit(circ, frame)
        assert frame.is_identity()

    def test_certain_gate_error_always_corrupts(self):
        sim = MonteCarloSimulator(ErrorRates(gate=1.0, movement=0.0, measurement=0.0))
        frame = PauliFrame(1)
        sim.run_circuit(Circuit(1).h(0), frame)
        assert not frame.is_identity()

    def test_prep_errors_never_z(self):
        """Z on a fresh |0> is not an error; preps inject X/Y only."""
        sim = MonteCarloSimulator(
            ErrorRates(gate=1.0, movement=0.0, measurement=0.0), seed=3
        )
        for _ in range(50):
            frame = PauliFrame(1)
            sim.run_circuit(Circuit(1).prep_0(0), frame)
            assert frame.x[0] == 1  # X or Y, always includes the X part

    def test_movement_error_binomial(self):
        sim = MonteCarloSimulator(ErrorRates(gate=0.0, movement=1.0, measurement=0.0))
        frame = PauliFrame(1)
        sim.inject_movement_error(frame, 0, 1)
        assert not frame.is_identity()

    def test_movement_zero_ops_noop(self):
        sim = MonteCarloSimulator(ErrorRates(movement=1.0))
        frame = PauliFrame(1)
        sim.inject_movement_error(frame, 0, 0)
        assert frame.is_identity()

    def test_reproducible_with_seed(self):
        def run(seed):
            sim = MonteCarloSimulator(ErrorRates(gate=0.5), seed=seed)
            frame = PauliFrame(3)
            circ = Circuit(3).h(0).cx(0, 1).cx(1, 2)
            sim.run_circuit(circ, frame)
            return repr(frame)

        assert run(7) == run(7)
        # Different seeds usually diverge; check across several.
        assert any(run(7) != run(s) for s in range(8, 15))


class TestMeasurementHandling:
    def test_flip_bits_reported(self):
        sim = MonteCarloSimulator(ErrorRates(gate=0.0, movement=0.0, measurement=0.0))
        frame = PauliFrame(1)
        frame.apply_x(0)
        flips = sim.run_circuit(Circuit(1).measure_z(0, "m"), frame)
        assert flips["m"] == 1

    def test_clean_measurement_zero_flip(self):
        sim = MonteCarloSimulator(ErrorRates(gate=0.0, movement=0.0, measurement=0.0))
        flips = sim.run_circuit(Circuit(1).measure_z(0, "m"), PauliFrame(1))
        assert flips["m"] == 0

    def test_measurement_clears_qubit(self):
        sim = MonteCarloSimulator(ErrorRates(gate=0.0, movement=0.0, measurement=0.0))
        frame = PauliFrame(1)
        frame.apply_y(0)
        sim.run_circuit(Circuit(1).measure_z(0, "m"), frame)
        assert frame.is_identity()

    def test_readout_error_flips(self):
        sim = MonteCarloSimulator(ErrorRates(gate=0.0, movement=0.0, measurement=1.0))
        flips = sim.run_circuit(Circuit(1).measure_z(0, "m"), PauliFrame(1))
        assert flips["m"] == 1

    def test_conditional_fires_on_flip(self):
        sim = MonteCarloSimulator(ErrorRates(gate=0.0, movement=0.0, measurement=0.0))
        frame = PauliFrame(2)
        frame.apply_x(0)
        circ = Circuit(2).measure_z(0, "m").x(1, condition="m")
        sim.run_circuit(circ, frame)
        # The conditional X executed (it is a Pauli: frame unchanged), but
        # no error means the only sign is that it did not raise.
        assert frame.x[1] == 0

    def test_qubit_map_applies(self):
        sim = MonteCarloSimulator(ErrorRates(gate=0.0, movement=0.0, measurement=0.0))
        frame = PauliFrame(5)
        frame.apply_x(4)
        flips = sim.run_circuit(
            Circuit(1).measure_z(0, "m"), frame, qubit_map={0: 4}
        )
        assert flips["m"] == 1


class TestEstimate:
    def test_estimate_counts_trials(self):
        sim = MonteCarloSimulator()
        result = sim.estimate(lambda s: TrialOutcome.GOOD, trials=50)
        assert result.trials == 50
        assert result.good == 50

    def test_estimate_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            MonteCarloSimulator().estimate(lambda s: TrialOutcome.GOOD, trials=0)
