"""Equivalence tests: point-batched engine vs the serial dataflow engines.

The point-batched engine (:mod:`repro.arch.batched`) must be
*bit-identical* to both serial engines — every ``SimulationResult`` field
compared with exact equality, never approx — across all supply models
(infinite, steady, pooled, dedicated, zero-rate and untracked edge
cases), with identical observable supply state afterwards. CQLA cache
mode rides a program-order lockstep kernel; only supplies without a
declared ready-spec fall back to the per-point serial path, and
``REPRO_FORCE_PER_POINT=1`` forces that path for debugging.
"""

import math

import numpy as np
import pytest

from repro.arch import simulate_batch
from repro.arch.architectures import (
    ArchitectureKind,
    CqlaConfig,
    MultiplexedConfig,
    QlaConfig,
)
from repro.arch.batched import (
    _run_levels,
    dedicated_ready_matrix,
    steady_ready_matrix,
)
from repro.arch.simulator import DataflowSimulator, _steady_ready_times
from repro.arch.supply import (
    PI8,
    ZERO,
    DedicatedSupply,
    InfiniteSupply,
    PooledSupply,
    SteadyRateSupply,
)
from repro.circuits import Circuit

KERNELS = ("qrca", "qcla", "qft")

_FACTORY_AREAS = (100.0, 400.0, 1600.0, 25000.0)


class _CeilingSupply:
    """Custom supply: ancillae materialize on 1 ms boundaries."""

    def acquire(self, kind, qubit, count, earliest):
        return math.ceil(earliest / 1000.0) * 1000.0


def _serial(analysis, supplies, config=None, engine="compiled", cqla=None):
    """Per-point serial results for ``supplies`` (fresh simulator each)."""
    out = []
    move_1q = config.movement_penalty(False, analysis.tech) if config else 0.0
    move_2q = config.movement_penalty(True, analysis.tech) if config else 0.0
    for supply in supplies:
        sim = DataflowSimulator(
            analysis.circuit,
            analysis.tech,
            supply=supply,
            movement_penalty_us=move_1q,
            two_qubit_movement_penalty_us=move_2q,
            cqla=cqla,
        )
        out.append(sim.run() if engine == "compiled" else sim.run_legacy())
    return out


def _batched(analysis, supplies, config=None, cqla=None):
    move_1q = config.movement_penalty(False, analysis.tech) if config else 0.0
    move_2q = config.movement_penalty(True, analysis.tech) if config else 0.0
    return simulate_batch(
        analysis.circuit,
        supplies,
        analysis.tech,
        movement_penalty_us=move_1q,
        two_qubit_movement_penalty_us=move_2q,
        cqla=cqla,
    )


def _steady_rates(analysis):
    """A bracketing rate ladder plus the zero-rate starvation edge."""
    bw = analysis.zero_bandwidth_per_ms
    return list(np.geomspace(bw / 16.0, bw * 16.0, 7)) + [0.0]


class TestSteadyBatches:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_rate_sweep_identical_to_both_engines(self, kernel, request):
        analysis = request.getfixturevalue(f"{kernel}8")
        ratio = analysis.pi8_bandwidth_per_ms / analysis.zero_bandwidth_per_ms

        def supplies():
            return [
                SteadyRateSupply({ZERO: rate, PI8: rate * ratio})
                for rate in _steady_rates(analysis)
            ]

        batched = _batched(analysis, supplies())
        assert batched == _serial(analysis, supplies())
        assert batched == _serial(analysis, supplies(), engine="legacy")

    def test_supply_state_advanced_identically(self, qrca8):
        rate = qrca8.zero_bandwidth_per_ms / 2.0
        batch_supply = SteadyRateSupply({ZERO: rate, PI8: rate})
        serial_supply = SteadyRateSupply({ZERO: rate, PI8: rate})
        _batched(qrca8, [batch_supply])
        _serial(qrca8, [serial_supply])
        for kind in (ZERO, PI8):
            assert batch_supply.consumed_so_far(kind) == (
                serial_supply.consumed_so_far(kind)
            )

    def test_zero_rate_starves_every_point(self, qrca8):
        supplies = [SteadyRateSupply({ZERO: 0.0}) for _ in range(3)]
        results = _batched(qrca8, supplies)
        assert all(r.makespan_us == float("inf") for r in results)
        assert results == _serial(
            qrca8, [SteadyRateSupply({ZERO: 0.0}) for _ in range(3)]
        )

    def test_zero_rate_pi8_only(self, qrca8):
        """Starved pi/8, healthy zeros — the mixed-infinity edge."""
        rate = qrca8.zero_bandwidth_per_ms

        def supplies():
            return [SteadyRateSupply({ZERO: rate, PI8: 0.0})]

        assert _batched(qrca8, supplies()) == _serial(qrca8, supplies())

    def test_untracked_kinds_mix_in_one_call(self, qrca8):
        """Points with different tracked-kind signatures sub-batch safely."""
        rate = qrca8.zero_bandwidth_per_ms / 2.0

        def supplies():
            return [
                SteadyRateSupply({ZERO: rate, PI8: rate}),
                SteadyRateSupply({ZERO: rate}),  # pi/8 untracked
                SteadyRateSupply({PI8: rate}),  # zero untracked
                SteadyRateSupply({}),  # nothing tracked: unconstrained
                InfiniteSupply(),
            ]

        assert _batched(qrca8, supplies()) == _serial(qrca8, supplies())

    def test_consumed_supply_resumes_exactly(self, qrca8):
        """A supply with prior consumption batches from its real state."""

        def supplies():
            supply = SteadyRateSupply({ZERO: 5.0, PI8: 1.0})
            supply.acquire(ZERO, 0, 7, 0.0)
            supply.acquire(PI8, 0, 3, 0.0)
            return [supply]

        assert _batched(qrca8, supplies()) == _serial(qrca8, supplies())


class TestArchitectureBatches:
    @pytest.mark.parametrize("config", [QlaConfig(), MultiplexedConfig()])
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_area_ladder_identical(self, kernel, config, request):
        analysis = request.getfixturevalue(f"{kernel}8")

        def supplies():
            return [
                config.build_supply(
                    area,
                    analysis.circuit.num_qubits,
                    analysis.zero_bandwidth_per_ms,
                    analysis.pi8_bandwidth_per_ms,
                    analysis.tech,
                )
                for area in _FACTORY_AREAS
            ]

        batched = _batched(analysis, supplies(), config)
        assert batched == _serial(analysis, supplies(), config)
        assert batched == _serial(analysis, supplies(), config, engine="legacy")

    def test_dedicated_counters_advanced_identically(self, qrca8):
        nq = qrca8.circuit.num_qubits

        def supply():
            return DedicatedSupply({ZERO: 0.05, PI8: 0.01}, nq)

        batch_supply, serial_supply = supply(), supply()
        _batched(qrca8, [batch_supply])
        _serial(qrca8, [serial_supply])
        for kind in (ZERO, PI8):
            assert batch_supply.dedicated_state(kind) == (
                serial_supply.dedicated_state(kind)
            )

    def test_dedicated_zero_rate_starves(self, qrca8):
        nq = qrca8.circuit.num_qubits

        def supplies():
            return [DedicatedSupply({ZERO: 0.0, PI8: 1.0}, nq)]

        batched = _batched(qrca8, supplies())
        assert batched[0].makespan_us == float("inf")
        assert batched == _serial(qrca8, supplies())

    def test_pooled_supply_takes_steady_path(self, qrca8):
        def supplies():
            return [PooledSupply({ZERO: 2.0, PI8: 0.5}) for _ in range(3)]

        assert _batched(qrca8, supplies()) == _serial(qrca8, supplies())


class TestCqlaBatches:
    """CQLA cache mode rides the lockstep kernel — no per-point fallback."""

    @staticmethod
    def _cqla_supplies(analysis, config, areas=_FACTORY_AREAS):
        return [
            config.build_supply(
                area,
                analysis.circuit.num_qubits,
                analysis.zero_bandwidth_per_ms,
                analysis.pi8_bandwidth_per_ms,
                analysis.tech,
            )
            for area in areas
        ]

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_area_ladder_identical_to_both_engines(self, kernel, request):
        analysis = request.getfixturevalue(f"{kernel}8")
        config = CqlaConfig()
        batched = _batched(
            analysis, self._cqla_supplies(analysis, config), config, cqla=config
        )
        assert batched == _serial(
            analysis, self._cqla_supplies(analysis, config), config, cqla=config
        )
        assert batched == _serial(
            analysis,
            self._cqla_supplies(analysis, config),
            config,
            engine="legacy",
            cqla=config,
        )
        assert any(r.cache_misses > 0 for r in batched)

    def test_every_cqla_point_takes_lockstep_kernel(self, qrca8, monkeypatch):
        """The ladder must route through the vectorized CQLA kernel, not
        the per-point fallback and not the level kernel."""
        import repro.arch.batched as batched_module

        real = batched_module._run_cqla_lockstep
        calls = []

        def spy(cc, points, *args, **kwargs):
            calls.append(points)
            return real(cc, points, *args, **kwargs)

        def boom(*args, **kwargs):
            raise AssertionError("level kernel must not run for CQLA")

        monkeypatch.setattr(batched_module, "_run_cqla_lockstep", spy)
        monkeypatch.setattr(batched_module, "_run_levels", boom)
        config = CqlaConfig()
        supplies = self._cqla_supplies(qrca8, config)
        _batched(qrca8, supplies, config, cqla=config)
        assert sum(calls) == len(supplies)

    @pytest.mark.parametrize(
        "config",
        [CqlaConfig(cache_fraction=0.5, ports=1), CqlaConfig(ports=4)],
    )
    def test_cache_and_port_variants_identical(self, qrca8, config):
        batched = _batched(
            qrca8, self._cqla_supplies(qrca8, config), config, cqla=config
        )
        assert batched == _serial(
            qrca8, self._cqla_supplies(qrca8, config), config, cqla=config
        )

    def test_cqla_supply_state_advanced_identically(self, qrca8):
        config = CqlaConfig()
        batch_supplies = self._cqla_supplies(qrca8, config)
        serial_supplies = self._cqla_supplies(qrca8, config)
        _batched(qrca8, batch_supplies, config, cqla=config)
        _serial(qrca8, serial_supplies, config, cqla=config)
        for batch_supply, serial_supply in zip(batch_supplies, serial_supplies):
            for kind in (ZERO, PI8):
                assert batch_supply.consumed_so_far(kind) == (
                    serial_supply.consumed_so_far(kind)
                )

    def test_unconstrained_supply_with_cqla_broadcasts(self, qrca8):
        config = CqlaConfig()

        def supplies():
            return [InfiniteSupply(), InfiniteSupply(), InfiniteSupply()]

        batched = _batched(qrca8, supplies(), config, cqla=config)
        assert batched == _serial(qrca8, supplies(), config, cqla=config)
        assert batched[0] == batched[1] == batched[2]

    def test_mixed_batch_with_custom_supply_under_cqla(self, qrca8):
        """Spec-less supplies still fall back, CQLA neighbors still batch."""
        config = CqlaConfig()

        def supplies():
            return self._cqla_supplies(qrca8, config, _FACTORY_AREAS[:2]) + [
                _CeilingSupply()
            ]

        assert _batched(qrca8, supplies(), config, cqla=config) == _serial(
            qrca8, supplies(), config, cqla=config
        )


class TestFallbacks:
    def test_custom_supply_routes_per_point(self, qrca8, monkeypatch):
        """Unrecognized supplies bypass the vectorized kernel entirely."""
        import repro.arch.batched as batched_module

        def boom(*args, **kwargs):
            raise AssertionError("vectorized kernel must not run")

        monkeypatch.setattr(batched_module, "_run_levels", boom)
        supplies = [_CeilingSupply(), _CeilingSupply()]
        results = simulate_batch(qrca8.circuit, supplies, qrca8.tech)
        assert results == _serial(qrca8, [_CeilingSupply(), _CeilingSupply()])

    def test_force_per_point_hatch_matches_batched(self, qrca8, monkeypatch):
        """REPRO_FORCE_PER_POINT=1 sends every point down the serial path
        without changing a single result bit."""
        import repro.arch.batched as batched_module

        def boom(*args, **kwargs):
            raise AssertionError("vectorized kernel must not run")

        def supplies():
            rate = qrca8.zero_bandwidth_per_ms / 2.0
            return [
                SteadyRateSupply({ZERO: rate, PI8: rate}),
                InfiniteSupply(),
                DedicatedSupply({ZERO: 0.05, PI8: 0.01}, qrca8.circuit.num_qubits),
            ]

        vectorized = _batched(qrca8, supplies())
        monkeypatch.setenv("REPRO_FORCE_PER_POINT", "1")
        monkeypatch.setattr(batched_module, "_run_levels", boom)
        monkeypatch.setattr(batched_module, "_run_cqla_lockstep", boom)
        assert _batched(qrca8, supplies()) == vectorized

    def test_instance_level_acquire_override_falls_back(self, qrca8):
        def supplies():
            supply = InfiniteSupply()
            supply.acquire = lambda kind, qubit, count, earliest: earliest + 77.0
            return [supply]

        assert _batched(qrca8, supplies()) == _serial(qrca8, supplies())

    def test_mixed_batch_of_every_model(self, qrca8):
        """One call: infinite + steady + dedicated + custom, order kept."""
        nq = qrca8.circuit.num_qubits

        def supplies():
            return [
                SteadyRateSupply({ZERO: 3.0, PI8: 0.5}),
                InfiniteSupply(),
                _CeilingSupply(),
                DedicatedSupply({ZERO: 0.05, PI8: 0.01}, nq),
                SteadyRateSupply({ZERO: 30.0, PI8: 5.0}),
            ]

        assert _batched(qrca8, supplies()) == _serial(qrca8, supplies())


class TestEdgeShapes:
    def test_empty_supply_list(self, qrca8):
        assert simulate_batch(qrca8.circuit, [], qrca8.tech) == []

    def test_aliased_rate_limited_supply_rejected(self, qrca8):
        """Serial runs thread one object's consumption point to point; a
        batch cannot, so sharing an instance must fail loud."""
        shared = SteadyRateSupply({ZERO: 5.0, PI8: 1.0})
        with pytest.raises(ValueError, match="same object"):
            simulate_batch(qrca8.circuit, [shared, shared], qrca8.tech)
        nq = qrca8.circuit.num_qubits
        dedicated = DedicatedSupply({ZERO: 0.1}, nq)
        with pytest.raises(ValueError, match="same object"):
            simulate_batch(qrca8.circuit, [dedicated, dedicated], qrca8.tech)

    def test_aliased_stateless_supply_allowed(self, qrca8):
        """InfiniteSupply carries no state: duplicates are harmless."""
        shared = InfiniteSupply()
        results = simulate_batch(qrca8.circuit, [shared, shared], qrca8.tech)
        assert results[0] == results[1]

    def test_empty_circuit(self):
        circuit = Circuit(2)
        results = simulate_batch(
            circuit, [InfiniteSupply(), SteadyRateSupply({ZERO: 1.0})]
        )
        assert [r.makespan_us for r in results] == [0.0, 0.0]
        assert all(r.gates == 0 for r in results)

    def test_conditional_toffoli_circuit(self):
        """Arity-3 gates, measurements and condition bits, batched."""
        circuit = (
            Circuit(4)
            .ccx(0, 1, 2)
            .measure_z(2, "m0")
            .x(3, condition="m0")
            .t(3)
            .measure_x(3, "m1")
            .z(0, condition="m1")
        )
        rates = [0.5, 2.0, 0.0]

        def supplies():
            return [SteadyRateSupply({ZERO: r, PI8: r}) for r in rates]

        batched = simulate_batch(circuit, supplies())
        serial = [
            DataflowSimulator(circuit, supply=s).run() for s in supplies()
        ]
        legacy = [
            DataflowSimulator(circuit, supply=s).run_legacy()
            for s in supplies()
        ]
        assert batched == serial == legacy


class TestSweepGrids:
    """The acceptance shape: Figure 8 / Figure 15 grids, batched vs serial."""

    def test_figure8_grid_bit_identical_across_engines(self, qrca8):
        from repro.arch.sweep import throughput_sweep

        batched = throughput_sweep(qrca8)  # default Figure 8 grid
        legacy = throughput_sweep(qrca8, engine="legacy")
        assert batched == legacy

    def test_figure15_grid_bit_identical_across_engines(self, qcla8):
        from repro.arch.sweep import area_sweep

        batched = area_sweep(qcla8)  # default Figure 15 grid
        legacy = area_sweep(qcla8, engine="legacy")
        assert batched == legacy

    @pytest.fixture
    def traced(self):
        from repro.obs import trace

        tracer = trace.enable()
        try:
            yield tracer
        finally:
            trace.disable()

    @staticmethod
    def _batch_spans(tracer):
        return [
            event["args"]
            for event in tracer.events()
            if event["name"] == "batched.simulate_batch"
        ]

    def test_paper_sweeps_never_fall_back(self, qrca8, traced):
        """Figures 8, 15 and the Figure-16 CQLA comparison sweep must show
        a fleet-wide batched fallback count of zero."""
        from repro.arch.sweep import area_sweep, throughput_sweep

        throughput_sweep(qrca8)  # Figure 8
        area_sweep(qrca8)  # Figure 15 (QLA + CQLA + Multiplexed ladders)
        area_sweep(
            qrca8,
            kinds=[ArchitectureKind.CQLA],
            cqla=CqlaConfig(cache_fraction=0.25),
        )  # Figure-16-shaped: the Qalypso-vs-CQLA cache configuration
        spans = self._batch_spans(traced)
        assert spans, "paper sweeps must route through simulate_batch"
        assert sum(span["fallback"] for span in spans) == 0
        assert all(not span["forced"] for span in spans)

    def test_evaluator_batch_equals_per_point_evaluation(self, qrca8):
        """A mixed miss batch resolves to the same evaluations as N
        single-point calls (the pre-batching code path)."""
        from repro.explore.evaluator import (
            Evaluator,
            KernelSummary,
            evaluate_design_point,
        )

        points = (
            [{"zero_rate": r, "pi8_ratio": 0.3} for r in (1.0, 8.0, 64.0)]
            + [{"arch": "qla", "factory_area": a} for a in (200.0, 900.0)]
            + [{"arch": "multiplexed", "factory_area": a} for a in (200.0, 900.0)]
            + [{"arch": "cqla", "factory_area": 400.0}]
        )
        evaluator = Evaluator(analysis=qrca8)
        batch = evaluator.evaluate(points)
        summary = KernelSummary.from_analysis(qrca8)
        singles = [
            evaluate_design_point(
                summary, evaluator.canonicalize(p), None, "compiled"
            )
            for p in points
        ]
        assert batch == singles


class TestReadyMatrices:
    def test_steady_matrix_rows_match_serial_ready_vector(self, qrca8):
        cc = qrca8.compiled_circuit()
        rates = np.array([1.5, 0.25, 0.0]) / 1000.0
        matrix = steady_ready_matrix(
            cc,
            rates,
            np.zeros(3),
            rates / 2.0,
            np.zeros(3),
        )
        assert matrix.shape == (3, cc.num_gates)
        for row, rate in zip(matrix, rates):
            serial = _steady_ready_times(
                cc,
                SteadyRateSupply(
                    {ZERO: rate * 1000.0, PI8: rate * 500.0}
                ),
            )
            assert np.array_equal(row, serial)

    def test_gate_major_is_exact_transpose(self, qrca8):
        cc = qrca8.compiled_circuit()
        rates = np.array([1.5, 0.25]) / 1000.0
        consumed = np.array([4.0, 0.0])
        points_major = steady_ready_matrix(
            cc, rates, consumed, rates, consumed
        )
        gate_major = steady_ready_matrix(
            cc, rates, consumed, rates, consumed, gate_major=True
        )
        assert np.array_equal(points_major, gate_major.T)

    def test_dedicated_matrix_orientations_agree(self, qrca8):
        cc = qrca8.compiled_circuit()
        nq = cc.num_qubits
        rng = np.random.default_rng(3)
        rates = rng.uniform(0.001, 0.1, size=(2, nq))
        rates[1, 0] = 0.0
        consumed = rng.integers(0, 5, size=(2, nq)).astype(np.float64)
        points_major = dedicated_ready_matrix(cc, rates, consumed, rates, consumed)
        gate_major = dedicated_ready_matrix(
            cc, rates, consumed, rates, consumed, gate_major=True
        )
        assert np.array_equal(points_major, gate_major.T)


class TestSerialReadyMemo:
    def test_ready_vector_memoized_per_rates_fingerprint(self, qrca8):
        cc = qrca8.compiled_circuit()
        first = _steady_ready_times(cc, SteadyRateSupply({ZERO: 3.0, PI8: 1.0}))
        again = _steady_ready_times(cc, SteadyRateSupply({ZERO: 3.0, PI8: 1.0}))
        assert first is again  # same object: served from the memo
        assert isinstance(first, np.ndarray)
        assert not first.flags.writeable
        other = _steady_ready_times(cc, SteadyRateSupply({ZERO: 4.0, PI8: 1.0}))
        assert other is not first

    def test_consumed_state_lands_on_different_entry(self, qrca8):
        cc = qrca8.compiled_circuit()
        supply = SteadyRateSupply({ZERO: 3.0, PI8: 1.0})
        fresh = _steady_ready_times(cc, supply)
        supply.advance(ZERO, 10)
        shifted = _steady_ready_times(cc, supply)
        assert shifted is not fresh
        assert shifted[0] > fresh[0]
