"""Bit-identical equivalence of the compiled kernel-analysis hot paths.

The seed implementation walked per-gate ``ScheduleEntry`` objects (ASAP
schedule, critical-path extraction, and an O(gates x buckets) bucket
loop). The compiled implementation reduces the memoized compiled-circuit
arrays with numpy. These tests re-run the seed logic verbatim and demand
exact (==) equality — same floats, same chain, same profile — on the
8-bit kernels and on all three 32-bit kernels the paper reports.
"""

import pytest

from repro.circuits import asap_schedule
from repro.circuits.dag import CircuitDag
from repro.kernels.analysis import QecAwareLatency, ZEROS_PER_QEC, _PI8_TYPES


def _seed_schedule(ka):
    return asap_schedule(ka.circuit, QecAwareLatency(ka._logical))


def _seed_table2(ka):
    """The seed table2_row: ScheduleEntry walk + CircuitDag backtrack."""
    schedule = _seed_schedule(ka)
    dag = CircuitDag(ka.circuit)
    current = max(schedule, key=lambda e: e.finish)
    chain = [current]
    while True:
        preds = dag.predecessors(current.index)
        if not preds:
            break
        blocker = max((schedule[p] for p in preds), key=lambda e: e.finish)
        chain.append(blocker)
        current = blocker
    chain.reverse()
    qec_each = ka._logical.qec_interaction_latency()
    data_op = sum(ka._logical.gate_latency(e.gate) for e in chain)
    qec_interact = qec_each * len(chain)
    ancilla_prep = sum(
        ka._zero_serial_us
        + (ka._pi8_serial_us if e.gate.gate_type in _PI8_TYPES else 0.0)
        for e in chain
    )
    total = data_op + qec_interact + ancilla_prep
    return {
        "data_op_us": data_op,
        "qec_interact_us": qec_interact,
        "ancilla_prep_us": ancilla_prep,
        "data_op_frac": data_op / total if total else 0.0,
        "qec_interact_frac": qec_interact / total if total else 0.0,
        "ancilla_prep_frac": ancilla_prep / total if total else 0.0,
        "critical_path_gates": float(len(chain)),
    }


def _seed_profile(ka, buckets):
    """The seed ancilla_demand_profile: per-gate Python bucket loop."""
    schedule = _seed_schedule(ka)
    horizon = max((e.finish for e in schedule), default=0.0)
    if horizon <= 0:
        return []
    width = horizon / buckets
    prep = ka._zero_serial_us
    counts = [0.0] * buckets
    for entry in schedule:
        birth = max(0.0, entry.start - prep)
        death = entry.start
        first = min(buckets - 1, int(birth / width))
        last = min(buckets - 1, int(death / width))
        for idx in range(first, last + 1):
            counts[idx] += ZEROS_PER_QEC
    return [(idx * width, counts[idx]) for idx in range(buckets)]


@pytest.fixture(
    params=["qrca8", "qcla8", "qft8", "qrca32", "qcla32", "qft32"]
)
def kernel(request):
    return request.getfixturevalue(request.param)


class TestBitIdentical:
    def test_execution_time(self, kernel):
        seed = max((e.finish for e in _seed_schedule(kernel)), default=0.0)
        assert kernel.execution_time_us == seed

    def test_asap_times(self, kernel):
        starts, finish = kernel._times()
        for entry in _seed_schedule(kernel):
            assert starts[entry.index] == entry.start
            assert finish[entry.index] == entry.finish

    def test_table2_row(self, kernel):
        assert kernel.table2_row() == _seed_table2(kernel)

    def test_demand_profile(self, kernel):
        for buckets in (100, 37, 1):
            assert kernel.ancilla_demand_profile(buckets) == _seed_profile(
                kernel, buckets
            )


class TestMemoization:
    def test_chain_computed_once(self, qrca8):
        first = qrca8._critical_chain()
        assert qrca8._critical_chain() is first

    def test_times_computed_once(self, qrca8):
        assert qrca8._times() is qrca8._times()
