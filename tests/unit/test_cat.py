"""Unit tests for repro.ancilla.cat."""

import pytest

from repro.ancilla.cat import cat_prep_circuit, cat_prep_cx_count
from repro.circuits.gate import GateType


class TestCatPrep:
    def test_three_qubit_census(self):
        circ = cat_prep_circuit(3)
        counts = circ.gate_counts()
        assert counts[GateType.PREP_0] == 3
        assert counts[GateType.H] == 1
        assert counts[GateType.CX] == 2

    def test_seven_qubit_chain(self):
        circ = cat_prep_circuit(7)
        assert circ.count(GateType.CX) == 6

    def test_no_prep_variant(self):
        circ = cat_prep_circuit(3, include_prep=False)
        assert circ.count(GateType.PREP_0) == 0

    def test_chain_is_connected(self):
        circ = cat_prep_circuit(5, include_prep=False)
        cx_pairs = [g.qubits for g in circ if g.gate_type is GateType.CX]
        assert cx_pairs == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_minimum_width(self):
        with pytest.raises(ValueError):
            cat_prep_circuit(1)

    def test_cx_count_helper(self):
        assert cat_prep_cx_count(3) == 2
        assert cat_prep_cx_count(7) == 6

    def test_cx_count_rejects_small(self):
        with pytest.raises(ValueError):
            cat_prep_cx_count(1)

    def test_cat_state_x_on_head_spreads_everywhere(self):
        """An X before the chain fans out to all cat qubits — the defining
        propagation property of the cat preparation."""
        from repro.error.pauli import PauliFrame
        from repro.error.propagation import propagate_gate

        from repro.circuits.gate import GateType

        circ = cat_prep_circuit(4, include_prep=False)
        frame = PauliFrame(4)
        frame.apply_x(0)  # after the head Hadamard, before the CX chain
        for gate in circ:
            if gate.gate_type is GateType.CX:
                propagate_gate(frame, gate)
        assert frame.support() == (0, 1, 2, 3)
