"""Unit tests for repro.factory.units: Table 5 and Table 7 values."""

import pytest

from repro.factory.units import (
    VERIFICATION_SURVIVAL,
    FunctionalUnit,
    pi8_units,
    zero_factory_units,
)
from repro.layout.schedules import OpSchedule
from repro.tech import ION_TRAP


class TestTable5:
    units = zero_factory_units()

    @pytest.mark.parametrize(
        "name,latency,bw_in,bw_out,area",
        [
            ("zero_prep", 73, 13.7, 13.7, 1),
            ("cx_stage", 95, 221.1, 221.1, 28),
            ("cat_prep", 62, 96.8, 96.8, 6),
            ("verification", 82, 122.0, 85.2, 10),
            ("bp_correction", 138, 152.2, 50.7, 21),
        ],
    )
    def test_row(self, name, latency, bw_in, bw_out, area):
        unit = self.units[name]
        assert unit.latency() == latency
        assert unit.bandwidth_in() == pytest.approx(bw_in, abs=0.05)
        assert unit.bandwidth_out() == pytest.approx(bw_out, abs=0.05)
        assert unit.area == area

    def test_cx_stage_is_three_deep(self):
        assert self.units["cx_stage"].internal_stages == 3

    def test_cat_prep_is_two_deep(self):
        assert self.units["cat_prep"].internal_stages == 2

    def test_verification_survival(self):
        assert self.units["verification"].survival == VERIFICATION_SURVIVAL == 0.998

    def test_bp_consumes_two_of_three(self):
        unit = self.units["bp_correction"]
        assert unit.qubits_in == 21
        assert unit.qubits_out == 7


class TestTable7:
    units = pi8_units()

    @pytest.mark.parametrize(
        "name,latency,bw_in,bw_out,area",
        [
            ("cat_state_prepare", 218, 32.1, 32.1, 12),
            ("transversal_interact", 53, 264.2, 264.2, 7),
            ("decode_store", 218, 64.2, 36.7, 19),
            ("h_measure_correct", 74, 108.1, 94.6, 8),
        ],
    )
    def test_row(self, name, latency, bw_in, bw_out, area):
        unit = self.units[name]
        assert unit.latency() == latency
        assert unit.bandwidth_in() == pytest.approx(bw_in, abs=0.05)
        assert unit.bandwidth_out() == pytest.approx(bw_out, abs=0.05)
        assert unit.area == area

    def test_decode_emits_eight_qubits(self):
        unit = self.units["decode_store"]
        assert unit.qubits_in == 14
        assert unit.qubits_out == 8


class TestFunctionalUnitValidation:
    def _unit(self, **overrides):
        kwargs = dict(
            name="u",
            schedule=OpSchedule("u", two_qubit=1),
            internal_stages=1,
            qubits_in=1,
            qubits_out=1,
            area=1,
            height=1,
        )
        kwargs.update(overrides)
        return FunctionalUnit(**kwargs)

    def test_valid(self):
        assert self._unit().latency(ION_TRAP) == 10.0

    def test_bad_stage_count(self):
        with pytest.raises(ValueError):
            self._unit(internal_stages=0)

    def test_bad_batch(self):
        with pytest.raises(ValueError):
            self._unit(qubits_in=0)

    def test_bad_survival(self):
        with pytest.raises(ValueError):
            self._unit(survival=0.0)

    def test_bad_area(self):
        with pytest.raises(ValueError):
            self._unit(area=0)

    def test_initiation_interval(self):
        unit = self._unit(internal_stages=2)
        assert unit.initiation_interval(ION_TRAP) == 5.0

    def test_bandwidth_scales_with_technology(self):
        unit = self._unit()
        fast = ION_TRAP.scaled(0.5)
        assert unit.bandwidth_in(fast) == 2 * unit.bandwidth_in(ION_TRAP)
