"""Unit tests for repro.explore.space: dimensions and DesignSpace."""

import random

import pytest

from repro.arch import ArchitectureKind
from repro.explore import (
    Categorical,
    Continuous,
    DesignSpace,
    Integer,
    architecture_space,
    throughput_space,
)


class TestContinuous:
    def test_explicit_values_grid(self):
        dim = Continuous("x", values=(1.0, 2.0, 4.0))
        assert dim.grid() == [1.0, 2.0, 4.0]
        assert dim.lo == 1.0 and dim.hi == 4.0

    def test_subsampled_grid_keeps_endpoints(self):
        dim = Continuous("x", values=tuple(float(v) for v in range(1, 15)))
        coarse = dim.grid(3)
        assert coarse[0] == 1.0 and coarse[-1] == 14.0
        assert len(coarse) == 3

    def test_log_grid_geometric(self):
        dim = Continuous("x", lo=1.0, hi=100.0, num=3)
        assert dim.grid() == pytest.approx([1.0, 10.0, 100.0])

    def test_linear_grid(self):
        dim = Continuous("x", lo=0.0, hi=10.0, log=False, num=3)
        assert dim.grid() == pytest.approx([0.0, 5.0, 10.0])

    def test_log_requires_positive(self):
        with pytest.raises(ValueError):
            Continuous("x", lo=0.0, hi=1.0)

    def test_bounds_required(self):
        with pytest.raises(ValueError):
            Continuous("x")

    def test_sample_in_bounds(self):
        dim = Continuous("x", lo=2.0, hi=32.0)
        rng = random.Random(0)
        for _ in range(50):
            assert 2.0 <= dim.sample(rng) <= 32.0

    def test_neighbor_clipped(self):
        dim = Continuous("x", lo=1.0, hi=10.0)
        rng = random.Random(1)
        for _ in range(50):
            assert 1.0 <= dim.neighbor(10.0, rng, 0.5) <= 10.0

    def test_neighbor_deterministic(self):
        dim = Continuous("x", lo=1.0, hi=10.0)
        a = dim.neighbor(5.0, random.Random(7), 0.2)
        b = dim.neighbor(5.0, random.Random(7), 0.2)
        assert a == b


class TestIntegerAndCategorical:
    def test_integer_grid(self):
        assert Integer("p", 1, 4).grid() == [1, 2, 3, 4]

    def test_integer_neighbor_in_bounds(self):
        dim = Integer("p", 1, 4)
        rng = random.Random(3)
        for _ in range(50):
            assert 1 <= dim.neighbor(2, rng, 0.5) <= 4

    def test_categorical_grid_is_choices(self):
        dim = Categorical("arch", ("a", "b"))
        assert dim.grid() == ["a", "b"]

    def test_categorical_neighbor_fixed(self):
        dim = Categorical("arch", ("a", "b"))
        assert dim.neighbor("a", random.Random(0), 1.0) == "a"

    def test_empty_choices_rejected(self):
        with pytest.raises(ValueError):
            Categorical("arch", ())


class TestDesignSpace:
    def space(self):
        return DesignSpace(
            (
                Categorical("arch", ("qla", "cqla")),
                Continuous("factory_area", values=(10.0, 100.0, 1000.0)),
            )
        )

    def test_grid_is_cartesian_product_in_order(self):
        points = self.space().grid_points()
        assert len(points) == 6
        assert points[0] == {"arch": "qla", "factory_area": 10.0}
        assert points[3] == {"arch": "cqla", "factory_area": 10.0}

    def test_grid_size(self):
        assert self.space().grid_size() == 6
        assert self.space().grid_size(1) == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace((Integer("a", 0, 1), Integer("a", 0, 1)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace(())

    def test_sample_has_all_dimensions(self):
        point = self.space().sample(random.Random(0))
        assert set(point) == {"arch", "factory_area"}

    def test_neighbor_keeps_categorical(self):
        space = self.space()
        point = {"arch": "cqla", "factory_area": 100.0}
        moved = space.neighbor(point, random.Random(0), 0.3)
        assert moved["arch"] == "cqla"
        assert 10.0 <= moved["factory_area"] <= 1000.0

    def test_dimension_lookup(self):
        assert self.space().dimension("arch").name == "arch"
        with pytest.raises(KeyError):
            self.space().dimension("nope")


class TestStandardSpaces:
    def test_architecture_space_mirrors_area_sweep_grid(self, qrca8):
        import numpy as np

        from repro.arch.provisioning import area_breakdown

        space = architecture_space(qrca8)
        matched = area_breakdown(qrca8).factory_area
        expected = np.geomspace(matched / 8.0, matched * 512.0, 14)
        area_dim = space.dimension("factory_area")
        assert list(area_dim.values) == [float(a) for a in expected]
        assert space.grid_size() == 3 * 14
        kinds = [k.value for k in ArchitectureKind]
        assert list(space.dimension("arch").choices) == kinds

    def test_throughput_space_defaults(self, qrca8):
        space = throughput_space(qrca8)
        assert space.grid_size() == 17
        ratio_dim = space.dimension("pi8_ratio")
        expected = qrca8.pi8_bandwidth_per_ms / qrca8.zero_bandwidth_per_ms
        assert ratio_dim.values == (pytest.approx(expected),)
