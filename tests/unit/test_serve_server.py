"""Unit tests for the exploration server and its client.

One warm in-process server (module scope) backs the happy-path tests;
drain/shutdown behavior gets dedicated short-lived servers so the
shared one stays up.
"""

import http.client
import json

import pytest

from repro.explore import Evaluator, ResultStore, ServeDegradedWarning
from repro.serve import (
    Client,
    ExploreServer,
    ExploreService,
    RemoteEvaluator,
    RequestError,
    ServerUnavailable,
)
from repro.util.backoff import Backoff

POINTS = [
    {"arch": "qla", "factory_area": area}
    for area in (40.0, 80.0, 120.0, 160.0)
]


@pytest.fixture(scope="module")
def reference():
    return Evaluator(kernel="qrca", width=8).evaluate(POINTS)


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    store = ResultStore(tmp_path_factory.mktemp("serve-store"))
    service = ExploreService(store=store, max_queue=4)
    server = ExploreServer(service)
    server.start_background()
    yield server
    server.shutdown(drain_timeout=5.0)


@pytest.fixture
def client(server):
    return Client(server.url, timeout=30.0, retries=2,
                  backoff=Backoff(base=0.0))


def assert_identical(got, ref):
    for have, want in zip(got, ref):
        assert have.ok
        assert have.result == want.result
        assert have.total_area == want.total_area


class TestEvaluate:
    def test_served_evaluations_match_local(self, client, reference):
        evaluations, stats = client.evaluate("qrca", 8, POINTS)
        assert_identical(evaluations, reference)
        assert stats["simulations_run"] + stats["cache_hits"] == len(POINTS)

    def test_warm_second_request_simulates_nothing(self, client, reference):
        client.evaluate("qrca", 8, POINTS)  # warm the store
        evaluations, stats = client.evaluate("qrca", 8, POINTS)
        assert stats["simulations_run"] == 0
        assert stats["cache_hits"] == len(POINTS)
        assert all(e.from_cache for e in evaluations)
        assert_identical(evaluations, reference)

    def test_unknown_kernel_is_terminal_400(self, client):
        with pytest.raises(RequestError) as excinfo:
            client.evaluate("nosuchkernel", 8, POINTS[:1])
        assert excinfo.value.status == 400

    def test_unknown_engine_is_terminal_400(self, client):
        with pytest.raises(RequestError) as excinfo:
            client.evaluate("qrca", 8, POINTS[:1], engine="warp")
        assert excinfo.value.status == 400


class TestEndpoints:
    def test_healthz(self, client):
        assert client.health()

    def test_readyz_reports_queue(self, server, client):
        status, payload, _ = client.request("GET", "/readyz")
        assert status == 200
        body = json.loads(payload)
        assert body["status"] == "ready"
        assert body["max_queue"] == server.service.max_queue

    def test_metrics_exposes_serve_counters(self, client):
        client.evaluate("qrca", 8, POINTS[:1])
        text = client.metrics()
        assert "repro_serve_requests_total" in text
        assert "repro_serve_request_seconds" in text
        # Prometheus text: every non-comment line is `name{labels} value`.
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, _, value = line.rpartition(" ")
            assert name_part
            float(value)

    def test_unknown_route_404(self, client):
        with pytest.raises(RequestError) as excinfo:
            client.request("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(RequestError) as excinfo:
            client.request("POST", "/nope", body=b"{}")
        assert excinfo.value.status == 404

    def test_post_without_body_is_411(self, server):
        connection = http.client.HTTPConnection(*server.address, timeout=10)
        try:
            connection.request("POST", "/evaluate")
            assert connection.getresponse().status == 411
        finally:
            connection.close()

    def test_malformed_json_is_400(self, client):
        with pytest.raises(RequestError) as excinfo:
            client.request("POST", "/evaluate", body=b"{not json")
        assert excinfo.value.status == 400


class TestBackpressure:
    def test_full_queue_sheds_with_retry_after(self, server, client):
        service = server.service
        admitted = 0
        while service.admit() == "ok":
            admitted += 1
        try:
            assert admitted == service.max_queue
            assert service.admit() == "overloaded"
            status, payload, headers = client._attempt(
                "POST", "/evaluate",
                body=b'{"kernel":"qrca","width":8,'
                     b'"points":[{"arch":"qla","factory_area":40.0}]}',
                timeout=10.0,
            )
            assert status == 429
            assert float(headers["Retry-After"]) > 0
            assert "queue full" in json.loads(payload)["error"]
        finally:
            for _ in range(admitted):
                service.finish()

    def test_shed_request_fails_cleanly_at_deadline(self, server):
        service = server.service
        admitted = 0
        while service.admit() == "ok":
            admitted += 1
        try:
            capped = Client(server.url, timeout=5.0, retries=0,
                            deadline=0.3, backoff=Backoff(base=0.0))
            with pytest.raises(ServerUnavailable, match="exhausted"):
                capped.evaluate("qrca", 8, POINTS[:1])
        finally:
            for _ in range(admitted):
                service.finish()


class TestDrainAndShutdown:
    def test_drain_refuses_new_work_and_releases(self, tmp_path):
        store = ResultStore(tmp_path)
        service = ExploreService(store=store)
        server = ExploreServer(service)
        server.start_background()
        client = Client(server.url, timeout=10.0, retries=0,
                        backoff=Backoff(base=0.0))
        client.evaluate("qrca", 8, POINTS[:1])
        assert service.drain(timeout=5.0)
        assert not client.ready()  # readyz 503 while draining
        assert client.health()  # liveness stays green
        status, _, headers = client._attempt(
            "POST", "/evaluate",
            body=b'{"kernel":"qrca","width":8,'
                 b'"points":[{"arch":"qla","factory_area":40.0}]}',
            timeout=10.0,
        )
        assert status == 503
        assert "Retry-After" in headers
        assert server.shutdown(drain_timeout=1.0)
        assert list(store.leases()) == []

    def test_max_queue_validated(self):
        with pytest.raises(ValueError, match="max_queue"):
            ExploreService(max_queue=0)


class TestRemoteEvaluator:
    def test_explore_through_server_matches_local(self, server, tmp_path):
        from repro.explore import (
            AdcrObjective, GridStrategy, architecture_space, explore,
        )
        from repro.kernels import analyze_kernel

        analysis = analyze_kernel("qrca", 8)
        space = architecture_space(analysis)
        budget = min(8, space.grid_size())

        local = explore(
            space, AdcrObjective(), GridStrategy(space),
            evaluator=Evaluator(kernel="qrca", width=8,
                                store=ResultStore(tmp_path / "local")),
            budget=budget,
        )
        remote_eval = RemoteEvaluator(
            Client(server.url, timeout=30.0, retries=2,
                   backoff=Backoff(base=0.0)),
            kernel="qrca", width=8,
        )
        remote = explore(
            space, AdcrObjective(), GridStrategy(space),
            evaluator=remote_eval, budget=budget,
        )
        assert not remote_eval.degraded
        assert remote_eval.remote_batches > 0
        assert remote.best_score == local.best_score
        assert remote.best.point == local.best.point
        assert remote.best.result == local.best.result

    def test_dead_server_degrades_to_local(self, reference, tmp_path):
        # A port from the ephemeral range with no listener: every
        # connect is refused, so the retry budget drains instantly.
        dead = Client("http://127.0.0.1:9", timeout=0.5, retries=1,
                      backoff=Backoff(base=0.0))
        evaluator = RemoteEvaluator(
            dead, kernel="qrca", width=8, store=ResultStore(tmp_path)
        )
        with pytest.warns(ServeDegradedWarning, match="degrading to"):
            evaluations = evaluator.evaluate(POINTS)
        assert evaluator.degraded
        assert evaluator.fallback_batches == 1
        assert_identical(evaluations, reference)
        # Degraded is sticky: the next batch goes straight to local.
        evaluator.evaluate(POINTS)
        assert evaluator.fallback_batches == 2
        stats = evaluator.stats()
        assert stats["degraded"] == 1
        assert stats["remote_batches"] == 0

    def test_stats_merge_remote_deltas(self, server, tmp_path):
        evaluator = RemoteEvaluator(
            Client(server.url, timeout=30.0, retries=2,
                   backoff=Backoff(base=0.0)),
            kernel="qrca", width=8, store=ResultStore(tmp_path),
        )
        evaluator.evaluate(POINTS[:2])
        assert evaluator.simulations_run + evaluator.cache_hits == 2
        assert evaluator.canonical_key(POINTS[0])  # local, server-free
        assert evaluator.stats()["remote_batches"] == 1


class TestClientValidation:
    def test_bad_url_rejected(self):
        with pytest.raises(ValueError, match="URL"):
            Client("http://")

    def test_https_rejected(self):
        with pytest.raises(ValueError, match="http"):
            Client("https://example.com")

    def test_bare_host_port_accepted(self):
        client = Client("127.0.0.1:8642")
        assert client.base_url == "http://127.0.0.1:8642"

    @pytest.mark.parametrize(
        "kwargs", [{"timeout": 0}, {"retries": -1}, {"deadline": 0.0}]
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Client("http://127.0.0.1:1", **kwargs)


class TestCoalescing:
    """Single-flight coalescing, driven deterministically through the
    service's flight table (no timing races)."""

    def _service(self, tmp_path):
        store = ResultStore(tmp_path / "coalesce-store")
        return ExploreService(store=store, max_queue=4)

    def test_follower_waits_and_reports_coalesced_points(self, tmp_path):
        import threading

        from repro.serve.server import _Flight

        service = self._service(tmp_path)
        evaluator = service.evaluator_for("qrca", 8, "compiled")
        point = dict(POINTS[0])
        key = ("qrca", 8, "compiled", evaluator.canonical_key(point))
        flight = _Flight()
        service._flights[key] = flight
        outcome = {}

        def follow():
            evaluations, delta = service.evaluate(
                "qrca", 8, "compiled", [point]
            )
            outcome["evaluations"] = evaluations
            outcome["delta"] = delta

        thread = threading.Thread(target=follow)
        thread.start()
        # The follower is parked on the flight; publish the owner's result.
        published = evaluator.evaluate([point])[0]
        flight.result = published
        flight.done.set()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert outcome["evaluations"] == [published]
        assert outcome["delta"]["coalesced_points"] == 1
        assert outcome["delta"]["simulations_run"] == 0

    def test_failed_owner_flight_is_recovered_by_follower(self, tmp_path):
        import threading

        from repro.serve.server import _Flight

        service = self._service(tmp_path)
        evaluator = service.evaluator_for("qrca", 8, "compiled")
        point = dict(POINTS[1])
        key = ("qrca", 8, "compiled", evaluator.canonical_key(point))
        flight = _Flight()
        service._flights[key] = flight
        outcome = {}

        def follow():
            evaluations, delta = service.evaluate(
                "qrca", 8, "compiled", [point]
            )
            outcome["evaluations"] = evaluations
            outcome["delta"] = delta

        thread = threading.Thread(target=follow)
        thread.start()
        # The owner dies without a result: followers must re-evaluate,
        # not propagate the hole.
        service._flights.pop(key)
        flight.done.set()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert outcome["evaluations"][0].ok
        assert outcome["delta"].get("coalesced_points", 0) == 0
        assert (
            outcome["delta"]["simulations_run"]
            + outcome["delta"]["cache_hits"]
        ) == 1

    def test_duplicate_points_in_one_batch_share_a_flight(self, tmp_path):
        service = self._service(tmp_path)
        point = dict(POINTS[2])
        evaluations, delta = service.evaluate(
            "qrca", 8, "compiled", [point, dict(point)]
        )
        assert len(evaluations) == 2
        assert evaluations[0].result == evaluations[1].result
        assert delta["simulations_run"] == 1
        assert not service._flights  # the table is drained afterwards

    def test_no_coalesce_service_still_correct(self, tmp_path, reference):
        store = ResultStore(tmp_path / "plain-store")
        service = ExploreService(store=store, coalesce=False)
        evaluations, delta = service.evaluate("qrca", 8, "compiled", POINTS)
        assert_identical(evaluations, reference)
        assert delta["simulations_run"] == len(POINTS)
