"""Unit tests for repro.kernels.decompose."""

import pytest

from repro.circuits import Circuit
from repro.circuits.gate import GateType
from repro.kernels.decompose import ENCODED_GATE_SET, decompose_to_encoded_gates


def lowered_types(circ):
    return {g.gate_type for g in decompose_to_encoded_gates(circ)}


class TestLowering:
    def test_output_stays_in_encoded_set(self):
        circ = Circuit(3).ccx(0, 1, 2).crz(0, 1, k=5).rz(2, k=4).swap(0, 2)
        assert lowered_types(circ) <= ENCODED_GATE_SET

    def test_idempotent_on_lowered(self):
        circ = Circuit(2).h(0).t(0).cx(0, 1)
        once = decompose_to_encoded_gates(circ)
        twice = decompose_to_encoded_gates(once)
        assert [g.gate_type for g in once] == [g.gate_type for g in twice]

    def test_toffoli_t_count_is_seven(self):
        circ = Circuit(3).ccx(0, 1, 2)
        lowered = decompose_to_encoded_gates(circ)
        t_gates = lowered.count(GateType.T) + lowered.count(GateType.T_DAG)
        assert t_gates == 7

    def test_toffoli_cx_count_is_six(self):
        lowered = decompose_to_encoded_gates(Circuit(3).ccx(0, 1, 2))
        assert lowered.count(GateType.CX) == 6

    def test_cs_t_count_is_three(self):
        lowered = decompose_to_encoded_gates(Circuit(2).cs(0, 1))
        assert lowered.count(GateType.T) + lowered.count(GateType.T_DAG) == 3

    def test_crz1_is_cz(self):
        lowered = decompose_to_encoded_gates(Circuit(2).crz(0, 1, k=1))
        assert len(lowered) == 1
        assert lowered[0].gate_type is GateType.CZ

    def test_crz2_is_cs_network(self):
        lowered = decompose_to_encoded_gates(Circuit(2).crz(0, 1, k=2))
        assert lowered.count(GateType.CX) == 2

    def test_crz_k3_uses_two_cx_three_rotations(self):
        lowered = decompose_to_encoded_gates(Circuit(2).crz(0, 1, k=3))
        assert lowered.count(GateType.CX) == 2
        # Rotations by pi/16 use the 12-T precomputed word each.
        assert lowered.count(GateType.T) + lowered.count(GateType.T_DAG) == 36

    def test_rz_exact_cases(self):
        assert lowered_types(Circuit(1).rz(0, k=1)) == {GateType.S}
        assert lowered_types(Circuit(1).rz(0, k=2)) == {GateType.T}

    def test_swap_is_three_cx(self):
        lowered = decompose_to_encoded_gates(Circuit(2).swap(0, 1))
        assert lowered.count(GateType.CX) == 3
        assert len(lowered) == 3

    def test_measurements_preserved(self):
        circ = Circuit(1).measure_z(0, "m")
        lowered = decompose_to_encoded_gates(circ)
        assert lowered[0].result == "m"

    def test_inverse_rotation_word_reverses(self):
        """The CRZ decomposition's inverse rotation is the reversed,
        adjointed word: equal T-type count in both directions."""
        lowered = decompose_to_encoded_gates(Circuit(2).crz(0, 1, k=4))
        t = lowered.count(GateType.T)
        tdg = lowered.count(GateType.T_DAG)
        assert (t + tdg) % 3 == 0
