"""Tests for the benchmark perf ratchet (benchmarks/check_ratchet.py)."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

import check_ratchet  # noqa: E402


def _entry(name, **metrics):
    return {"name": name, "recorded_at": "2026-01-01T00:00:00+00:00",
            "python": "3.11", "metrics": metrics}


def _dataflow(ratio):
    return _entry(
        "dataflow_single_point",
        gates=1000,
        gates_per_second=ratio * 1e5,
        seed_gates_per_second=1e5,
    )


class TestCheck:
    def test_regression_beyond_tolerance_fails(self):
        history = [_dataflow(16.0), _dataflow(10.0), _dataflow(10.0),
                   _dataflow(10.0)]
        (result,) = [
            r for r in check_ratchet.check(history)
            if r.benchmark == "dataflow_single_point"
        ]
        assert result.best == pytest.approx(16.0)
        assert result.recent == pytest.approx(10.0)
        assert not result.ok(0.10)

    def test_within_tolerance_passes(self):
        history = [_dataflow(16.0), _dataflow(15.0)]
        (result,) = [
            r for r in check_ratchet.check(history, window=1)
            if r.benchmark == "dataflow_single_point"
        ]
        assert result.drop == pytest.approx(1 / 16)
        assert result.ok(0.10)

    def test_window_best_smooths_one_noisy_session(self):
        """One bad recording inside the window does not fail the gate as
        long as a sibling entry holds the bar."""
        history = [_dataflow(16.0), _dataflow(14.9), _dataflow(8.0),
                   _dataflow(15.5)]
        (result,) = [
            r for r in check_ratchet.check(history, window=3)
            if r.benchmark == "dataflow_single_point"
        ]
        assert result.recent == pytest.approx(15.5)
        assert result.ok(0.10)

    def test_window_slides_past_old_highs(self):
        """Entries older than the window cannot mask a sustained drop."""
        history = [_dataflow(16.0)] + [_dataflow(10.0)] * 3
        (result,) = [
            r for r in check_ratchet.check(history, window=3)
            if r.benchmark == "dataflow_single_point"
        ]
        assert result.recent == pytest.approx(10.0)
        assert not result.ok(0.10)

    def test_no_history_skips(self):
        results = check_ratchet.check([])
        assert all(r.best is None for r in results)
        assert all(r.ok(0.10) for r in results)

    def test_malformed_entries_ignored(self):
        history = [
            "not a dict",
            _entry("dataflow_single_point"),  # no metrics of interest
            _entry("dataflow_single_point", gates_per_second="NaN-ish",
                   seed_gates_per_second=0),
            _dataflow(12.0),
        ]
        (result,) = [
            r for r in check_ratchet.check(history)
            if r.benchmark == "dataflow_single_point"
        ]
        assert result.samples == 1
        assert result.best == pytest.approx(12.0)

    def test_per_gate_tolerance_override(self):
        history = [
            _entry("pi8_protocol", speedup=150.0),
            _entry("pi8_protocol", speedup=115.0),  # 23% drop
        ]
        (result,) = [
            r for r in check_ratchet.check(history)
            if r.benchmark == "pi8_protocol"
        ]
        assert not result.ok(0.10) or result.tolerance is not None
        assert result.limit(0.10) == pytest.approx(0.30)
        assert result.ok(0.10)  # the per-gate 30% bound applies


class TestLoadHistory:
    def test_missing_file_is_empty(self, tmp_path):
        assert check_ratchet.load_history(tmp_path / "absent.json") == []

    def test_corrupt_file_is_empty(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ nope")
        assert check_ratchet.load_history(path) == []

    def test_non_list_is_empty(self, tmp_path):
        path = tmp_path / "obj.json"
        path.write_text('{"a": 1}')
        assert check_ratchet.load_history(path) == []

    def test_duplicate_trailing_batch_dropped_on_load(self, tmp_path):
        batch = [_dataflow(12.0), _entry("pi8_protocol", speedup=100.0)]
        path = tmp_path / "hist.json"
        path.write_text(json.dumps([_dataflow(16.0)] + batch + batch))
        assert check_ratchet.load_history(path) == [_dataflow(16.0)] + batch


class TestDedupeTrailingBatches:
    def test_identical_trailing_batch_collapsed(self):
        batch = [_dataflow(12.0), _entry("pi8_protocol", speedup=100.0)]
        history = [_dataflow(16.0)] + batch + batch
        assert check_ratchet.dedupe_trailing_batches(history) == (
            [_dataflow(16.0)] + batch
        )

    def test_triple_flush_collapses_to_one(self):
        batch = [_dataflow(12.0)]
        assert check_ratchet.dedupe_trailing_batches(batch * 3) == batch

    def test_timestamps_ignored_in_identity(self):
        first = _dataflow(12.0)
        second = dict(_dataflow(12.0), recorded_at="2026-02-02T00:00:00+00:00")
        assert check_ratchet.dedupe_trailing_batches([first, second]) == [first]

    def test_fresh_measurements_kept(self):
        """Re-recorded sessions differ in their timings: no dedupe."""
        history = [_dataflow(12.0), _dataflow(12.000001)]
        assert check_ratchet.dedupe_trailing_batches(history) == history

    def test_interleaved_duplicates_kept(self):
        """Only *trailing* repeats collapse; history-internal repeats are
        legitimate trajectory (the same value measured twice, apart)."""
        history = [_dataflow(12.0), _dataflow(14.0), _dataflow(12.0)]
        assert check_ratchet.dedupe_trailing_batches(history) == history

    def test_empty_and_single(self):
        assert check_ratchet.dedupe_trailing_batches([]) == []
        assert check_ratchet.dedupe_trailing_batches([_dataflow(1.0)]) == [
            _dataflow(1.0)
        ]


class TestMain:
    def _write(self, tmp_path, entries):
        path = tmp_path / "hist.json"
        path.write_text(json.dumps(entries))
        return path

    def test_passing_history_exits_zero(self, tmp_path, capsys):
        path = self._write(tmp_path, [_dataflow(16.0), _dataflow(15.5)])
        assert check_ratchet.main(["--history", str(path)]) == 0
        out = capsys.readouterr().out
        assert "perf ratchet" in out
        assert "REGRESSED" not in out

    def test_regressed_history_exits_one(self, tmp_path, capsys):
        # Distinct timings: identical trailing entries would be collapsed
        # as a duplicate flush by load_history's dedupe.
        path = self._write(
            tmp_path,
            [_dataflow(16.0), _dataflow(9.0), _dataflow(9.1), _dataflow(8.9)],
        )
        assert check_ratchet.main(["--history", str(path)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "dataflow_single_point" in captured.err

    def test_empty_history_exits_zero(self, tmp_path, capsys):
        path = self._write(tmp_path, [])
        assert check_ratchet.main(["--history", str(path)]) == 0
        assert "SKIP" in capsys.readouterr().out

    def test_committed_history_passes(self, capsys):
        """The repo's own trajectory must satisfy its own gate."""
        assert check_ratchet.main([]) == 0

    def test_bad_window_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            check_ratchet.main(["--window", "0"])

    def test_bad_tolerance_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            check_ratchet.main(["--tolerance", "1.5"])
