"""Unit tests for repro.layout.router: latency-weighted routing."""

import pytest

from repro.layout.grid import Grid
from repro.layout.macroblock import Direction, four_way
from repro.layout.router import MovePlan, Router
from repro.tech import ION_TRAP


def open_grid(rows, cols):
    grid = Grid()
    for r in range(rows):
        for c in range(cols):
            grid.place((r, c), four_way())
    return grid


class TestRouting:
    def test_same_cell_zero_cost(self):
        router = Router(open_grid(2, 2), ION_TRAP)
        plan = router.route((0, 0), (0, 0))
        assert plan.hops == 0
        assert plan.latency(ION_TRAP) == 0.0

    def test_straight_line_costs_moves(self):
        router = Router(open_grid(1, 5), ION_TRAP)
        plan = router.route((0, 0), (0, 4))
        assert plan.straight_moves == 4
        assert plan.turns == 0
        assert plan.latency(ION_TRAP) == 4 * ION_TRAP.t_move

    def test_l_path_costs_one_turn(self):
        router = Router(open_grid(3, 3), ION_TRAP)
        plan = router.route((0, 0), (2, 2))
        # 4 hops total; exactly one heading change on an optimal route.
        assert plan.hops == 4
        assert plan.turns == 1
        assert plan.latency(ION_TRAP) == 3 * ION_TRAP.t_move + ION_TRAP.t_turn

    def test_prefers_fewer_turns_over_fewer_hops(self):
        """With turns 10x a straight move, minimum-time paths minimize
        heading changes even at equal hop count."""
        router = Router(open_grid(5, 5), ION_TRAP)
        plan = router.route((0, 0), (4, 4))
        assert plan.turns == 1

    def test_initial_heading_charges_turn(self):
        router = Router(open_grid(1, 3), ION_TRAP)
        eastward = router.route((0, 0), (0, 2), initial_heading=Direction.EAST)
        assert eastward.turns == 0
        # Heading south, the first hop east is a turn.
        turned = router.route((0, 0), (0, 2), initial_heading=Direction.SOUTH)
        assert turned.turns == 1

    def test_unreachable_returns_none(self):
        grid = Grid()
        grid.place((0, 0), four_way())
        grid.place((5, 5), four_way())
        router = Router(grid, ION_TRAP)
        assert router.route((0, 0), (5, 5)) is None

    def test_unknown_cell_returns_none(self):
        router = Router(open_grid(2, 2), ION_TRAP)
        assert router.route((0, 0), (9, 9)) is None

    def test_latency_helper(self):
        router = Router(open_grid(1, 4), ION_TRAP)
        assert router.latency((0, 0), (0, 3)) == 3 * ION_TRAP.t_move


class TestMovePlan:
    def test_hops_sum(self):
        plan = MovePlan(((0, 0), (0, 1)), straight_moves=1, turns=0)
        assert plan.hops == 1

    def test_latency_formula(self):
        plan = MovePlan(((0, 0),), straight_moves=3, turns=2)
        assert plan.latency(ION_TRAP) == 3 * 1.0 + 2 * 10.0
