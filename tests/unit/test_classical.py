"""Unit tests for repro.kernels.classical."""

import pytest

from repro.circuits import Circuit
from repro.kernels.classical import (
    evaluate_reversible,
    pack_bits,
    run_adder,
    unpack_bits,
)


class TestBitPacking:
    def test_roundtrip(self):
        for value in (0, 1, 5, 255):
            assert unpack_bits(pack_bits(value, 8)) == value

    def test_little_endian(self):
        assert pack_bits(1, 3) == [1, 0, 0]
        assert pack_bits(4, 3) == [0, 0, 1]

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            pack_bits(8, 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pack_bits(-1, 3)


class TestEvaluateReversible:
    def test_x_flips(self):
        circ = Circuit(1).x(0)
        assert evaluate_reversible(circ, [0]) == [1]

    def test_cx_copies(self):
        circ = Circuit(2).cx(0, 1)
        assert evaluate_reversible(circ, [1, 0]) == [1, 1]
        assert evaluate_reversible(circ, [0, 0]) == [0, 0]

    def test_ccx_ands(self):
        circ = Circuit(3).ccx(0, 1, 2)
        assert evaluate_reversible(circ, [1, 1, 0]) == [1, 1, 1]
        assert evaluate_reversible(circ, [1, 0, 0]) == [1, 0, 0]

    def test_swap(self):
        circ = Circuit(2).swap(0, 1)
        assert evaluate_reversible(circ, [1, 0]) == [0, 1]

    def test_non_classical_gate_rejected(self):
        circ = Circuit(1).h(0)
        with pytest.raises(ValueError):
            evaluate_reversible(circ, [0])

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            evaluate_reversible(Circuit(2), [0])

    def test_reversibility(self):
        """Running a circuit then its mirror restores the input."""
        circ = Circuit(3).ccx(0, 1, 2).cx(0, 1).x(0)
        mirror = Circuit(3).x(0).cx(0, 1).ccx(0, 1, 2)
        state = [1, 0, 1]
        out = evaluate_reversible(mirror, evaluate_reversible(circ, state))
        assert out == state


class TestRunAdder:
    def test_reports_registers(self):
        # A trivial 1-bit "adder": sum bit = a XOR b via CX chains.
        circ = Circuit(3).cx(0, 2).cx(1, 2)
        out = run_adder(circ, [0], [1], [2], 1, 1)
        assert out["sum"] == 0  # 1 XOR 1, no carry in this toy
        assert out["a"] == 1
