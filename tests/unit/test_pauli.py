"""Unit tests for repro.error.pauli: Pauli frames."""

import numpy as np
import pytest

from repro.error.pauli import PauliFrame


class TestFrameBasics:
    def test_starts_identity(self):
        assert PauliFrame(5).is_identity()

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            PauliFrame(-1)

    def test_apply_x(self):
        frame = PauliFrame(2)
        frame.apply_x(1)
        assert frame.pauli_on(1) == "X"

    def test_apply_z(self):
        frame = PauliFrame(2)
        frame.apply_z(0)
        assert frame.pauli_on(0) == "Z"

    def test_apply_y_is_x_and_z(self):
        frame = PauliFrame(1)
        frame.apply_y(0)
        assert frame.pauli_on(0) == "Y"

    def test_double_x_cancels(self):
        frame = PauliFrame(1)
        frame.apply_x(0)
        frame.apply_x(0)
        assert frame.is_identity()

    def test_apply_named_pauli(self):
        frame = PauliFrame(1)
        frame.apply_pauli(0, "Y")
        assert frame.pauli_on(0) == "Y"

    def test_apply_identity_noop(self):
        frame = PauliFrame(1)
        frame.apply_pauli(0, "I")
        assert frame.is_identity()

    def test_unknown_pauli_rejected(self):
        with pytest.raises(ValueError):
            PauliFrame(1).apply_pauli(0, "Q")

    def test_clear(self):
        frame = PauliFrame(2)
        frame.apply_y(0)
        frame.clear(0)
        assert frame.is_identity()


class TestFrameQueries:
    def test_weight_total(self):
        frame = PauliFrame(4)
        frame.apply_x(0)
        frame.apply_z(2)
        assert frame.weight() == 2

    def test_weight_subset(self):
        frame = PauliFrame(4)
        frame.apply_x(0)
        frame.apply_x(3)
        assert frame.weight([0, 1]) == 1

    def test_vectors_restrict_and_copy(self):
        frame = PauliFrame(4)
        frame.apply_x(2)
        vec = frame.x_vector([2, 3])
        assert vec.tolist() == [1, 0]
        vec[0] = 0
        assert frame.x[2] == 1  # copy, not a view

    def test_support(self):
        frame = PauliFrame(5)
        frame.apply_z(4)
        frame.apply_y(1)
        assert frame.support() == (1, 4)

    def test_repr_labels(self):
        frame = PauliFrame(3)
        frame.apply_x(0)
        frame.apply_y(2)
        assert "XIY" in repr(frame)


class TestGroupStructure:
    def test_multiply_is_xor(self):
        a = PauliFrame(2)
        a.apply_x(0)
        b = PauliFrame(2)
        b.apply_x(0)
        b.apply_z(1)
        product = a.multiply(b)
        assert product.pauli_on(0) == "I"
        assert product.pauli_on(1) == "Z"

    def test_multiply_size_mismatch(self):
        with pytest.raises(ValueError):
            PauliFrame(2).multiply(PauliFrame(3))

    def test_copy_independent(self):
        frame = PauliFrame(1)
        dup = frame.copy()
        dup.apply_x(0)
        assert frame.is_identity()

    def test_equality_and_hash(self):
        a = PauliFrame(2)
        b = PauliFrame(2)
        a.apply_x(1)
        b.apply_x(1)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        a = PauliFrame(2)
        b = PauliFrame(2)
        b.apply_z(0)
        assert a != b
