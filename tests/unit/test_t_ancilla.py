"""Unit tests for repro.ancilla.t_ancilla: the pi/8 ancilla circuit."""

from repro.ancilla.t_ancilla import (
    PI8_STAGE_NAMES,
    pi8_ancilla_circuit,
    pi8_consumption_circuit,
    pi8_stage_slices,
)
from repro.circuits.gate import GateType


class TestPi8AncillaCircuit:
    def test_width_is_two_blocks(self):
        assert pi8_ancilla_circuit().num_qubits == 14

    def test_has_seven_qubit_cat_prep(self):
        circ = pi8_ancilla_circuit()
        assert circ.count(GateType.PREP_0) == 7

    def test_transversal_interaction_gates(self):
        circ = pi8_ancilla_circuit()
        # Seven each of CZ, CS plus the transversal pi/8 layer.
        assert circ.count(GateType.CZ) == 7
        assert circ.count(GateType.CS) == 7
        assert circ.count(GateType.T) == 7

    def test_single_measurement(self):
        circ = pi8_ancilla_circuit()
        assert circ.count(GateType.MEASURE_Z) == 1

    def test_conditional_z_layer(self):
        circ = pi8_ancilla_circuit()
        conditionals = [g for g in circ if g.condition == "pi8_m"]
        assert len(conditionals) == 7
        assert all(g.gate_type is GateType.Z for g in conditionals)


class TestStageSlices:
    def test_four_stages(self):
        slices = pi8_stage_slices()
        assert tuple(slices) == PI8_STAGE_NAMES

    def test_stage_union_matches_full_circuit(self):
        slices = pi8_stage_slices()
        total = sum(len(c) for c in slices.values())
        assert total == len(pi8_ancilla_circuit())

    def test_decode_mirrors_encoder(self):
        decode = pi8_stage_slices()["decode_store"]
        assert decode.count(GateType.CX) == 9
        assert decode.count(GateType.H) == 3

    def test_cat_stage_is_chain(self):
        cat = pi8_stage_slices()["cat_state_prepare"]
        assert cat.count(GateType.CX) == 6


class TestConsumption:
    def test_figure_5a_structure(self):
        circ = pi8_consumption_circuit()
        # Transversal CX, transversal measure, conditional correction.
        assert circ.count(GateType.CX) == 7
        assert circ.count(GateType.MEASURE_Z) == 7
        conditionals = [g for g in circ if g.condition]
        assert len(conditionals) == 7

    def test_data_side_cost_matches_latency_model(self):
        """The consumption circuit's data-side critical path equals the
        LogicalLatencyModel interaction price (CX + measure + correct)."""
        from repro.circuits.latency import LogicalLatencyModel
        from repro.tech import ION_TRAP

        model = LogicalLatencyModel(ION_TRAP)
        price = model.non_transversal_interaction_latency()
        assert price == ION_TRAP.t_2q + ION_TRAP.t_meas + ION_TRAP.t_1q
