"""Unit tests for the shared retry-backoff policy (repro.util.backoff)."""

import random
import time

import pytest

from repro.util.backoff import Backoff


class TestCeiling:
    def test_doubles_per_attempt(self):
        policy = Backoff(base=0.1, cap=100.0)
        assert policy.ceiling(1) == pytest.approx(0.1)
        assert policy.ceiling(2) == pytest.approx(0.2)
        assert policy.ceiling(5) == pytest.approx(1.6)

    def test_cap_bounds_growth(self):
        policy = Backoff(base=0.5, cap=2.0)
        assert policy.ceiling(3) == 2.0
        assert policy.ceiling(50) == 2.0  # no overflow past the cap

    def test_attempt_counts_from_one(self):
        with pytest.raises(ValueError, match="attempt"):
            Backoff().ceiling(0)

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError, match="base"):
            Backoff(base=-0.1)

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError, match="cap"):
            Backoff(cap=-1.0)


class TestDelay:
    def test_full_jitter_stays_in_envelope(self):
        policy = Backoff(base=0.1, cap=2.0)
        rng = random.Random(7)
        for attempt in range(1, 10):
            for _ in range(50):
                delay = policy.delay(attempt, rng=rng)
                assert 0.0 <= delay <= policy.ceiling(attempt)

    def test_jitter_actually_varies(self):
        policy = Backoff(base=1.0, cap=8.0)
        rng = random.Random(11)
        draws = {policy.delay(3, rng=rng) for _ in range(20)}
        assert len(draws) > 1

    def test_no_jitter_is_deterministic(self):
        policy = Backoff(base=0.25, cap=10.0, jitter=False)
        assert [policy.delay(a) for a in (1, 2, 3)] == [0.25, 0.5, 1.0]

    def test_zero_base_never_sleeps(self):
        policy = Backoff(base=0.0)
        assert policy.delay(1) == 0.0
        assert policy.sleep(5) == 0.0


class TestSleep:
    def test_sleep_calls_through(self):
        slept = []
        policy = Backoff(base=0.5, cap=4.0, jitter=False)
        got = policy.sleep(2, _sleep=slept.append)
        assert got == 1.0
        assert slept == [1.0]

    def test_deadline_truncates(self):
        slept = []
        policy = Backoff(base=10.0, cap=10.0, jitter=False)
        deadline = time.monotonic() + 0.05
        got = policy.sleep(1, deadline=deadline, _sleep=slept.append)
        assert got <= 0.05
        assert slept and slept[0] == got

    def test_past_deadline_skips_sleep(self):
        slept = []
        policy = Backoff(base=10.0, jitter=False)
        got = policy.sleep(1, deadline=time.monotonic() - 1.0,
                           _sleep=slept.append)
        assert got == 0.0
        assert slept == []

    def test_rng_makes_sleep_reproducible(self):
        policy = Backoff(base=0.2, cap=2.0)
        a = policy.sleep(3, rng=random.Random(3), _sleep=lambda _s: None)
        b = policy.sleep(3, rng=random.Random(3), _sleep=lambda _s: None)
        assert a == b


class TestEvaluatorIntegration:
    def test_evaluator_uses_shared_policy(self):
        from repro.explore import Evaluator

        evaluator = Evaluator(kernel="qrca", width=8, retry_backoff=0.25)
        assert isinstance(evaluator._backoff, Backoff)
        assert evaluator._backoff.base == 0.25

    def test_client_uses_shared_policy(self):
        from repro.serve import Client

        client = Client("http://127.0.0.1:1")
        assert isinstance(client.backoff, Backoff)
        assert client.backoff.base > 0
