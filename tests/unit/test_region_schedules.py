"""Unit tests for repro.layout.region and repro.layout.schedules."""

import pytest

from repro.layout.region import data_qubit_area, data_region_grid
from repro.layout.schedules import (
    PI8_FACTORY_SCHEDULES,
    SIMPLE_FACTORY_SCHEDULE,
    ZERO_FACTORY_SCHEDULES,
    OpSchedule,
)
from repro.tech import ION_TRAP


class TestDataRegion:
    def test_grid_is_column_of_gates(self):
        grid = data_region_grid(7)
        assert grid.area == 7
        assert len(grid.gate_locations) == 7

    def test_invalid_code_size(self):
        with pytest.raises(ValueError):
            data_region_grid(0)

    def test_area_formula(self):
        # Section 4.2: m x nq.
        assert data_qubit_area(97) == 679
        assert data_qubit_area(123) == 861
        assert data_qubit_area(32) == 224

    def test_area_rejects_negative(self):
        with pytest.raises(ValueError):
            data_qubit_area(-1)


class TestOpSchedule:
    def test_latency_pricing(self):
        sched = OpSchedule("x", preps=1, two_qubit=2, turns=1)
        assert sched.latency(ION_TRAP) == 51 + 20 + 10

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            OpSchedule("x", moves=-1)

    def test_symbolic_rendering(self):
        sched = OpSchedule("x", two_qubit=3, turns=6, moves=5)
        assert sched.symbolic() == "3xt2q + 6xtturn + 5xtmove"

    def test_symbolic_singular(self):
        assert OpSchedule("x", preps=1).symbolic() == "tprep"

    def test_symbolic_empty(self):
        assert OpSchedule("x").symbolic() == "0"

    def test_combined_adds_counts(self):
        a = OpSchedule("a", two_qubit=1)
        b = OpSchedule("b", two_qubit=2, moves=3)
        c = a.combined(b, "c")
        assert c.two_qubit == 3
        assert c.moves == 3

    def test_scaling_with_technology(self):
        sched = OpSchedule("x", measurements=2)
        assert sched.latency(ION_TRAP.scaled(2.0)) == 200.0


class TestPaperSchedules:
    def test_simple_factory_latency_is_323us(self):
        assert SIMPLE_FACTORY_SCHEDULE.latency(ION_TRAP) == 323.0

    def test_table5_latencies(self):
        expected = {
            "zero_prep": 73.0,
            "cx_stage": 95.0,
            "cat_prep": 62.0,
            "verification": 82.0,
            "bp_correction": 138.0,
        }
        for name, value in expected.items():
            assert ZERO_FACTORY_SCHEDULES[name].latency(ION_TRAP) == value

    def test_table7_latencies(self):
        expected = {
            "cat_state_prepare": 218.0,
            "transversal_interact": 53.0,
            "decode_store": 218.0,
            "h_measure_correct": 74.0,
        }
        for name, value in expected.items():
            assert PI8_FACTORY_SCHEDULES[name].latency(ION_TRAP) == value

    def test_symbolic_forms_match_paper(self):
        assert (
            ZERO_FACTORY_SCHEDULES["cx_stage"].symbolic()
            == "3xt2q + 6xtturn + 5xtmove"
        )
        assert (
            SIMPLE_FACTORY_SCHEDULE.symbolic()
            == "tprep + 2xtmeas + 6xt2q + 2xt1q + 8xtturn + 30xtmove"
        )
