"""Unit tests for repro.kernels.analysis (fast widths)."""

import pytest

from repro.kernels import analyze_kernel
from repro.kernels.analysis import ZEROS_PER_QEC


class TestAnalyzeKernel:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            analyze_kernel("nope")

    def test_kernel_names(self, qrca8, qcla8, qft8):
        assert qrca8.name == "8-Bit QRCA"
        assert qcla8.name == "8-Bit QCLA"
        assert qft8.name == "8-Bit QFT"

    def test_zero_total_is_two_per_gate(self, qrca8):
        assert qrca8.zero_ancilla_total == ZEROS_PER_QEC * qrca8.total_gates

    def test_bandwidths_positive(self, qrca8, qcla8, qft8):
        for ka in (qrca8, qcla8, qft8):
            assert ka.zero_bandwidth_per_ms > 0
            assert ka.pi8_bandwidth_per_ms > 0

    def test_execution_time_positive(self, qrca8):
        assert qrca8.execution_time_us > 0

    def test_qcla_demands_more_bandwidth_than_qrca(self, qrca8, qcla8):
        """Log-depth parallelism translates into higher ancilla bandwidth."""
        assert qcla8.zero_bandwidth_per_ms > 2 * qrca8.zero_bandwidth_per_ms

    def test_table2_fractions_sum_to_one(self, qrca8):
        row = qrca8.table2_row()
        total = (
            row["data_op_frac"] + row["qec_interact_frac"] + row["ancilla_prep_frac"]
        )
        assert total == pytest.approx(1.0)

    def test_ancilla_prep_dominates(self, qrca8, qcla8, qft8):
        """The paper's core observation: prep is the bulk of the critical
        path (>70%) for every kernel."""
        for ka in (qrca8, qcla8, qft8):
            assert ka.table2_row()["ancilla_prep_frac"] > 0.7

    def test_data_op_is_small_fraction(self, qrca8):
        assert qrca8.table2_row()["data_op_frac"] < 0.1

    def test_non_transversal_fraction_substantial(self, qrca8, qcla8):
        """Section 3.3: non-transversal gates are ~40% of the adders."""
        for ka in (qrca8, qcla8):
            assert 0.3 < ka.non_transversal_fraction < 0.55

    def test_table3_row_keys(self, qrca8):
        row = qrca8.table3_row()
        assert set(row) == {"zero_bandwidth_per_ms", "pi8_bandwidth_per_ms"}


class TestDemandProfile:
    def test_profile_length(self, qrca8):
        profile = qrca8.ancilla_demand_profile(buckets=50)
        assert len(profile) == 50

    def test_profile_times_monotone(self, qrca8):
        profile = qrca8.ancilla_demand_profile(buckets=20)
        times = [t for t, _ in profile]
        assert times == sorted(times)

    def test_profile_counts_nonnegative(self, qcla8):
        assert all(c >= 0 for _, c in qcla8.ancilla_demand_profile())

    def test_profile_total_reflects_all_gates(self, qrca8):
        """Integrated demand (count x bucket residency) accounts for every
        ancilla at least once."""
        profile = qrca8.ancilla_demand_profile(buckets=30)
        assert sum(c for _, c in profile) >= qrca8.zero_ancilla_total / 30

    def test_invalid_buckets(self, qrca8):
        with pytest.raises(ValueError):
            qrca8.ancilla_demand_profile(buckets=0)

    def test_peak_demand_exceeds_mean(self, qrca8, qcla8):
        """Section 3.2: 'these averages do not take into account the
        handling of peak periods' — peaks sit above the mean in-flight."""
        for ka in (qrca8, qcla8):
            counts = [c for _, c in ka.ancilla_demand_profile()]
            assert max(counts) > sum(counts) / len(counts)
