"""Unit tests for repro.reporting: tables, figures, registry."""

import pytest

from repro.reporting import EXPERIMENTS, ascii_plot, format_table, run_experiment
from repro.reporting.figures import series_to_csv


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len({line.index("  ") for line in lines if "  " in line}) >= 1
        assert "333" in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_compaction(self):
        text = format_table(["v"], [[1234567.0], [0.000001], [3.14159]])
        assert "1.23e+06" in text
        assert "1e-06" in text
        assert "3.14" in text

    def test_zero(self):
        assert "0" in format_table(["v"], [[0.0]])


class TestAsciiPlot:
    def test_empty(self):
        assert ascii_plot({}) == "(no data)"

    def test_contains_markers_and_axes(self):
        text = ascii_plot({"curve": [(1, 1), (2, 4), (3, 9)]})
        assert "* = curve" in text
        assert "x: 1 .. 3" in text

    def test_log_axes_annotated(self):
        text = ascii_plot({"c": [(1, 10), (100, 1000)]}, logx=True, logy=True)
        assert "(log)" in text

    def test_log_skips_nonpositive(self):
        text = ascii_plot({"c": [(0, 1), (10, 10)]}, logx=True)
        assert "x: 10 .. 10" in text

    def test_multiple_series_distinct_markers(self):
        text = ascii_plot({"a": [(0, 0)], "b": [(1, 1)]})
        assert "* = a" in text
        assert "o = b" in text

    def test_title_first_line(self):
        text = ascii_plot({"a": [(0, 1)]}, title="T")
        assert text.splitlines()[0] == "T"


class TestSeriesCsv:
    def test_format(self):
        text = series_to_csv([(1.0, 2.0), (3.0, 4.5)], "area", "time")
        assert text.splitlines() == ["area,time", "1,2", "3,4.5"]


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "table1", "table2", "table3", "table4", "table5", "table6",
            "table7", "table8", "table9", "fig4", "fig7", "fig8", "fig11",
            "fig15", "fig16",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_experiment("table99")

    def test_table1_runs(self):
        text = run_experiment("table1")
        assert "tprep" in text and "51" in text

    def test_table4_runs(self):
        text = run_experiment("table4")
        assert "tturn" in text

    def test_table5_matches_paper_latencies(self):
        text = run_experiment("table5")
        assert "95" in text and "221" in text

    def test_table6_total(self):
        text = run_experiment("table6")
        assert "298" in text

    def test_table8_total(self):
        text = run_experiment("table8")
        assert "403" in text

    def test_fig11_values(self):
        text = run_experiment("fig11")
        assert "323" in text and "90" in text

    def test_experiment_metadata(self):
        exp = EXPERIMENTS["table5"]
        assert exp.paper_ref == "Table 5"
        assert exp.description
