"""Unit tests for repro.codes.steane: the [[7,1,3]] code and encoder."""

import numpy as np

from repro.circuits.gate import GateType
from repro.codes.steane import (
    ENCODER_CX_ROUNDS,
    ENCODER_H_QUBITS,
    HAMMING_PARITY_CHECK,
    STEANE,
    encoder_cx_list,
    steane_code,
    steane_zero_prep_circuit,
)


class TestCodeStructure:
    def test_self_dual(self):
        assert np.array_equal(STEANE.x_stabilizers, STEANE.z_stabilizers)

    def test_stabilizer_weights_are_four(self):
        assert all(row.sum() == 4 for row in HAMMING_PARITY_CHECK)

    def test_fresh_instance_equal(self):
        assert steane_code().parameters == STEANE.parameters


class TestEncoderCircuit:
    def test_gate_census_matches_figure_3b(self):
        circ = steane_zero_prep_circuit()
        counts = circ.gate_counts()
        assert counts[GateType.PREP_0] == 7
        assert counts[GateType.H] == 3
        assert counts[GateType.CX] == 9

    def test_without_preps(self):
        circ = steane_zero_prep_circuit(include_prep=False)
        assert circ.count(GateType.PREP_0) == 0
        assert len(circ) == 12

    def test_h_on_pivot_qubits(self):
        assert ENCODER_H_QUBITS == (0, 1, 3)

    def test_three_rounds_of_three(self):
        assert len(ENCODER_CX_ROUNDS) == 3
        assert all(len(r) == 3 for r in ENCODER_CX_ROUNDS)

    def test_rounds_are_parallel(self):
        for round_gates in ENCODER_CX_ROUNDS:
            touched = [q for pair in round_gates for q in pair]
            assert len(set(touched)) == len(touched)

    def test_cx_controls_are_pivots(self):
        controls = {c for c, _ in encoder_cx_list()}
        assert controls == set(ENCODER_H_QUBITS)

    def test_encoder_depth(self):
        # Preps (1) + H (1) + 3 parallel CX rounds = depth 5.
        assert steane_zero_prep_circuit().depth() == 5

    def test_encoder_stabilizes_x_generators(self):
        """Each X stabilizer row propagated backward through the encoder
        must come from a Pauli the initial state is stabilized by.

        Equivalent forward check: pushing X on a pivot qubit through the
        CX rounds yields exactly that pivot's stabilizer row support.
        """
        from repro.error.pauli import PauliFrame
        from repro.error.propagation import propagate_gate

        circ = steane_zero_prep_circuit(include_prep=False)
        for pivot, row in zip(ENCODER_H_QUBITS, HAMMING_PARITY_CHECK[::-1]):
            frame = PauliFrame(7)
            frame.apply_x(pivot)
            for gate in circ:
                if gate.gate_type is GateType.CX:
                    propagate_gate(frame, gate)
            support = {i for i, bit in enumerate(row) if bit}
            assert set(frame.support()) == support
            assert not frame.z.any()
