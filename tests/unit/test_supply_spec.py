"""The declarative ready-spec protocol and its opt-in dispatch rules.

``declared_ready_spec`` is the single gate deciding whether a supply may
take the lowered (closed-form / array) engine paths. These tests pin the
opt-in rules — a subclass overriding any spec-coupled method without
re-declaring ``ready_spec`` must never be half-batched — and pin exact
post-run supply-state equality between the serial and batched engines for
the zero-rate edge cases.
"""

import math

import pytest

from repro.arch import simulate_batch
from repro.arch.simulator import DataflowSimulator
from repro.arch.supply import (
    PI8,
    ZERO,
    DedicatedKindSpec,
    DedicatedSupply,
    InfiniteSupply,
    PooledSupply,
    ReadySpec,
    SteadyKindSpec,
    SteadyRateSupply,
    declared_ready_spec,
)


class TestBuiltinSpecs:
    def test_infinite_supply_declares_empty_spec(self):
        spec = declared_ready_spec(InfiniteSupply())
        assert isinstance(spec, ReadySpec)
        assert spec.kinds == {}
        assert spec.kind(ZERO) is None

    def test_steady_supply_declares_snapshot_per_kind(self):
        supply = SteadyRateSupply({ZERO: 4.0, PI8: 1.0})
        supply.acquire(ZERO, 0, 3, 0.0)
        spec = declared_ready_spec(supply)
        assert spec.kind(ZERO) == SteadyKindSpec(4.0 / 1000.0, 3)
        assert spec.kind(PI8) == SteadyKindSpec(1.0 / 1000.0, 0)
        # Snapshot semantics: later consumption does not leak in.
        supply.acquire(ZERO, 0, 2, 0.0)
        assert spec.kind(ZERO).consumed == 3

    def test_pooled_supply_inherits_steady_spec(self):
        spec = declared_ready_spec(PooledSupply({ZERO: 2.0}))
        assert isinstance(spec.kind(ZERO), SteadyKindSpec)

    def test_dedicated_supply_declares_live_lists(self):
        supply = DedicatedSupply({ZERO: 10.0}, 4)
        spec = declared_ready_spec(supply)
        kind_spec = spec.kind(ZERO)
        assert isinstance(kind_spec, DedicatedKindSpec)
        rates, consumed = supply.dedicated_state(ZERO)
        assert kind_spec.rates_per_us is rates
        assert kind_spec.consumed is consumed

    def test_custom_supply_without_spec_is_undeclared(self):
        class Ceiling:
            def acquire(self, kind, qubit, count, earliest):
                return math.ceil(earliest / 1000.0) * 1000.0

        assert declared_ready_spec(Ceiling()) is None


class TestOptInDispatch:
    """A spec only speaks for a supply when nothing below its owner in the
    MRO redefines the availability/state math it describes."""

    @pytest.mark.parametrize(
        "method",
        ["acquire", "advance", "steady_state", "rate_per_us", "consumed_so_far"],
    )
    def test_subclass_overriding_coupled_method_is_undeclared(self, method):
        override = {method: lambda self, *args, **kwargs: None}
        mutated = type("Mutated", (SteadyRateSupply,), override)
        assert declared_ready_spec(mutated({ZERO: 2.0})) is None

    def test_dedicated_subclass_overriding_advance_per_qubit(self):
        class Mutated(DedicatedSupply):
            def advance_per_qubit(self, kind, counts):
                pass

        assert declared_ready_spec(Mutated({ZERO: 1.0}, 2)) is None

    def test_subclass_redeclaring_spec_opts_back_in(self):
        class OptedBackIn(SteadyRateSupply):
            def advance(self, kind, count):
                SteadyRateSupply.advance(self, kind, count)

            def ready_spec(self):
                return SteadyRateSupply.ready_spec(self)

        spec = declared_ready_spec(OptedBackIn({ZERO: 2.0}))
        assert isinstance(spec, ReadySpec)

    def test_instance_monkeypatched_acquire_is_undeclared(self):
        supply = SteadyRateSupply({ZERO: 2.0})
        supply.acquire = lambda kind, qubit, count, earliest: earliest
        assert declared_ready_spec(supply) is None

    def test_instance_monkeypatched_advance_is_undeclared(self):
        supply = SteadyRateSupply({ZERO: 2.0})
        supply.advance = lambda kind, count: None
        assert declared_ready_spec(supply) is None

    def test_instance_level_ready_spec_is_undeclared(self):
        supply = InfiniteSupply()
        supply.ready_spec = lambda: ReadySpec({})
        assert declared_ready_spec(supply) is None

    def test_non_readyspec_return_is_undeclared(self):
        class BadSpec(SteadyRateSupply):
            def ready_spec(self):
                return {ZERO: SteadyKindSpec(1.0, 0)}

        assert declared_ready_spec(BadSpec({ZERO: 2.0})) is None

    def test_mutated_subclass_never_half_batched(self, qrca8):
        """Regression: a subclass overriding only ``advance`` must take
        the per-gate path everywhere. If either engine lowered it with the
        parent's closed form and committed through the child's ``advance``,
        the doubled counter below would expose the divergence."""

        class DoubleAdvance(SteadyRateSupply):
            def advance(self, kind, count):
                SteadyRateSupply.advance(self, kind, count * 2)

        rate = qrca8.zero_bandwidth_per_ms / 2.0

        def supply():
            return DoubleAdvance({ZERO: rate, PI8: rate})

        reference = supply()
        legacy = DataflowSimulator(qrca8.circuit, qrca8.tech, supply=reference)
        legacy_result = legacy.run_legacy()

        serial_supply = supply()
        run_result = DataflowSimulator(
            qrca8.circuit, qrca8.tech, supply=serial_supply
        ).run()

        batch_supply = supply()
        batch_result = simulate_batch(
            qrca8.circuit, [batch_supply], qrca8.tech
        )[0]

        assert run_result == legacy_result
        assert batch_result == legacy_result
        for kind in (ZERO, PI8):
            expected = reference.consumed_so_far(kind)
            assert serial_supply.consumed_so_far(kind) == expected
            assert batch_supply.consumed_so_far(kind) == expected


class TestZeroRateStatePinning:
    """Satellite audit: post-run supply STATE (not just makespans) must be
    identical between the serial and batched engines for zero-rate kinds,
    where acquire returns infinity *without* recording consumption."""

    def _state_triplet(self, analysis, make_supply, state):
        legacy_supply = make_supply()
        DataflowSimulator(
            analysis.circuit, analysis.tech, supply=legacy_supply
        ).run_legacy()
        run_supply = make_supply()
        DataflowSimulator(
            analysis.circuit, analysis.tech, supply=run_supply
        ).run()
        batch_supply = make_supply()
        simulate_batch(analysis.circuit, [batch_supply], analysis.tech)
        return state(legacy_supply), state(run_supply), state(batch_supply)

    def test_zero_rate_steady_counters_stay_untouched(self, qrca8):
        def make_supply():
            return SteadyRateSupply({ZERO: 0.0, PI8: 1.0})

        def state(supply):
            return {kind: supply.consumed_so_far(kind) for kind in (ZERO, PI8)}

        legacy, run, batch = self._state_triplet(qrca8, make_supply, state)
        assert legacy == run == batch
        assert legacy[ZERO] == 0  # zero-rate kind never records consumption

    def test_zero_rate_pi8_counters_match(self, qrca8):
        def make_supply():
            return SteadyRateSupply({ZERO: 2.0, PI8: 0.0})

        def state(supply):
            return {kind: supply.consumed_so_far(kind) for kind in (ZERO, PI8)}

        legacy, run, batch = self._state_triplet(qrca8, make_supply, state)
        assert legacy == run == batch
        assert legacy[PI8] == 0

    def test_zero_rate_dedicated_counters_match(self, qrca8):
        nq = qrca8.circuit.num_qubits

        def make_supply():
            return DedicatedSupply({ZERO: 0.0, PI8: 0.02}, nq)

        def state(supply):
            return {
                kind: list(supply.dedicated_state(kind)[1])
                for kind in (ZERO, PI8)
            }

        legacy, run, batch = self._state_triplet(qrca8, make_supply, state)
        assert legacy == run == batch
        assert legacy[ZERO] == [0] * nq

    def test_partially_zero_dedicated_rate_vector(self, qrca8):
        """Some qubits starved, others healthy: only the zero-rate rows
        may stay frozen, and all three engines must agree per qubit."""
        nq = qrca8.circuit.num_qubits

        def make_supply():
            supply = DedicatedSupply({ZERO: 0.05, PI8: 0.02}, nq)
            rates, _ = supply.dedicated_state(ZERO)
            for qubit in range(0, nq, 2):
                rates[qubit] = 0.0
            return supply

        def state(supply):
            return {
                kind: list(supply.dedicated_state(kind)[1])
                for kind in (ZERO, PI8)
            }

        legacy, run, batch = self._state_triplet(qrca8, make_supply, state)
        assert legacy == run == batch
        for qubit in range(0, nq, 2):
            assert legacy[ZERO][qubit] == 0
