"""Unit tests for repro.layout.macroblock."""

import pytest

from repro.layout.macroblock import (
    Direction,
    Macroblock,
    MacroblockType,
    dead_end_gate,
    four_way,
    straight_channel,
    straight_channel_gate,
    three_way,
    turn,
)


class TestDirections:
    def test_opposites(self):
        assert Direction.NORTH.opposite is Direction.SOUTH
        assert Direction.EAST.opposite is Direction.WEST

    def test_deltas_sum_to_zero_with_opposite(self):
        for d in Direction:
            dr, dc = d.delta
            odr, odc = d.opposite.delta
            assert (dr + odr, dc + odc) == (0, 0)


class TestConstruction:
    def test_straight_channel_ports(self):
        block = straight_channel("ns")
        assert block.connects(Direction.NORTH)
        assert not block.connects(Direction.EAST)

    def test_straight_channel_ew(self):
        block = straight_channel("ew")
        assert block.connects(Direction.WEST)

    def test_straight_requires_collinear(self):
        with pytest.raises(ValueError):
            Macroblock(
                MacroblockType.STRAIGHT_CHANNEL,
                frozenset({Direction.NORTH, Direction.EAST}),
            )

    def test_turn_requires_non_collinear(self):
        with pytest.raises(ValueError):
            turn(Direction.NORTH, Direction.SOUTH)

    def test_turn_valid(self):
        block = turn(Direction.NORTH, Direction.EAST)
        assert block.connects(Direction.EAST)

    def test_port_count_enforced(self):
        with pytest.raises(ValueError):
            Macroblock(MacroblockType.FOUR_WAY, frozenset({Direction.NORTH}))

    def test_three_way_excludes_one(self):
        block = three_way(Direction.WEST)
        assert not block.connects(Direction.WEST)
        assert block.connects(Direction.NORTH)

    def test_dead_end_single_port(self):
        block = dead_end_gate(Direction.SOUTH)
        assert block.connects(Direction.SOUTH)
        assert len(block.ports) == 1


class TestGateLocations:
    def test_gate_blocks(self):
        assert straight_channel_gate().has_gate_location
        assert dead_end_gate(Direction.NORTH).has_gate_location

    def test_intersections_have_no_gates(self):
        """Figure 9: gate locations may not occur in an intersection."""
        assert not four_way().has_gate_location
        assert not three_way(Direction.NORTH).has_gate_location

    def test_channels_have_no_gates(self):
        assert not straight_channel().has_gate_location
        assert not turn(Direction.NORTH, Direction.EAST).has_gate_location

    def test_is_intersection(self):
        assert four_way().is_intersection
        assert not straight_channel().is_intersection


class TestTraversal:
    def test_straight_traversal(self):
        block = four_way()
        # Entered from the north side, exiting south: straight.
        assert not block.traversal_is_turn(Direction.NORTH, Direction.SOUTH)

    def test_turning_traversal(self):
        block = four_way()
        assert block.traversal_is_turn(Direction.NORTH, Direction.EAST)
