"""Unit tests for repro.codes.css: generic CSS machinery."""

import numpy as np
import pytest

from repro.codes.css import CssCode, gf2_in_rowspace, gf2_rank
from repro.codes.steane import HAMMING_PARITY_CHECK, STEANE


class TestGf2Helpers:
    def test_rank_identity(self):
        assert gf2_rank(np.eye(3, dtype=np.uint8)) == 3

    def test_rank_dependent_rows(self):
        m = np.array([[1, 0], [1, 0]], dtype=np.uint8)
        assert gf2_rank(m) == 1

    def test_rank_zero_matrix(self):
        assert gf2_rank(np.zeros((2, 4), dtype=np.uint8)) == 0

    def test_hamming_rank(self):
        assert gf2_rank(HAMMING_PARITY_CHECK) == 3

    def test_in_rowspace_true(self):
        row_sum = (HAMMING_PARITY_CHECK[0] + HAMMING_PARITY_CHECK[1]) % 2
        assert gf2_in_rowspace(HAMMING_PARITY_CHECK, row_sum)

    def test_in_rowspace_false(self):
        vec = np.zeros(7, dtype=np.uint8)
        vec[0] = 1
        assert not gf2_in_rowspace(HAMMING_PARITY_CHECK, vec)


class TestCssValidation:
    def test_rejects_noncommuting_stabilizers(self):
        with pytest.raises(ValueError):
            CssCode(
                name="bad",
                n=2,
                k=1,
                d=1,
                x_stabilizers=[[1, 0]],
                z_stabilizers=[[1, 1]],
                logical_x=[1, 1],
                logical_z=[0, 1],
            )

    def test_rejects_commuting_logicals(self):
        with pytest.raises(ValueError):
            CssCode(
                name="bad",
                n=3,
                k=1,
                d=1,
                x_stabilizers=np.zeros((0, 3)),
                z_stabilizers=np.zeros((0, 3)),
                logical_x=[1, 1, 0],
                logical_z=[1, 1, 0],
            )

    def test_parameters_triple(self):
        assert STEANE.parameters == (7, 1, 3)

    def test_str_format(self):
        assert str(STEANE) == "[[7,1,3]] Steane"


class TestSyndromes:
    def test_no_error_zero_syndrome(self):
        zero = np.zeros(7, dtype=np.uint8)
        assert not STEANE.x_error_syndrome(zero).any()

    def test_single_error_unique_syndromes(self):
        syndromes = set()
        for q in range(7):
            err = np.zeros(7, dtype=np.uint8)
            err[q] = 1
            syndromes.add(tuple(STEANE.x_error_syndrome(err).tolist()))
        assert len(syndromes) == 7  # all distinct, none zero

    def test_decode_single_error(self):
        for q in range(7):
            err = np.zeros(7, dtype=np.uint8)
            err[q] = 1
            correction = STEANE.decode_x_error(err)
            assert np.array_equal(correction, err)

    def test_decode_z_single_error(self):
        err = np.zeros(7, dtype=np.uint8)
        err[4] = 1
        assert np.array_equal(STEANE.decode_z_error(err), err)

    def test_correction_from_syndrome_roundtrip(self):
        err = np.zeros(7, dtype=np.uint8)
        err[2] = 1
        syndrome = STEANE.x_error_syndrome(err)
        assert np.array_equal(STEANE.correction_from_x_syndrome(syndrome), err)

    def test_stabilizer_error_harmless(self):
        # A stabilizer row acts trivially: not logical.
        assert not STEANE.is_logical_x(HAMMING_PARITY_CHECK[0])
        assert not STEANE.is_logical_z(HAMMING_PARITY_CHECK[2])

    def test_logical_operator_detected(self):
        ones = np.ones(7, dtype=np.uint8)
        assert STEANE.is_logical_x(ones)
        assert STEANE.is_logical_z(ones)

    def test_weight_two_error_uncorrectable(self):
        err = np.zeros(7, dtype=np.uint8)
        err[0] = err[6] = 1
        assert STEANE.is_logical_x(err)

    def test_single_error_correctable(self):
        err = np.zeros(7, dtype=np.uint8)
        err[3] = 1
        assert not STEANE.is_uncorrectable(err, np.zeros(7, dtype=np.uint8))

    def test_weight3_logical_z_representative(self):
        # Z on {1,3,5} is ones + stabilizer 1010101: a logical Z.
        rep = np.zeros(7, dtype=np.uint8)
        rep[[1, 3, 5]] = 1
        assert not STEANE.z_error_syndrome(rep).any()
        assert STEANE.is_logical_z(rep)
