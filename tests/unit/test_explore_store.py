"""Unit tests for the content-addressed result store."""

import json

from repro.explore import ResultStore, key_digest
from repro.explore.store import SCHEMA_VERSION, canonical_json


KEY = {"kernel": "qrca", "width": 8, "point": {"arch": "qla", "factory_area": 10.0}}


class TestKeyDigest:
    def test_stable_across_key_order(self):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert key_digest(a) == key_digest(b)

    def test_distinct_keys_distinct_digests(self):
        assert key_digest({"x": 1}) != key_digest({"x": 2})

    def test_canonical_json_compact_sorted(self):
        assert canonical_json({"b": 1, "a": [1.5, "s"]}) == '{"a":[1.5,"s"],"b":1}'


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, {"result": {"makespan_us": 1.0}})
        record = store.get(KEY)
        assert record["result"] == {"makespan_us": 1.0}
        assert record["schema"] == SCHEMA_VERSION
        assert record["key"] == KEY

    def test_miss_returns_none(self, tmp_path):
        assert ResultStore(tmp_path).get(KEY) is None

    def test_lives_under_explore_subdir(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, {})
        files = list((tmp_path / "explore").glob("*.json"))
        assert len(files) == 1
        assert files[0].stem == key_digest(KEY)

    def test_corrupt_file_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, {"result": {}})
        path = store._path(KEY)
        path.write_text("{ not json")
        assert store.get(KEY) is None

    def test_wrong_schema_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, {"result": {}})
        path = store._path(KEY)
        record = json.loads(path.read_text())
        record["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(record))
        assert store.get(KEY) is None

    def test_len_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        assert len(store) == 0
        store.put(KEY, {})
        store.put({**KEY, "width": 16}, {})
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0
        assert store.clear() == 0

    def test_records_iteration_skips_corrupt(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, {"tag": "good"})
        (tmp_path / "explore" / "junk.json").write_text("nope")
        records = list(store.records())
        assert len(records) == 1
        assert records[0]["tag"] == "good"

    def test_put_overwrites(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, {"tag": 1})
        store.put(KEY, {"tag": 2})
        assert store.get(KEY)["tag"] == 2
        assert len(store) == 1

    def test_inflight_temp_files_invisible(self, tmp_path):
        """Crash-leftover temp files must not pollute len/records/clear."""
        store = ResultStore(tmp_path)
        store.put(KEY, {"tag": "good"})
        (tmp_path / "explore" / ".inflight-dead.tmp").write_text("{ torn")
        assert len(store) == 1
        assert len(list(store.records())) == 1
        assert store.clear() == 1

    def test_put_leaves_no_temp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, {})
        names = [p.name for p in (tmp_path / "explore").iterdir()]
        assert names == [f"{key_digest(KEY)}.json"]

    def test_env_var_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        store = ResultStore()
        store.put(KEY, {})
        assert (tmp_path / "custom" / "explore").is_dir()
