"""Unit tests for repro.codes.transversal."""

from repro.circuits.gate import GATE_ARITY, Gate, GateType
from repro.codes.transversal import (
    Implementation,
    is_directly_executable,
    pi8_ancillae_for,
    transversal_rule,
)


class TestRules:
    def test_every_gate_type_covered(self):
        for gate_type in GATE_ARITY:
            assert transversal_rule(gate_type) is not None

    def test_cx_transversal(self):
        rule = transversal_rule(GateType.CX)
        assert rule.implementation is Implementation.TRANSVERSAL

    def test_hadamard_self_dual(self):
        rule = transversal_rule(GateType.H)
        assert rule.physical_gate is GateType.H

    def test_s_maps_to_sdg_bitwise(self):
        """On the Steane code, bitwise S-dagger implements logical S."""
        rule = transversal_rule(GateType.S)
        assert rule.physical_gate is GateType.S_DAG

    def test_t_needs_one_ancilla(self):
        rule = transversal_rule(GateType.T)
        assert rule.implementation is Implementation.ANCILLA
        assert rule.ancillae_required == 1

    def test_rotations_decomposed(self):
        for gt in (GateType.RZ, GateType.CRZ, GateType.CS, GateType.CCX):
            assert transversal_rule(gt).implementation is Implementation.DECOMPOSED


class TestHelpers:
    def test_directly_executable(self):
        assert is_directly_executable(Gate(GateType.CX, (0, 1)))
        assert is_directly_executable(Gate(GateType.T, (0,)))
        assert not is_directly_executable(Gate(GateType.CCX, (0, 1, 2)))

    def test_pi8_ancillae_for_t(self):
        assert pi8_ancillae_for(Gate(GateType.T, (0,))) == 1
        assert pi8_ancillae_for(Gate(GateType.T_DAG, (0,))) == 1

    def test_pi8_ancillae_for_clifford(self):
        assert pi8_ancillae_for(Gate(GateType.H, (0,))) == 0
