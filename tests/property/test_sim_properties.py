"""Property-based tests: dataflow simulator conservation and monotonicity."""

from hypothesis import given, settings, strategies as st

from repro.arch.simulator import DataflowSimulator, ZEROS_PER_QEC
from repro.arch.supply import PI8, ZERO, SteadyRateSupply
from repro.circuits import Circuit
from repro.circuits.gate import Gate, GateType


@st.composite
def kernel_like_circuits(draw, n=4, max_gates=12):
    num = draw(st.integers(1, max_gates))
    circ = Circuit(n)
    for _ in range(num):
        choice = draw(st.sampled_from(["h", "t", "cx"]))
        q1 = draw(st.integers(0, n - 1))
        if choice == "cx":
            q2 = draw(st.integers(0, n - 1).filter(lambda q: q != q1))
            circ.cx(q1, q2)
        elif choice == "t":
            circ.t(q1)
        else:
            circ.h(q1)
    return circ


class TestConservation:
    @given(kernel_like_circuits())
    @settings(max_examples=60)
    def test_zero_consumption_is_two_per_gate(self, circ):
        result = DataflowSimulator(circ).run()
        assert result.zero_ancillae_consumed == ZEROS_PER_QEC * len(circ)

    @given(kernel_like_circuits())
    @settings(max_examples=60)
    def test_pi8_consumption_counts_t(self, circ):
        result = DataflowSimulator(circ).run()
        t_count = circ.count(GateType.T) + circ.count(GateType.T_DAG)
        assert result.pi8_ancillae_consumed == t_count

    @given(kernel_like_circuits())
    @settings(max_examples=60)
    def test_makespan_nonnegative_and_finite(self, circ):
        result = DataflowSimulator(circ).run()
        assert 0 <= result.makespan_us < float("inf")


class TestMonotonicity:
    @given(kernel_like_circuits(), st.floats(0.5, 50.0))
    @settings(max_examples=60)
    def test_more_supply_never_slower(self, circ, rate):
        slow = DataflowSimulator(
            circ, supply=SteadyRateSupply({ZERO: rate, PI8: rate})
        ).run()
        fast = DataflowSimulator(
            circ, supply=SteadyRateSupply({ZERO: 4 * rate, PI8: 4 * rate})
        ).run()
        assert fast.makespan_us <= slow.makespan_us + 1e-6

    @given(kernel_like_circuits(), st.floats(0.0, 100.0))
    @settings(max_examples=60)
    def test_movement_penalty_never_speeds_up(self, circ, penalty):
        base = DataflowSimulator(circ).run().makespan_us
        moved = DataflowSimulator(circ, movement_penalty_us=penalty).run().makespan_us
        assert moved >= base - 1e-9

    @given(kernel_like_circuits())
    @settings(max_examples=40)
    def test_infinite_supply_is_lower_bound(self, circ):
        floor = DataflowSimulator(circ).run().makespan_us
        constrained = DataflowSimulator(
            circ, supply=SteadyRateSupply({ZERO: 2.0, PI8: 1.0})
        ).run().makespan_us
        assert constrained >= floor - 1e-9

    @given(kernel_like_circuits())
    @settings(max_examples=40)
    def test_makespan_at_least_dependency_floor(self, circ):
        """Supply constraints can only add to the pure dataflow bound."""
        from repro.circuits import asap_schedule
        from repro.circuits.latency import LogicalLatencyModel
        from repro.kernels.analysis import QecAwareLatency
        from repro.tech import ION_TRAP

        floor = max(
            (e.finish for e in asap_schedule(circ, QecAwareLatency(LogicalLatencyModel(ION_TRAP)))),
            default=0.0,
        )
        result = DataflowSimulator(circ).run()
        assert result.makespan_us >= floor - 1e-6
