"""Property-based tests: both adders compute a + b for arbitrary inputs."""

from hypothesis import given, settings, strategies as st

from repro.kernels.classical import run_adder
from repro.kernels.qcla import qcla_circuit, qcla_registers
from repro.kernels.qrca import qrca_circuit, qrca_registers

# Circuits are immutable; build once per width.
_QRCA = {w: (qrca_registers(w), qrca_circuit(w)) for w in (3, 8, 13)}
_QCLA = {w: (qcla_registers(w), qcla_circuit(w)) for w in (3, 8, 13)}


class TestQrcaProperties:
    @given(st.integers(0, 2 ** 13 - 1), st.integers(0, 2 ** 13 - 1))
    @settings(max_examples=80)
    def test_adds_13bit(self, a, b):
        regs, circ = _QRCA[13]
        out = run_adder(circ, regs.a, regs.b, regs.b + [regs.b_high], a, b, regs.c)
        assert out["sum"] == a + b

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=60)
    def test_preserves_a_and_clears_carries(self, a, b):
        regs, circ = _QRCA[8]
        out = run_adder(circ, regs.a, regs.b, regs.b + [regs.b_high], a, b, regs.c)
        assert out["a"] == a
        assert out["ancilla"] == 0

    @given(st.integers(0, 7))
    def test_adding_zero_is_identity(self, a):
        regs, circ = _QRCA[3]
        out = run_adder(circ, regs.a, regs.b, regs.b + [regs.b_high], a, 0, regs.c)
        assert out["sum"] == a


class TestQclaProperties:
    @given(st.integers(0, 2 ** 13 - 1), st.integers(0, 2 ** 13 - 1))
    @settings(max_examples=80)
    def test_adds_13bit(self, a, b):
        regs, circ = _QCLA[13]
        out = run_adder(circ, regs.a, regs.b, regs.z, a, b, [])
        assert out["sum"] == a + b

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=60)
    def test_restores_inputs_and_tree(self, a, b):
        regs, circ = _QCLA[8]
        tree = [regs.p(t, i) for (t, i) in regs._p_tree]
        out = run_adder(circ, regs.a, regs.b, regs.z, a, b, tree)
        assert out["a"] == a
        assert out["ancilla"] == 0

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=40)
    def test_agrees_with_qrca(self, a, b):
        """The two adders must agree everywhere — same function, different
        depth/area trade-off."""
        qr_regs, qr = _QRCA[8]
        qc_regs, qc = _QCLA[8]
        ripple = run_adder(qr, qr_regs.a, qr_regs.b,
                           qr_regs.b + [qr_regs.b_high], a, b, qr_regs.c)
        lookahead = run_adder(qc, qc_regs.a, qc_regs.b, qc_regs.z, a, b, [])
        assert ripple["sum"] == lookahead["sum"]

    @given(st.integers(0, 2 ** 13 - 1), st.integers(0, 2 ** 13 - 1))
    @settings(max_examples=30)
    def test_commutative(self, a, b):
        regs, circ = _QCLA[13]
        ab = run_adder(circ, regs.a, regs.b, regs.z, a, b, [])
        ba = run_adder(circ, regs.a, regs.b, regs.z, b, a, [])
        assert ab["sum"] == ba["sum"]
