"""Property tests: the point-batched engine over random sweep batches.

For any vector of supply rates (zero-rate starvation included), any
point count and any supply model mix, ``simulate_batch`` must equal the
serial reference loop (``run_legacy``) point for point with exact float
equality — the batching axis must never perturb a single bit of the
simulation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import simulate_batch
from repro.arch.simulator import DataflowSimulator
from repro.arch.supply import PI8, ZERO, DedicatedSupply, SteadyRateSupply
from repro.circuits import Circuit

NUM_QUBITS = 5


def _protocol_circuit() -> Circuit:
    """A small circuit exercising every batching hazard: two-qubit and
    Toffoli dependencies, pi/8 consumers, measurements and conditions."""
    return (
        Circuit(NUM_QUBITS)
        .h(0)
        .cx(0, 1)
        .t(1)
        .ccx(0, 1, 2)
        .measure_z(2, "m0")
        .x(3, condition="m0")
        .t(3)
        .cx(3, 4)
        .measure_x(4, "m1")
        .z(0, condition="m1")
        .t(0)
    )


CIRCUIT = _protocol_circuit()

# Rates in ancillae/ms. 0.0 exercises starvation (infinite makespans);
# the wide spread exercises both supply-bound and data-bound points.
rate_values = st.one_of(
    st.just(0.0),
    st.floats(
        min_value=1e-3,
        max_value=1e4,
        allow_nan=False,
        allow_infinity=False,
    ),
)


@settings(max_examples=60, deadline=None)
@given(
    rates=st.lists(
        st.tuples(rate_values, rate_values), min_size=1, max_size=12
    )
)
def test_steady_batches_match_reference(rates):
    def supplies():
        return [
            SteadyRateSupply({ZERO: zero, PI8: pi8}) for zero, pi8 in rates
        ]

    batched = simulate_batch(CIRCUIT, supplies())
    reference = [
        DataflowSimulator(CIRCUIT, supply=supply).run_legacy()
        for supply in supplies()
    ]
    assert batched == reference


@settings(max_examples=40, deadline=None)
@given(
    rates=st.lists(
        st.tuples(rate_values, rate_values), min_size=1, max_size=8
    ),
    movement=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
)
def test_dedicated_batches_match_reference(rates, movement):
    def supplies():
        return [
            DedicatedSupply({ZERO: zero, PI8: pi8}, NUM_QUBITS)
            for zero, pi8 in rates
        ]

    batched = simulate_batch(
        CIRCUIT,
        supplies(),
        movement_penalty_us=movement,
        two_qubit_movement_penalty_us=movement * 2.0,
    )
    reference = [
        DataflowSimulator(
            CIRCUIT,
            supply=supply,
            movement_penalty_us=movement,
            two_qubit_movement_penalty_us=movement * 2.0,
        ).run_legacy()
        for supply in supplies()
    ]
    assert batched == reference


@settings(max_examples=30, deadline=None)
@given(
    picks=st.lists(
        st.tuples(st.sampled_from(["steady", "dedicated", "infinite"]),
                  rate_values),
        min_size=1,
        max_size=10,
    )
)
def test_mixed_model_batches_match_reference(picks):
    from repro.arch.supply import InfiniteSupply

    def supplies():
        built = []
        for model, rate in picks:
            if model == "steady":
                built.append(SteadyRateSupply({ZERO: rate, PI8: rate / 2.0}))
            elif model == "dedicated":
                built.append(
                    DedicatedSupply({ZERO: rate, PI8: rate}, NUM_QUBITS)
                )
            else:
                built.append(InfiniteSupply())
        return built

    batched = simulate_batch(CIRCUIT, supplies())
    reference = [
        DataflowSimulator(CIRCUIT, supply=supply).run_legacy()
        for supply in supplies()
    ]
    assert batched == reference
