"""Property tests: protocol lowering round-trips the scalar semantics.

For randomized circuits over the full supported gate set — including
measurements and classically conditioned gates — executing the lowered
program with zero noise over a batch of planted Pauli frames must
reproduce the scalar engine's final frame and measurement flips exactly,
trial for trial. This pins the compiled-protocol semantics (op lowering,
qubit mapping, condition/result interning, skip rules) to the scalar
reference independent of any statistics.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit
from repro.error.batched import BatchFrames, BatchedSimulator, compile_protocol
from repro.error.montecarlo import MonteCarloSimulator
from repro.error.pauli import PauliFrame
from repro.tech import ErrorRates

CLEAN = ErrorRates(gate=0.0, movement=0.0, measurement=0.0)

_ONE_QUBIT = ("prep_0", "h", "s", "sdg", "x", "y", "z", "t", "tdg")
_TWO_QUBIT = ("cx", "cz", "swap", "cs")


@st.composite
def protocol_circuits(draw, max_qubits=5, max_gates=20):
    """Random circuits over the lowerable gate set, with conditionals."""
    n = draw(st.integers(2, max_qubits))
    num_gates = draw(st.integers(1, max_gates))
    circ = Circuit(n)
    bits = []
    next_bit = 0
    for _ in range(num_gates):
        q = draw(st.integers(0, n - 1))
        condition = None
        if bits and draw(st.booleans()):
            condition = draw(st.sampled_from(bits))
        kind = draw(st.sampled_from(("one", "two", "measure")))
        if kind == "two":
            q2 = draw(st.integers(0, n - 1).filter(lambda x: x != q))
            name = draw(st.sampled_from(_TWO_QUBIT))
            getattr(circ, name)(q, q2, condition=condition)
        elif kind == "measure":
            result = f"m{next_bit}"
            next_bit += 1
            basis = draw(st.sampled_from(("measure_z", "measure_x")))
            getattr(circ, basis)(q, result, condition=condition)
            bits.append(result)
        else:
            name = draw(st.sampled_from(_ONE_QUBIT))
            getattr(circ, name)(q, condition=condition)
    return circ


@st.composite
def planted_frames(draw, circ, trials=4):
    n = circ.num_qubits
    bits = st.integers(0, 1)
    x = np.array(
        [[draw(bits) for _ in range(n)] for _ in range(trials)], dtype=np.uint8
    )
    z = np.array(
        [[draw(bits) for _ in range(n)] for _ in range(trials)], dtype=np.uint8
    )
    return x, z


@st.composite
def circuit_and_frames(draw):
    circ = draw(protocol_circuits())
    x, z = draw(planted_frames(circ))
    return circ, x, z


class TestLoweringRoundTrip:
    @given(circuit_and_frames())
    @settings(max_examples=120, deadline=None)
    def test_batch_matches_scalar_trial_by_trial(self, case):
        circ, x0, z0 = case
        trials, n = x0.shape

        frames = BatchFrames(trials, n)
        frames.x[:] = x0
        frames.z[:] = z0
        batched = BatchedSimulator(errors=CLEAN)
        flips = batched.run_circuit(
            circ, frames, active=np.ones(trials, dtype=bool)
        )

        for t in range(trials):
            frame = PauliFrame(n)
            frame.x[:] = x0[t]
            frame.z[:] = z0[t]
            scalar_flips = MonteCarloSimulator(errors=CLEAN).run_circuit(
                circ, frame
            )
            assert np.array_equal(frames.x[t], frame.x), t
            assert np.array_equal(frames.z[t], frame.z), t
            names = set(scalar_flips) | set(flips)
            for name in names:
                batch_bit = int(flips[name][t]) if name in flips else 0
                assert batch_bit == scalar_flips.get(name, 0), (t, name)

    @given(protocol_circuits())
    @settings(max_examples=60, deadline=None)
    def test_program_metadata_round_trips(self, circ):
        program = compile_protocol(circ)
        assert program.num_gates == len(circ)
        # Every measurement's result bit is interned, and every condition
        # id points back at the bit name the gate was built with.
        for i, gate in enumerate(circ):
            if gate.result is not None:
                assert program.bit_names[program.result[i]] == gate.result
            else:
                assert program.result[i] == -1
            if gate.condition is not None:
                assert program.bit_names[program.cond[i]] == gate.condition
            else:
                assert program.cond[i] == -1
        # Qubit operands survive the (identity) mapping.
        for i, gate in enumerate(circ):
            assert program.q0[i] == gate.qubits[0]
            if len(gate.qubits) > 1:
                assert program.q1[i] == gate.qubits[1]
