"""Property-based tests: Steane code decoding invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.codes.steane import STEANE

error_vectors = st.lists(st.integers(0, 1), min_size=7, max_size=7).map(
    lambda bits: np.array(bits, dtype=np.uint8)
)


class TestDecoderInvariants:
    @given(error_vectors)
    def test_correction_cancels_syndrome(self, err):
        """Whatever the decoder returns, applying it yields zero syndrome
        (for Steane every syndrome is in the table)."""
        corrected = (err + STEANE.decode_x_error(err)) % 2
        assert not STEANE.x_error_syndrome(corrected).any()

    @given(error_vectors)
    def test_weight_zero_or_one_always_correctable(self, err):
        if err.sum() <= 1:
            assert not STEANE.is_logical_x(err)
            assert not STEANE.is_logical_z(err)

    @given(error_vectors)
    def test_syndrome_linear(self, err):
        """Syndromes are linear: synd(a+b) = synd(a)+synd(b)."""
        other = np.roll(err, 1)
        lhs = STEANE.x_error_syndrome((err + other) % 2)
        rhs = (STEANE.x_error_syndrome(err) + STEANE.x_error_syndrome(other)) % 2
        assert np.array_equal(lhs, rhs)

    @given(error_vectors)
    def test_stabilizer_addition_preserves_logical_class(self, err):
        """Multiplying by a stabilizer never changes decodability."""
        for row in STEANE.x_stabilizers:
            shifted = (err + row) % 2
            assert STEANE.is_logical_x(err) == STEANE.is_logical_x(shifted)

    @given(error_vectors)
    def test_logical_addition_flips_class(self, err):
        """Adding the logical operator flips logical-X status whenever the
        error is within the decodable radius on both sides."""
        flipped = (err + STEANE.logical_x) % 2
        if not STEANE.x_error_syndrome(err).any():
            assert STEANE.is_logical_x(err) != STEANE.is_logical_x(flipped)

    @given(error_vectors)
    def test_x_z_decoders_agree_by_self_duality(self, err):
        """The Steane code is self-dual: X and Z decode identically."""
        assert np.array_equal(STEANE.decode_x_error(err), STEANE.decode_z_error(err))
        assert STEANE.is_logical_x(err) == STEANE.is_logical_z(err)
