"""Property-based tests: rotation synthesis invariants."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ancilla.rotations import (
    default_synthesizer,
    rz_matrix,
    trace_distance,
)
from repro.circuits.gate import GateType

_MATRICES = {
    GateType.H: np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2),
    GateType.T: np.diag([1, np.exp(1j * math.pi / 4)]),
    GateType.T_DAG: np.diag([1, np.exp(-1j * math.pi / 4)]),
    GateType.S: np.diag([1, 1j]),
    GateType.S_DAG: np.diag([1, -1j]),
    GateType.Z: np.diag([1, -1]),
}


def word_matrix(gates):
    m = np.eye(2, dtype=complex)
    for g in gates:
        m = _MATRICES[g] @ m
    return m


class TestSynthesisInvariants:
    @given(st.integers(0, 16))
    @settings(max_examples=20, deadline=None)
    def test_reported_error_is_truthful(self, k):
        r = default_synthesizer().synthesize(k)
        actual = trace_distance(word_matrix(r.gates), rz_matrix(math.pi / 2 ** k))
        assert abs(actual - r.error) < 1e-4

    @given(st.integers(0, 16))
    @settings(max_examples=20, deadline=None)
    def test_error_never_worse_than_identity(self, k):
        """The empty word is always available, so synthesis can never do
        worse than doing nothing."""
        r = default_synthesizer().synthesize(k)
        identity_err = trace_distance(np.eye(2), rz_matrix(math.pi / 2 ** k))
        assert r.error <= identity_err + 1e-12

    @given(st.integers(0, 16))
    @settings(max_examples=20, deadline=None)
    def test_t_count_le_length(self, k):
        r = default_synthesizer().synthesize(k)
        assert r.t_count <= r.length

    @given(st.integers(0, 16))
    @settings(max_examples=20, deadline=None)
    def test_exact_flag_means_zero_error(self, k):
        r = default_synthesizer().synthesize(k)
        if r.exact:
            assert r.error < 1e-9


class TestMetricProperties:
    @given(st.floats(0, 2 * math.pi), st.floats(0, 2 * math.pi))
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b):
        u, v, w = rz_matrix(a), rz_matrix(b), rz_matrix((a + b) / 2)
        assert trace_distance(u, v) <= (
            trace_distance(u, w) + trace_distance(w, v) + 1e-9
        )

    @given(st.floats(0, 2 * math.pi))
    @settings(max_examples=50)
    def test_symmetry(self, angle):
        u, v = rz_matrix(angle), rz_matrix(angle / 3)
        assert abs(trace_distance(u, v) - trace_distance(v, u)) < 1e-12

    @given(st.floats(0, 2 * math.pi))
    @settings(max_examples=50)
    def test_self_distance_zero(self, angle):
        # sqrt amplifies float rounding near zero: |tr| can sit 1e-12
        # below 2, giving a distance of ~1e-6 for identical matrices.
        assert trace_distance(rz_matrix(angle), rz_matrix(angle)) < 1e-5
