"""Property-based tests: recursive Steane concatenation invariants.

Hypothesis drives three families of invariants at concatenation levels
1-3 (the satellite spec of the code-axis PR):

* [[n, k, d]] arithmetic — ``n = 7**L``, ``k = 1``, ``d = 3**L`` — plus
  the CSS commutation relations of the recursively built stabilizer
  generators;
* encoder round-trip — propagating the ``|0...0>`` stabilizer group
  through the level-L encoder lands exactly on the span of the code's
  stabilizers plus logical Z, and stays there under random stabilizer
  multiplication;
* decoding — any error of weight at most ``2**L - 1`` is corrected by
  the recursive hard-decision decoder, and stabilizer elements are
  harmless.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codes import (
    ConcatenatedCode,
    propagate_zero_stabilizers,
    steane_code,
    zero_state_group,
)
from repro.codes.concatenated import gf2_rank_fast, gf2_spans_equal
from repro.codes.css import gf2_rank

STEANE = steane_code()

#: One shared instance per level — stabilizer construction is lazy and
#: the codes are immutable.
CODES = {level: ConcatenatedCode(STEANE, level) for level in (1, 2, 3)}

levels = st.sampled_from((1, 2, 3))
small_levels = st.sampled_from((1, 2))


def _random_pattern(draw, n, max_weight):
    weight = draw(st.integers(0, max_weight))
    positions = draw(
        st.lists(
            st.integers(0, n - 1), min_size=weight, max_size=weight, unique=True
        )
    )
    pattern = np.zeros(n, dtype=np.uint8)
    pattern[positions] = 1
    return pattern


class TestParameters:
    @given(levels)
    def test_nkd_arithmetic(self, level):
        code = CODES[level]
        assert code.parameters == (7**level, 1, 3**level)
        assert code.n == code.base.n**level
        assert code.d == code.base.d**level

    @given(levels)
    def test_stabilizer_counts_and_shapes(self, level):
        code = CODES[level]
        # A k=1 stabilizer code has n-1 generators, split evenly X/Z for
        # the self-dual Steane recursion.
        assert code.x_stabilizers.shape == ((code.n - 1) // 2, code.n)
        assert code.z_stabilizers.shape == ((code.n - 1) // 2, code.n)
        assert gf2_rank_fast(code.x_stabilizers) == (code.n - 1) // 2

    @given(levels)
    def test_css_commutation_relations(self, level):
        code = CODES[level]
        assert not ((code.x_stabilizers @ code.z_stabilizers.T) % 2).any()
        assert not ((code.x_stabilizers @ code.logical_z) % 2).any()
        assert not ((code.z_stabilizers @ code.logical_x) % 2).any()
        assert (code.logical_x @ code.logical_z) % 2 == 1

    def test_level_one_is_the_base_code(self):
        code = CODES[1]
        assert code.x_stabilizers is STEANE.x_stabilizers
        assert code.z_stabilizers is STEANE.z_stabilizers
        assert np.array_equal(code.logical_x, STEANE.logical_x)
        assert code.name == STEANE.name

    def test_invalid_levels_rejected(self):
        with pytest.raises(ValueError):
            ConcatenatedCode(STEANE, 0)
        with pytest.raises(TypeError):
            ConcatenatedCode(STEANE, 2.0)

    def test_rank_helper_agrees_with_reference(self):
        for level in (1, 2):
            m = CODES[level].x_stabilizers
            assert gf2_rank_fast(m) == gf2_rank(m)


class TestEncoderRoundTrip:
    @pytest.mark.parametrize("level", (1, 2, 3))
    def test_encoder_prepares_the_encoded_zero(self, level):
        """|0...0> stabilizers conjugate onto stabilizers + logical Z."""
        code = CODES[level]
        circuit = code.zero_prep_circuit()
        flow = propagate_zero_stabilizers(circuit)
        assert gf2_spans_equal(flow, zero_state_group(code))

    @given(small_levels, st.data())
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_stable_under_stabilizer_multiplication(
        self, level, data
    ):
        """Multiplying propagated generators by group elements keeps the
        span — the round-trip is a *group* property, not generator luck."""
        code = CODES[level]
        flow = propagate_zero_stabilizers(code.zero_prep_circuit())
        target = zero_state_group(code)
        picks = data.draw(
            st.lists(
                st.integers(0, len(flow) - 1), min_size=1, max_size=4, unique=True
            )
        )
        mixed = flow.copy()
        combo = np.bitwise_xor.reduce(flow[picks], axis=0)
        mixed[picks[0]] = combo
        assert gf2_spans_equal(mixed, target)

    @given(small_levels)
    @settings(max_examples=6, deadline=None)
    def test_encoder_gate_census(self, level):
        """Recursive structure: E(L) = 7 E(L-1) + 12 * 7**(L-1), i.e.
        12 * L * 7**(L-1) gates — each of the L layers applies the
        12-gate base encoder transversally over 7**(L-1)-qubit blocks."""
        code = CODES[level]
        circuit = code.zero_prep_circuit(include_prep=False)
        assert len(circuit) == 12 * level * 7 ** (level - 1)
        assert circuit.num_qubits == code.n


class TestRecursiveDecoding:
    @given(small_levels, st.data())
    @settings(max_examples=40, deadline=None)
    def test_weight_below_recursive_radius_corrected(self, level, data):
        """Hard-decision blockwise decoding corrects weight <= 2**L - 1."""
        code = CODES[level]
        pattern = _random_pattern(data.draw, code.n, 2**level - 1)
        assert not code.is_logical_x(pattern)
        assert not code.is_logical_z(pattern)

    @settings(max_examples=6, deadline=None)
    @given(st.data())
    def test_level3_weight_seven_corrected(self, data):
        code = CODES[3]
        pattern = _random_pattern(data.draw, code.n, 7)
        assert not code.is_logical_x(pattern)

    @given(small_levels, st.data())
    @settings(max_examples=25, deadline=None)
    def test_stabilizer_elements_are_harmless(self, level, data):
        """Any product of X stabilizers decodes as no logical error."""
        code = CODES[level]
        rows = code.x_stabilizers
        picks = data.draw(
            st.lists(
                st.integers(0, len(rows) - 1), min_size=1, max_size=5, unique=True
            )
        )
        element = np.bitwise_xor.reduce(rows[picks], axis=0)
        assert not code.is_logical_x(element)

    @given(small_levels)
    @settings(max_examples=6, deadline=None)
    def test_logical_operator_detected(self, level):
        """The logical X itself must grade as a logical error."""
        code = CODES[level]
        assert code.is_logical_x(code.logical_x)
        assert code.is_logical_z(code.logical_z)
        assert code.is_uncorrectable(code.logical_x, np.zeros(code.n, np.uint8))

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_level1_grading_matches_base_code(self, data):
        """Level 1 delegates to the base decoder bit for bit."""
        pattern = _random_pattern(data.draw, 7, 7)
        assert CODES[1].is_logical_x(pattern) == STEANE.is_logical_x(pattern)
        assert CODES[1].is_logical_z(pattern) == STEANE.is_logical_z(pattern)
