"""Property tests: declarative ready-spec lowering vs the acquire loop.

The tentpole invariant of the ready-spec protocol: for every supply that
declares a spec, lowering that spec into the closed-form / array kernels
must equal the gate-by-gate ``acquire()`` reference loop (``run_legacy``)
with exact float equality — and must leave the supply's observable state
(consumed counters, per-qubit vectors) identical too. Exercised over
random rate vectors (zero and infinite rates included), mixed tracked
kinds, CQLA configurations, and point counts up to 128.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import simulate_batch
from repro.arch.architectures import CqlaConfig
from repro.arch.simulator import DataflowSimulator
from repro.arch.supply import (
    PI8,
    ZERO,
    DedicatedSupply,
    InfiniteSupply,
    SteadyRateSupply,
)
from repro.circuits import Circuit

NUM_QUBITS = 5


def _protocol_circuit() -> Circuit:
    """Every lowering hazard: multi-qubit deps, pi/8 consumers,
    measurements and classically-conditioned gates."""
    return (
        Circuit(NUM_QUBITS)
        .h(0)
        .cx(0, 1)
        .t(1)
        .ccx(0, 1, 2)
        .measure_z(2, "m0")
        .x(3, condition="m0")
        .t(3)
        .cx(3, 4)
        .measure_x(4, "m1")
        .z(0, condition="m1")
        .t(0)
    )


CIRCUIT = _protocol_circuit()

# Rates in ancillae/ms. Zero exercises starvation (infinite ready times,
# no consumption recorded); infinity exercises the always-ready-but-still-
# counted edge of the closed form.
rate_values = st.one_of(
    st.just(0.0),
    st.just(float("inf")),
    st.floats(
        min_value=1e-3,
        max_value=1e4,
        allow_nan=False,
        allow_infinity=False,
    ),
)

# Tracked-kind subsets: untracked kinds never constrain, and mixing
# signatures inside one batch exercises the grouping logic.
kind_subsets = st.sampled_from(
    [(ZERO, PI8), (ZERO,), (PI8,), ()]
)


def _steady_state(supply):
    return {kind: supply.consumed_so_far(kind) for kind in (ZERO, PI8)}


def _dedicated_state(supply):
    out = {}
    for kind in (ZERO, PI8):
        state = supply.dedicated_state(kind)
        out[kind] = None if state is None else list(state[1])
    return out


def _reference(supplies, cqla=None):
    return [
        DataflowSimulator(CIRCUIT, supply=supply, cqla=cqla).run_legacy()
        for supply in supplies
    ]


@settings(max_examples=50, deadline=None)
@given(
    points=st.lists(
        st.tuples(kind_subsets, rate_values, rate_values),
        min_size=1,
        max_size=12,
    )
)
def test_steady_lowering_matches_acquire_loop_and_state(points):
    def supplies():
        return [
            SteadyRateSupply(
                {k: r for k, r in zip((ZERO, PI8), (zero, pi8)) if k in kinds}
            )
            for kinds, zero, pi8 in points
        ]

    batch_supplies = supplies()
    reference_supplies = supplies()
    batched = simulate_batch(CIRCUIT, batch_supplies)
    assert batched == _reference(reference_supplies)
    for batch_supply, reference_supply in zip(
        batch_supplies, reference_supplies
    ):
        assert _steady_state(batch_supply) == _steady_state(reference_supply)


@settings(max_examples=30, deadline=None)
@given(
    rates=st.lists(
        st.tuples(rate_values, rate_values), min_size=1, max_size=8
    ),
    movement=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
)
def test_dedicated_lowering_matches_acquire_loop_and_state(rates, movement):
    def supplies():
        return [
            DedicatedSupply({ZERO: zero, PI8: pi8}, NUM_QUBITS)
            for zero, pi8 in rates
        ]

    batch_supplies = supplies()
    reference_supplies = supplies()
    batched = simulate_batch(
        CIRCUIT,
        batch_supplies,
        movement_penalty_us=movement,
        two_qubit_movement_penalty_us=movement * 2.0,
    )
    reference = [
        DataflowSimulator(
            CIRCUIT,
            supply=supply,
            movement_penalty_us=movement,
            two_qubit_movement_penalty_us=movement * 2.0,
        ).run_legacy()
        for supply in reference_supplies
    ]
    assert batched == reference
    for batch_supply, reference_supply in zip(
        batch_supplies, reference_supplies
    ):
        assert _dedicated_state(batch_supply) == (
            _dedicated_state(reference_supply)
        )


@settings(max_examples=30, deadline=None)
@given(
    cache_fraction=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    ports=st.integers(min_value=1, max_value=4),
    picks=st.lists(
        st.tuples(st.sampled_from(["steady", "infinite"]), rate_values),
        min_size=1,
        max_size=8,
    ),
)
def test_cqla_lockstep_matches_acquire_loop_and_state(
    cache_fraction, ports, picks
):
    cqla = CqlaConfig(cache_fraction=cache_fraction, ports=ports)

    def supplies():
        return [
            SteadyRateSupply({ZERO: rate, PI8: rate / 2.0})
            if model == "steady"
            else InfiniteSupply()
            for model, rate in picks
        ]

    batch_supplies = supplies()
    reference_supplies = supplies()
    batched = simulate_batch(CIRCUIT, batch_supplies, cqla=cqla)
    assert batched == _reference(reference_supplies, cqla=cqla)
    for batch_supply, reference_supply in zip(
        batch_supplies, reference_supplies
    ):
        if isinstance(batch_supply, SteadyRateSupply):
            assert _steady_state(batch_supply) == (
                _steady_state(reference_supply)
            )


@settings(max_examples=10, deadline=None)
@given(
    count=st.integers(min_value=1, max_value=128),
    base=st.floats(min_value=1e-2, max_value=1e3, allow_nan=False),
    cqla_on=st.booleans(),
)
def test_point_count_axis_up_to_128(count, base, cqla_on):
    """The batching axis itself — 1 through 128 points, distinct rates
    per point — never perturbs a bit, with or without CQLA."""
    cqla = CqlaConfig() if cqla_on else None

    def supplies():
        return [
            SteadyRateSupply(
                {ZERO: base * (i + 1), PI8: base * (i + 1) / 3.0}
            )
            for i in range(count)
        ]

    batched = simulate_batch(CIRCUIT, supplies(), cqla=cqla)
    assert batched == _reference(supplies(), cqla=cqla)
