"""Property-based tests: factory provisioning invariants under arbitrary
technology assumptions.

The paper keeps its factory analysis symbolic; these properties check the
bandwidth-matching machinery stays coherent however the latencies move.
"""

from hypothesis import given, settings, strategies as st

from repro.factory import Pi8Factory, PipelinedZeroFactory, SimpleZeroFactory
from repro.tech import TechnologyParams

latencies = st.floats(0.5, 200.0)


@st.composite
def technologies(draw):
    return TechnologyParams(
        name="hypothetical",
        t_1q=draw(latencies),
        t_2q=draw(latencies),
        t_meas=draw(latencies),
        t_prep=draw(latencies),
        t_move=draw(st.floats(0.1, 20.0)),
        t_turn=draw(st.floats(0.1, 50.0)),
    )


class TestZeroFactoryInvariants:
    @given(technologies())
    @settings(max_examples=40, deadline=None)
    def test_stages_cover_their_demand(self, tech):
        """Bandwidth matching must never under-provision a stage."""
        factory = PipelinedZeroFactory(tech)
        cx_flow = factory.stages["cx_stage"].capacity_in(tech)
        cat_flow = cx_flow * 3 / 7
        assert factory.stages["cat_prep"].capacity_in(tech) >= cat_flow - 1e-9
        assert (
            factory.stages["zero_prep"].capacity_in(tech)
            >= cx_flow + cat_flow - 1e-9
        )
        assert (
            factory.stages["verification"].capacity_in(tech)
            >= cx_flow + cat_flow - 1e-9
        )

    @given(technologies())
    @settings(max_examples=40, deadline=None)
    def test_throughput_positive_and_area_sane(self, tech):
        factory = PipelinedZeroFactory(tech)
        assert factory.throughput_per_ms > 0
        assert factory.area >= factory.functional_area
        assert factory.crossbar_area > 0

    @given(technologies(), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_throughput_linear_in_cx_units(self, tech, n):
        one = PipelinedZeroFactory(tech, cx_units=1)
        many = PipelinedZeroFactory(tech, cx_units=n)
        assert many.throughput_per_ms >= n * one.throughput_per_ms * 0.999

    @given(st.floats(0.05, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_uniform_scaling_inverts_throughput(self, factor):
        from repro.tech import ION_TRAP

        base = PipelinedZeroFactory(ION_TRAP)
        scaled = PipelinedZeroFactory(ION_TRAP.scaled(factor))
        assert scaled.throughput_per_ms * factor == _approx(base.throughput_per_ms)
        # Area derives from unit counts, which are scale-invariant under
        # uniform scaling (all bandwidths move together).
        assert scaled.area == base.area


class TestPi8FactoryInvariants:
    @given(technologies())
    @settings(max_examples=40, deadline=None)
    def test_stage2_covers_twice_cat_flow(self, tech):
        factory = Pi8Factory(tech)
        cat_flow = factory.stages["cat_state_prepare"].capacity_out(tech)
        assert (
            factory.stages["transversal_interact"].capacity_in(tech)
            >= 2 * cat_flow - 1e-9
        )

    @given(technologies())
    @settings(max_examples=40, deadline=None)
    def test_zero_demand_equals_output(self, tech):
        factory = Pi8Factory(tech)
        assert factory.zero_ancilla_demand_per_ms == _approx(
            factory.throughput_per_ms
        )


class TestSimpleFactoryInvariants:
    @given(technologies())
    @settings(max_examples=40, deadline=None)
    def test_latency_throughput_reciprocal(self, tech):
        factory = SimpleZeroFactory(tech)
        assert factory.throughput_per_ms * factory.latency_us == _approx(1000.0)

    @given(technologies(), st.floats(0.1, 100.0))
    @settings(max_examples=40, deadline=None)
    def test_replication_meets_bandwidth(self, tech, bandwidth):
        factory = SimpleZeroFactory(tech)
        area = factory.replicated_area_for_bandwidth(bandwidth)
        copies = area / factory.area
        assert copies * factory.throughput_per_ms >= bandwidth - 1e-9


def _approx(value, rel=1e-6):
    import pytest

    return pytest.approx(value, rel=rel)
