"""Property-based tests: circuit DAG and scheduling invariants."""

from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit, CircuitDag, asap_schedule, critical_path
from repro.circuits.gate import Gate, GateType
from repro.circuits.latency import PhysicalLatencyModel
from repro.tech import ION_TRAP

LAT = PhysicalLatencyModel(ION_TRAP)
N = 5


@st.composite
def random_circuits(draw, n=N, max_gates=15):
    num = draw(st.integers(0, max_gates))
    circ = Circuit(n)
    for _ in range(num):
        arity = draw(st.sampled_from([1, 1, 2]))
        if arity == 1:
            gt = draw(st.sampled_from([GateType.H, GateType.T, GateType.S,
                                       GateType.X, GateType.PREP_0]))
            circ.append(Gate(gt, (draw(st.integers(0, n - 1)),)))
        else:
            q1 = draw(st.integers(0, n - 1))
            q2 = draw(st.integers(0, n - 1).filter(lambda q: q != q1))
            gt = draw(st.sampled_from([GateType.CX, GateType.CZ]))
            circ.append(Gate(gt, (q1, q2)))
    return circ


class TestDagInvariants:
    @given(random_circuits())
    @settings(max_examples=80)
    def test_edges_point_forward(self, circ):
        dag = CircuitDag(circ)
        for i in range(len(circ)):
            assert all(p < i for p in dag.predecessors(i))
            assert all(s > i for s in dag.successors(i))

    @given(random_circuits())
    @settings(max_examples=80)
    def test_pred_succ_symmetric(self, circ):
        dag = CircuitDag(circ)
        for i in range(len(circ)):
            for p in dag.predecessors(i):
                assert i in dag.successors(p)

    @given(random_circuits())
    @settings(max_examples=80)
    def test_same_qubit_gates_ordered(self, circ):
        """Consecutive gates on a shared qubit must be DAG-connected."""
        dag = CircuitDag(circ)
        last_on = {}
        for i, gate in enumerate(circ):
            for q in gate.qubits:
                if q in last_on:
                    assert last_on[q] in dag.predecessors(i)
                last_on[q] = i


class TestScheduleInvariants:
    @given(random_circuits())
    @settings(max_examples=80)
    def test_no_dependency_violated(self, circ):
        entries = asap_schedule(circ, LAT)
        dag = CircuitDag(circ)
        for entry in entries:
            for p in dag.predecessors(entry.index):
                assert entries[p].finish <= entry.start + 1e-9

    @given(random_circuits())
    @settings(max_examples=80)
    def test_durations_positive(self, circ):
        for entry in asap_schedule(circ, LAT):
            assert entry.duration > 0

    @given(random_circuits())
    @settings(max_examples=80)
    def test_critical_path_bounds(self, circ):
        """Makespan is bounded below by the longest single gate and above
        by the serial sum of all gate latencies."""
        cp = critical_path(circ, LAT)
        latencies = [LAT.gate_latency(g) for g in circ]
        assert cp <= sum(latencies) + 1e-9
        if latencies:
            assert cp >= max(latencies) - 1e-9

    @given(random_circuits())
    @settings(max_examples=60)
    def test_appending_gate_never_shrinks_critical_path(self, circ):
        before = critical_path(circ, LAT)
        extended = circ.copy()
        extended.h(0)
        assert critical_path(extended, LAT) >= before - 1e-9

    @given(random_circuits())
    @settings(max_examples=60)
    def test_depth_le_gate_count(self, circ):
        assert circ.depth() <= len(circ)
