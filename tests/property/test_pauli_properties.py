"""Property-based tests: Pauli frame group structure and propagation."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit
from repro.circuits.gate import Gate, GateType
from repro.error.pauli import PauliFrame
from repro.error.propagation import propagate_gate

N_QUBITS = 6

paulis = st.sampled_from(["I", "X", "Y", "Z"])


@st.composite
def frames(draw, n=N_QUBITS):
    frame = PauliFrame(n)
    for q in range(n):
        frame.apply_pauli(q, draw(paulis))
    return frame


@st.composite
def clifford_gates(draw, n=N_QUBITS):
    kind = draw(st.sampled_from(["h", "s", "sdg", "cx", "cz", "swap", "x", "z"]))
    q1 = draw(st.integers(0, n - 1))
    if kind in ("cx", "cz", "swap"):
        q2 = draw(st.integers(0, n - 1).filter(lambda q: q != q1))
        return Gate(GateType[kind.upper()], (q1, q2))
    mapping = {"h": GateType.H, "s": GateType.S, "sdg": GateType.S_DAG,
               "x": GateType.X, "z": GateType.Z}
    return Gate(mapping[kind], (q1,))


@st.composite
def clifford_circuits(draw, n=N_QUBITS, max_gates=12):
    num = draw(st.integers(0, max_gates))
    circ = Circuit(n)
    for _ in range(num):
        circ.append(draw(clifford_gates(n)))
    return circ


class TestGroupLaws:
    @given(frames(), frames())
    def test_multiply_commutative_mod_phase(self, a, b):
        assert a.multiply(b) == b.multiply(a)

    @given(frames())
    def test_self_inverse(self, frame):
        assert frame.multiply(frame).is_identity()

    @given(frames(), frames(), frames())
    def test_associative(self, a, b, c):
        assert a.multiply(b).multiply(c) == a.multiply(b.multiply(c))

    @given(frames())
    def test_identity_element(self, frame):
        assert frame.multiply(PauliFrame(N_QUBITS)) == frame

    @given(frames())
    def test_copy_equals_original(self, frame):
        assert frame.copy() == frame

    @given(frames())
    def test_weight_bounds(self, frame):
        assert 0 <= frame.weight() <= N_QUBITS


class TestPropagationLaws:
    @given(clifford_circuits(), frames(), frames())
    @settings(max_examples=60)
    def test_propagation_is_group_homomorphism(self, circ, a, b):
        """Conjugation distributes over frame multiplication: pushing the
        product through equals the product of the pushed frames."""
        product = a.multiply(b)
        for frame in (a, b, product):
            for gate in circ:
                propagate_gate(frame, gate)
        assert a.multiply(b) == product

    @given(clifford_circuits())
    @settings(max_examples=60)
    def test_identity_frame_stays_identity(self, circ):
        frame = PauliFrame(N_QUBITS)
        for gate in circ:
            propagate_gate(frame, gate)
        assert frame.is_identity()

    @given(clifford_circuits(), frames())
    @settings(max_examples=60)
    def test_forward_then_reverse_restores(self, circ, frame):
        """Propagating through a circuit then its inverse restores the
        frame (H, CX, CZ, SWAP, X, Z are involutions on frames; S and
        S_DAG act identically on frames, so the reversed gate list with
        the same gates inverts the conjugation)."""
        original = frame.copy()
        for gate in circ:
            propagate_gate(frame, gate)
        for gate in reversed(list(circ)):
            propagate_gate(frame, gate)
        assert frame == original

    @given(frames(), st.integers(0, N_QUBITS - 1))
    def test_cx_preserves_weight_parity_on_others(self, frame, q):
        """A gate never changes the Pauli on qubits it does not touch."""
        other = (q + 1) % N_QUBITS
        untouched = [i for i in range(N_QUBITS) if i not in (q, other)]
        before = [frame.pauli_on(i) for i in untouched]
        propagate_gate(frame, Gate(GateType.CX, (q, other)))
        after = [frame.pauli_on(i) for i in untouched]
        assert before == after
