"""Replica-fleet fault plans: kill-one, flapping, and fleet death.

The acceptance scenario from the failure-mode matrix: N ``repro serve``
replicas share one store, one is SIGKILL'd (``os._exit`` via a
replica-scoped fault rule) mid-explore, and the exploration completes
bit-identically to a cold local run with no point simulated twice and
exactly the killed replica's breaker recording an open.
"""

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.explore import (
    ResultStore,
    ServeDegradedWarning,
    ServeRecoveredWarning,
)
from repro.obs import metrics as _metrics
from repro.serve import (
    ExploreServer,
    ExploreService,
    RemoteEvaluator,
    ReplicaSet,
)
from repro.testing.faults import FaultRule, replica_plan
from repro.util.backoff import Backoff


def _result_lines(out):
    """The exploration result block, minus the run-dependent header
    counters (new-vs-cached simulation counts differ on a warm store)."""
    return [
        line for line in out.split("evaluator:")[0].splitlines()
        if "simulation" not in line
    ]


def _pool(urls, **kwargs):
    kwargs.setdefault("retries", 0)
    kwargs.setdefault("timeout", 10.0)
    kwargs.setdefault("backoff", Backoff(base=0.0))
    return ReplicaSet(urls, **kwargs)


class TestConcurrentReplicaSetClients:
    def test_three_clients_two_replicas_never_double_simulate(
        self, tmp_path, points, reference, assert_identical
    ):
        """Three concurrent ReplicaSet clients over two replicas on one
        store: coalescing + the lease protocol keep every point to one
        simulation pass fleet-wide."""
        store = ResultStore(tmp_path / "fleet-store")
        servers = []
        try:
            for _ in range(2):
                service = ExploreService(store=store, max_queue=8)
                server = ExploreServer(service)
                server.start_background()
                servers.append(server)
            urls = [server.url for server in servers]
            outcomes = {}

            def run(name):
                evaluations, stats = _pool(list(urls)).evaluate(
                    "qrca", 8, points
                )
                outcomes[name] = (evaluations, stats)

            threads = [
                threading.Thread(target=run, args=(name,))
                for name in ("a", "b", "c")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert set(outcomes) == {"a", "b", "c"}
            total_simulated = sum(
                stats["simulations_run"] for _, stats in outcomes.values()
            )
            assert total_simulated == len(points)
            for evaluations, _ in outcomes.values():
                assert_identical(evaluations, reference)
        finally:
            for server in servers:
                server.shutdown(drain_timeout=5.0)


class TestFleetDegradeRecover:
    def test_fleet_death_degrades_then_probe_recovery_returns_to_served(
        self, tmp_path, arm, points, reference, assert_identical
    ):
        """Every breaker open -> local fallback; a successful /readyz
        probe un-degrades and the next batch is served again."""
        store = ResultStore(tmp_path / "server-store")
        service = ExploreService(store=store, max_queue=4, replica_id="r1")
        server = ExploreServer(service)
        server.start_background()
        try:
            arm([FaultRule(mode="refuse", stage="serve_request",
                           replica="r1", times=None)])
            pool = _pool(
                [server.url], failure_threshold=1, cooldown=0.05
            )
            evaluator = RemoteEvaluator(
                pool, kernel="qrca", width=8,
                store=ResultStore(tmp_path / "client-store"),
            )
            with pytest.warns(ServeDegradedWarning, match="unreachable"):
                first = evaluator.evaluate(points[:3])
            assert evaluator.degraded
            assert evaluator.stats()["fallback_batches"] == 1

            arm([])  # the fleet comes back
            time.sleep(0.1)  # let the breaker cooldown elapse
            with pytest.warns(ServeRecoveredWarning):
                second = evaluator.evaluate(points[3:])
            assert not evaluator.degraded
            stats = evaluator.stats()
            assert stats["recoveries"] == 1
            assert stats["remote_batches"] == 1
            assert_identical(first + second, reference)
        finally:
            server.shutdown(drain_timeout=5.0)


class TestKillOneReplicaMidExplore:
    def test_kill_one_of_three_bit_identical_no_double_simulation(
        self, tmp_path, capsys
    ):
        """The fault-matrix acceptance scenario, end to end."""
        src = Path(__file__).resolve().parents[2] / "src"
        state = tmp_path / "fault-state"
        state.mkdir()
        plan = replica_plan("kill-one", "a")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_FAULTS"] = plan.to_json()
        env["REPRO_FAULTS_DIR"] = str(state)

        processes = {}
        urls = {}
        try:
            for replica in ("a", "b", "c"):
                port_file = tmp_path / f"port-{replica}"
                processes[replica] = subprocess.Popen(
                    [
                        sys.executable, "-m", "repro", "serve",
                        "--port", "0",
                        "--port-file", str(port_file),
                        "--replica-id", replica,
                        "--cache-dir", str(tmp_path / "fleet-store"),
                        "--workers", "1",
                    ],
                    env=env,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT,
                    text=True,
                )
                banner = processes[replica].stdout.readline()
                assert "listening on http://" in banner, banner
                url = banner.split("listening on ", 1)[1].split()[0]
                # --port 0: banner and --port-file agree on the real port.
                assert port_file.read_text().strip() == url.rsplit(":", 1)[1]
                assert f"replica: {replica}" in banner
                urls[replica] = url

            code = main([
                "explore", "qrca-8", "--budget", "6",
                "--server", ",".join(urls.values()),
                "--server-timeout", "10", "--server-retries", "0",
                "--breaker-threshold", "1",
                "--cache-dir", str(tmp_path / "client-store"),
            ])
            out = capsys.readouterr().out
            assert code == 0
            assert "best" in out

            # Replica a died mid-explore (the rule's os._exit).
            assert processes["a"].wait(timeout=30) == 17

            # Exactly the killed replica's breaker recorded an open.
            opens = {
                sample["labels"]["replica"]
                for sample in _metrics.snapshot()
                .get("repro_pool_breaker_opens_total", {})
                .get("samples", [])
                if sample["labels"]["replica"] in urls.values()
            }
            assert opens == {urls["a"]}

            # Bit-identical to a cold local run of the same exploration.
            assert main([
                "explore", "qrca-8", "--budget", "6",
                "--cache-dir", str(tmp_path / "cold-store"),
            ]) == 0
            cold = capsys.readouterr().out
            assert _result_lines(out) == _result_lines(cold)

            # Warm re-run against the surviving replicas, fresh client
            # store: every point answered from the fleet store, zero new
            # simulations.
            assert main([
                "explore", "qrca-8", "--budget", "6",
                "--server", f"{urls['b']},{urls['c']}",
                "--server-timeout", "10", "--server-retries", "0",
                "--cache-dir", str(tmp_path / "warm-client-store"),
            ]) == 0
            warm = capsys.readouterr().out
            assert "simulations_run=0" in warm
            assert _result_lines(warm) == _result_lines(cold)
        finally:
            for process in processes.values():
                if process.poll() is None:
                    process.kill()
                    process.wait(timeout=30)
