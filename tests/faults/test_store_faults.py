"""Store-side fault injection: torn writes, I/O errors, fsck."""

import json
import warnings

import pytest

from repro.explore import Evaluator, ResultStore, StoreDegradedWarning
from repro.explore.store import SCHEMA_VERSION
from repro.testing import faults
from repro.testing.faults import FaultPlan, FaultRule

KEY = {"kernel": "qrca", "width": 8, "point": {"arch": "qla", "factory_area": 40.0}}


@pytest.fixture
def arm_local():
    """Arm an in-process plan (store I/O happens in this process)."""
    try:
        yield lambda rules: faults.arm(FaultPlan(rules))
    finally:
        faults.arm(None)


class TestTornWrites:
    def test_torn_write_reads_as_miss(self, tmp_path, arm_local):
        arm_local([FaultRule(mode="torn", stage="store_put", times=1)])
        store = ResultStore(tmp_path)
        store.put(KEY, {"result": {"makespan_us": 1.0}})
        assert store.get(KEY) is None  # truncated JSON: a miss, not data
        assert len(store) == 0
        # The next (untorn) write heals the entry.
        store.put(KEY, {"result": {"makespan_us": 1.0}})
        assert store.get(KEY)["result"] == {"makespan_us": 1.0}

    def test_torn_write_resimulated_next_run(self, tmp_path, arm_local, points):
        arm_local([FaultRule(mode="torn", stage="store_put",
                             match={"factory_area": 80.0}, times=1)])
        store = ResultStore(tmp_path)
        first = Evaluator(kernel="qrca", width=8, store=store)
        first.evaluate(points)
        assert len(store) == len(points) - 1
        faults.arm(None)
        second = Evaluator(kernel="qrca", width=8, store=store)
        second.evaluate(points)
        assert second.simulations_run == 1  # only the torn entry
        assert len(store) == len(points)


class TestStoreIOErrors:
    def test_put_oserror_degrades_with_warning(self, tmp_path, arm_local):
        arm_local([FaultRule(mode="raise", stage="store_put", exc="OSError",
                             message="No space left on device", times=1)])
        store = ResultStore(tmp_path)
        with pytest.warns(StoreDegradedWarning, match="No space left"):
            assert store.put(KEY, {"result": {}}) is False
        assert store.put(KEY, {"result": {}}) is True

    def test_readonly_cache_dir_does_not_crash_evaluation(
        self, tmp_path, arm_local, points, reference, assert_identical
    ):
        """ENOSPC/EROFS on every write: the exploration still completes
        with correct in-memory results."""
        arm_local([FaultRule(mode="raise", stage="store_put", exc="OSError",
                             message="Read-only file system", times=None)])
        store = ResultStore(tmp_path)
        evaluator = Evaluator(kernel="qrca", width=8, store=store)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", StoreDegradedWarning)
            got = evaluator.evaluate(points)
        assert_identical(got, reference)
        assert len(store) == 0

    def test_get_oserror_is_a_miss(self, tmp_path, arm_local):
        store = ResultStore(tmp_path)
        store.put(KEY, {"result": {}})
        arm_local([FaultRule(mode="raise", stage="store_get", exc="OSError",
                             times=1)])
        assert store.get(KEY) is None
        assert store.get(KEY) is not None  # fault budget spent


class TestSchemaGate:
    """records()/__len__ apply the same schema gate as get()."""

    def _write(self, store, name, record):
        store.directory.mkdir(parents=True, exist_ok=True)
        (store.directory / name).write_text(json.dumps(record))

    def test_stale_schema_not_counted_or_yielded(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, {"tag": "good"})
        self._write(store, "stale.json",
                    {"schema": SCHEMA_VERSION + 1, "tag": "stale"})
        self._write(store, "schemaless.json", {"tag": "foreign"})
        assert len(store) == 1
        assert [r["tag"] for r in store.records()] == ["good"]

    def test_corrupt_but_parseable_not_counted(self, tmp_path):
        store = ResultStore(tmp_path)
        self._write(store, "list.json", [1, 2, 3])
        assert len(store) == 0
        assert list(store.records()) == []


class TestFsck:
    def test_fsck_classifies_everything(self, tmp_path):
        store = ResultStore(tmp_path, lease_ttl=0.1)
        store.put(KEY, {"tag": "good"})
        (store.directory / "corrupt.json").write_text("{ not json")
        (store.directory / "stale.json").write_text(
            json.dumps({"schema": SCHEMA_VERSION + 1, "key": {}})
        )
        # A record renamed away from its content address is foreign.
        good_path = store._path(KEY)
        (store.directory / "renamed.json").write_text(good_path.read_text())
        store.claim({"point": "other"})
        import time

        time.sleep(0.2)  # the lease goes stale
        report = store.fsck()
        assert report.ok == 1
        assert report.corrupt == ["corrupt.json"]
        assert report.stale_schema == ["stale.json"]
        assert report.foreign == ["renamed.json"]
        assert len(report.stale_leases) == 1
        assert report.removed == 0  # report-only by default

    def test_fsck_remove_heals_the_store(self, tmp_path):
        store = ResultStore(tmp_path, lease_ttl=0.05)
        store.put(KEY, {"tag": "good"})
        (store.directory / "corrupt.json").write_text("nope")
        store.claim({"point": "other"})
        import time

        time.sleep(0.15)
        report = store.fsck(remove=True)
        assert report.removed == 2  # corrupt entry + stale lease
        assert store.fsck().bad == 0
        assert store.get(KEY)["tag"] == "good"  # healthy entries untouched


class TestFaultHarness:
    def test_times_budget_persists_across_arm_cycles(self, tmp_path):
        state = tmp_path / "state"
        state.mkdir()
        plan = FaultPlan(
            [FaultRule(mode="raise", stage="evaluate", times=2)],
            state_dir=str(state),
        )
        fired = 0
        for _ in range(5):
            try:
                plan_check(plan)
            except RuntimeError:
                fired += 1
        assert fired == 2

    def test_plan_round_trips_through_json(self):
        plan = FaultPlan([FaultRule(mode="exit", match={"x": 1.5}, times=3)])
        restored = FaultPlan.from_json(plan.to_json(), state_dir=None)
        assert restored.rules == plan.rules

    def test_unmatched_point_never_fires(self):
        faults.arm(FaultPlan([FaultRule(mode="raise", stage="evaluate",
                                        match={"factory_area": 999.0})]))
        try:
            faults.check("evaluate", {"factory_area": 40.0})  # no raise
            faults.check("store_put", {"factory_area": 999.0})  # wrong stage
        finally:
            faults.arm(None)


def plan_check(plan):
    faults.arm(plan)
    try:
        faults.check("evaluate", {"arch": "qla"})
    finally:
        faults.arm(None)
