"""CLI surface of the robustness work: `repro cache` and the explore
resume/retry flags."""

import json

from repro.__main__ import main
from repro.explore import ResultStore
from repro.explore.store import SCHEMA_VERSION


def _explore(tmp_path, *extra):
    return main(
        [
            "explore", "qrca-8",
            "--strategy", "grid",
            "--budget", "4",
            "--cache-dir", str(tmp_path),
            *extra,
        ]
    )


class TestCacheSubcommand:
    def test_stats_on_empty_store(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "valid records: 0" in out
        assert "journal: none" in out

    def test_fsck_healthy_store_exits_zero(self, tmp_path, capsys):
        store = ResultStore(tmp_path)
        store.put({"point": {"arch": "qla"}}, {"tag": 1})
        assert main(["cache", "fsck", "--cache-dir", str(tmp_path)]) == 0
        assert "ok: 1" in capsys.readouterr().out

    def test_fsck_reports_corruption_and_exits_nonzero(self, tmp_path, capsys):
        store = ResultStore(tmp_path)
        store.directory.mkdir(parents=True, exist_ok=True)
        (store.directory / "corrupt.json").write_text("{ torn")
        (store.directory / "stale.json").write_text(
            json.dumps({"schema": SCHEMA_VERSION + 1})
        )
        assert main(["cache", "fsck", "--cache-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "corrupt: 1 (corrupt.json)" in out
        assert "stale schema: 1" in out
        assert "fsck --remove" in out

    def test_fsck_remove_heals_and_exits_zero(self, tmp_path, capsys):
        store = ResultStore(tmp_path)
        store.put({"point": {"arch": "qla"}}, {"tag": 1})
        (store.directory / "corrupt.json").write_text("{ torn")
        assert main(
            ["cache", "fsck", "--remove", "--cache-dir", str(tmp_path)]
        ) == 0
        assert "removed: 1" in capsys.readouterr().out
        assert main(["cache", "fsck", "--cache-dir", str(tmp_path)]) == 0

    def test_clear(self, tmp_path, capsys):
        store = ResultStore(tmp_path)
        store.put({"point": {"arch": "qla"}}, {"tag": 1})
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "cleared 1" in capsys.readouterr().out
        assert len(ResultStore(tmp_path)) == 0


class TestExploreRobustnessFlags:
    def test_stats_line_printed(self, tmp_path, capsys):
        assert _explore(tmp_path) == 0
        out = capsys.readouterr().out
        assert "evaluator: simulations_run=4" in out
        assert "cache_hits=0" in out
        assert "worker_crashes=0" in out

    def test_retries_and_timeout_flags_parse(self, tmp_path, capsys):
        assert _explore(
            tmp_path, "--retries", "1", "--timeout", "120"
        ) == 0
        assert "evaluator:" in capsys.readouterr().out

    def test_resume_replays_from_journal(self, tmp_path, capsys):
        assert _explore(tmp_path) == 0
        capsys.readouterr()
        assert _explore(
            tmp_path, "--budget", "6", "--resume"
        ) == 0
        out = capsys.readouterr().out
        # Four replayed points served from the store, two fresh.
        assert "cache_hits=4" in out
        assert "simulations_run=2" in out

    def test_resume_requires_the_store(self, tmp_path, capsys):
        assert _explore(tmp_path, "--resume", "--no-cache") == 2
        assert "--resume needs the result store" in capsys.readouterr().err
