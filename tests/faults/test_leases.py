"""The store's lease protocol: claims, staleness, and the acceptance
property — two concurrent evaluators sharing one store simulate each
unique point exactly once between them.
"""

import multiprocessing
import os
import time

import pytest

from repro.explore import Evaluator, LeaseHeld, ResultStore
from repro.testing.faults import FaultPlan, FaultRule


class TestLeaseProtocol:
    KEY = {"kernel": "qrca", "width": 8, "point": {"arch": "qla"}}

    def test_claim_release_cycle(self, tmp_path):
        a = ResultStore(tmp_path)
        b = ResultStore(tmp_path)
        assert a.claim(self.KEY)
        assert a.claim(self.KEY)  # re-entrant for the same owner
        assert not b.claim(self.KEY)
        a.release(self.KEY)
        assert b.claim(self.KEY)

    def test_release_leaves_foreign_lease_alone(self, tmp_path):
        a = ResultStore(tmp_path)
        b = ResultStore(tmp_path)
        assert a.claim(self.KEY)
        b.release(self.KEY)  # not b's to drop
        assert not b.claim(self.KEY)

    def test_stale_lease_reclaimed(self, tmp_path):
        a = ResultStore(tmp_path, lease_ttl=0.2)
        b = ResultStore(tmp_path, lease_ttl=0.2)
        assert a.claim(self.KEY)
        time.sleep(0.3)  # a dies silently: no heartbeat
        assert b.claim(self.KEY)
        assert not a.claim(self.KEY)  # ownership genuinely moved

    def test_heartbeat_keeps_lease_live(self, tmp_path):
        a = ResultStore(tmp_path, lease_ttl=0.4)
        b = ResultStore(tmp_path, lease_ttl=0.4)
        assert a.claim(self.KEY)
        for _ in range(3):
            time.sleep(0.2)
            a.heartbeat(self.KEY)
        assert not b.claim(self.KEY)  # never went stale

    def test_hold_context_manager(self, tmp_path):
        a = ResultStore(tmp_path)
        b = ResultStore(tmp_path)
        with a.hold(self.KEY):
            with pytest.raises(LeaseHeld):
                with b.hold(self.KEY):
                    pass
        assert b.claim(self.KEY)  # released on exit

    def test_lease_files_invisible_to_records(self, tmp_path):
        store = ResultStore(tmp_path)
        store.claim(self.KEY)
        assert len(store) == 0
        assert list(store.records()) == []
        store.put(self.KEY, {"tag": 1})
        assert len(store) == 1
        assert store.clear() == 1
        assert not list(store.directory.glob("*.lease"))  # swept by clear


def _run_one_evaluator(root, points, plan_json, state_dir, queue):
    os.environ["REPRO_FAULTS"] = plan_json
    os.environ["REPRO_FAULTS_DIR"] = state_dir
    store = ResultStore(root)
    evaluator = Evaluator(kernel="qrca", width=8, store=store)
    evaluations = evaluator.evaluate(points)
    queue.put(
        {
            "sims": evaluator.simulations_run,
            "hits": evaluator.cache_hits,
            "all_ok": all(e.ok for e in evaluations),
            "makespans": [e.result.makespan_us for e in evaluations],
        }
    )


class TestConcurrentEvaluators:
    def test_two_evaluators_never_double_simulate(
        self, tmp_path, points, reference
    ):
        """Two evaluator processes race over one store: the leases split
        the points between them, contested points are awaited, and each
        unique point is simulated exactly once globally."""
        # Slow every evaluation slightly so the two runs genuinely
        # overlap instead of one finishing before the other starts.
        state = tmp_path / "fault-state"
        state.mkdir()
        plan = FaultPlan(
            [FaultRule(mode="hang", stage="evaluate", times=None,
                       seconds=0.2)],
            state_dir=str(state),
        )
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        procs = [
            ctx.Process(
                target=_run_one_evaluator,
                args=(str(tmp_path / "cache"), points, plan.to_json(),
                      str(state), queue),
            )
            for _ in range(2)
        ]
        for proc in procs:
            proc.start()
        results = [queue.get(timeout=120) for _ in procs]
        for proc in procs:
            proc.join(timeout=30)
        assert all(r["all_ok"] for r in results)
        # The acceptance property: exactly one simulation per point.
        assert sum(r["sims"] for r in results) == len(points)
        # Every evaluator resolved every point (own sims + peer's results).
        for r in results:
            assert r["sims"] + r["hits"] == len(points)
            assert r["makespans"] == [e.result.makespan_us for e in reference]

    def test_dead_evaluator_lease_reclaimed_by_peer(self, tmp_path, points):
        """An evaluator that claimed a point and died must not block the
        point forever: the peer reclaims the stale lease and simulates."""
        store_a = ResultStore(tmp_path, lease_ttl=0.3)
        evaluator_a = Evaluator(kernel="qrca", width=8, store=store_a)
        key = evaluator_a._store_key(
            evaluator_a.canonicalize(points[0])
        )
        assert store_a.claim(key)  # a "dies" here: lease never released
        time.sleep(0.4)
        store_b = ResultStore(tmp_path, lease_ttl=0.3)
        evaluator_b = Evaluator(kernel="qrca", width=8, store=store_b)
        got = evaluator_b.evaluate([points[0]])
        assert got[0].ok
        assert evaluator_b.simulations_run == 1
