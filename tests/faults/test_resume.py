"""Checkpoint/resume: the round journal replays completed work from the
warm store instead of re-simulating it."""

import json

import pytest

from repro.explore import (
    AdcrObjective,
    Evaluator,
    GridStrategy,
    LatencyObjective,
    ResultStore,
    architecture_space,
    explore,
)


def _setup(tmp_path, qrca8):
    space = architecture_space(qrca8)
    store = ResultStore(tmp_path / "cache")
    journal = store.journal_path()
    return space, store, journal


def _evaluator(store):
    return Evaluator(kernel="qrca", width=8, store=store)


class TestJournal:
    def test_rounds_are_journaled(self, tmp_path, qrca8):
        space, store, journal = _setup(tmp_path, qrca8)
        result = explore(
            space, AdcrObjective(), GridStrategy(space),
            evaluator=_evaluator(store), budget=4, journal=journal,
        )
        assert result.evaluated == 4
        entries = [
            json.loads(line) for line in journal.read_text().splitlines()
        ]
        assert entries[0]["type"] == "header"
        rounds = [e for e in entries if e["type"] == "round"]
        assert sum(len(r["points"]) for r in rounds) == 4

    def test_resume_skips_completed_rounds(self, tmp_path, qrca8):
        """An interrupted exploration resumes: journaled rounds replay
        from the warm store (zero new simulations) and the search
        continues into fresh territory."""
        space, store, journal = _setup(tmp_path, qrca8)
        first = explore(
            space, AdcrObjective(), GridStrategy(space),
            evaluator=_evaluator(store), budget=4, journal=journal,
        )
        assert first.simulations_run == 4

        resumed_evaluator = _evaluator(store)
        resumed = explore(
            space, AdcrObjective(), GridStrategy(space),
            evaluator=resumed_evaluator, budget=8,
            journal=journal, resume=True,
        )
        assert resumed.evaluated == 8
        # The replayed prefix cost zero simulations...
        assert resumed.cache_hits == 4
        # ...and only the new half of the budget touched the simulator.
        assert resumed.simulations_run == 4
        # Replay + continuation visits the same prefix as one cold run.
        cold = explore(
            space, AdcrObjective(), GridStrategy(space),
            evaluator=Evaluator(kernel="qrca", width=8), budget=8,
        )
        assert [e.point for e in resumed.evaluations] == [
            e.point for e in cold.evaluations
        ]
        assert resumed.scores == cold.scores

    def test_resume_after_simulated_crash_mid_round(self, tmp_path, qrca8):
        """A journal whose tail was torn by a crash mid-append still
        replays its intact prefix."""
        space, store, journal = _setup(tmp_path, qrca8)
        explore(
            space, AdcrObjective(), GridStrategy(space),
            evaluator=_evaluator(store), budget=4, journal=journal,
        )
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"type": "round", "points": [{"arch": "q')  # torn
        resumed = explore(
            space, AdcrObjective(), GridStrategy(space),
            evaluator=_evaluator(store), budget=6,
            journal=journal, resume=True,
        )
        assert resumed.evaluated == 6
        assert resumed.cache_hits >= 4

    def test_resume_refuses_foreign_journal(self, tmp_path, qrca8):
        space, store, journal = _setup(tmp_path, qrca8)
        explore(
            space, AdcrObjective(), GridStrategy(space),
            evaluator=_evaluator(store), budget=2, journal=journal,
        )
        with pytest.raises(ValueError, match="different exploration"):
            explore(
                space, LatencyObjective(), GridStrategy(space),
                evaluator=_evaluator(store), budget=2,
                journal=journal, resume=True,
            )

    def test_fresh_run_truncates_stale_journal(self, tmp_path, qrca8):
        space, store, journal = _setup(tmp_path, qrca8)
        explore(
            space, AdcrObjective(), GridStrategy(space),
            evaluator=_evaluator(store), budget=4, journal=journal,
        )
        explore(
            space, AdcrObjective(), GridStrategy(space),
            evaluator=_evaluator(store), budget=2, journal=journal,
        )
        entries = [
            json.loads(line) for line in journal.read_text().splitlines()
        ]
        rounds = [e for e in entries if e["type"] == "round"]
        assert sum(len(r["points"]) for r in rounds) == 2

    def test_resume_without_journal_starts_clean(self, tmp_path, qrca8):
        space, store, journal = _setup(tmp_path, qrca8)
        result = explore(
            space, AdcrObjective(), GridStrategy(space),
            evaluator=_evaluator(store), budget=3,
            journal=journal, resume=True,
        )
        assert result.evaluated == 3
        assert result.simulations_run == 3
