"""Shared fixtures for the fault-injection suite.

Plans are armed through the environment (``REPRO_FAULTS`` /
``REPRO_FAULTS_DIR``) so they reach worker processes; ``monkeypatch``
guarantees disarm even when a test fails.
"""

import pytest

from repro.explore import Evaluator
from repro.testing.faults import FaultPlan

#: A homogeneous QLA slice of the design space: batches through the
#: point-batched engine, shards cleanly across workers.
POINTS = [
    {"arch": "qla", "factory_area": area}
    for area in (40.0, 80.0, 120.0, 160.0, 200.0, 240.0)
]


@pytest.fixture
def arm(monkeypatch, tmp_path):
    """Arm a cross-process fault plan; disarmed automatically."""

    def _arm(rules):
        state = tmp_path / "fault-state"
        state.mkdir(exist_ok=True)
        plan = FaultPlan(rules, state_dir=str(state))
        monkeypatch.setenv("REPRO_FAULTS", plan.to_json())
        monkeypatch.setenv("REPRO_FAULTS_DIR", str(state))
        return plan

    return _arm


@pytest.fixture(scope="session")
def points():
    """The design points under test (copies: tests may not mutate them)."""
    return [dict(point) for point in POINTS]


@pytest.fixture(scope="session")
def reference():
    """Fault-free serial evaluations of POINTS — the bit-identity oracle."""
    return Evaluator(kernel="qrca", width=8).evaluate(POINTS)


def _assert_identical(got, ref):
    """Successful evaluations must match the fault-free run exactly."""
    for have, want in zip(got, ref):
        assert have.ok
        assert have.result == want.result
        assert have.total_area == want.total_area


@pytest.fixture(scope="session")
def assert_identical():
    return _assert_identical
