"""Network fault plans against the exploration server.

The same environment-armed harness that crash-tests pool workers drives
the client failure matrix here: connection refused, response hang, torn
body, 5xx burst — each with a bounded fire budget so the retry that
follows must succeed, plus the unbounded variants that force the client
into graceful local degradation. A real ``kill -9`` of a served
subprocess closes the loop.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.explore import Evaluator, ResultStore, ServeDegradedWarning
from repro.serve import (
    Client,
    ExploreServer,
    ExploreService,
    RemoteEvaluator,
    ServerUnavailable,
)
from repro.testing.faults import FaultRule
from repro.util.backoff import Backoff


@pytest.fixture
def serve_stack(tmp_path):
    """An in-process server over a fresh store; always shut down."""
    store = ResultStore(tmp_path / "server-store")
    service = ExploreService(store=store, max_queue=4)
    server = ExploreServer(service)
    server.start_background()
    yield server, store
    server.shutdown(drain_timeout=5.0)


def _client(server, *, retries=3, timeout=30.0, deadline=None):
    """A fast-retrying client: no backoff sleeps, the plan does the timing."""
    return Client(server.url, timeout=timeout, retries=retries,
                  deadline=deadline, backoff=Backoff(base=0.0))


class TestNetworkFaultPlans:
    def test_refused_connections_retried(
        self, serve_stack, arm, points, reference, assert_identical
    ):
        server, _ = serve_stack
        arm([FaultRule(mode="refuse", stage="serve_request", times=2)])
        evaluations, stats = _client(server).evaluate("qrca", 8, points)
        assert_identical(evaluations, reference)
        assert stats["simulations_run"] == len(points)

    def test_hang_times_out_then_retry_succeeds(
        self, serve_stack, arm, points, reference, assert_identical
    ):
        server, _ = serve_stack
        arm([FaultRule(mode="hang", stage="serve_request",
                       seconds=2.0, times=1)])
        client = _client(server, timeout=0.5)
        evaluations, _ = client.evaluate("qrca", 8, points)
        assert_identical(evaluations, reference)

    def test_torn_response_is_retried_never_data(
        self, serve_stack, arm, points, reference, assert_identical
    ):
        server, _ = serve_stack
        arm([FaultRule(mode="torn", stage="serve_response", times=1)])
        evaluations, stats = _client(server).evaluate("qrca", 8, points)
        assert_identical(evaluations, reference)
        # The torn first attempt already simulated and persisted; the
        # retry must be answered from the warm store, not recomputed.
        assert stats["simulations_run"] == 0
        assert stats["cache_hits"] == len(points)
        assert all(e.from_cache for e in evaluations)

    def test_5xx_burst_retried_to_success(
        self, serve_stack, arm, points, reference, assert_identical
    ):
        server, _ = serve_stack
        arm([FaultRule(mode="raise", stage="serve_request", times=3,
                       exc="RuntimeError", message="injected 500")])
        evaluations, _ = _client(server, retries=3).evaluate(
            "qrca", 8, points
        )
        assert_identical(evaluations, reference)

    def test_5xx_burst_deeper_than_budget_fails_cleanly(
        self, serve_stack, arm, points
    ):
        server, _ = serve_stack
        arm([FaultRule(mode="raise", stage="serve_request", times=None,
                       message="injected 500")])
        with pytest.raises(ServerUnavailable, match="500"):
            _client(server, retries=2).evaluate("qrca", 8, points)


class TestGracefulDegradation:
    def test_unreachable_server_degrades_bit_identically(
        self, serve_stack, arm, tmp_path, points, reference, assert_identical
    ):
        server, _ = serve_stack
        arm([FaultRule(mode="refuse", stage="serve_request", times=None)])
        evaluator = RemoteEvaluator(
            _client(server, retries=2),
            kernel="qrca", width=8,
            store=ResultStore(tmp_path / "local-store"),
        )
        with pytest.warns(ServeDegradedWarning, match="unreachable"):
            evaluations = evaluator.evaluate(points)
        assert evaluator.degraded
        assert evaluator.stats()["fallback_batches"] == 1
        assert_identical(evaluations, reference)

    def test_client_honors_retry_after_without_burning_retries(
        self, serve_stack, points, reference, assert_identical
    ):
        server, _ = serve_stack
        service = server.service
        admitted = 0
        while service.admit() == "ok":
            admitted += 1
        # Free the queue while the shed client sleeps out Retry-After.
        releases = [threading.Timer(
            0.3, lambda: [service.finish() for _ in range(admitted)]
        )]
        releases[0].start()
        try:
            client = _client(server, retries=0, deadline=30.0)
            evaluations, _ = client.evaluate("qrca", 8, points)
            assert_identical(evaluations, reference)
        finally:
            releases[0].join()


class TestConcurrentClients:
    def test_two_clients_never_double_simulate(
        self, serve_stack, points, reference, assert_identical
    ):
        server, _ = serve_stack
        outcomes = {}

        def run(name):
            evaluations, stats = _client(server).evaluate("qrca", 8, points)
            outcomes[name] = (evaluations, stats)

        threads = [
            threading.Thread(target=run, args=(name,)) for name in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert set(outcomes) == {"a", "b"}
        total_simulated = sum(
            stats["simulations_run"] for _, stats in outcomes.values()
        )
        assert total_simulated == len(points)  # each point computed once
        for evaluations, _ in outcomes.values():
            assert_identical(evaluations, reference)


class TestServerKilledMidExplore:
    def test_kill_dash_nine_degrades_to_local_cold_equivalent(
        self, tmp_path, points, reference, assert_identical
    ):
        """SIGKILL the serving process mid-run: the client finishes
        locally with exactly the evaluations a cold local run produces."""
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--cache-dir", str(tmp_path / "server-cache"),
                "--workers", "1",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "listening on http://" in banner, banner
            url = banner.split("listening on ", 1)[1].split()[0]
            evaluator = RemoteEvaluator(
                Client(url, timeout=5.0, retries=1, backoff=Backoff(base=0.0)),
                kernel="qrca", width=8,
                store=ResultStore(tmp_path / "client-cache"),
            )
            first = evaluator.evaluate(points[:3])
            assert not evaluator.degraded
            assert evaluator.remote_batches == 1

            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)

            with pytest.warns(ServeDegradedWarning):
                second = evaluator.evaluate(points[3:])
            assert evaluator.degraded
            assert_identical(first + second, reference)
            cold = Evaluator(kernel="qrca", width=8).evaluate(points)
            assert [e.result for e in first + second] == [
                e.result for e in cold
            ]
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)

    def test_graceful_sigterm_drains(self, tmp_path):
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--cache-dir", str(tmp_path / "server-cache"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "listening on http://" in banner, banner
            url = banner.split("listening on ", 1)[1].split()[0]
            assert Client(url, timeout=5.0, retries=3).ready()
            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=30)
            assert process.returncode == 0
            assert "drained and stopped" in out
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
