"""Crash-surviving pooled evaluation: dead and hung workers recover.

Worker death is injected as ``os._exit`` inside the evaluation hook —
indistinguishable from a SIGKILL'd or OOM-killed worker as far as the
parent's ``ProcessPoolExecutor`` is concerned (the pool breaks).
"""

from repro.explore import Evaluator
from repro.testing.faults import FaultRule


class TestWorkerCrash:
    def test_killed_worker_recovers_bit_identical(
        self, arm, points, reference, assert_identical
    ):
        """A worker SIGKILL'd mid-chunk: pool rebuilt, chunk re-run,
        successful results bit-identical to the fault-free serial run."""
        arm([FaultRule(mode="exit", stage="evaluate",
                       match={"factory_area": 120.0}, times=1)])
        evaluator = Evaluator(
            kernel="qrca", width=8, workers=2, retries=2, retry_backoff=0.0
        )
        got = evaluator.evaluate(points)
        assert_identical(got, reference)
        stats = evaluator.stats()
        assert stats["worker_crashes"] >= 1
        assert stats["quarantined"] == 0
        assert stats["simulations_run"] == len(points)

    def test_repeatedly_crashing_point_quarantined(self, arm, points, reference):
        """A point that kills every worker that touches it is isolated by
        bisection and quarantined; its chunk-mates still land intact."""
        arm([FaultRule(mode="exit", stage="evaluate",
                       match={"factory_area": 80.0}, times=None)])
        evaluator = Evaluator(
            kernel="qrca", width=8, workers=2, retries=1, retry_backoff=0.0
        )
        got = evaluator.evaluate(points)
        assert not got[1].ok
        assert "worker crashed" in got[1].error
        survivors = [(g, r) for g, r in zip(got, reference) if g.ok]
        assert len(survivors) == len(points) - 1
        for have, want in survivors:
            assert have.result == want.result
        assert evaluator.stats()["quarantined"] == 1

    def test_hung_worker_killed_and_chunk_retried(
        self, arm, points, reference, assert_identical
    ):
        """A wedged evaluation trips the chunk timeout: the hung worker
        is killed, the pool rebuilt, and the retry (hang budget spent)
        produces bit-identical results."""
        arm([FaultRule(mode="hang", stage="evaluate",
                       match={"factory_area": 160.0}, times=2, seconds=30.0)])
        evaluator = Evaluator(
            kernel="qrca", width=8, workers=2,
            retries=3, timeout=1.0, retry_backoff=0.0,
        )
        got = evaluator.evaluate(points)
        assert_identical(got, reference)
        assert evaluator.stats()["worker_crashes"] >= 1

    def test_crash_then_store_is_complete(
        self, arm, tmp_path, points, reference, assert_identical
    ):
        """After surviving a crash, every successful evaluation is
        persisted; a cold evaluator re-serves them without simulating."""
        from repro.explore import ResultStore

        arm([FaultRule(mode="exit", stage="evaluate",
                       match={"factory_area": 40.0}, times=1)])
        store = ResultStore(tmp_path / "cache")
        evaluator = Evaluator(
            kernel="qrca", width=8, workers=2, retries=2,
            retry_backoff=0.0, store=store,
        )
        assert_identical(evaluator.evaluate(points), reference)
        assert len(store) == len(points)
        warm = Evaluator(kernel="qrca", width=8, store=store)
        assert_identical(warm.evaluate(points), reference)
        assert warm.stats()["simulations_run"] == 0
        assert warm.stats()["cache_hits"] == len(points)


class TestSerialIsolation:
    def test_serial_poison_does_not_sink_batch_mates(self, arm, points, reference):
        """Even without a pool, a raising point is isolated point-by-point
        and only the offender is quarantined."""
        arm([FaultRule(mode="raise", stage="evaluate",
                       match={"factory_area": 200.0}, times=None,
                       message="injected poison")])
        evaluator = Evaluator(
            kernel="qrca", width=8, retries=1, retry_backoff=0.0
        )
        got = evaluator.evaluate(points)
        assert not got[4].ok
        assert "injected poison" in got[4].error
        for have, want in zip(got, reference):
            if have.ok:
                assert have.result == want.result
        assert evaluator.stats()["quarantined"] == 1

    def test_transient_failure_retried_to_success(
        self, arm, points, reference, assert_identical
    ):
        """A failure that clears after one retry costs a retry, not a
        quarantine."""
        arm([FaultRule(mode="raise", stage="evaluate",
                       match={"factory_area": 40.0}, times=1)])
        evaluator = Evaluator(
            kernel="qrca", width=8, retries=2, retry_backoff=0.0
        )
        got = evaluator.evaluate(points)
        assert_identical(got, reference)
        stats = evaluator.stats()
        assert stats["retries"] >= 1
        assert stats["quarantined"] == 0
