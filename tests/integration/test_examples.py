"""Smoke tests: every example script runs end to end.

Each example honors the ``REPRO_SMOKE=1`` hook, shrinking kernel widths
and Monte Carlo trial counts so the whole gallery executes in-process in
seconds. The scripts run under ``runpy`` with ``__name__ ==
"__main__"``, exactly as ``python examples/<name>.py`` would, in a
temporary working directory so result-store writes stay out of the repo.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_example_gallery_present():
    names = {path.name for path in EXAMPLES}
    assert {
        "quickstart.py",
        "adder_at_speed_of_data.py",
        "architecture_shootout.py",
        "shor_kernel_planning.py",
        "technology_whatif.py",
        "explore_qalypso.py",
    } <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, monkeypatch, tmp_path, capsys):
    monkeypatch.setenv("REPRO_SMOKE", "1")
    monkeypatch.chdir(tmp_path)
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} printed nothing"


def test_smoke_hook_reduces_width(monkeypatch, tmp_path, capsys):
    """The REPRO_SMOKE hook actually bites: smoke runs use 8-bit kernels."""
    monkeypatch.setenv("REPRO_SMOKE", "1")
    monkeypatch.chdir(tmp_path)
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "8-Bit QCLA" in out
