"""Integration tests pinning the reproduced paper numbers.

These are the load-bearing cross-module assertions: kernel construction →
decomposition → critical-path analysis → factory provisioning must land on
(or near) the values the paper reports. Tolerances encode how closely each
artifact reproduces; EXPERIMENTS.md records the exact measured values.
"""

import pytest

from repro.arch.provisioning import area_breakdown
from repro.factory import Pi8Factory, PipelinedZeroFactory, SimpleZeroFactory

#: Exact level-1 golden values (full float precision, pinned so the
#: code-level axis provably changes nothing at level 1 — see
#: TestGoldenLevelOne below). Regenerate only for an *intentional* model
#: change, never to absorb drift.
GOLDEN_TABLE2_US = {
    "32-Bit QRCA": (27092.0, 120292.0, 514965.0, 986.0),
    "32-Bit QCLA": (3468.0, 15006.0, 65627.0, 123.0),
    "32-Bit QFT": (96212.0, 375028.0, 1856544.0, 3074.0),
}
GOLDEN_EXECUTION_US = {
    "32-Bit QRCA": 147384.0,
    "32-Bit QCLA": 18474.0,
    "32-Bit QFT": 471240.0,
}
GOLDEN_TABLE3_PER_MS = {
    "32-Bit QRCA": (27.384247950930906, 5.9843673668783595),
    "32-Bit QCLA": (239.36342968496265, 53.42643715492043),
    "32-Bit QFT": (32.05160852219676, 7.206518971224853),
}
#: Figure 8 on the 8-bit QRCA: (rate, makespan) of the first sampled
#: point and of the optimum (= the plateau at the largest rate).
GOLDEN_FIG8_FIRST = (1.6669433377600709, 578883.0)
GOLDEN_FIG8_BEST = (426.73749446657814, 36148.686721991704)
#: Figure 15 on the 8-bit QCLA: ADCR-free optima per architecture —
#: (best area, best makespan) with the best = plateau for every curve.
GOLDEN_FIG15_BEST = {
    "qla": (1424371.1848470117, 19639.606534090908),
    "cqla": (4495.299168212823, 33093.0),
    "multiplexed": (1424371.1848470117, 12983.872159090908),
}
#: Figure 16 on the 8-bit QCLA: the Qalypso-vs-CQLA matchup.
GOLDEN_FIG16 = {
    "factory_area": 3085.0,
    "qalypso_makespan_us": 15865.660708391883,
    "cqla_makespan_us": 33093.0,
    "cqla_cache_misses": 127,
    "cqla_teleports": 251,
}


class TestFactoryNumbers:
    """Tables 5-8 and Figure 11 are exact reproductions."""

    def test_simple_factory_exact(self):
        factory = SimpleZeroFactory()
        assert factory.latency_us == 323.0
        assert factory.area == 90
        assert factory.throughput_per_ms == pytest.approx(3.1, abs=0.05)

    def test_zero_factory_exact(self):
        factory = PipelinedZeroFactory()
        assert factory.area == 298
        assert factory.functional_area == 130
        assert factory.crossbar_area == 168
        assert factory.throughput_per_ms == pytest.approx(10.5, abs=0.05)

    def test_pi8_factory_exact(self):
        factory = Pi8Factory()
        assert factory.area == 403
        assert factory.functional_area == 147
        assert factory.crossbar_area == 256
        assert factory.throughput_per_ms == pytest.approx(18.3, abs=0.05)


class TestTable2:
    """Latency-split fractions: data ~5%, QEC interact ~17-24%, prep >70%."""

    @pytest.mark.parametrize("fixture", ["qrca32", "qcla32", "qft32"])
    def test_fractions(self, fixture, request):
        ka = request.getfixturevalue(fixture)
        row = ka.table2_row()
        assert 0.02 < row["data_op_frac"] < 0.08
        assert 0.10 < row["qec_interact_frac"] < 0.30
        assert 0.70 < row["ancilla_prep_frac"] < 0.85

    def test_qrca_data_op_magnitude(self, qrca32):
        # Paper: 29508us. Ours lands within ~25%.
        assert qrca32.table2_row()["data_op_us"] == pytest.approx(29508, rel=0.25)

    def test_qcla_data_op_magnitude(self, qcla32):
        # Paper: 3827us.
        assert qcla32.table2_row()["data_op_us"] == pytest.approx(3827, rel=0.25)

    def test_qft_data_op_magnitude(self, qft32):
        # Paper: 77057us.
        assert qft32.table2_row()["data_op_us"] == pytest.approx(77057, rel=0.35)


class TestTable3:
    """Average ancilla bandwidths (paper: 34.8/306.1/36.8 zero,
    7.0/62.7/8.6 pi/8)."""

    def test_qrca_bandwidths(self, qrca32):
        assert qrca32.zero_bandwidth_per_ms == pytest.approx(34.8, rel=0.30)
        assert qrca32.pi8_bandwidth_per_ms == pytest.approx(7.0, rel=0.30)

    def test_qcla_bandwidths(self, qcla32):
        assert qcla32.zero_bandwidth_per_ms == pytest.approx(306.1, rel=0.30)
        assert qcla32.pi8_bandwidth_per_ms == pytest.approx(62.7, rel=0.30)

    def test_qft_bandwidths(self, qft32):
        assert qft32.zero_bandwidth_per_ms == pytest.approx(36.8, rel=0.30)
        assert qft32.pi8_bandwidth_per_ms == pytest.approx(8.6, rel=0.30)

    def test_qcla_demands_order_of_magnitude_more(self, qrca32, qcla32):
        ratio = qcla32.zero_bandwidth_per_ms / qrca32.zero_bandwidth_per_ms
        assert 5 < ratio < 15  # paper: 306.1 / 34.8 = 8.8


class TestGateCensus:
    """Kernel sizes implied by the paper's bandwidth and runtime numbers."""

    def test_qrca_pi8_demand(self, qrca32):
        # 126 Toffolis x 7 T each = 882 pi/8 ancillae.
        assert qrca32.pi8_gate_count == 882

    def test_qcla_pi8_demand(self, qcla32):
        # 141 Toffolis x 7 T each = 987 (matches 62.7/ms x 15.7ms).
        assert qcla32.pi8_gate_count == 987

    def test_non_transversal_fractions(self, all_kernels32):
        """Section 3.3: 40.5% / 41.0% / 46.9%."""
        paper = {"32-Bit QRCA": 0.405, "32-Bit QCLA": 0.410, "32-Bit QFT": 0.469}
        for ka in all_kernels32:
            assert ka.non_transversal_fraction == pytest.approx(
                paper[ka.name], abs=0.06
            )

    def test_data_qubit_counts(self, all_kernels32):
        """Table 9 data areas / 7: 97, 123, 32 qubits."""
        expected = {"32-Bit QRCA": 97, "32-Bit QCLA": 123, "32-Bit QFT": 32}
        for ka in all_kernels32:
            assert ka.data_qubits == expected[ka.name]


class TestGoldenLevelOne:
    """Exact-value regression pins for every level-1 headline artifact.

    The concatenation-level axis re-characterizes latencies *above*
    level 1 only; these fixtures prove the refactor (code-parameterized
    factories, level-aware evaluator, ``code_level`` spaces) changed
    nothing at level 1 — every comparison is ``==`` on full-precision
    floats, not approx.
    """

    @pytest.mark.parametrize("fixture", ["qrca32", "qcla32", "qft32"])
    def test_table2_components_exact(self, fixture, request):
        ka = request.getfixturevalue(fixture)
        row = ka.table2_row()
        data_op, qec, prep, chain = GOLDEN_TABLE2_US[ka.name]
        assert row["data_op_us"] == data_op
        assert row["qec_interact_us"] == qec
        assert row["ancilla_prep_us"] == prep
        assert row["critical_path_gates"] == chain

    @pytest.mark.parametrize("fixture", ["qrca32", "qcla32", "qft32"])
    def test_execution_time_exact(self, fixture, request):
        ka = request.getfixturevalue(fixture)
        assert ka.execution_time_us == GOLDEN_EXECUTION_US[ka.name]

    @pytest.mark.parametrize("fixture", ["qrca32", "qcla32", "qft32"])
    def test_table3_bandwidths_exact(self, fixture, request):
        ka = request.getfixturevalue(fixture)
        zero, pi8 = GOLDEN_TABLE3_PER_MS[ka.name]
        assert ka.zero_bandwidth_per_ms == zero
        assert ka.pi8_bandwidth_per_ms == pi8

    def test_fig8_sweep_optimum_exact(self, qrca8):
        from repro.arch.sweep import throughput_sweep

        points = throughput_sweep(qrca8)
        assert len(points) == 17
        assert (points[0].x, points[0].makespan_us) == GOLDEN_FIG8_FIRST
        best = min(points, key=lambda p: p.makespan_us)
        assert (best.x, best.makespan_us) == GOLDEN_FIG8_BEST
        # The optimum is the plateau: supply beyond demand buys nothing.
        assert best.makespan_us == points[-1].makespan_us

    def test_fig15_sweep_optima_exact(self, qcla8):
        from repro.arch.sweep import area_sweep

        curves = area_sweep(qcla8)
        for kind, points in curves.items():
            best = min(points, key=lambda p: p.makespan_us)
            assert (best.x, best.makespan_us) == GOLDEN_FIG15_BEST[kind.value]

    def test_fig16_qalypso_comparison_exact(self, qcla8):
        from repro.arch.qalypso import compare_with_cqla

        comparison = compare_with_cqla(qcla8)
        assert comparison.factory_area == GOLDEN_FIG16["factory_area"]
        assert (
            comparison.qalypso.makespan_us == GOLDEN_FIG16["qalypso_makespan_us"]
        )
        assert comparison.cqla.makespan_us == GOLDEN_FIG16["cqla_makespan_us"]
        assert comparison.cqla.cache_misses == GOLDEN_FIG16["cqla_cache_misses"]
        assert comparison.cqla.teleports == GOLDEN_FIG16["cqla_teleports"]

    def test_concatenated_level_one_factories_identical(self):
        """ConcatenatedCode(steane, 1) reproduces the factory numbers."""
        from repro.codes import ConcatenatedCode, steane_code

        code = ConcatenatedCode(steane_code(), 1)
        default_simple = SimpleZeroFactory()
        coded_simple = SimpleZeroFactory(code=code)
        assert coded_simple.latency_us == default_simple.latency_us == 323.0
        assert coded_simple.area == default_simple.area == 90
        default_zero, coded_zero = PipelinedZeroFactory(), PipelinedZeroFactory(
            code=code
        )
        assert coded_zero.area == default_zero.area == 298
        assert coded_zero.unit_counts == default_zero.unit_counts
        assert coded_zero.throughput_per_ms == default_zero.throughput_per_ms
        default_pi8, coded_pi8 = Pi8Factory(), Pi8Factory(code=code)
        assert coded_pi8.area == default_pi8.area == 403
        assert coded_pi8.throughput_per_ms == default_pi8.throughput_per_ms
        assert coded_pi8.serial_latency_us() == default_pi8.serial_latency_us()

    def test_code_level_one_evaluations_identical(self, qrca8):
        """A level-1-annotated point is the *same* canonical point."""
        from repro.explore.evaluator import Evaluator

        spec = Evaluator(kernel="qrca", width=8)
        plain = spec.evaluate([{"arch": "qla", "factory_area": 500.0}])[0]
        leveled = spec.evaluate(
            [{"arch": "qla", "factory_area": 500.0, "code_level": 1}]
        )[0]
        assert plain.point == leveled.point
        assert plain.result == leveled.result
        assert spec.dedup_hits >= 0  # the two collapse through canonical keys
        from repro.tech import ION_TRAP

        assert ION_TRAP.at_level(1) is ION_TRAP


class TestTable9:
    """Area breakdown: data areas exact; fractions within a few points."""

    def test_data_areas_exact(self, all_kernels32):
        expected = {"32-Bit QRCA": 679, "32-Bit QCLA": 861, "32-Bit QFT": 224}
        for ka in all_kernels32:
            assert area_breakdown(ka).data_area == expected[ka.name]

    def test_qrca_two_thirds_ancillae(self, qrca32):
        """Headline: even the most serial benchmark devotes roughly
        two-thirds of the chip to ancilla generation (paper: 66.4%)."""
        b = area_breakdown(qrca32)
        assert b.ancilla_fraction == pytest.approx(0.664, abs=0.08)

    def test_qcla_over_ninety_percent(self, qcla32):
        """Paper: 93.2% for the QCLA."""
        b = area_breakdown(qcla32)
        assert b.ancilla_fraction > 0.88

    def test_fractions_close_to_paper(self, qcla32):
        b = area_breakdown(qcla32)
        assert b.data_fraction == pytest.approx(0.068, abs=0.03)
        assert b.qec_factory_fraction == pytest.approx(0.684, abs=0.06)
        assert b.pi8_factory_fraction == pytest.approx(0.248, abs=0.06)
