"""Integration tests pinning the reproduced paper numbers.

These are the load-bearing cross-module assertions: kernel construction →
decomposition → critical-path analysis → factory provisioning must land on
(or near) the values the paper reports. Tolerances encode how closely each
artifact reproduces; EXPERIMENTS.md records the exact measured values.
"""

import pytest

from repro.arch.provisioning import area_breakdown
from repro.factory import Pi8Factory, PipelinedZeroFactory, SimpleZeroFactory


class TestFactoryNumbers:
    """Tables 5-8 and Figure 11 are exact reproductions."""

    def test_simple_factory_exact(self):
        factory = SimpleZeroFactory()
        assert factory.latency_us == 323.0
        assert factory.area == 90
        assert factory.throughput_per_ms == pytest.approx(3.1, abs=0.05)

    def test_zero_factory_exact(self):
        factory = PipelinedZeroFactory()
        assert factory.area == 298
        assert factory.functional_area == 130
        assert factory.crossbar_area == 168
        assert factory.throughput_per_ms == pytest.approx(10.5, abs=0.05)

    def test_pi8_factory_exact(self):
        factory = Pi8Factory()
        assert factory.area == 403
        assert factory.functional_area == 147
        assert factory.crossbar_area == 256
        assert factory.throughput_per_ms == pytest.approx(18.3, abs=0.05)


class TestTable2:
    """Latency-split fractions: data ~5%, QEC interact ~17-24%, prep >70%."""

    @pytest.mark.parametrize("fixture", ["qrca32", "qcla32", "qft32"])
    def test_fractions(self, fixture, request):
        ka = request.getfixturevalue(fixture)
        row = ka.table2_row()
        assert 0.02 < row["data_op_frac"] < 0.08
        assert 0.10 < row["qec_interact_frac"] < 0.30
        assert 0.70 < row["ancilla_prep_frac"] < 0.85

    def test_qrca_data_op_magnitude(self, qrca32):
        # Paper: 29508us. Ours lands within ~25%.
        assert qrca32.table2_row()["data_op_us"] == pytest.approx(29508, rel=0.25)

    def test_qcla_data_op_magnitude(self, qcla32):
        # Paper: 3827us.
        assert qcla32.table2_row()["data_op_us"] == pytest.approx(3827, rel=0.25)

    def test_qft_data_op_magnitude(self, qft32):
        # Paper: 77057us.
        assert qft32.table2_row()["data_op_us"] == pytest.approx(77057, rel=0.35)


class TestTable3:
    """Average ancilla bandwidths (paper: 34.8/306.1/36.8 zero,
    7.0/62.7/8.6 pi/8)."""

    def test_qrca_bandwidths(self, qrca32):
        assert qrca32.zero_bandwidth_per_ms == pytest.approx(34.8, rel=0.30)
        assert qrca32.pi8_bandwidth_per_ms == pytest.approx(7.0, rel=0.30)

    def test_qcla_bandwidths(self, qcla32):
        assert qcla32.zero_bandwidth_per_ms == pytest.approx(306.1, rel=0.30)
        assert qcla32.pi8_bandwidth_per_ms == pytest.approx(62.7, rel=0.30)

    def test_qft_bandwidths(self, qft32):
        assert qft32.zero_bandwidth_per_ms == pytest.approx(36.8, rel=0.30)
        assert qft32.pi8_bandwidth_per_ms == pytest.approx(8.6, rel=0.30)

    def test_qcla_demands_order_of_magnitude_more(self, qrca32, qcla32):
        ratio = qcla32.zero_bandwidth_per_ms / qrca32.zero_bandwidth_per_ms
        assert 5 < ratio < 15  # paper: 306.1 / 34.8 = 8.8


class TestGateCensus:
    """Kernel sizes implied by the paper's bandwidth and runtime numbers."""

    def test_qrca_pi8_demand(self, qrca32):
        # 126 Toffolis x 7 T each = 882 pi/8 ancillae.
        assert qrca32.pi8_gate_count == 882

    def test_qcla_pi8_demand(self, qcla32):
        # 141 Toffolis x 7 T each = 987 (matches 62.7/ms x 15.7ms).
        assert qcla32.pi8_gate_count == 987

    def test_non_transversal_fractions(self, all_kernels32):
        """Section 3.3: 40.5% / 41.0% / 46.9%."""
        paper = {"32-Bit QRCA": 0.405, "32-Bit QCLA": 0.410, "32-Bit QFT": 0.469}
        for ka in all_kernels32:
            assert ka.non_transversal_fraction == pytest.approx(
                paper[ka.name], abs=0.06
            )

    def test_data_qubit_counts(self, all_kernels32):
        """Table 9 data areas / 7: 97, 123, 32 qubits."""
        expected = {"32-Bit QRCA": 97, "32-Bit QCLA": 123, "32-Bit QFT": 32}
        for ka in all_kernels32:
            assert ka.data_qubits == expected[ka.name]


class TestTable9:
    """Area breakdown: data areas exact; fractions within a few points."""

    def test_data_areas_exact(self, all_kernels32):
        expected = {"32-Bit QRCA": 679, "32-Bit QCLA": 861, "32-Bit QFT": 224}
        for ka in all_kernels32:
            assert area_breakdown(ka).data_area == expected[ka.name]

    def test_qrca_two_thirds_ancillae(self, qrca32):
        """Headline: even the most serial benchmark devotes roughly
        two-thirds of the chip to ancilla generation (paper: 66.4%)."""
        b = area_breakdown(qrca32)
        assert b.ancilla_fraction == pytest.approx(0.664, abs=0.08)

    def test_qcla_over_ninety_percent(self, qcla32):
        """Paper: 93.2% for the QCLA."""
        b = area_breakdown(qcla32)
        assert b.ancilla_fraction > 0.88

    def test_fractions_close_to_paper(self, qcla32):
        b = area_breakdown(qcla32)
        assert b.data_fraction == pytest.approx(0.068, abs=0.03)
        assert b.qec_factory_fraction == pytest.approx(0.684, abs=0.06)
        assert b.pi8_factory_fraction == pytest.approx(0.248, abs=0.06)
