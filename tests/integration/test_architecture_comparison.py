"""Integration tests for the Figure 15 / Section 5.3 architecture claims.

Run on the paper's 32-bit QRCA/QCLA (the QFT sweep lives in the benchmark
suite — its decomposed circuit is ~4x larger).
"""

import pytest

from repro.arch import ArchitectureKind
from repro.arch.provisioning import area_breakdown
from repro.arch.qalypso import compare_with_cqla, tile_for_kernel
from repro.arch.sweep import area_sweep, area_to_reach, plateau_makespan


@pytest.fixture(scope="module")
def qcla_curves(qcla32):
    matched = area_breakdown(qcla32).factory_area
    areas = [matched * f for f in (0.125, 0.5, 1, 4, 16, 64, 256)]
    return area_sweep(qcla32, areas=areas)


class TestFigure15Shape:
    def test_multiplexed_fastest_at_matched_area(self, qcla_curves, qcla32):
        matched = area_breakdown(qcla32).factory_area
        at_matched = {
            kind: [p for p in pts if p.x == pytest.approx(matched)][0].makespan_us
            for kind, pts in qcla_curves.items()
        }
        assert at_matched[ArchitectureKind.MULTIPLEXED] <= min(at_matched.values())

    def test_cqla_plateaus_above_multiplexed(self, qcla_curves):
        """Paper: CQLA plateaus half an order to an order of magnitude
        higher than Fully-Multiplexed (cache misses persist at any area)."""
        cqla = plateau_makespan(qcla_curves[ArchitectureKind.CQLA])
        mux = plateau_makespan(qcla_curves[ArchitectureKind.MULTIPLEXED])
        assert cqla > 3 * mux

    def test_qla_plateau_similar_to_multiplexed(self, qcla_curves):
        """Paper: QLA eventually plateaus at a similar execution time."""
        qla = plateau_makespan(qcla_curves[ArchitectureKind.QLA])
        mux = plateau_makespan(qcla_curves[ArchitectureKind.MULTIPLEXED])
        assert qla < 3 * mux

    def test_qla_needs_far_more_area(self, qcla_curves):
        """Paper: QLA requires about two orders of magnitude more area to
        match Fully-Multiplexed's execution time."""
        mux_points = qcla_curves[ArchitectureKind.MULTIPLEXED]
        target = 1.5 * plateau_makespan(mux_points)
        mux_area = area_to_reach(mux_points, target)
        qla_area = area_to_reach(qcla_curves[ArchitectureKind.QLA], target)
        assert mux_area is not None
        # Our cost model shows a ~4-16x gap (the paper's, with its own
        # layout charges, reports ~100x); assert the direction and scale.
        assert qla_area is None or qla_area >= 4 * mux_area

    def test_more_area_monotone_for_all(self, qcla_curves):
        for points in qcla_curves.values():
            makespans = [p.makespan_us for p in points]
            assert all(a >= b - 1e-6 for a, b in zip(makespans, makespans[1:]))


class TestHeadlineSpeedup:
    def test_qalypso_beats_cqla_by_5x(self, qcla32):
        """The abstract's claim: more than five times speedup over
        previous proposals at comparable resources."""
        comparison = compare_with_cqla(qcla32)
        assert comparison.speedup > 5.0

    def test_qalypso_never_loses_on_qrca(self, qrca32):
        """The ripple-carry adder's active window fits any cache, so our
        LRU-faithful CQLA barely misses on it; Qalypso still wins on
        distribution latency (the paper's CQLA, with its stricter
        writeback policy, loses more)."""
        comparison = compare_with_cqla(qrca32)
        assert comparison.speedup > 1.0

    def test_tile_provisioning_scales_with_kernel(self, qrca32, qcla32):
        small = tile_for_kernel(qrca32)
        large = tile_for_kernel(qcla32)
        assert large.zero_factories > small.zero_factories
