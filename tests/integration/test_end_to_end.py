"""End-to-end integration: public API paths a downstream user would take."""

import pytest

import repro


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_path(self):
        """The README quickstart must work verbatim."""
        factory = repro.PipelinedZeroFactory()
        assert factory.throughput_per_ms > 10
        kernel = repro.analyze_kernel("qcla", width=8)
        assert kernel.zero_bandwidth_per_ms > 0
        report = repro.run_experiment("table6")
        assert "298" in report

    def test_build_analyze_provision_loop(self):
        """Full pipeline: circuit -> decompose -> analyze -> provision ->
        simulate, all through the public API."""
        circuit = repro.qrca_circuit(4)
        lowered = repro.decompose_to_encoded_gates(circuit)
        # Fully lowered: only transversal gates plus ancilla-backed T's.
        assert lowered.count(repro.GateType.CCX) == 0
        assert lowered.count(repro.GateType.T) > 0
        analysis = repro.analyze_kernel("qrca", 4)
        breakdown = repro.area_breakdown(analysis)
        assert breakdown.total_area > 0
        sim = repro.DataflowSimulator(analysis.circuit)
        result = sim.run()
        assert result.makespan_us == pytest.approx(
            analysis.execution_time_us, rel=0.01
        )

    def test_custom_technology_threads_through(self):
        """A 2x-faster technology halves factory latency and doubles
        throughput everywhere."""
        fast = repro.ION_TRAP.scaled(0.5)
        base_factory = repro.SimpleZeroFactory()
        fast_factory = repro.SimpleZeroFactory(tech=fast)
        assert fast_factory.latency_us == base_factory.latency_us / 2
        assert fast_factory.throughput_per_ms == pytest.approx(
            2 * base_factory.throughput_per_ms
        )

    def test_monte_carlo_via_public_api(self):
        report = repro.evaluate_strategy(
            repro.PrepStrategy.BASIC,
            trials=500,
            seed=0,
            errors=repro.ErrorRates(gate=1e-3, movement=1e-5, measurement=0.0),
        )
        assert report.result.trials == 500

    def test_experiment_registry_complete(self):
        from repro.reporting import EXPERIMENTS

        assert len(EXPERIMENTS) >= 15

    def test_steane_exported(self):
        assert repro.STEANE.parameters == (7, 1, 3)

    def test_throughput_sweep_api(self):
        ka = repro.analyze_kernel("qft", 4)
        points = repro.throughput_sweep(ka, [5.0, 50.0])
        assert points[0].makespan_us >= points[1].makespan_us
