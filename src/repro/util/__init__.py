"""Small shared utilities with no dependencies on the rest of the stack."""

from repro.util.backoff import Backoff

__all__ = ["Backoff"]
