"""Retry backoff policy shared by everything that retries.

One :class:`Backoff` instance describes the whole policy — exponential
growth, a hard cap, and *full jitter* (each delay is drawn uniformly
from ``[0, min(cap, base * 2**(attempt-1))]``, AWS-style) so a fleet of
clients retrying against one struggling server decorrelates instead of
stampeding in lockstep. It is used by:

* the :class:`~repro.explore.evaluator.Evaluator` between point retries
  and worker-pool rebuilds (``retry_backoff`` is the ``base``);
* the :class:`~repro.serve.client.Client` between HTTP attempts against
  an exploration server.

Delays are *deadline-aware*: :meth:`Backoff.sleep` never sleeps past a
caller-supplied ``time.monotonic()`` deadline, so a bounded request
spends its remaining budget on one last attempt rather than on sleeping.
``base=0`` disables sleeping entirely (what the fault-injection suite
uses to keep retry storms instant).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Backoff:
    """Exponential backoff with full jitter and a cap.

    Args:
        base: First-attempt delay ceiling in seconds (0 disables sleep).
        cap: Upper bound any single delay may reach, in seconds.
        jitter: Draw each delay uniformly from ``[0, ceiling]``; with
            ``False`` the delay is the ceiling itself (deterministic,
            for tests that assert exact sleep sequences).
    """

    base: float = 0.1
    cap: float = 2.0
    jitter: bool = True

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError(f"base must be >= 0, got {self.base}")
        if self.cap < 0:
            raise ValueError(f"cap must be >= 0, got {self.cap}")

    def ceiling(self, attempt: int) -> float:
        """Largest possible delay after the ``attempt``-th failure (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt counts from 1, got {attempt}")
        return min(self.cap, self.base * (2.0 ** (attempt - 1)))

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """The (possibly jittered) delay to sleep after failure ``attempt``."""
        top = self.ceiling(attempt)
        if not self.jitter or top <= 0.0:
            return top
        return (rng or random).uniform(0.0, top)

    def sleep(
        self,
        attempt: int,
        *,
        deadline: Optional[float] = None,
        rng: Optional[random.Random] = None,
        _sleep=time.sleep,
    ) -> float:
        """Sleep the ``attempt``-th delay, truncated to ``deadline``.

        ``deadline`` is a ``time.monotonic()`` timestamp; the sleep never
        extends past it. Returns the seconds actually slept.
        """
        duration = self.delay(attempt, rng=rng)
        if deadline is not None:
            duration = min(duration, max(0.0, deadline - time.monotonic()))
        if duration > 0.0:
            _sleep(duration)
        return duration
