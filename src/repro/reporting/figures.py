"""ASCII figures for sweep output (Figures 7, 8 and 15)."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

Series = Sequence[Tuple[float, float]]


def series_to_csv(series: Series, x_name: str = "x", y_name: str = "y") -> str:
    """Render a series as CSV text (for downstream plotting)."""
    lines = [f"{x_name},{y_name}"]
    for x, y in series:
        lines.append(f"{x:g},{y:g}")
    return "\n".join(lines)


def ascii_plot(
    curves: Dict[str, Series],
    width: int = 64,
    height: int = 18,
    logx: bool = False,
    logy: bool = False,
    title: str = "",
) -> str:
    """Render one or more (x, y) series as an ASCII scatter plot.

    Each curve gets a distinct marker; axes are annotated with their data
    ranges. Log scaling matches the paper's log-log sweep figures.
    """
    if not curves or all(not s for s in curves.values()):
        return "(no data)"
    markers = "*o+x#@%&"

    def tx(v: float) -> float:
        return math.log10(v) if logx else v

    def ty(v: float) -> float:
        return math.log10(v) if logy else v

    points = [
        (tx(x), ty(y))
        for series in curves.values()
        for x, y in series
        if (not logx or x > 0) and (not logy or y > 0)
    ]
    if not points:
        return "(no plottable data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for idx, (name, series) in enumerate(curves.items()):
        marker = markers[idx % len(markers)]
        for x, y in series:
            if (logx and x <= 0) or (logy and y <= 0):
                continue
            col = int((tx(x) - x_lo) / x_span * (width - 1))
            row = int((ty(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = []
    if title:
        lines.append(title)
    for name, marker in zip(curves, markers):
        lines.append(f"  {marker} = {name}")
    top = f"{(10 ** y_hi if logy else y_hi):.3g}"
    bottom = f"{(10 ** y_lo if logy else y_lo):.3g}"
    lines.append(f"y: {bottom} .. {top}" + ("  (log)" if logy else ""))
    lines.append("+" + "-" * width + "+")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    left = f"{(10 ** x_lo if logx else x_lo):.3g}"
    right = f"{(10 ** x_hi if logx else x_hi):.3g}"
    lines.append(f"x: {left} .. {right}" + ("  (log)" if logx else ""))
    return "\n".join(lines)
