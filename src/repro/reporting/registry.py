"""The experiment registry: one entry per reproduced table/figure.

Each experiment is a named callable returning a formatted report string
(tables) or series data rendered as ASCII (figures). The benchmark suite
under ``benchmarks/`` exercises the same underlying computations with
assertions on the paper's shape targets; this registry is the
human-facing entry point:

    from repro.reporting import run_experiment
    print(run_experiment("table3"))
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.reporting.figures import ascii_plot
from repro.reporting.tables import format_table
from repro.tech import ION_TRAP


@dataclass(frozen=True)
class Experiment:
    """A registered paper artifact."""

    key: str
    paper_ref: str
    description: str
    runner: Callable[[], str]


EXPERIMENTS: Dict[str, Experiment] = {}


def _register(key: str, paper_ref: str, description: str):
    def wrap(fn: Callable[[], str]) -> Callable[[], str]:
        EXPERIMENTS[key] = Experiment(key, paper_ref, description, fn)
        return fn

    return wrap


def run_experiment(key: str, **overrides) -> str:
    """Run one registered experiment by key (e.g. "table3", "fig15").

    ``overrides`` (e.g. ``workers=4``, ``engine="legacy"`` from the CLI)
    are forwarded to runners whose signature accepts them; others ignore
    them, so one flag set threads through heterogeneous experiments.
    ``None`` values mean "use the runner's default" and are dropped.
    """
    try:
        experiment = EXPERIMENTS[key]
    except KeyError:
        raise ValueError(
            f"unknown experiment {key!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    parameters = inspect.signature(experiment.runner).parameters
    accepted = {
        name: value
        for name, value in overrides.items()
        if name in parameters and value is not None
    }
    return experiment.runner(**accepted)


# ----------------------------------------------------------------------
# Input tables


@_register("table1", "Table 1", "Physical operation latencies (ion trap)")
def _table1() -> str:
    t = ION_TRAP
    rows = [
        ("One-Qubit Gate", "t1q", t.t_1q),
        ("Two-Qubit Gate", "t2q", t.t_2q),
        ("Measurement", "tmeas", t.t_meas),
        ("Zero Prepare", "tprep", t.t_prep),
    ]
    return format_table(
        ["Physical Operation", "Symbol", "Latency (us)"], rows,
        title="Table 1: ion trap operation latencies",
    )


@_register("table4", "Table 4", "Movement operation latencies (ion trap)")
def _table4() -> str:
    t = ION_TRAP
    rows = [("Straight Move", "tmove", t.t_move), ("Turn", "tturn", t.t_turn)]
    return format_table(
        ["Physical Operation", "Symbol", "Latency (us)"], rows,
        title="Table 4: ion trap movement latencies",
    )


# ----------------------------------------------------------------------
# Figure 4: ancilla preparation error rates


@_register("fig4", "Figure 4", "Zero-prep strategy error rates (Monte Carlo)")
def _fig4(trials: int = 40000) -> str:
    from repro.ancilla.evaluation import evaluate_strategies

    reports = evaluate_strategies(trials=trials)
    rows = [
        (
            r.strategy.value,
            f"{r.error_rate:.2e}",
            f"{r.discard_rate:.2%}",
            f"{r.paper_error_rate:.1e}",
        )
        for r in reports.values()
    ]
    return format_table(
        ["Strategy", "Error Rate", "Discard Rate", "Paper"], rows,
        title=f"Figure 4: encoded-zero preparation strategies ({trials} trials)",
    )


# ----------------------------------------------------------------------
# Kernel characterization (Tables 2-3, Figure 7)


def _kernels():
    from repro.kernels import standard_kernels

    return standard_kernels(32)


@_register("table2", "Table 2", "Latency split: data op / QEC interact / prep")
def _table2() -> str:
    rows = []
    for ka in _kernels():
        r = ka.table2_row()
        rows.append(
            (
                ka.name,
                f"{r['data_op_us']:.0f} ({r['data_op_frac']:.1%})",
                f"{r['qec_interact_us']:.0f} ({r['qec_interact_frac']:.1%})",
                f"{r['ancilla_prep_us']:.0f} ({r['ancilla_prep_frac']:.1%})",
            )
        )
    return format_table(
        ["Circuit", "Data Op (us)", "Data QEC Interact (us)", "Ancilla Prep (us)"],
        rows,
        title="Table 2: critical-path latency components (no overlap)",
    )


@_register("table3", "Table 3", "Average encoded ancilla bandwidths")
def _table3() -> str:
    rows = []
    for ka in _kernels():
        r = ka.table3_row()
        rows.append(
            (ka.name, r["zero_bandwidth_per_ms"], r["pi8_bandwidth_per_ms"])
        )
    return format_table(
        ["Circuit", "Zero Ancilla BW (/ms)", "pi/8 Ancilla BW (/ms)"], rows,
        title="Table 3: bandwidth needed to run at the speed of data",
    )


@_register("fig7", "Figure 7", "Encoded-zero ancillae in flight vs time")
def _fig7() -> str:
    curves = {}
    for ka in _kernels():
        profile = ka.ancilla_demand_profile(buckets=60)
        # Normalize time so the three kernels share an x-axis.
        horizon = profile[-1][0] or 1.0
        curves[ka.name] = [(t / horizon, c) for t, c in profile]
    return ascii_plot(
        curves, title="Figure 7: ancillae in flight (x = normalized time)"
    )


# ----------------------------------------------------------------------
# Factory designs (Tables 5-8, Figure 11, Section 5.3)


@_register("table5", "Table 5", "Zero-factory functional unit characteristics")
def _table5() -> str:
    from repro.factory.units import zero_factory_units

    rows = []
    for unit in zero_factory_units().values():
        rows.append(
            (
                unit.name,
                unit.schedule.symbolic(),
                unit.latency(),
                unit.internal_stages,
                unit.bandwidth_in(),
                unit.bandwidth_out(),
                unit.area,
            )
        )
    return format_table(
        ["Unit", "Symbolic Latency", "Latency (us)", "Stages",
         "BW In (q/ms)", "BW Out (q/ms)", "Area"],
        rows,
        title="Table 5: pipelined zero-factory functional units",
    )


@_register("table6", "Table 6", "Zero-factory unit counts and area")
def _table6() -> str:
    from repro.factory import PipelinedZeroFactory

    factory = PipelinedZeroFactory()
    rows = [
        (name, stage.count, stage.total_height, stage.total_area)
        for name, stage in factory.stages.items()
    ]
    rows.append(("crossbars", "-", "-", factory.crossbar_area))
    rows.append(
        (f"TOTAL ({factory.throughput_per_ms:.1f} anc/ms)", "-", "-", factory.area)
    )
    return format_table(
        ["Functional Unit", "Count", "Total Height", "Total Area"], rows,
        title="Table 6: encoded zero ancilla factory",
    )


@_register("table7", "Table 7", "pi/8 factory stage characteristics")
def _table7() -> str:
    from repro.factory.units import pi8_units

    rows = []
    for unit in pi8_units().values():
        rows.append(
            (
                unit.name,
                unit.schedule.symbolic(),
                unit.latency(),
                unit.bandwidth_in(),
                unit.bandwidth_out(),
                unit.area,
            )
        )
    return format_table(
        ["Stage", "Symbolic Latency", "Latency (us)",
         "In BW (q/ms)", "Out BW (q/ms)", "Area"],
        rows,
        title="Table 7: encoded pi/8 ancilla factory stages",
    )


@_register("table8", "Table 8", "pi/8 factory unit counts and area")
def _table8() -> str:
    from repro.factory import Pi8Factory

    factory = Pi8Factory()
    rows = [
        (name, stage.count, stage.total_height, stage.total_area)
        for name, stage in factory.stages.items()
    ]
    rows.append(("crossbars", "-", "-", factory.crossbar_area))
    rows.append(
        (f"TOTAL ({factory.throughput_per_ms:.1f} anc/ms)", "-", "-", factory.area)
    )
    return format_table(
        ["Stage", "Count", "Total Height", "Total Area"], rows,
        title="Table 8: encoded pi/8 ancilla factory",
    )


@_register("fig11", "Figure 11 / Section 4.3", "Simple ancilla factory")
def _fig11() -> str:
    from repro.factory import SimpleZeroFactory

    factory = SimpleZeroFactory()
    rows = [
        ("latency (us)", factory.latency_us),
        ("throughput (anc/ms)", factory.throughput_per_ms),
        ("area (macroblocks)", factory.area),
        ("bandwidth per area", factory.bandwidth_per_area),
        ("schedule", factory.schedule.symbolic()),
    ]
    return format_table(
        ["Characteristic", "Value"], rows,
        title="Figure 11: simple (non-pipelined) ancilla factory",
    )


# ----------------------------------------------------------------------
# Architecture results (Table 9, Figures 8 and 15, Section 5.3)


@_register("table9", "Table 9", "Chip area breakdown per kernel")
def _table9() -> str:
    from repro.arch.provisioning import area_breakdown

    rows = []
    for ka in _kernels():
        b = area_breakdown(ka)
        rows.append(
            (
                ka.name,
                b.zero_bandwidth_per_ms,
                f"{b.data_area:.0f} ({b.data_fraction:.1%})",
                f"{b.qec_factory_area:.0f} ({b.qec_factory_fraction:.1%})",
                f"{b.pi8_factory_area:.0f} ({b.pi8_factory_fraction:.1%})",
            )
        )
    return format_table(
        ["Circuit", "Zero BW (/ms)", "Data Area", "QEC Factories", "pi/8 Factories"],
        rows,
        title="Table 9: area to generate ancillae at Table 3 bandwidths",
    )


@_register("fig8", "Figure 8", "Execution time vs steady ancilla throughput")
def _fig8(workers: Optional[int] = None, engine: str = "compiled") -> str:
    from repro.arch.sweep import throughput_sweep

    curves = {}
    for ka in _kernels():
        points = throughput_sweep(ka, workers=workers, engine=engine)
        curves[ka.name] = [
            (p.x / ka.zero_bandwidth_per_ms, p.makespan_us / points[-1].makespan_us)
            for p in points
        ]
    return ascii_plot(
        curves,
        logx=True,
        logy=True,
        title=(
            "Figure 8: exec time vs zero-ancilla throughput "
            "(normalized to each kernel's average BW and floor)"
        ),
    )


@_register("fig15", "Figure 15", "Execution time vs factory area per arch")
def _fig15(workers: Optional[int] = None, engine: str = "compiled") -> str:
    from repro.arch import ArchitectureKind
    from repro.arch.sweep import area_sweep
    from repro.kernels import analyze_kernel

    ka = analyze_kernel("qcla", 32)
    curves_raw = area_sweep(ka, workers=workers, engine=engine)
    curves = {
        kind.value: [(p.x, p.makespan_us / 1000.0) for p in pts]
        for kind, pts in curves_raw.items()
    }
    return ascii_plot(
        curves,
        logx=True,
        logy=True,
        title="Figure 15 (QCLA): exec time (ms) vs ancilla factory area",
    )


@_register("fig16", "Figure 16 / Section 5.3", "Qalypso tile and CQLA comparison")
def _fig16() -> str:
    from repro.arch.qalypso import compare_with_cqla, tile_for_kernel
    from repro.kernels import analyze_kernel

    rows = []
    for name in ("qrca", "qcla", "qft"):
        ka = analyze_kernel(name, 32)
        tile = tile_for_kernel(ka)
        comparison = compare_with_cqla(ka)
        rows.append(
            (
                ka.name,
                tile.zero_factories,
                tile.pi8_factories,
                tile.total_area,
                f"{comparison.qalypso.makespan_ms:.1f}",
                f"{comparison.cqla.makespan_ms:.1f}",
                f"{comparison.speedup:.1f}x",
            )
        )
    return format_table(
        ["Kernel", "Zero Fac", "pi/8 Fac", "Tile Area",
         "Qalypso (ms)", "CQLA (ms)", "Speedup"],
        rows,
        title="Figure 16 / Section 5.3: Qalypso tiles vs CQLA at equal factory area",
    )


@_register(
    "qalypso-pick",
    "Figs. 15-16",
    "ADCR-optimal design point via design-space exploration",
)
def _qalypso_pick(workers: Optional[int] = None, engine: str = "compiled") -> str:
    """Reproduce the paper's Qalypso pick with the exploration engine.

    Runs a grid exploration of the Figure 15 space (architecture kind x
    factory-area budget) for the 32-bit QCLA and reports the ADCR-optimal
    point — which lands on the fully-multiplexed (Qalypso) organization —
    together with per-architecture winners and the area-delay Pareto
    front.
    """
    from repro.explore import (
        AdcrObjective,
        Evaluator,
        GridStrategy,
        architecture_space,
        explore,
        format_exploration,
    )
    from repro.kernels import analyze_kernel

    ka = analyze_kernel("qcla", 32)
    space = architecture_space(ka)
    evaluator = Evaluator(analysis=ka, workers=workers, engine=engine)
    result = explore(
        space,
        AdcrObjective(),
        GridStrategy(space),
        evaluator=evaluator,
        budget=space.grid_size(),
    )
    return format_exploration(result)
