"""Reporting: table formatting, ASCII figures, and the experiment registry.

Every table and figure in the paper's evaluation maps to a registered
experiment here; ``run_experiment("table3")`` (or the benchmark suite)
regenerates the corresponding rows or series.
"""

from repro.reporting.figures import ascii_plot, series_to_csv
from repro.reporting.registry import (
    EXPERIMENTS,
    Experiment,
    run_experiment,
)
from repro.reporting.tables import format_table

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ascii_plot",
    "format_table",
    "run_experiment",
    "series_to_csv",
]
