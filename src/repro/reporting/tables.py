"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 10000 or abs(cell) < 0.001:
            return f"{cell:.3g}"
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        return f"{cell:.3g}"
    return str(cell)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = ""
) -> str:
    """Render an aligned monospace table.

    Args:
        headers: Column headers.
        rows: Row cells; floats are compacted automatically.
        title: Optional title line above the table.
    """
    rendered: List[List[str]] = [[_render(c) for c in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(headers)} columns"
            )
    widths = [
        max(len(str(headers[i])), max((len(r[i]) for r in rendered), default=0))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
