"""Design-space exploration: find ADCR-optimal architectures, not just
replot the paper's.

The paper's Qalypso pick (Figures 15-16) is the optimum of a design-space
search. This package makes that search a subsystem:

* :mod:`repro.explore.space` — declare named dimensions (architecture
  kind, factory area, supply rates, tech scaling) as a
  :class:`DesignSpace`;
* :mod:`repro.explore.objectives` — score evaluations by ADCR, latency
  or area, optionally under constraints;
* :mod:`repro.explore.strategies` — exhaustive grid, random, and
  adaptive successive-refinement search behind one ask/tell protocol;
* :mod:`repro.explore.evaluator` — batch points through the compiled
  dataflow engine (``workers=N``, one compilation per worker) with
  batch-level dedupe;
* :mod:`repro.explore.store` — a content-addressed result store under
  ``.repro_cache/`` making every re-run and refinement incremental;
* :mod:`repro.explore.engine` — the budgeted search loop and
  Pareto-front reporting.

Quickstart::

    from repro.explore import (
        AdcrObjective, Evaluator, GridStrategy, architecture_space, explore,
    )
    from repro.kernels import analyze_kernel

    ka = analyze_kernel("qcla", 32)
    space = architecture_space(ka)
    result = explore(
        space, AdcrObjective(), GridStrategy(space),
        evaluator=Evaluator(analysis=ka), budget=space.grid_size(),
    )
    print(result.best.point_dict, result.best_score)
"""

from repro.explore.engine import (
    ExplorationResult,
    Journal,
    explore,
    format_exploration,
    pareto_front,
)
from repro.explore.errors import (
    EvaluationFailed,
    LeaseHeld,
    PoisonPoint,
    ServeDegradedWarning,
    ServeRecoveredWarning,
    StoreDegradedWarning,
    WorkerCrash,
)
from repro.explore.evaluator import (
    Evaluation,
    Evaluator,
    KernelSummary,
    evaluate_design_point,
    evaluate_design_points,
)
from repro.explore.objectives import (
    AdcrObjective,
    AncillaQualityObjective,
    AreaObjective,
    ConstrainedObjective,
    LatencyObjective,
    Objective,
    get_objective,
    objective_names,
    pi8_ancilla_quality,
)
from repro.explore.space import (
    Categorical,
    Continuous,
    DesignSpace,
    Integer,
    architecture_space,
    throughput_space,
)
from repro.explore.store import FsckReport, ResultStore, key_digest
from repro.explore.strategies import (
    AdaptiveStrategy,
    GridStrategy,
    RandomStrategy,
    Strategy,
    get_strategy,
    strategy_names,
)

__all__ = [
    "AdaptiveStrategy",
    "AdcrObjective",
    "AncillaQualityObjective",
    "AreaObjective",
    "Categorical",
    "ConstrainedObjective",
    "Continuous",
    "DesignSpace",
    "Evaluation",
    "EvaluationFailed",
    "Evaluator",
    "ExplorationResult",
    "FsckReport",
    "GridStrategy",
    "Integer",
    "Journal",
    "KernelSummary",
    "LatencyObjective",
    "LeaseHeld",
    "Objective",
    "PoisonPoint",
    "RandomStrategy",
    "ResultStore",
    "ServeDegradedWarning",
    "ServeRecoveredWarning",
    "StoreDegradedWarning",
    "Strategy",
    "WorkerCrash",
    "architecture_space",
    "evaluate_design_point",
    "evaluate_design_points",
    "explore",
    "format_exploration",
    "get_objective",
    "get_strategy",
    "key_digest",
    "objective_names",
    "pareto_front",
    "pi8_ancilla_quality",
    "strategy_names",
    "throughput_space",
]
