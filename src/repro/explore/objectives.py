"""Exploration objectives: ADCR and friends, computed from evaluations.

The paper's figure of merit is ADCR — Area-Delay to Correct Result
(Section 5): chip area times execution time, the product a designer
actually pays. Objectives here score an
:class:`~repro.explore.evaluator.Evaluation` (simulation result plus area
accounting); **lower is better** for every objective, and infeasible
points score ``inf`` so any feasible point beats them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Protocol


class Objective(Protocol):
    """Scores an evaluation; lower is better."""

    name: str

    def score(self, evaluation) -> float:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class AdcrObjective:
    """Area-Delay to Correct Result: total chip area x execution time.

    Units: macroblock-milliseconds. Total area counts the data region as
    well as the factories — shrinking factories below the knee of
    Figure 15 blows up delay faster than it saves area, which is exactly
    the trade-off ADCR arbitrates.
    """

    name: str = "adcr"

    def score(self, evaluation) -> float:
        return evaluation.total_area * evaluation.result.makespan_ms


@dataclass(frozen=True)
class LatencyObjective:
    """Execution time alone (milliseconds) — the speed-of-data chase."""

    name: str = "latency"

    def score(self, evaluation) -> float:
        return evaluation.result.makespan_ms


@dataclass(frozen=True)
class AreaObjective:
    """Total chip area alone (macroblocks).

    Only meaningful under a latency constraint (wrap in
    :class:`ConstrainedObjective`); unconstrained it just picks the
    smallest factory budget sampled.
    """

    name: str = "area"

    def score(self, evaluation) -> float:
        return evaluation.total_area


@dataclass(frozen=True)
class ConstrainedObjective:
    """A base objective with feasibility limits.

    Points violating any limit score ``inf``: "smallest chip that finishes
    within 50 ms" is ``ConstrainedObjective(AreaObjective(),
    max_makespan_ms=50)``.
    """

    base: Objective
    max_total_area: Optional[float] = None
    max_makespan_ms: Optional[float] = None

    @property
    def name(self) -> str:
        limits = []
        if self.max_total_area is not None:
            limits.append(f"area<={self.max_total_area:g}")
        if self.max_makespan_ms is not None:
            limits.append(f"latency<={self.max_makespan_ms:g}ms")
        suffix = ",".join(limits) or "unconstrained"
        return f"{self.base.name}[{suffix}]"

    def score(self, evaluation) -> float:
        if (
            self.max_total_area is not None
            and evaluation.total_area > self.max_total_area
        ):
            return math.inf
        if (
            self.max_makespan_ms is not None
            and evaluation.result.makespan_ms > self.max_makespan_ms
        ):
            return math.inf
        return self.base.score(evaluation)


_OBJECTIVES = {
    "adcr": AdcrObjective,
    "latency": LatencyObjective,
    "area": AreaObjective,
}


def objective_names():
    return sorted(_OBJECTIVES)


def get_objective(
    name: str,
    max_total_area: Optional[float] = None,
    max_makespan_ms: Optional[float] = None,
) -> Objective:
    """Objective by CLI name, optionally wrapped with constraints."""
    try:
        base = _OBJECTIVES[name]()
    except KeyError:
        raise ValueError(
            f"unknown objective {name!r}; choose from {objective_names()}"
        ) from None
    if max_total_area is None and max_makespan_ms is None:
        return base
    return ConstrainedObjective(base, max_total_area, max_makespan_ms)
