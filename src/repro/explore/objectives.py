"""Exploration objectives: ADCR and friends, computed from evaluations.

The paper's figure of merit is ADCR — Area-Delay to Correct Result
(Section 5): chip area times execution time, the product a designer
actually pays. Objectives here score an
:class:`~repro.explore.evaluator.Evaluation` (simulation result plus area
accounting); **lower is better** for every objective, and infeasible
points score ``inf`` so any feasible point beats them.

Beyond the timing/area objectives, :class:`AncillaQualityObjective`
scores the *error rate* of the architecture's pi/8 ancilla pipeline
(Figure 5b) under the evaluated technology's fault model, powered by the
batched Monte Carlo protocol engine
(:func:`repro.ancilla.evaluate_pi8_ancilla_batched`) — cheap enough at
hundreds of thousands of trials to sit inside an exploration loop, and
memoized in-process plus (optionally) in the content-addressed result
store so repeat scores cost nothing.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Protocol

from repro.tech import ION_TRAP, ErrorRates, TechnologyParams


class Objective(Protocol):
    """Scores an evaluation; lower is better."""

    name: str

    def score(self, evaluation) -> float:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class AdcrObjective:
    """Area-Delay to Correct Result: total chip area x execution time.

    Units: macroblock-milliseconds. Total area counts the data region as
    well as the factories — shrinking factories below the knee of
    Figure 15 blows up delay faster than it saves area, which is exactly
    the trade-off ADCR arbitrates.
    """

    name: str = "adcr"

    def score(self, evaluation) -> float:
        return evaluation.total_area * evaluation.result.makespan_ms


@dataclass(frozen=True)
class LatencyObjective:
    """Execution time alone (milliseconds) — the speed-of-data chase."""

    name: str = "latency"

    def score(self, evaluation) -> float:
        return evaluation.result.makespan_ms


@dataclass(frozen=True)
class AreaObjective:
    """Total chip area alone (macroblocks).

    Only meaningful under a latency constraint (wrap in
    :class:`ConstrainedObjective`); unconstrained it just picks the
    smallest factory budget sampled.
    """

    name: str = "area"

    def score(self, evaluation) -> float:
        return evaluation.total_area


# ----------------------------------------------------------------------
# Monte-Carlo-backed ancilla quality


#: In-process memo: (error rates, trials, seed) -> MonteCarloResult.
#: One exploration scores hundreds of points against a handful of
#: technologies, so almost every score is a dictionary hit.
_MC_CACHE: Dict[tuple, object] = {}


def pi8_ancilla_quality(
    errors: Optional[ErrorRates] = None,
    trials: int = 100_000,
    seed: int = 7,
    store=None,
):
    """Monte Carlo result for the Figure 5b pi/8 ancilla pipeline.

    Runs :func:`repro.ancilla.evaluate_pi8_ancilla_batched` (the batched
    protocol engine — hundreds of thousands of trials in about a second)
    and caches the outcome twice over: in-process by
    ``(errors, trials, seed)``, and, when a
    :class:`~repro.explore.store.ResultStore` is given, as a
    content-addressed record so later sessions re-read the estimate from
    disk instead of re-sampling.
    """
    if errors is None:
        errors = ION_TRAP.errors
    key = (errors.gate, errors.movement, errors.measurement, trials, seed)
    cached = _MC_CACHE.get(key)
    if cached is not None:
        return cached
    from repro.error.montecarlo import MonteCarloResult

    store_key = None
    if store is not None:
        store_key = {
            "mc": "pi8_ancilla_quality",
            "errors": asdict(errors),
            "trials": trials,
            "seed": seed,
        }
        record = store.get(store_key)
        if record is not None:
            try:
                result = MonteCarloResult(
                    trials=int(record["trials"]),
                    good=int(record["good"]),
                    bad=int(record["bad"]),
                    discarded=int(record["discarded"]),
                )
            except (KeyError, TypeError, ValueError):
                result = None
            if result is not None and result.trials == trials:
                _MC_CACHE[key] = result
                return result
    from repro.ancilla import evaluate_pi8_ancilla_batched

    result = evaluate_pi8_ancilla_batched(trials=trials, seed=seed, errors=errors)
    _MC_CACHE[key] = result
    if store is not None:
        store.put(
            store_key,
            {
                "trials": result.trials,
                "good": result.good,
                "bad": result.bad,
                "discarded": result.discarded,
            },
        )
    return result


@dataclass(frozen=True)
class AncillaQualityObjective:
    """pi/8 ancilla error rate under the technology's fault model.

    Lower is better: the probability that an accepted Figure 5b ancilla
    carries an uncorrectable residual error, estimated by the batched
    Monte Carlo engine at ``trials`` samples. Design points share a
    technology (area/rate dimensions do not perturb the fault model), so
    within one exploration this objective is constant per technology —
    useful standalone for technology what-ifs, and as the quality gate
    in :class:`ConstrainedObjective` (``max_pi8_error_rate``).

    Args:
        tech: Technology whose error rates drive the Monte Carlo.
        trials: Monte Carlo sample count (the accuracy knob).
        seed: RNG seed — fixed so scores are reproducible and cacheable.
        store: Optional result store; estimates persist across runs.
    """

    tech: TechnologyParams = ION_TRAP
    trials: int = 100_000
    seed: int = 7
    store: object = field(default=None, compare=False)
    name: str = "ancilla_quality"

    def result(self):
        """The underlying (cached) Monte Carlo estimate."""
        return pi8_ancilla_quality(
            self.tech.errors, self.trials, self.seed, self.store
        )

    def score(self, evaluation) -> float:
        return self.result().error_rate


@dataclass(frozen=True)
class ConstrainedObjective:
    """A base objective with feasibility limits.

    Points violating any limit score ``inf``: "smallest chip that finishes
    within 50 ms" is ``ConstrainedObjective(AreaObjective(),
    max_makespan_ms=50)``. ``max_pi8_error_rate`` gates on Monte-Carlo
    ancilla quality (via ``quality``, or a default
    :class:`AncillaQualityObjective` built on first use).
    """

    base: Objective
    max_total_area: Optional[float] = None
    max_makespan_ms: Optional[float] = None
    max_pi8_error_rate: Optional[float] = None
    quality: Optional[AncillaQualityObjective] = None

    @property
    def name(self) -> str:
        limits = []
        if self.max_total_area is not None:
            limits.append(f"area<={self.max_total_area:g}")
        if self.max_makespan_ms is not None:
            limits.append(f"latency<={self.max_makespan_ms:g}ms")
        if self.max_pi8_error_rate is not None:
            limits.append(f"pi8err<={self.max_pi8_error_rate:g}")
        suffix = ",".join(limits) or "unconstrained"
        return f"{self.base.name}[{suffix}]"

    def score(self, evaluation) -> float:
        if (
            self.max_total_area is not None
            and evaluation.total_area > self.max_total_area
        ):
            return math.inf
        if (
            self.max_makespan_ms is not None
            and evaluation.result.makespan_ms > self.max_makespan_ms
        ):
            return math.inf
        if self.max_pi8_error_rate is not None:
            quality = self.quality or AncillaQualityObjective()
            if quality.score(evaluation) > self.max_pi8_error_rate:
                return math.inf
        return self.base.score(evaluation)


_OBJECTIVES = {
    "adcr": AdcrObjective,
    "latency": LatencyObjective,
    "area": AreaObjective,
    "ancilla_quality": AncillaQualityObjective,
}


def objective_names():
    return sorted(_OBJECTIVES)


def get_objective(
    name: str,
    max_total_area: Optional[float] = None,
    max_makespan_ms: Optional[float] = None,
    *,
    max_pi8_error_rate: Optional[float] = None,
    tech: TechnologyParams = ION_TRAP,
    mc_trials: int = 100_000,
    mc_seed: int = 7,
    store=None,
) -> Objective:
    """Objective by CLI name, optionally wrapped with constraints.

    ``tech``/``mc_trials``/``mc_seed``/``store`` parameterize the
    Monte-Carlo-backed quality machinery (the ``ancilla_quality``
    objective and the ``max_pi8_error_rate`` constraint); the other
    objectives ignore them.
    """
    quality = AncillaQualityObjective(
        tech=tech, trials=mc_trials, seed=mc_seed, store=store
    )
    if name == "ancilla_quality":
        base: Objective = quality
    else:
        try:
            base = _OBJECTIVES[name]()
        except KeyError:
            raise ValueError(
                f"unknown objective {name!r}; choose from {objective_names()}"
            ) from None
    if (
        max_total_area is None
        and max_makespan_ms is None
        and max_pi8_error_rate is None
    ):
        return base
    return ConstrainedObjective(
        base,
        max_total_area,
        max_makespan_ms,
        max_pi8_error_rate=max_pi8_error_rate,
        quality=quality,
    )
