"""Failure taxonomy for the exploration subsystem.

Exploration is a long-running, multi-process workload; the failure
modes it must survive are first-class types here rather than bare
``RuntimeError`` strings:

* :class:`EvaluationFailed` — a design point could not be evaluated
  (the root of the taxonomy; carries the canonical point);
* :class:`WorkerCrash` — a pool worker died mid-chunk (SIGKILL, OOM,
  ``os._exit``): the :class:`~repro.explore.evaluator.Evaluator`
  rebuilds the pool and retries, so user code normally never sees it;
* :class:`PoisonPoint` — one design point failed repeatedly after
  retry and bisection isolated it; the evaluator quarantines it and
  returns a structured failed ``Evaluation`` instead of raising;
* :class:`LeaseHeld` — a cooperative claim on a store key is held by
  another live evaluator (see :meth:`ResultStore.hold`).

:class:`StoreDegradedWarning` is the warning category emitted when the
result store cannot persist an evaluation (``ENOSPC``, read-only cache
directory, injected I/O faults): the exploration continues with
in-memory results rather than crashing hours into a sweep.
:class:`ServeDegradedWarning` is its network sibling, emitted when a
:class:`~repro.serve.client.RemoteEvaluator` exhausts its retry budget
against an exploration server (or a whole replica fleet) and falls back
to local evaluation — the run completes (bit-identically) instead of
dying with the server. :class:`ServeRecoveredWarning` announces the
reverse transition: a replica probe succeeded and evaluation returned
to the fleet.
"""

from __future__ import annotations

from typing import Dict, Optional


class EvaluationFailed(Exception):
    """A design point could not be evaluated.

    Attributes:
        point: The canonical design point, when known.
    """

    def __init__(self, message: str, point: Optional[Dict] = None) -> None:
        super().__init__(message)
        self.point = dict(point) if point is not None else None


class WorkerCrash(EvaluationFailed):
    """A worker process died while evaluating a chunk (pool broken)."""


class PoisonPoint(EvaluationFailed):
    """A point that keeps failing after retries; quarantined."""


class LeaseHeld(Exception):
    """Another evaluator holds the lease on this store key."""

    def __init__(self, message: str, owner: Optional[str] = None) -> None:
        super().__init__(message)
        self.owner = owner


class StoreDegradedWarning(UserWarning):
    """The result store could not persist/read an entry and degraded."""


class ServeDegradedWarning(UserWarning):
    """The exploration server became unreachable; evaluation went local."""


class ServeRecoveredWarning(UserWarning):
    """A replica probe succeeded; evaluation returned to the fleet."""
