"""Search strategies: how an exploration spends its evaluation budget.

Strategies follow one ask/tell protocol:

* :meth:`Strategy.ask` proposes up to ``remaining`` design points;
* :meth:`Strategy.tell` feeds back scored evaluations (lower is better).

The engine (:mod:`repro.explore.engine`) owns the loop, the budget and
cross-batch deduplication; strategies only decide *where to look next*.

Three built-ins:

* :class:`GridStrategy` — exhaustive full-factorial enumeration; what
  the paper's Figures 15-16 sweeps do, now as a strategy.
* :class:`RandomStrategy` — seeded uniform sampling, the classic
  baseline for high-dimensional spaces.
* :class:`AdaptiveStrategy` — successive refinement: a coarse grid pass
  to map the terrain, then rounds of local perturbation around the
  incumbent best points with a halving step size — the budget
  concentrates near the Pareto front, so it typically matches or beats
  the full grid's optimum at a fraction of the evaluations (continuous
  axes are refined *between* grid lines, which the grid cannot see).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from repro.explore.space import DesignSpace


class Strategy(Protocol):
    """Pluggable search policy over a design space."""

    def ask(self, remaining: int) -> List[Dict]:
        """Propose up to ``remaining`` points; empty means done."""
        ...

    def tell(self, scored: Sequence[Tuple[object, float]]) -> None:
        """Receive (evaluation, score) pairs for the last proposals."""
        ...


class GridStrategy:
    """Exhaustive enumeration of the space's full-factorial grid."""

    def __init__(self, space: DesignSpace) -> None:
        self.space = space
        self._pending = space.grid_points()
        self._cursor = 0

    def ask(self, remaining: int) -> List[Dict]:
        if remaining <= 0:
            return []
        batch = self._pending[self._cursor : self._cursor + remaining]
        self._cursor += len(batch)
        return batch

    def tell(self, scored: Sequence[Tuple[object, float]]) -> None:
        pass


class RandomStrategy:
    """Seeded uniform random search."""

    def __init__(self, space: DesignSpace, seed: int = 0, batch_size: int = 8) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.space = space
        self._rng = random.Random(seed)
        self._batch_size = batch_size

    def ask(self, remaining: int) -> List[Dict]:
        count = min(self._batch_size, remaining)
        return [self.space.sample(self._rng) for _ in range(max(0, count))]

    def tell(self, scored: Sequence[Tuple[object, float]]) -> None:
        pass


class AdaptiveStrategy:
    """Successive refinement around the best points seen so far.

    Round 0 evaluates a coarse grid (``coarse`` samples per continuous/
    integer axis, every categorical choice). Each later round takes the
    ``top_k`` best evaluations to date and proposes ``children`` local
    perturbations of each, with the perturbation scale halving (times
    ``shrink``) every round — successive-halving of the search radius,
    spending the remaining budget ever closer to the incumbent optimum.

    Args:
        space: The design space.
        seed: RNG seed (the strategy is fully deterministic given it).
        coarse: Per-axis resolution of the round-0 grid.
        top_k: Incumbents refined each round.
        children: Proposals per incumbent per round.
        scale: Initial perturbation scale, as a fraction of each axis span.
        shrink: Multiplicative scale decay per refinement round.
    """

    def __init__(
        self,
        space: DesignSpace,
        seed: int = 0,
        coarse: int = 3,
        top_k: int = 2,
        children: int = 4,
        scale: float = 0.2,
        shrink: float = 0.5,
    ) -> None:
        if coarse < 1:
            raise ValueError(f"coarse must be >= 1, got {coarse}")
        if top_k < 1 or children < 1:
            raise ValueError("top_k and children must be >= 1")
        if not 0.0 < shrink <= 1.0:
            raise ValueError(f"shrink must be in (0, 1], got {shrink}")
        self.space = space
        self._rng = random.Random(seed)
        self._coarse: Optional[List[Dict]] = space.grid_points(coarse)
        self._top_k = top_k
        self._children = children
        self._scale = scale
        self._shrink = shrink
        self._best: List[Tuple[float, int, object]] = []
        self._tick = 0

    def ask(self, remaining: int) -> List[Dict]:
        if remaining <= 0:
            return []
        if self._coarse is not None:
            batch = self._coarse[:remaining]
            self._coarse = self._coarse[remaining:] or None
            if batch:
                return batch
        if not self._best:
            # Nothing scored yet (everything deduped away) — fall back to
            # random sampling so the search cannot stall.
            return [self.space.sample(self._rng) for _ in range(min(remaining, 4))]
        proposals: List[Dict] = []
        for _, _, evaluation in self._best[: self._top_k]:
            parent = evaluation.point_dict
            for _ in range(self._children):
                proposals.append(self.space.neighbor(parent, self._rng, self._scale))
                if len(proposals) >= remaining:
                    break
            if len(proposals) >= remaining:
                break
        self._scale *= self._shrink
        return proposals

    def tell(self, scored: Sequence[Tuple[object, float]]) -> None:
        for evaluation, score in scored:
            self._tick += 1
            self._best.append((score, self._tick, evaluation))
        self._best.sort(key=lambda item: (item[0], item[1]))
        del self._best[max(self._top_k, 8) :]


_STRATEGIES = {
    "grid": GridStrategy,
    "random": RandomStrategy,
    "adaptive": AdaptiveStrategy,
}


def strategy_names():
    return sorted(_STRATEGIES)


def get_strategy(name: str, space: DesignSpace, seed: int = 0) -> Strategy:
    """Strategy by CLI name."""
    if name == "grid":
        return GridStrategy(space)
    try:
        cls = _STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; choose from {strategy_names()}"
        ) from None
    return cls(space, seed=seed)
