"""Point evaluation: lower a design point to a simulator run.

The :class:`Evaluator` is the bridge between abstract design points
(dicts of dimension name -> value, see :mod:`repro.explore.space`) and
the compiled dataflow engine. It

* canonicalizes points (fills architecture-specific defaults, drops
  irrelevant dimensions) so equivalent configurations collapse to one
  evaluation;
* deduplicates repeated points within a batch;
* consults a :class:`~repro.explore.store.ResultStore` so warm re-runs
  and refined searches perform zero repeat simulations;
* resolves homogeneous miss batches through the **point-batched** engine
  (:func:`repro.arch.batched.simulate_batch`): misses sharing a kernel,
  movement discipline, and CQLA configuration — every steady-supply
  point, and every QLA/CQLA/Multiplexed architecture point of one
  configuration — become one numpy pass over a ``(points, qubits)``
  state matrix instead of N serial ``run()`` walks, bit-identically.
  Only ``engine="legacy"`` runs take the per-point path;
* shards cache misses across ``workers=N`` processes, compiling the
  kernel **once per worker** via a ``ProcessPoolExecutor`` initializer —
  tasks are bare point-dict chunks, so nothing heavyweight is re-pickled,
  and each worker batch-resolves its shard of the points axis;
* **survives worker failure**: each chunk is its own future with a
  configurable ``timeout``; a crashed worker (``BrokenProcessPool`` —
  SIGKILL, OOM, segfault) rebuilds the pool and re-enqueues the lost
  chunks; a failing chunk is *bisected* until the offending point is
  isolated, retried ``retries`` times with exponential backoff, and
  finally **quarantined** — returned as a structured failed
  :class:`Evaluation` (``error`` set, score ``inf`` downstream) instead
  of sinking its chunk-mates or the whole exploration. If the pool
  proves unrecoverable, evaluation degrades to serial in-process runs.
  Successful results stay bit-identical to the serial path throughout;
* **coordinates with concurrent evaluators** sharing one result store
  through the store's lease protocol: misses are claimed before
  simulation, contested points are awaited (the other evaluator's
  result arrives as a cache hit), and stale leases from dead evaluators
  are reclaimed — so N explorers over one keyspace simulate each unique
  point at most once.

Two construction modes:

* ``Evaluator(analysis=ka)`` — evaluate against a prebuilt
  :class:`~repro.kernels.analysis.KernelAnalysis` (what the sweeps use);
* ``Evaluator(kernel="qcla", width=32)`` — evaluate against a kernel
  *specification*; workers rebuild the (memoized) analysis themselves,
  and the ``tech_scale`` and ``code_level`` dimensions become available
  because the evaluator can re-characterize the kernel under scaled
  technology or at a higher code-concatenation level
  (``tech.at_level(L)``). Misses are grouped per (scale, level), so a
  ``code_level`` sweep still resolves through the point-batched engine
  one level at a time.
"""

from __future__ import annotations

import math
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.architectures import (
    ArchitectureKind,
    CqlaConfig,
    MultiplexedConfig,
    QlaConfig,
)
from repro.arch.simulator import DataflowSimulator, SimulationResult
from repro.arch.supply import PI8, ZERO, SteadyRateSupply
from repro.circuits.compiled import CompiledCircuit, compile_circuit
from repro.explore.store import ResultStore, canonical_json
from repro.layout.region import data_qubit_area
from repro.obs import metrics as _metrics
from repro.obs.trace import flush_worker, span as _span, worker_init_from_env
from repro.tech import ION_TRAP, TechnologyParams
from repro.testing import faults
from repro.util.backoff import Backoff

ENGINES = ("compiled", "legacy")

#: Dimension names the lowering understands.
KNOWN_DIMENSIONS = frozenset(
    {
        "arch",
        "factory_area",
        "cqla_cache_fraction",
        "cqla_ports",
        "region_span",
        "zero_rate",
        "pi8_ratio",
        "tech_scale",
        "code_level",
    }
)


@dataclass(frozen=True)
class KernelSummary:
    """The slice of a kernel analysis the lowering needs (picklable)."""

    name: str
    circuit: object
    tech: TechnologyParams
    data_qubits: int
    zero_bandwidth_per_ms: float
    pi8_bandwidth_per_ms: float

    @classmethod
    def from_analysis(cls, analysis) -> "KernelSummary":
        return cls(
            name=analysis.name,
            circuit=analysis.circuit,
            tech=analysis.tech,
            data_qubits=analysis.data_qubits,
            zero_bandwidth_per_ms=analysis.zero_bandwidth_per_ms,
            pi8_bandwidth_per_ms=analysis.pi8_bandwidth_per_ms,
        )


@dataclass(frozen=True)
class Evaluation:
    """One evaluated design point: simulation outcome plus area accounting.

    A *failed* evaluation (a quarantined poison point) carries
    ``result=None`` and a human-readable ``error``; it scores ``inf``
    under every objective and is excluded from Pareto fronts and
    per-dimension winners. Check :attr:`ok` before touching ``result``.
    """

    point: Tuple[Tuple[str, object], ...]
    result: Optional[SimulationResult]
    factory_area: float
    data_area: float
    total_area: float
    from_cache: bool = field(default=False, compare=False)
    error: Optional[str] = None

    @classmethod
    def failure(cls, point: Dict[str, object], error: str) -> "Evaluation":
        """A structured evaluation failure for a quarantined point."""
        return cls(
            point=tuple(sorted(point.items())),
            result=None,
            factory_area=0.0,
            data_area=0.0,
            total_area=0.0,
            error=error,
        )

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None

    @property
    def point_dict(self) -> Dict[str, object]:
        return dict(self.point)

    @property
    def makespan_ms(self) -> float:
        return math.inf if self.result is None else self.result.makespan_ms


def tech_fingerprint(tech: TechnologyParams) -> Dict[str, object]:
    """Every field that shapes simulation, for content-addressed keys."""
    return {
        "name": tech.name,
        "t_1q": tech.t_1q,
        "t_2q": tech.t_2q,
        "t_meas": tech.t_meas,
        "t_prep": tech.t_prep,
        "t_move": tech.t_move,
        "t_turn": tech.t_turn,
        "errors": asdict(tech.errors),
    }


# ----------------------------------------------------------------------
# Lowering


def _canonicalize(
    point: Dict[str, object],
    cqla: Optional[CqlaConfig],
    allow_recharacterize: bool,
) -> Dict[str, object]:
    """Resolve defaults and drop irrelevant dimensions.

    Equivalent configurations (a QLA point annotated with CQLA cache
    dims, an explicit default region span, ``tech_scale == 1``,
    ``code_level == 1``) collapse to one canonical dict, which is what
    the dedupe pass and the result store key on.
    """
    unknown = set(point) - KNOWN_DIMENSIONS
    if unknown:
        raise ValueError(
            f"unknown dimensions {sorted(unknown)}; "
            f"supported: {sorted(KNOWN_DIMENSIONS)}"
        )
    canonical: Dict[str, object] = {}
    scale = float(point.get("tech_scale", 1.0))
    if scale != 1.0:
        if not allow_recharacterize:
            raise ValueError(
                "tech_scale requires a kernel specification "
                "(Evaluator(kernel=..., width=...)); an evaluator built "
                "from a fixed analysis cannot re-characterize the kernel"
            )
        if scale <= 0:
            raise ValueError(f"tech_scale must be positive, got {scale}")
        canonical["tech_scale"] = scale
    raw_level = point.get("code_level", 1)
    if float(raw_level) != int(raw_level):
        raise ValueError(f"code_level must be an integer, got {raw_level!r}")
    level = int(raw_level)
    if level != 1:
        if level < 1:
            raise ValueError(f"code_level must be >= 1, got {level}")
        if not allow_recharacterize:
            raise ValueError(
                "code_level requires a kernel specification "
                "(Evaluator(kernel=..., width=...)); an evaluator built "
                "from a fixed analysis cannot re-characterize the kernel "
                "at another concatenation level"
            )
        canonical["code_level"] = level

    if "zero_rate" in point:
        if "arch" in point or "factory_area" in point:
            raise ValueError(
                "a point is either a steady-supply point (zero_rate) or an "
                f"architecture point (arch/factory_area), not both: {point}"
            )
        canonical["zero_rate"] = float(point["zero_rate"])
        canonical["pi8_ratio"] = float(point.get("pi8_ratio", 0.0))
        return canonical

    if "arch" not in point or "factory_area" not in point:
        raise ValueError(
            f"an architecture point needs 'arch' and 'factory_area': {point}"
        )
    kind = point["arch"]
    kind = kind.value if isinstance(kind, ArchitectureKind) else str(kind)
    ArchitectureKind(kind)  # validates
    canonical["arch"] = kind
    canonical["factory_area"] = float(point["factory_area"])
    if kind == ArchitectureKind.CQLA.value:
        default = cqla or CqlaConfig()
        canonical["cqla_cache_fraction"] = float(
            point.get("cqla_cache_fraction", default.cache_fraction)
        )
        canonical["cqla_ports"] = int(point.get("cqla_ports", default.ports))
    elif kind == ArchitectureKind.MULTIPLEXED.value:
        canonical["region_span"] = int(
            point.get("region_span", MultiplexedConfig().region_span)
        )
    return canonical


@dataclass(frozen=True)
class _LoweredPoint:
    """A canonical point resolved to concrete simulator inputs."""

    supply: object
    move_1q: float
    move_2q: float
    cqla: Optional[CqlaConfig]
    factory_area: float


def _lower_point(summary: KernelSummary, point: Dict[str, object]) -> _LoweredPoint:
    """Resolve one *canonical* design point to supply + movement + area."""
    tech = summary.tech
    circuit = summary.circuit
    if "zero_rate" in point:
        rate = point["zero_rate"]
        ratio = point["pi8_ratio"]
        from repro.arch.provisioning import factory_area_for_rates

        return _LoweredPoint(
            supply=SteadyRateSupply({ZERO: rate, PI8: rate * ratio}),
            move_1q=0.0,
            move_2q=0.0,
            cqla=None,
            factory_area=factory_area_for_rates(rate, rate * ratio, tech),
        )
    kind = ArchitectureKind(point["arch"])
    cache: Optional[CqlaConfig] = None
    if kind is ArchitectureKind.QLA:
        config = QlaConfig()
    elif kind is ArchitectureKind.CQLA:
        config = CqlaConfig(
            cache_fraction=point["cqla_cache_fraction"],
            ports=point["cqla_ports"],
        )
        cache = config
    else:
        config = MultiplexedConfig(region_span=point["region_span"])
    factory_area = float(point["factory_area"])
    supply = config.build_supply(
        factory_area,
        circuit.num_qubits,
        summary.zero_bandwidth_per_ms,
        summary.pi8_bandwidth_per_ms,
        tech,
    )
    return _LoweredPoint(
        supply=supply,
        move_1q=config.movement_penalty(False, tech),
        move_2q=config.movement_penalty(True, tech),
        cqla=cache,
        factory_area=factory_area,
    )


def _run_lowered(
    summary: KernelSummary,
    lowered: _LoweredPoint,
    compiled: Optional[CompiledCircuit],
    engine: str,
) -> SimulationResult:
    """One serial simulator run of an already-lowered point."""
    sim = DataflowSimulator(
        summary.circuit,
        summary.tech,
        supply=lowered.supply,
        movement_penalty_us=lowered.move_1q,
        two_qubit_movement_penalty_us=lowered.move_2q,
        cqla=lowered.cqla,
        compiled=compiled,
    )
    return sim.run() if engine == "compiled" else sim.run_legacy()


def _evaluation(
    summary: KernelSummary,
    point: Dict[str, object],
    lowered: _LoweredPoint,
    result: SimulationResult,
) -> Evaluation:
    data_area = float(data_qubit_area(summary.data_qubits))
    return Evaluation(
        point=tuple(sorted(point.items())),
        result=result,
        factory_area=lowered.factory_area,
        data_area=data_area,
        total_area=lowered.factory_area + data_area,
    )


def evaluate_design_point(
    summary: KernelSummary,
    point: Dict[str, object],
    compiled: Optional[CompiledCircuit],
    engine: str,
) -> Evaluation:
    """Run one *canonical* design point through the dataflow simulator."""
    lowered = _lower_point(summary, point)
    result = _run_lowered(summary, lowered, compiled, engine)
    return _evaluation(summary, point, lowered, result)


def evaluate_design_points(
    summary: KernelSummary,
    points: Sequence[Dict[str, object]],
    compiled: Optional[CompiledCircuit],
    engine: str,
) -> List[Evaluation]:
    """Evaluate many *canonical* points, batching homogeneous runs.

    Points sharing a movement discipline and CQLA configuration (all
    steady-supply points; all architecture points of one
    kind/configuration, cache modes included) resolve through one
    :func:`repro.arch.batched.simulate_batch` call — a single vectorized
    pass over the whole group — instead of N serial ``run()`` walks.
    Only the legacy engine takes the per-point path. Results are
    bit-identical to per-point evaluation either way.
    """
    if engine != "compiled" or len(points) < 2:
        return [
            evaluate_design_point(summary, point, compiled, engine)
            for point in points
        ]
    lowered = [_lower_point(summary, point) for point in points]
    out: List[Optional[Evaluation]] = [None] * len(points)
    groups: Dict[
        Tuple[float, float, Optional[CqlaConfig]], List[int]
    ] = {}
    for i, lp in enumerate(lowered):
        groups.setdefault((lp.move_1q, lp.move_2q, lp.cqla), []).append(i)
    from repro.arch.batched import simulate_batch

    for (move_1q, move_2q, cqla), indices in groups.items():
        results = simulate_batch(
            summary.circuit,
            [lowered[i].supply for i in indices],
            summary.tech,
            movement_penalty_us=move_1q,
            two_qubit_movement_penalty_us=move_2q,
            cqla=cqla,
            compiled=compiled,
        )
        for i, result in zip(indices, results):
            out[i] = _evaluation(summary, points[i], lowered[i], result)
    return out


# ----------------------------------------------------------------------
# Worker-process plumbing: compile once per worker, reference per task.

_WORKER: Dict[str, object] = {}


def _init_worker_summary(summary: KernelSummary, engine: str) -> None:
    """Pool initializer (analysis mode): one compilation per worker."""
    worker_init_from_env()
    _WORKER.clear()
    _WORKER["mode"] = "summary"
    _WORKER["engine"] = engine
    _WORKER["summary"] = summary
    _WORKER["compiled"] = (
        compile_circuit(summary.circuit, summary.tech)
        if engine == "compiled"
        else None
    )


def _init_worker_spec(
    kernel: str, width: int, tech: TechnologyParams, engine: str
) -> None:
    """Pool initializer (spec mode): workers re-derive analyses lazily."""
    worker_init_from_env()
    _WORKER.clear()
    _WORKER["mode"] = "spec"
    _WORKER["engine"] = engine
    _WORKER["spec"] = (kernel, width, tech)
    _WORKER["scales"] = {}


def _summary_for_spec(
    kernel: str,
    width: int,
    tech: TechnologyParams,
    engine: str,
    scale: float,
    level: int = 1,
) -> Tuple[KernelSummary, Optional[CompiledCircuit]]:
    from repro.kernels.analysis import analyze_kernel

    scaled = tech if scale == 1.0 else tech.scaled(scale)
    analysis = analyze_kernel(kernel, width, scaled, code_level=level)
    compiled = analysis.compiled_circuit() if engine == "compiled" else None
    return KernelSummary.from_analysis(analysis), compiled


def _recharacterize_key(point: Dict[str, object]) -> Tuple[float, int]:
    """(tech_scale, code_level) — the re-characterization group key."""
    return (
        float(point.get("tech_scale", 1.0)),
        int(point.get("code_level", 1)),
    )


def _evaluate_grouped(
    context, points: Sequence[Dict[str, object]], engine: str
) -> List[Evaluation]:
    """Evaluate ``points``, batching per (tech_scale, code_level) group.

    Points sharing a technology scale and a concatenation level share a
    summary/compiled context from ``context(point)``; each group then
    resolves through :func:`evaluate_design_points`, so a sweep over
    ``code_level`` runs each level's homogeneous points through the
    point-batched engine. Output order matches input order.
    """
    for point in points:
        faults.check("evaluate", point)
    out: List[Optional[Evaluation]] = [None] * len(points)
    by_key: Dict[Tuple[float, int], List[int]] = {}
    for i, point in enumerate(points):
        by_key.setdefault(_recharacterize_key(point), []).append(i)
    for indices in by_key.values():
        summary, compiled = context(points[indices[0]])
        evaluations = evaluate_design_points(
            summary, [points[i] for i in indices], compiled, engine
        )
        for i, evaluation in zip(indices, evaluations):
            out[i] = evaluation
    return out


def _worker_context(point: Dict[str, object]):
    """Resolve (summary, compiled) for one point from worker state."""
    if _WORKER["mode"] == "summary":
        return _WORKER["summary"], _WORKER["compiled"]
    kernel, width, tech = _WORKER["spec"]
    scale, level = _recharacterize_key(point)
    cached = _WORKER["scales"].get((scale, level))
    if cached is None:
        cached = _summary_for_spec(
            kernel, width, tech, _WORKER["engine"], scale, level
        )
        _WORKER["scales"][(scale, level)] = cached
    return cached


def _worker_evaluate_chunk(points: List[Dict[str, object]]) -> List[Evaluation]:
    """One worker's shard of the points axis, batch-resolved in-process.

    Traced as ``evaluate.chunk``; when the parent armed a spool directory
    (:data:`repro.obs.trace.SPOOL_ENV`), completed events are flushed to
    this worker's spool file after every chunk so a crash loses at most
    one chunk's spans.
    """
    try:
        with _span("evaluate.chunk", points=len(points)):
            return _evaluate_grouped(_worker_context, points, _WORKER["engine"])
    finally:
        flush_worker()


# ----------------------------------------------------------------------


class Evaluator:
    """Batches design points through the dataflow engine.

    Args:
        analysis: Prebuilt kernel analysis (analysis mode). Mutually
            exclusive with ``kernel``/``width``.
        kernel: Kernel name (spec mode, e.g. ``"qcla"``); enables the
            ``tech_scale`` and ``code_level`` dimensions and
            kernel-identity store keys.
        width: Kernel bit width (spec mode).
        tech: Technology parameters (spec mode; analysis mode inherits
            the analysis's).
        engine: ``"compiled"`` (default) or ``"legacy"``. The compiled
            engine batch-resolves homogeneous misses through the
            point-batched engine (one numpy pass per group,
            bit-identical to per-point runs); the legacy engine always
            runs point by point.
        workers: When > 1, shard store misses across this many worker
            processes (each worker batch-resolves its contiguous slice
            of the points axis). The kernel is compiled once per worker
            by the pool initializer; results are identical to a serial
            run.
        compiled: Optional prebuilt compiled circuit (serial runs).
        cqla: Default CQLA configuration for points that do not pin
            ``cqla_cache_fraction`` / ``cqla_ports`` explicitly.
        store: Optional :class:`ResultStore`; every evaluation is
            persisted and repeat points are served from disk.
        retries: How many times a failing point is retried (after
            bisection has isolated it) before being quarantined.
        timeout: Per-chunk wall-clock budget in seconds for pooled
            evaluation; an overdue chunk's workers are killed, the pool
            rebuilt and the chunk retried/bisected. ``None`` disables.
        retry_backoff: Base of the shared full-jitter exponential
            backoff policy (:class:`repro.util.backoff.Backoff`, capped
            at 2 s) slept between retries and pool rebuilds; 0 disables
            sleeping.
        leases: Coordinate with concurrent evaluators sharing ``store``
            via its lease protocol (claim misses, await contested
            points, reclaim stale leases). Ignored without a store.
        heartbeat_interval: Seconds between lease-heartbeat refreshes at
            batch boundaries; must be smaller than the store's
            ``lease_ttl`` (a heartbeat slower than the TTL would let a
            *live* evaluator's lease be reclaimed). Default: a quarter
            of the TTL, capped at 5 s.

    Counters (reset never; read via :meth:`stats` after a run):

    * ``simulations_run`` — fresh, successful simulator evaluations;
    * ``cache_hits`` — points served from the result store;
    * ``dedup_hits`` — points collapsed onto an identical batch-mate;
    * ``retries`` — point/chunk re-executions after a failure;
    * ``worker_crashes`` — pool breakages and timeout kills survived;
    * ``quarantined`` — points that kept failing and were isolated.
    """

    def __init__(
        self,
        analysis=None,
        *,
        kernel: Optional[str] = None,
        width: Optional[int] = None,
        tech: TechnologyParams = ION_TRAP,
        engine: str = "compiled",
        workers: Optional[int] = None,
        compiled: Optional[CompiledCircuit] = None,
        cqla: Optional[CqlaConfig] = None,
        store: Optional[ResultStore] = None,
        retries: int = 2,
        timeout: Optional[float] = None,
        retry_backoff: float = 0.1,
        leases: bool = True,
        heartbeat_interval: Optional[float] = None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
        if (analysis is None) == (kernel is None):
            raise ValueError("pass exactly one of analysis= or kernel=/width=")
        if kernel is not None and width is None:
            raise ValueError("spec mode needs width= alongside kernel=")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if heartbeat_interval is not None:
            if heartbeat_interval <= 0:
                raise ValueError(
                    f"heartbeat_interval must be positive, got {heartbeat_interval}"
                )
            if store is not None and heartbeat_interval >= store.lease_ttl:
                raise ValueError(
                    f"heartbeat_interval ({heartbeat_interval}s) must be "
                    f"smaller than the store's lease_ttl ({store.lease_ttl}s); "
                    "a live lease must be refreshed before it can go stale"
                )
        self._analysis = analysis
        self._kernel = kernel
        self._width = width
        self._tech = analysis.tech if analysis is not None else tech
        self._engine = engine
        self._workers = workers
        self._cqla = cqla
        self.store = store
        self._retries = retries
        self._timeout = timeout
        self._backoff = Backoff(base=retry_backoff, cap=2.0)
        self._leases = leases
        self._heartbeat_interval = heartbeat_interval
        self._lease_poll = 0.05
        self._quarantine: Dict[str, str] = {}
        self._active_leases: List[Dict[str, object]] = []
        self._last_heartbeat = 0.0
        self.simulations_run = 0
        self.cache_hits = 0
        self.dedup_hits = 0
        self.retries = 0
        self.worker_crashes = 0
        self.quarantined = 0
        # Pre-register the registry mirrors so a metrics snapshot always
        # carries every evaluator counter, zero-valued ones included.
        for name in ("simulations_run", "cache_hits", "dedup_hits",
                     "retries", "worker_crashes", "quarantined"):
            _metrics.counter(f"repro_{name}_total")
        self._summary: Optional[KernelSummary] = (
            KernelSummary.from_analysis(analysis) if analysis is not None else None
        )
        self._compiled = compiled
        self._scales: Dict[
            Tuple[float, int], Tuple[KernelSummary, Optional[CompiledCircuit]]
        ] = {}
        self._gates: Optional[int] = None

    # ------------------------------------------------------------------

    def canonicalize(self, point: Dict[str, object]) -> Dict[str, object]:
        return _canonicalize(
            point, self._cqla, allow_recharacterize=self._analysis is None
        )

    def canonical_key(self, point: Dict[str, object]) -> str:
        """Stable identity string for dedupe across batches."""
        return canonical_json(self.canonicalize(point))

    def _serial_context(
        self, point: Dict[str, object]
    ) -> Tuple[KernelSummary, Optional[CompiledCircuit]]:
        if self._summary is not None:
            if self._compiled is None and self._engine == "compiled":
                self._compiled = compile_circuit(
                    self._summary.circuit, self._summary.tech
                )
            return self._summary, self._compiled
        scale, level = _recharacterize_key(point)
        cached = self._scales.get((scale, level))
        if cached is None:
            cached = _summary_for_spec(
                self._kernel, self._width, self._tech, self._engine, scale, level
            )
            self._scales[(scale, level)] = cached
        return cached

    def _gate_count(self) -> int:
        """Decomposed gate count (circuit fingerprint) — no compilation.

        Spec mode reads it off the (memoized) kernel analysis directly so
        fully-warm runs never pay the array-form lowering.
        """
        if self._summary is not None:
            return len(self._summary.circuit)
        if self._gates is None:
            from repro.kernels.analysis import analyze_kernel

            self._gates = len(
                analyze_kernel(self._kernel, self._width, self._tech).circuit
            )
        return self._gates

    def _store_key(self, canonical: Dict[str, object]) -> Dict[str, object]:
        if self._kernel is not None:
            identity: Dict[str, object] = {
                "kernel": self._kernel,
                "width": self._width,
            }
        else:
            identity = {"kernel": self._summary.name, "width": None}
        gates = self._gate_count()
        return {
            **identity,
            "gates": gates,
            "tech": tech_fingerprint(self._tech),
            "engine": self._engine,
            "point": canonical,
        }

    # ------------------------------------------------------------------
    # Store (de)serialization

    @staticmethod
    def _to_record(evaluation: Evaluation) -> Dict[str, object]:
        return {
            "result": asdict(evaluation.result),
            "areas": {
                "factory": evaluation.factory_area,
                "data": evaluation.data_area,
                "total": evaluation.total_area,
            },
            "point": dict(evaluation.point),
        }

    @staticmethod
    def _from_record(
        record: Dict[str, object], canonical: Dict[str, object]
    ) -> Optional[Evaluation]:
        try:
            result = SimulationResult(**record["result"])
            areas = record["areas"]
            return Evaluation(
                point=tuple(sorted(canonical.items())),
                result=result,
                factory_area=float(areas["factory"]),
                data_area=float(areas["data"]),
                total_area=float(areas["total"]),
                from_cache=True,
            )
        except (KeyError, TypeError, ValueError):
            return None

    # ------------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        """Bump a health counter and mirror it into the metrics registry.

        The per-instance ints stay authoritative for :meth:`stats` (and
        for tests asserting exact values on one evaluator); the global
        ``repro_<name>_total`` counters aggregate across every evaluator
        in the process for the Prometheus/JSON exports.
        """
        if amount:
            setattr(self, name, getattr(self, name) + amount)
            _metrics.counter(f"repro_{name}_total").inc(amount)

    def stats(self) -> Dict[str, int]:
        """Health counters accumulated over this evaluator's lifetime."""
        return {
            "simulations_run": self.simulations_run,
            "cache_hits": self.cache_hits,
            "dedup_hits": self.dedup_hits,
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "quarantined": self.quarantined,
        }

    def evaluate(self, points: Sequence[Dict[str, object]]) -> List[Evaluation]:
        """Evaluate ``points``, returning evaluations aligned with them.

        Within the batch, identical canonical points are simulated once;
        store hits are served from disk; the remaining misses resolve in
        homogeneous point-batched groups, serially or sharded across
        ``workers`` processes (deterministic and bit-identical to
        point-by-point runs either way). When a store with leases is
        attached, misses are claimed first; points another evaluator is
        already simulating are awaited rather than recomputed. Points
        that fail persistently come back as failed evaluations
        (``Evaluation.ok == False``) and are quarantined: later batches
        get the failure back without touching the simulator.
        """
        with _span("evaluate.batch", points=len(points)) as sp:
            return self._evaluate_batch(points, sp)

    def _evaluate_batch(
        self, points: Sequence[Dict[str, object]], sp
    ) -> List[Evaluation]:
        canonical = [self.canonicalize(p) for p in points]
        keys = [canonical_json(c) for c in canonical]
        unique: Dict[str, Dict[str, object]] = {}
        for key, cpoint in zip(keys, canonical):
            if key not in unique:
                unique[key] = cpoint
        self._count("dedup_hits", len(keys) - len(unique))

        resolved: Dict[str, Evaluation] = {}
        misses: List[Tuple[str, Dict[str, object]]] = []
        for key, cpoint in unique.items():
            if key in self._quarantine:
                resolved[key] = Evaluation.failure(cpoint, self._quarantine[key])
                continue
            hit = None
            if self.store is not None:
                record = self.store.get(self._store_key(cpoint))
                if record is not None:
                    hit = self._from_record(record, cpoint)
            if hit is not None:
                resolved[key] = hit
                self._count("cache_hits")
            else:
                misses.append((key, cpoint))

        use_leases = self.store is not None and self._leases
        owned, contested = misses, []
        if use_leases and misses:
            owned, contested = [], []
            for key, cpoint in misses:
                if self.store.claim(self._store_key(cpoint)):
                    owned.append((key, cpoint))
                else:
                    contested.append((key, cpoint))

        if owned:
            if use_leases:
                self._active_leases = [self._store_key(c) for _, c in owned]
            try:
                fresh = self._run(owned)
            finally:
                self._active_leases = []
            self._count("simulations_run", sum(1 for e in fresh if e.ok))
            for (key, cpoint), evaluation in zip(owned, fresh):
                resolved[key] = evaluation
                if evaluation.ok:
                    if self.store is not None:
                        self.store.put(
                            self._store_key(cpoint), self._to_record(evaluation)
                        )
                else:
                    self._quarantine[key] = evaluation.error
                if use_leases:
                    self.store.release(self._store_key(cpoint))
        for key, cpoint in contested:
            resolved[key] = self._await_contested(key, cpoint)
        sp.set(
            unique=len(unique),
            misses=len(misses),
            contested=len(contested),
        )
        return [resolved[key] for key in keys]

    # ------------------------------------------------------------------
    # Fault-tolerant execution

    def _sleep_backoff(self, attempt: int) -> None:
        self._backoff.sleep(attempt)

    def _heartbeat_leases(self) -> None:
        """Refresh owned leases (throttled) so they never look stale."""
        if self.store is None or not self._active_leases:
            return
        interval = (
            self._heartbeat_interval
            if self._heartbeat_interval is not None
            else min(5.0, self.store.lease_ttl / 4)
        )
        now = time.monotonic()
        if now - self._last_heartbeat < interval:
            return
        self._last_heartbeat = now
        for key in self._active_leases:
            self.store.heartbeat(key)

    def release_leases(self) -> int:
        """Release any store leases this evaluator still holds.

        The normal batch path releases each lease as its point resolves;
        this is the shutdown path — a server draining with an evaluation
        cut short must not make peers wait out the lease TTL. Returns
        the number of leases released.
        """
        held = self._active_leases
        self._active_leases = []
        if self.store is None:
            return 0
        for key in held:
            self.store.release(key)
        return len(held)

    def _evaluate_one_serial(self, cpoint: Dict[str, object]) -> Evaluation:
        """One point, in-process, retried with backoff, then quarantined."""
        failures = 0
        while True:
            try:
                return _evaluate_grouped(
                    self._serial_context, [cpoint], self._engine
                )[0]
            except Exception as exc:
                failures += 1
                if failures > self._retries:
                    self._count("quarantined")
                    return Evaluation.failure(
                        cpoint, f"{type(exc).__name__}: {exc}"
                    )
                self._count("retries")
                self._sleep_backoff(failures)

    def _run_serial(self, tasks: List[Dict[str, object]]) -> List[Evaluation]:
        """Serial path: batch-resolve; isolate per point on failure."""
        try:
            return _evaluate_grouped(self._serial_context, tasks, self._engine)
        except Exception:
            # A poison point sank the batch: evaluate point by point so
            # only the offender is quarantined, not its batch-mates.
            self._count("retries")
            return [self._evaluate_one_serial(cpoint) for cpoint in tasks]

    def _await_contested(self, key: str, cpoint: Dict[str, object]) -> Evaluation:
        """Wait out another evaluator's lease on ``cpoint``.

        The happy path is the other evaluator landing the record (we
        serve it as a cache hit). If its lease goes stale — the process
        died — we reclaim and simulate the point ourselves.
        """
        store_key = self._store_key(cpoint)
        with _span("evaluate.lease_wait"):
            return self._await_contested_loop(key, cpoint, store_key)

    def _await_contested_loop(
        self, key: str, cpoint: Dict[str, object], store_key: Dict[str, object]
    ) -> Evaluation:
        while True:
            record = self.store.get(store_key)
            if record is not None:
                hit = self._from_record(record, cpoint)
                if hit is not None:
                    self._count("cache_hits")
                    return hit
            if self.store.claim(store_key):
                try:
                    # The owner may have landed the record between our
                    # miss above and the claim.
                    record = self.store.get(store_key)
                    if record is not None:
                        hit = self._from_record(record, cpoint)
                        if hit is not None:
                            self._count("cache_hits")
                            return hit
                    evaluation = self._evaluate_one_serial(cpoint)
                    if evaluation.ok:
                        self._count("simulations_run")
                        self.store.put(store_key, self._to_record(evaluation))
                    else:
                        self._quarantine[key] = evaluation.error
                    return evaluation
                finally:
                    self.store.release(store_key)
            time.sleep(self._lease_poll)

    def _make_pool(self, max_workers: int) -> ProcessPoolExecutor:
        if self._kernel is not None:
            initializer, initargs = _init_worker_spec, (
                self._kernel,
                self._width,
                self._tech,
                self._engine,
            )
        else:
            initializer, initargs = _init_worker_summary, (
                self._summary,
                self._engine,
            )
        return ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=initializer,
            initargs=initargs,
        )

    @staticmethod
    def _kill_pool(pool: Optional[ProcessPoolExecutor]) -> None:
        """Tear a pool down hard — hung workers get SIGKILL, not a join."""
        if pool is None:
            return
        try:
            for proc in list(getattr(pool, "_processes", {}).values()):
                proc.kill()
        except Exception:
            pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def _run(
        self, misses: List[Tuple[str, Dict[str, object]]]
    ) -> List[Evaluation]:
        tasks = [cpoint for _, cpoint in misses]
        workers = self._workers
        if workers is None or workers <= 1 or len(tasks) <= 1:
            return self._run_serial(tasks)
        return self._run_pool(tasks, min(workers, len(tasks)))

    def _run_pool(
        self, tasks: List[Dict[str, object]], max_workers: int
    ) -> List[Evaluation]:
        """Shard ``tasks`` across a worker pool, surviving its failures.

        Each chunk is one future. Chunk failure (worker crash, raised
        exception, timeout) bisects multi-point chunks to isolate the
        poison; singleton failures retry with backoff up to ``retries``
        times, then quarantine. Pool breakage rebuilds the pool (with
        backoff, up to a rebuild budget); beyond the budget the
        remaining work degrades to serial in-process evaluation.
        Successful results are bit-identical to a serial, fault-free
        run — chunk boundaries only affect scheduling, never values.
        """
        chunksize = math.ceil(len(tasks) / max_workers)
        queue = deque(
            list(range(start, min(start + chunksize, len(tasks))))
            for start in range(0, len(tasks), chunksize)
        )
        out: List[Optional[Evaluation]] = [None] * len(tasks)
        failures: Dict[int, int] = {}
        rebuilds = 0
        max_rebuilds = 8 + 2 * self._retries + len(tasks)

        def fail_chunk(indices: List[int], label: str) -> None:
            if len(indices) > 1:
                mid = len(indices) // 2
                queue.append(indices[:mid])
                queue.append(indices[mid:])
                return
            idx = indices[0]
            failures[idx] = failures.get(idx, 0) + 1
            if failures[idx] > self._retries:
                self._count("quarantined")
                out[idx] = Evaluation.failure(tasks[idx], label)
            else:
                self._count("retries")
                self._sleep_backoff(failures[idx])
                queue.append(indices)

        def rebuild(pool: Optional[ProcessPoolExecutor]):
            nonlocal rebuilds
            self._kill_pool(pool)
            if rebuilds >= max_rebuilds:
                return None
            rebuilds += 1
            self._sleep_backoff(rebuilds)
            try:
                return self._make_pool(max_workers)
            except Exception:
                return None

        try:
            pool: Optional[ProcessPoolExecutor] = self._make_pool(max_workers)
        except Exception:
            pool = None
        pending: Dict[object, Tuple[List[int], Optional[float]]] = {}
        try:
            while queue or pending:
                if pool is None and not pending:
                    # Unrecoverable pool: degrade to in-process serial
                    # evaluation of whatever is left.
                    while queue:
                        for idx in queue.popleft():
                            if out[idx] is None:
                                out[idx] = self._evaluate_one_serial(tasks[idx])
                    break
                while queue and pool is not None:
                    indices = queue.popleft()
                    deadline = (
                        time.monotonic() + self._timeout
                        if self._timeout is not None
                        else None
                    )
                    try:
                        future = pool.submit(
                            _worker_evaluate_chunk, [tasks[i] for i in indices]
                        )
                    except Exception:
                        queue.appendleft(indices)
                        self._count("worker_crashes")
                        pool = rebuild(pool)
                        break
                    pending[future] = (indices, deadline)
                if not pending:
                    continue
                wait_for = None
                if self._timeout is not None:
                    now = time.monotonic()
                    wait_for = max(
                        0.0,
                        min(d for _, d in pending.values() if d is not None)
                        - now,
                    )
                done, _ = wait(
                    set(pending), timeout=wait_for, return_when=FIRST_COMPLETED
                )
                if not done:
                    # Deadline expired with nothing finished: the pool is
                    # wedged (hung worker). Kill it; overdue chunks count
                    # as failures, in-flight innocents requeue intact.
                    now = time.monotonic()
                    overdue = [
                        f
                        for f, (_, d) in pending.items()
                        if d is not None and now >= d
                    ]
                    if not overdue:
                        continue
                    self._count("worker_crashes")
                    for future, (indices, _) in list(pending.items()):
                        if future in overdue:
                            fail_chunk(
                                indices,
                                f"timeout: chunk exceeded {self._timeout}s",
                            )
                        else:
                            queue.append(indices)
                    pending.clear()
                    pool = rebuild(pool)
                    continue
                # Handle clean results before pool-breakage casualties so
                # completed work is not requeued alongside the crash.
                for future in sorted(done, key=lambda f: f.exception() is not None):
                    entry = pending.pop(future, None)
                    if entry is None:
                        continue
                    indices, _ = entry
                    try:
                        evaluations = future.result()
                    except BrokenProcessPool:
                        self._count("worker_crashes")
                        fail_chunk(indices, "worker crashed (pool broken)")
                        # Every other in-flight future is toast too;
                        # requeue their chunks intact (no failure charged).
                        for _, (other, _) in pending.items():
                            queue.append(other)
                        pending.clear()
                        pool = rebuild(pool)
                    except Exception as exc:
                        fail_chunk(indices, f"{type(exc).__name__}: {exc}")
                    else:
                        for i, evaluation in zip(indices, evaluations):
                            out[i] = evaluation
                        self._heartbeat_leases()
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        return out
