"""Design-space declaration: named dimensions lowered to simulator configs.

The paper's Qalypso microarchitecture is the product of a design-space
search (Figures 15-16): sweep factory provisioning, datapath organization
and layout choices, then pick the ADCR-optimal point. A
:class:`DesignSpace` makes that search space a first-class object — a
tuple of named dimensions, each continuous, integer or categorical — so
search strategies can enumerate, sample or locally refine it without
knowing what the axes mean.

Dimension names the evaluator understands (see
:mod:`repro.explore.evaluator` for the lowering):

==================== =========== =====================================
name                 type        meaning
==================== =========== =====================================
``arch``             categorical architecture kind (``"qla"``,
                                 ``"cqla"``, ``"multiplexed"``)
``factory_area``     continuous  total ancilla-factory area budget (mb)
``cqla_cache_fraction`` continuous CQLA compute-cache size fraction
``cqla_ports``       integer     CQLA cache teleport ports
``region_span``      integer     dense-region span for multiplexed
``zero_rate``        continuous  steady encoded-zero supply (per ms)
``pi8_ratio``        continuous  pi/8 supply as a fraction of zero rate
``tech_scale``       continuous  uniform latency scale on the technology
``code_level``       integer     code concatenation level (1 = paper)
==================== =========== =====================================

Custom dimensions beyond these are rejected at lowering time, keeping the
space declaration honest about what the simulator can evaluate.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.architectures import ArchitectureKind


def _subsample(values: Sequence, count: int) -> List:
    """Pick ``count`` entries spread across ``values``, endpoints included."""
    if count >= len(values):
        return list(values)
    if count == 1:
        return [values[0]]
    step = (len(values) - 1) / (count - 1)
    indices = sorted({round(i * step) for i in range(count)})
    return [values[i] for i in indices]


@dataclass(frozen=True)
class Continuous:
    """A real-valued axis, optionally with an explicit grid.

    Args:
        name: Dimension name.
        lo: Lower bound (derived from ``values`` when omitted).
        hi: Upper bound (derived from ``values`` when omitted).
        log: Treat the axis logarithmically for gridding, sampling and
            refinement (factory areas and supply rates span decades).
        num: Default grid resolution when ``values`` is not given.
        values: Explicit grid points (e.g. the Figure 15 area ladder);
            bounds default to their extremes.
    """

    name: str
    lo: Optional[float] = None
    hi: Optional[float] = None
    log: bool = True
    num: int = 8
    values: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.values is not None:
            if not self.values:
                raise ValueError(f"{self.name}: values must be non-empty")
            object.__setattr__(self, "values", tuple(float(v) for v in self.values))
            if self.lo is None:
                object.__setattr__(self, "lo", min(self.values))
            if self.hi is None:
                object.__setattr__(self, "hi", max(self.values))
        if self.lo is None or self.hi is None:
            raise ValueError(f"{self.name}: bounds required (or pass values=)")
        if not self.lo <= self.hi:
            raise ValueError(f"{self.name}: lo {self.lo} > hi {self.hi}")
        if self.log and self.lo <= 0:
            raise ValueError(f"{self.name}: log axis needs positive bounds")
        if self.num < 1:
            raise ValueError(f"{self.name}: num must be >= 1")

    def grid(self, resolution: Optional[int] = None) -> List[float]:
        if self.values is not None:
            return _subsample(self.values, resolution or len(self.values))
        count = resolution or self.num
        if count == 1 or self.lo == self.hi:
            return [self.lo]
        if self.log:
            ratio = math.log(self.hi / self.lo)
            return [
                self.lo * math.exp(ratio * i / (count - 1)) for i in range(count)
            ]
        step = (self.hi - self.lo) / (count - 1)
        return [self.lo + step * i for i in range(count)]

    def sample(self, rng: random.Random) -> float:
        if self.log:
            return math.exp(rng.uniform(math.log(self.lo), math.log(self.hi)))
        return rng.uniform(self.lo, self.hi)

    def neighbor(self, value: float, rng: random.Random, scale: float) -> float:
        """Perturb ``value`` by a Gaussian step of ``scale`` x the axis span."""
        if self.lo == self.hi:
            return self.lo
        if self.log:
            span = math.log(self.hi / self.lo)
            moved = math.log(value) + rng.gauss(0.0, scale * span)
            return min(self.hi, max(self.lo, math.exp(moved)))
        span = self.hi - self.lo
        return min(self.hi, max(self.lo, value + rng.gauss(0.0, scale * span)))


@dataclass(frozen=True)
class Integer:
    """An integer-valued axis (port counts, region spans)."""

    name: str
    lo: int
    hi: int
    num: int = 0  # 0 = every integer in range

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"{self.name}: lo {self.lo} > hi {self.hi}")

    def grid(self, resolution: Optional[int] = None) -> List[int]:
        full = list(range(self.lo, self.hi + 1))
        count = resolution or self.num or len(full)
        return [int(v) for v in _subsample(full, count)]

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.lo, self.hi)

    def neighbor(self, value: int, rng: random.Random, scale: float) -> int:
        if self.lo == self.hi:
            return self.lo
        step = max(1, round(abs(rng.gauss(0.0, scale * (self.hi - self.lo)))))
        moved = value + (step if rng.random() < 0.5 else -step)
        return min(self.hi, max(self.lo, moved))


@dataclass(frozen=True)
class Categorical:
    """A choice among unordered alternatives (architecture kind)."""

    name: str
    choices: Tuple

    def __post_init__(self) -> None:
        if not self.choices:
            raise ValueError(f"{self.name}: choices must be non-empty")
        object.__setattr__(self, "choices", tuple(self.choices))

    def grid(self, resolution: Optional[int] = None) -> List:
        return list(self.choices)

    def sample(self, rng: random.Random):
        return self.choices[rng.randrange(len(self.choices))]

    def neighbor(self, value, rng: random.Random, scale: float):
        """Categorical values are held fixed during local refinement."""
        return value


@dataclass(frozen=True)
class DesignSpace:
    """An ordered tuple of named dimensions.

    Grid enumeration is the cartesian product in declaration order, so a
    space declared to mirror :func:`repro.arch.sweep.area_sweep`'s
    (kind, area) nesting enumerates the exact same points in the exact
    same order.
    """

    dimensions: Tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "dimensions", tuple(self.dimensions))
        if not self.dimensions:
            raise ValueError("a design space needs at least one dimension")
        names = [d.name for d in self.dimensions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension names in {names}")

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(d.name for d in self.dimensions)

    def dimension(self, name: str):
        for dim in self.dimensions:
            if dim.name == name:
                return dim
        raise KeyError(f"no dimension {name!r} in {self.names}")

    def grid_points(self, resolution: Optional[int] = None) -> List[Dict]:
        """Full-factorial enumeration (optionally at reduced resolution).

        ``resolution`` caps the per-dimension sample count for continuous
        and integer axes — the adaptive strategy's coarse first pass.
        """
        axes = [dim.grid(resolution) for dim in self.dimensions]
        return [
            dict(zip(self.names, combo)) for combo in itertools.product(*axes)
        ]

    def grid_size(self, resolution: Optional[int] = None) -> int:
        size = 1
        for dim in self.dimensions:
            size *= len(dim.grid(resolution))
        return size

    def sample(self, rng: random.Random) -> Dict:
        return {dim.name: dim.sample(rng) for dim in self.dimensions}

    def neighbor(self, point: Dict, rng: random.Random, scale: float) -> Dict:
        """A local perturbation of ``point`` (categoricals held fixed)."""
        return {
            dim.name: dim.neighbor(point[dim.name], rng, scale)
            for dim in self.dimensions
        }


# ----------------------------------------------------------------------
# Standard spaces


def _code_level_dimension(code_levels: Optional[Sequence[int]]):
    """The ``code_level`` axis for a standard space, or None.

    ``None`` (the default everywhere) omits the dimension entirely —
    every point then canonicalizes to level 1, so existing spaces,
    sweeps and stored results are bit-identical. An explicit level list
    becomes an :class:`Integer` axis when the levels are a contiguous
    range, otherwise a :class:`Categorical` over exactly the given
    levels.
    """
    if code_levels is None:
        return None
    levels = sorted({int(level) for level in code_levels})
    if not levels:
        raise ValueError("code_levels must be non-empty when given")
    if levels[0] < 1:
        raise ValueError(f"code levels must be >= 1, got {levels[0]}")
    if levels == list(range(levels[0], levels[-1] + 1)):
        return Integer("code_level", levels[0], levels[-1])
    return Categorical("code_level", tuple(levels))


def architecture_space(
    analysis,
    areas: Optional[Sequence[float]] = None,
    kinds: Sequence[ArchitectureKind] = tuple(ArchitectureKind),
    area_points: int = 14,
    code_levels: Optional[Sequence[int]] = None,
) -> DesignSpace:
    """The Figure 15/16 space: architecture kind x factory-area budget.

    The default area ladder is exactly :func:`repro.arch.sweep.area_sweep`'s
    (1/8x to 512x the kernel's matched-demand area, ``area_points`` steps),
    so a grid exploration of this space evaluates the same points as the
    existing sweep path. ``code_levels`` appends the concatenation-level
    axis (e.g. ``(1, 2)`` sweeps each architecture point at both levels);
    the default — no axis — keeps every point at level 1, bit-identical
    to the paper's space. Level-L points need a spec-mode evaluator
    (``Evaluator(kernel=..., width=...)``), which re-characterizes the
    kernel at ``tech.at_level(L)``.
    """
    from repro.arch.provisioning import area_breakdown

    if areas is None:
        import numpy as np

        matched = area_breakdown(analysis).factory_area
        areas = np.geomspace(matched / 8.0, matched * 512.0, area_points)
    dimensions = [
        Categorical("arch", tuple(kind.value for kind in kinds)),
        Continuous("factory_area", values=tuple(float(a) for a in areas)),
    ]
    level_dim = _code_level_dimension(code_levels)
    if level_dim is not None:
        dimensions.append(level_dim)
    return DesignSpace(tuple(dimensions))


def throughput_space(
    analysis,
    rates: Optional[Sequence[float]] = None,
    pi8_ratio: Optional[float] = None,
    code_levels: Optional[Sequence[int]] = None,
) -> DesignSpace:
    """The Figure 8 space: steady zero-supply rate at a fixed pi/8 ratio.

    ``code_levels`` appends the concatenation-level axis exactly as in
    :func:`architecture_space` (default: absent, level 1 everywhere).
    """
    import numpy as np

    avg = analysis.zero_bandwidth_per_ms
    if rates is None:
        rates = np.geomspace(avg / 16.0, avg * 16.0, 17)
    if pi8_ratio is None:
        pi8_ratio = analysis.pi8_bandwidth_per_ms / avg if avg > 0 else 0.0
    dimensions = [
        Continuous("zero_rate", values=tuple(float(r) for r in rates)),
        Continuous("pi8_ratio", values=(float(pi8_ratio),), log=False),
    ]
    level_dim = _code_level_dimension(code_levels)
    if level_dim is not None:
        dimensions.append(level_dim)
    return DesignSpace(tuple(dimensions))
