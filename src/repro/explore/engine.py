"""The exploration loop: strategy asks, evaluator answers, budget gates.

:func:`explore` wires a :class:`~repro.explore.space.DesignSpace`, an
objective, a strategy and an :class:`~repro.explore.evaluator.Evaluator`
into one bounded search. The engine owns cross-batch deduplication (a
strategy re-proposing a seen point costs nothing) and the evaluation
budget (counted in *unique evaluated points*, whether they came from the
simulator or the warm result store).

The returned :class:`ExplorationResult` carries every evaluation, the
best point under the objective, per-architecture winners and the
area-delay Pareto front — the raw material of the paper's Figure 15/16
argument, for arbitrary kernels and spaces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.explore.evaluator import Evaluation, Evaluator
from repro.explore.objectives import Objective
from repro.explore.space import DesignSpace
from repro.explore.strategies import Strategy

#: Consecutive all-duplicate asks after which the engine stops waiting
#: for a strategy to produce something new.
_STALL_LIMIT = 3


@dataclass
class ExplorationResult:
    """Everything one exploration learned."""

    kernel: str
    objective_name: str
    strategy_name: str
    evaluations: List[Evaluation] = field(default_factory=list)
    scores: List[float] = field(default_factory=list)
    simulations_run: int = 0
    cache_hits: int = 0

    @property
    def evaluated(self) -> int:
        """Unique design points evaluated (the spent budget)."""
        return len(self.evaluations)

    @property
    def best_index(self) -> int:
        if not self.evaluations:
            raise ValueError("exploration evaluated no points")
        return min(range(len(self.scores)), key=lambda i: self.scores[i])

    @property
    def best(self) -> Evaluation:
        return self.evaluations[self.best_index]

    @property
    def best_score(self) -> float:
        return self.scores[self.best_index]

    def best_per(self, dimension: str) -> Dict[object, Tuple[Evaluation, float]]:
        """Best (evaluation, score) for each value of ``dimension``."""
        winners: Dict[object, Tuple[Evaluation, float]] = {}
        for evaluation, score in zip(self.evaluations, self.scores):
            value = evaluation.point_dict.get(dimension)
            if value is None:
                continue
            incumbent = winners.get(value)
            if incumbent is None or score < incumbent[1]:
                winners[value] = (evaluation, score)
        return winners

    def pareto_front(self) -> List[Evaluation]:
        """Area-delay nondominated evaluations, ordered by ascending area."""
        return pareto_front(self.evaluations)


def pareto_front(evaluations: List[Evaluation]) -> List[Evaluation]:
    """Evaluations no other point beats on both total area and delay."""
    ordered = sorted(
        evaluations, key=lambda e: (e.total_area, e.result.makespan_us)
    )
    front: List[Evaluation] = []
    best_delay = math.inf
    for evaluation in ordered:
        if evaluation.result.makespan_us < best_delay:
            front.append(evaluation)
            best_delay = evaluation.result.makespan_us
    return front


def explore(
    space: DesignSpace,
    objective: Objective,
    strategy: Strategy,
    *,
    evaluator: Evaluator,
    budget: int,
) -> ExplorationResult:
    """Search ``space`` for the point minimizing ``objective``.

    Args:
        space: The design space (strategies hold it too; passed for
            result metadata and sanity).
        objective: Scoring rule; lower is better.
        strategy: Proposal policy (grid / random / adaptive / custom).
        evaluator: Point evaluator; its result store makes re-runs and
            refinements incremental.
        budget: Maximum unique design points to evaluate.

    The loop ends when the budget is spent, the strategy runs dry, or
    the strategy stalls (proposes only already-seen points several asks
    in a row).
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    sims_before = evaluator.simulations_run
    hits_before = evaluator.cache_hits
    result = ExplorationResult(
        kernel=_kernel_label(evaluator),
        objective_name=objective.name,
        strategy_name=type(strategy).__name__,
    )
    seen: set = set()
    stalls = 0
    while result.evaluated < budget and stalls < _STALL_LIMIT:
        asked = strategy.ask(budget - result.evaluated)
        if not asked:
            break
        fresh: List[Dict] = []
        fresh_keys: set = set()
        for point in asked:
            key = evaluator.canonical_key(point)
            if key in seen or key in fresh_keys:
                continue
            fresh.append(point)
            fresh_keys.add(key)
        if not fresh:
            stalls += 1
            strategy.tell([])
            continue
        stalls = 0
        seen |= fresh_keys
        evaluations = evaluator.evaluate(fresh)
        scored = [(e, objective.score(e)) for e in evaluations]
        result.evaluations.extend(e for e, _ in scored)
        result.scores.extend(s for _, s in scored)
        strategy.tell(scored)
    result.simulations_run = evaluator.simulations_run - sims_before
    result.cache_hits = evaluator.cache_hits - hits_before
    return result


def _kernel_label(evaluator: Evaluator) -> str:
    if evaluator._kernel is not None:
        return f"{evaluator._kernel}-{evaluator._width}"
    return evaluator._summary.name


# ----------------------------------------------------------------------
# Reporting


def format_exploration(result: ExplorationResult, pareto_rows: int = 12) -> str:
    """Human-readable exploration report: pick, per-arch bests, Pareto."""
    from repro.reporting.tables import format_table

    lines = [
        f"Exploration of {result.kernel} — objective {result.objective_name}, "
        f"strategy {result.strategy_name}",
        f"  evaluated {result.evaluated} design points "
        f"({result.simulations_run} new simulations, "
        f"{result.cache_hits} served from the result store)",
    ]
    if not result.evaluations:
        lines.append("  no feasible points evaluated")
        return "\n".join(lines)
    if math.isinf(result.best_score):
        lines.append(
            "  no feasible point found: every evaluated point violates the "
            "objective's constraints (relax --max-area / --max-latency-ms "
            "or widen the space)"
        )
        return "\n".join(lines)
    best = result.best
    lines.append(
        f"  best: {_point_label(best)}  ->  score {result.best_score:.4g}  "
        f"(delay {best.result.makespan_ms:.2f} ms, "
        f"total area {best.total_area:.0f} mb)"
    )
    winners = result.best_per("arch")
    if len(winners) > 1:
        rows = [
            (
                arch,
                _fmt(evaluation.point_dict.get("factory_area")),
                f"{evaluation.result.makespan_ms:.2f}",
                f"{evaluation.total_area:.0f}",
                f"{score:.4g}",
            )
            for arch, (evaluation, score) in sorted(winners.items())
        ]
        lines.append("")
        lines.append(
            format_table(
                ["Architecture", "Factory Area", "Delay (ms)",
                 "Total Area", result.objective_name.upper()],
                rows,
                title="Best point per architecture",
            )
        )
    front = result.pareto_front()
    shown = front[:pareto_rows]
    rows = [
        (
            _point_label(evaluation),
            f"{evaluation.total_area:.0f}",
            f"{evaluation.result.makespan_ms:.2f}",
        )
        for evaluation in shown
    ]
    lines.append("")
    title = f"Area-delay Pareto front ({len(front)} points"
    title += ")" if len(front) <= pareto_rows else f", first {pareto_rows})"
    lines.append(
        format_table(["Design Point", "Total Area (mb)", "Delay (ms)"], rows,
                     title=title)
    )
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _point_label(evaluation: Evaluation) -> str:
    return ", ".join(
        f"{name}={_fmt(value)}" for name, value in evaluation.point
    )
