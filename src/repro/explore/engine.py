"""The exploration loop: strategy asks, evaluator answers, budget gates.

:func:`explore` wires a :class:`~repro.explore.space.DesignSpace`, an
objective, a strategy and an :class:`~repro.explore.evaluator.Evaluator`
into one bounded search. The engine owns cross-batch deduplication (a
strategy re-proposing a seen point costs nothing) and the evaluation
budget (counted in *unique evaluated points*, whether they came from the
simulator or the warm result store).

The returned :class:`ExplorationResult` carries every evaluation, the
best point under the objective, per-architecture winners and the
area-delay Pareto front — the raw material of the paper's Figure 15/16
argument, for arbitrary kernels and spaces.

Checkpoint/resume: pass ``journal=`` (a ``journal.jsonl`` path, by
convention beside the result store — see
:meth:`ResultStore.journal_path`) and every completed round is appended
to it (fsync'd, torn tails tolerated). After an interruption — SIGKILL,
power loss, a crashed machine — ``resume=True`` replays the journaled
rounds against the warm store (zero new simulations), restores the
strategy's state through the same ``tell`` feedback, and continues the
search where it stopped. A journal written by a different exploration
(kernel/objective/strategy fingerprint mismatch) is refused. Failed
evaluations (quarantined poison points) score ``inf`` and are excluded
from Pareto fronts and per-architecture winners, so one bad point never
sinks a search.
"""

from __future__ import annotations

import json
import math
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.explore.errors import StoreDegradedWarning

from repro.explore.evaluator import Evaluation, Evaluator
from repro.explore.objectives import Objective
from repro.explore.space import DesignSpace
from repro.explore.strategies import Strategy

#: Consecutive all-duplicate asks after which the engine stops waiting
#: for a strategy to produce something new.
_STALL_LIMIT = 3


@dataclass
class ExplorationResult:
    """Everything one exploration learned."""

    kernel: str
    objective_name: str
    strategy_name: str
    evaluations: List[Evaluation] = field(default_factory=list)
    scores: List[float] = field(default_factory=list)
    simulations_run: int = 0
    cache_hits: int = 0

    @property
    def evaluated(self) -> int:
        """Unique design points evaluated (the spent budget)."""
        return len(self.evaluations)

    @property
    def failures(self) -> List[Evaluation]:
        """Evaluations that failed (quarantined poison points)."""
        return [e for e in self.evaluations if not e.ok]

    @property
    def best_index(self) -> int:
        if not self.evaluations:
            raise ValueError("exploration evaluated no points")
        return min(range(len(self.scores)), key=lambda i: self.scores[i])

    @property
    def best(self) -> Evaluation:
        return self.evaluations[self.best_index]

    @property
    def best_score(self) -> float:
        return self.scores[self.best_index]

    def best_per(self, dimension: str) -> Dict[object, Tuple[Evaluation, float]]:
        """Best (evaluation, score) for each value of ``dimension``."""
        winners: Dict[object, Tuple[Evaluation, float]] = {}
        for evaluation, score in zip(self.evaluations, self.scores):
            if not evaluation.ok:
                continue
            value = evaluation.point_dict.get(dimension)
            if value is None:
                continue
            incumbent = winners.get(value)
            if incumbent is None or score < incumbent[1]:
                winners[value] = (evaluation, score)
        return winners

    def pareto_front(self) -> List[Evaluation]:
        """Area-delay nondominated evaluations, ordered by ascending area."""
        return pareto_front(self.evaluations)


def pareto_front(evaluations: List[Evaluation]) -> List[Evaluation]:
    """Evaluations no other point beats on both total area and delay.

    Failed evaluations (no simulation result) are excluded.
    """
    ordered = sorted(
        (e for e in evaluations if e.ok),
        key=lambda e: (e.total_area, e.result.makespan_us),
    )
    front: List[Evaluation] = []
    best_delay = math.inf
    for evaluation in ordered:
        if evaluation.result.makespan_us < best_delay:
            front.append(evaluation)
            best_delay = evaluation.result.makespan_us
    return front


class Journal:
    """Round-level checkpoint log for one exploration.

    One JSON line per completed round (plus a header fingerprinting the
    exploration), appended and fsync'd after the round's evaluations and
    strategy feedback land. A crash between rounds therefore loses at
    most the in-flight round — and even that only costs re-reading the
    warm result store on resume. Journal I/O failures degrade to a
    :class:`StoreDegradedWarning`; checkpointing is never allowed to
    kill the search it protects.
    """

    def __init__(self, path: os.PathLike, fingerprint: Dict[str, object]) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._handle = None

    def load_rounds(self) -> List[List[Dict]]:
        """Completed rounds from a previous run (torn tails tolerated)."""
        rounds: List[List[Dict]] = []
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        break  # torn tail from a crash mid-append
                    if not isinstance(entry, dict):
                        break
                    if entry.get("type") == "header":
                        if entry.get("fingerprint") != self.fingerprint:
                            raise ValueError(
                                f"journal {self.path} was written by a "
                                "different exploration (kernel/objective/"
                                "strategy mismatch); remove it or start "
                                "without resume"
                            )
                    elif entry.get("type") == "round":
                        points = entry.get("points")
                        if isinstance(points, list):
                            rounds.append(points)
        except FileNotFoundError:
            return []
        except OSError as exc:
            warnings.warn(
                f"journal unreadable ({exc}); starting fresh",
                StoreDegradedWarning,
                stacklevel=2,
            )
            return []
        return rounds

    def begin(self, fresh: bool) -> None:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            existed = self.path.exists() and self.path.stat().st_size > 0
            self._handle = open(
                self.path, "w" if fresh else "a", encoding="utf-8"
            )
            if fresh or not existed:
                self._append({"type": "header", "fingerprint": self.fingerprint})
        except OSError as exc:
            self._handle = None
            warnings.warn(
                f"journal unavailable ({exc}); exploring without checkpoints",
                StoreDegradedWarning,
                stacklevel=2,
            )

    def _append(self, entry: Dict) -> None:
        if self._handle is None:
            return
        try:
            self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except (OSError, ValueError) as exc:
            self.close()
            warnings.warn(
                f"journal write failed ({exc}); checkpointing disabled",
                StoreDegradedWarning,
                stacklevel=3,
            )

    def record_round(self, points: List[Dict]) -> None:
        self._append({"type": "round", "points": points})

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None


def explore(
    space: DesignSpace,
    objective: Objective,
    strategy: Strategy,
    *,
    evaluator: Evaluator,
    budget: int,
    journal: Optional[os.PathLike] = None,
    resume: bool = False,
) -> ExplorationResult:
    """Search ``space`` for the point minimizing ``objective``.

    Args:
        space: The design space (strategies hold it too; passed for
            result metadata and sanity).
        objective: Scoring rule; lower is better.
        strategy: Proposal policy (grid / random / adaptive / custom).
        evaluator: Point evaluator; its result store makes re-runs and
            refinements incremental.
        budget: Maximum unique design points to evaluate.
        journal: Optional checkpoint path (``journal.jsonl`` beside the
            result store, by convention); completed rounds are logged so
            an interrupted run can resume.
        resume: Replay the journal's completed rounds first — served
            from the warm store with zero new simulations — then keep
            searching. Counts replayed points against ``budget``.

    The loop ends when the budget is spent, the strategy runs dry, or
    the strategy stalls (proposes only already-seen points several asks
    in a row).
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    sims_before = evaluator.simulations_run
    hits_before = evaluator.cache_hits
    result = ExplorationResult(
        kernel=_kernel_label(evaluator),
        objective_name=objective.name,
        strategy_name=type(strategy).__name__,
    )
    log: Optional[Journal] = None
    replayed: List[List[Dict]] = []
    if journal is not None:
        log = Journal(
            journal,
            {
                "kernel": result.kernel,
                "objective": result.objective_name,
                "strategy": result.strategy_name,
            },
        )
        if resume:
            replayed = log.load_rounds()
        log.begin(fresh=not resume)
    seen: set = set()
    replayed_points = 0

    def run_round(points: List[Dict], checkpoint: bool) -> None:
        from repro.obs.trace import span as _span

        with _span("explore.round", points=len(points)):
            evaluations = evaluator.evaluate(points)
            scored = [
                (e, objective.score(e) if e.ok else math.inf)
                for e in evaluations
            ]
            result.evaluations.extend(e for e, _ in scored)
            result.scores.extend(s for _, s in scored)
            strategy.tell(scored)
            if checkpoint and log is not None:
                log.record_round([e.point_dict for e in evaluations])

    try:
        for points in replayed:
            fresh = []
            fresh_keys: set = set()
            for point in points:
                key = evaluator.canonical_key(point)
                if key in seen or key in fresh_keys:
                    continue
                fresh.append(point)
                fresh_keys.add(key)
            if not fresh or result.evaluated >= budget:
                continue
            seen |= fresh_keys
            replayed_points += len(fresh)
            run_round(fresh, checkpoint=False)

        # A resumed grid-style strategy re-proposes the replayed prefix
        # before reaching new ground; allow it that many duplicate asks.
        stall_limit = _STALL_LIMIT + replayed_points
        stalls = 0
        while result.evaluated < budget and stalls < stall_limit:
            asked = strategy.ask(budget - result.evaluated)
            if not asked:
                break
            fresh = []
            fresh_keys = set()
            for point in asked:
                key = evaluator.canonical_key(point)
                if key in seen or key in fresh_keys:
                    continue
                fresh.append(point)
                fresh_keys.add(key)
            if not fresh:
                stalls += 1
                strategy.tell([])
                continue
            stalls = 0
            seen |= fresh_keys
            run_round(fresh, checkpoint=True)
    finally:
        if log is not None:
            log.close()
    result.simulations_run = evaluator.simulations_run - sims_before
    result.cache_hits = evaluator.cache_hits - hits_before
    return result


def _kernel_label(evaluator: Evaluator) -> str:
    if evaluator._kernel is not None:
        return f"{evaluator._kernel}-{evaluator._width}"
    return evaluator._summary.name


# ----------------------------------------------------------------------
# Reporting


def format_exploration(result: ExplorationResult, pareto_rows: int = 12) -> str:
    """Human-readable exploration report: pick, per-arch bests, Pareto."""
    from repro.reporting.tables import format_table

    lines = [
        f"Exploration of {result.kernel} — objective {result.objective_name}, "
        f"strategy {result.strategy_name}",
        f"  evaluated {result.evaluated} design points "
        f"({result.simulations_run} new simulations, "
        f"{result.cache_hits} served from the result store)",
    ]
    failed = result.failures
    if failed:
        lines.append(
            f"  {len(failed)} point(s) failed evaluation and were "
            f"quarantined (first: {_point_label(failed[0])} — "
            f"{failed[0].error})"
        )
    if not result.evaluations:
        lines.append("  no feasible points evaluated")
        return "\n".join(lines)
    if math.isinf(result.best_score):
        lines.append(
            "  no feasible point found: every evaluated point violates the "
            "objective's constraints (relax --max-area / --max-latency-ms "
            "or widen the space)"
        )
        return "\n".join(lines)
    best = result.best
    lines.append(
        f"  best: {_point_label(best)}  ->  score {result.best_score:.4g}  "
        f"(delay {best.result.makespan_ms:.2f} ms, "
        f"total area {best.total_area:.0f} mb)"
    )
    winners = result.best_per("arch")
    if len(winners) > 1:
        rows = [
            (
                arch,
                _fmt(evaluation.point_dict.get("factory_area")),
                f"{evaluation.result.makespan_ms:.2f}",
                f"{evaluation.total_area:.0f}",
                f"{score:.4g}",
            )
            for arch, (evaluation, score) in sorted(winners.items())
        ]
        lines.append("")
        lines.append(
            format_table(
                ["Architecture", "Factory Area", "Delay (ms)",
                 "Total Area", result.objective_name.upper()],
                rows,
                title="Best point per architecture",
            )
        )
    front = result.pareto_front()
    shown = front[:pareto_rows]
    rows = [
        (
            _point_label(evaluation),
            f"{evaluation.total_area:.0f}",
            f"{evaluation.result.makespan_ms:.2f}",
        )
        for evaluation in shown
    ]
    lines.append("")
    title = f"Area-delay Pareto front ({len(front)} points"
    title += ")" if len(front) <= pareto_rows else f", first {pareto_rows})"
    lines.append(
        format_table(["Design Point", "Total Area (mb)", "Delay (ms)"], rows,
                     title=title)
    )
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _point_label(evaluation: Evaluation) -> str:
    return ", ".join(
        f"{name}={_fmt(value)}" for name, value in evaluation.point
    )
