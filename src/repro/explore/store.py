"""Disk-backed, content-addressed store for exploration evaluations.

Every simulator evaluation an exploration performs is persisted as one
JSON file under ``<root>/explore/`` (default root: ``.repro_cache/`` in
the working directory, overridable via the ``REPRO_CACHE_DIR``
environment variable). The filename is the SHA-256 of the evaluation's
*key* — a canonical JSON document naming everything that determines the
result:

* a schema version (bump :data:`SCHEMA_VERSION` to invalidate the world);
* the kernel identity (name/width, or analysis fingerprint) and the
  gate count of its decomposed circuit;
* the full technology-parameter record, error rates included;
* the simulation engine;
* the resolved design point (defaults filled in, so ``{"arch": "cqla"}``
  and an explicit default cache fraction share one entry).

Re-running an exploration with a warm store therefore performs zero new
simulator evaluations, and *refined* searches only pay for points they
have never seen. Anything that changes the simulation — new tech
params, a different kernel width, an engine fix that bumps the schema —
lands on different digests, so stale entries are never returned; they
are merely garbage, reclaimable with :meth:`ResultStore.clear`.

Writes are atomic (temp file + ``os.replace``) so concurrent explorations
sharing a store never observe torn records; corrupt or foreign files are
treated as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, Optional

SCHEMA_VERSION = 1

_DEFAULT_ROOT = ".repro_cache"


def canonical_json(document: Dict) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def key_digest(key: Dict) -> str:
    """Content address of a key document."""
    return hashlib.sha256(canonical_json(key).encode("utf-8")).hexdigest()


def default_root() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", _DEFAULT_ROOT))


class ResultStore:
    """One JSON file per evaluation, named by the key's SHA-256.

    Args:
        root: Cache root directory; evaluations live in ``root/explore``.
            Defaults to ``.repro_cache`` (or ``$REPRO_CACHE_DIR``).
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root) if root is not None else default_root()
        self.directory = self.root / "explore"

    # ------------------------------------------------------------------

    def _path(self, key: Dict) -> Path:
        return self.directory / f"{key_digest(key)}.json"

    def get(self, key: Dict) -> Optional[Dict]:
        """The stored record for ``key``, or None (corrupt files miss)."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(record, dict) or record.get("schema") != SCHEMA_VERSION:
            return None
        return record

    def put(self, key: Dict, record: Dict) -> None:
        """Persist ``record`` under ``key`` (atomic, last-writer-wins)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        document = dict(record)
        document["schema"] = SCHEMA_VERSION
        document["key"] = key
        payload = json.dumps(document, sort_keys=True, indent=1)
        # Suffix must not be ".json": in-flight temp files would match the
        # "*.json" globs in __len__/records()/clear().
        fd, temp = tempfile.mkstemp(
            dir=self.directory, prefix=".inflight-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(temp, self._path(key))
        except BaseException:
            try:
                os.unlink(temp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def records(self) -> Iterator[Dict]:
        """All readable records (corrupt files skipped)."""
        if not self.directory.is_dir():
            return
        for path in sorted(self.directory.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    record = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(record, dict):
                yield record

    def clear(self) -> int:
        """Delete every stored evaluation; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
