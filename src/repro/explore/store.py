"""Disk-backed, content-addressed store for exploration evaluations.

Every simulator evaluation an exploration performs is persisted as one
JSON file under ``<root>/explore/`` (default root: ``.repro_cache/`` in
the working directory, overridable via the ``REPRO_CACHE_DIR``
environment variable). The filename is the SHA-256 of the evaluation's
*key* — a canonical JSON document naming everything that determines the
result:

* a schema version (bump :data:`SCHEMA_VERSION` to invalidate the world);
* the kernel identity (name/width, or analysis fingerprint) and the
  gate count of its decomposed circuit;
* the full technology-parameter record, error rates included;
* the simulation engine;
* the resolved design point (defaults filled in, so ``{"arch": "cqla"}``
  and an explicit default cache fraction share one entry).

Re-running an exploration with a warm store therefore performs zero new
simulator evaluations, and *refined* searches only pay for points they
have never seen. Anything that changes the simulation — new tech
params, a different kernel width, an engine fix that bumps the schema —
lands on different digests, so stale entries are never returned; they
are merely garbage, reportable and reclaimable with
:meth:`ResultStore.fsck` (``repro cache fsck``) or wholesale with
:meth:`ResultStore.clear`.

Durability and fault behaviour:

* writes are atomic (temp file + ``fsync`` + ``os.replace``) so
  concurrent explorations sharing a store never observe torn records
  even across power loss;
* a failed write (``ENOSPC``, read-only cache dir) degrades to a
  :class:`~repro.explore.errors.StoreDegradedWarning` instead of
  crashing the exploration — the evaluation lives on in memory;
* corrupt, torn or stale-schema files read as misses everywhere
  (:meth:`get`, :meth:`records`, :meth:`__len__` all apply the same
  schema gate).

Concurrency — the lease protocol:

Multiple evaluators sharing one store coordinate through *lease files*
(``<digest>.lease`` beside the record). :meth:`claim` atomically takes
the lease (``O_CREAT | O_EXCL``); the owner heartbeats it
(:meth:`heartbeat` refreshes the file's mtime at batch boundaries) while
simulating, :meth:`put`\\ s the record and :meth:`release`\\ s. A
contender that fails to claim waits for the record to appear; if the
owner dies, its lease goes stale (no heartbeat for ``lease_ttl``
seconds) and a contender reclaims it. Reclamation replaces the lease
with the contender's own token and reads it back, so of several racing
reclaimers exactly one (the last writer) proceeds. The protocol is
cooperative — it deduplicates work; correctness never depends on it
because :meth:`put` is idempotent last-writer-wins.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import tempfile
import time
import uuid
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.explore.errors import LeaseHeld, StoreDegradedWarning
from repro.obs import metrics as _metrics
from repro.obs.trace import enabled as _tracing
from repro.testing import faults

SCHEMA_VERSION = 1

#: Seconds without a heartbeat after which a lease is considered
#: abandoned and may be reclaimed by another evaluator.
DEFAULT_LEASE_TTL = 300.0

_DEFAULT_ROOT = ".repro_cache"


def canonical_json(document: Dict) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def key_digest(key: Dict) -> str:
    """Content address of a key document."""
    return hashlib.sha256(canonical_json(key).encode("utf-8")).hexdigest()


def default_root() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", _DEFAULT_ROOT))


def _fault_point(key: Dict) -> Optional[Dict]:
    """The design-point part of a key, for fault-rule matching."""
    point = key.get("point") if isinstance(key, dict) else None
    return point if isinstance(point, dict) else None


@dataclass
class FsckReport:
    """What :meth:`ResultStore.fsck` found (and optionally removed)."""

    ok: int = 0
    corrupt: List[str] = field(default_factory=list)
    stale_schema: List[str] = field(default_factory=list)
    foreign: List[str] = field(default_factory=list)
    stale_leases: List[str] = field(default_factory=list)
    removed: int = 0

    @property
    def bad(self) -> int:
        return len(self.corrupt) + len(self.stale_schema) + len(self.foreign)


class ResultStore:
    """One JSON file per evaluation, named by the key's SHA-256.

    Args:
        root: Cache root directory; evaluations live in ``root/explore``.
            Defaults to ``.repro_cache`` (or ``$REPRO_CACHE_DIR``).
        owner: Lease-owner identity; defaults to a unique
            ``host:pid:nonce`` token per store instance.
        lease_ttl: Seconds without a heartbeat before a lease counts as
            stale and may be reclaimed.
    """

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        *,
        owner: Optional[str] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
    ) -> None:
        self.root = Path(root) if root is not None else default_root()
        self.directory = self.root / "explore"
        self.owner = owner or (
            f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"
        )
        if float(lease_ttl) <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        self.lease_ttl = float(lease_ttl)

    # ------------------------------------------------------------------

    def _path(self, key: Dict) -> Path:
        return self.directory / f"{key_digest(key)}.json"

    def _lease_path(self, key: Dict) -> Path:
        return self.directory / f"{key_digest(key)}.lease"

    def journal_path(self) -> Path:
        """Where :func:`repro.explore.engine.explore` journals rounds."""
        return self.root / "journal.jsonl"

    @staticmethod
    def _valid(record: object) -> bool:
        return isinstance(record, dict) and record.get("schema") == SCHEMA_VERSION

    @staticmethod
    def _observe(op: str, seconds: float) -> None:
        """Record one store-operation latency (tracing-gated callers)."""
        _metrics.REGISTRY.histogram(
            "repro_store_op_seconds",
            _metrics.LATENCY_SECONDS_EDGES,
            help="result-store operation latency (seconds)",
            op=op,
        ).observe(seconds)

    def get(self, key: Dict) -> Optional[Dict]:
        """The stored record for ``key``, or None (corrupt files miss).

        Always counts into ``repro_store_get_total{outcome=hit|miss}``;
        with tracing enabled the latency also lands in
        ``repro_store_op_seconds{op=get}``.
        """
        timed = _tracing()
        t0 = time.perf_counter() if timed else 0.0
        record = self._get(key)
        if timed:
            self._observe("get", time.perf_counter() - t0)
        _metrics.counter(
            "repro_store_get_total",
            help="result-store reads by outcome",
            outcome="hit" if record is not None else "miss",
        ).inc()
        return record

    def _get(self, key: Dict) -> Optional[Dict]:
        path = self._path(key)
        try:
            faults.check("store_get", _fault_point(key))
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not self._valid(record):
            return None
        return record

    def put(self, key: Dict, record: Dict) -> bool:
        """Persist ``record`` under ``key`` (atomic, last-writer-wins).

        Returns True on success. On I/O failure (``ENOSPC``, read-only
        cache directory) the store degrades: a
        :class:`StoreDegradedWarning` is emitted and False returned, so
        a long exploration keeps its in-memory results instead of
        crashing on a full disk.

        Always counts into ``repro_store_put_total{outcome=ok|degraded}``;
        with tracing enabled the latency also lands in
        ``repro_store_op_seconds{op=put}``.
        """
        timed = _tracing()
        t0 = time.perf_counter() if timed else 0.0
        ok = self._put(key, record)
        if timed:
            self._observe("put", time.perf_counter() - t0)
        _metrics.counter(
            "repro_store_put_total",
            help="result-store writes by outcome",
            outcome="ok" if ok else "degraded",
        ).inc()
        return ok

    def _put(self, key: Dict, record: Dict) -> bool:
        document = dict(record)
        document["schema"] = SCHEMA_VERSION
        document["key"] = key
        payload = json.dumps(document, sort_keys=True, indent=1)
        payload = faults.mangle("store_put", _fault_point(key), payload)
        temp = None
        try:
            faults.check("store_put", _fault_point(key))
            self.directory.mkdir(parents=True, exist_ok=True)
            # Suffix must not be ".json": in-flight temp files would match
            # the "*.json" globs in __len__/records()/clear().
            fd, temp = tempfile.mkstemp(
                dir=self.directory, prefix=".inflight-", suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, self._path(key))
            return True
        except OSError as exc:
            warnings.warn(
                f"result store write failed ({exc}); continuing without "
                f"persistence for this evaluation",
                StoreDegradedWarning,
                stacklevel=2,
            )
            return False
        finally:
            if temp is not None and os.path.exists(temp):
                try:
                    os.unlink(temp)
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # Leases

    def _write_lease(self, path: Path, exclusive: bool) -> bool:
        payload = canonical_json(
            {"owner": self.owner, "pid": os.getpid(), "claimed": time.time()}
        )
        try:
            if exclusive:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(payload)
            else:
                # Reclaim path: atomically replace, then read back — of
                # several racing reclaimers only the last writer sees its
                # own token and proceeds.
                fd, temp = tempfile.mkstemp(
                    dir=self.directory, prefix=".inflight-", suffix=".tmp"
                )
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                os.replace(temp, path)
                time.sleep(0)  # let racing replacers land
                return self.lease_owner(path) == self.owner
            return True
        except FileExistsError:
            return False
        except OSError as exc:
            warnings.warn(
                f"lease write failed ({exc}); proceeding without a claim",
                StoreDegradedWarning,
                stacklevel=3,
            )
            return True  # fail open: correctness never depends on leases

    def lease_owner(self, key_or_path) -> Optional[str]:
        """Owner token of the live lease for ``key``, or None."""
        path = (
            key_or_path
            if isinstance(key_or_path, Path)
            else self._lease_path(key_or_path)
        )
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lease = json.load(handle)
            return lease.get("owner") if isinstance(lease, dict) else None
        except (OSError, json.JSONDecodeError):
            return None

    def _lease_stale(self, path: Path) -> bool:
        try:
            return (time.time() - path.stat().st_mtime) > self.lease_ttl
        except OSError:
            return False

    def claim(self, key: Dict) -> bool:
        """Try to take the lease on ``key``; True when this store owns it.

        A missing lease is claimed atomically; a stale one (mtime older
        than ``lease_ttl``) is reclaimed; a live one held by someone
        else — or already by us — yields False/True respectively without
        touching the file.

        Outcomes count into ``repro_lease_claims_total{outcome=...}`` with
        ``claimed`` (fresh take), ``held`` (already ours), ``reclaimed``
        (stale lease replaced), or ``contested`` (someone else's).
        """
        outcome, owned = self._claim(key)
        _metrics.counter(
            "repro_lease_claims_total",
            help="lease claim attempts by outcome",
            outcome=outcome,
        ).inc()
        return owned

    def _claim(self, key: Dict) -> Tuple[str, bool]:
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            warnings.warn(
                f"lease directory unavailable ({exc}); proceeding unclaimed",
                StoreDegradedWarning,
                stacklevel=2,
            )
            return "degraded", True  # fail open
        path = self._lease_path(key)
        if self._write_lease(path, exclusive=True):
            return "claimed", True
        if self.lease_owner(path) == self.owner:
            return "held", True
        if self._lease_stale(path):
            if self._write_lease(path, exclusive=False):
                return "reclaimed", True
            return "contested", False
        return "contested", False

    def release(self, key: Dict) -> None:
        """Drop our lease on ``key`` (a lease we don't own is left alone)."""
        path = self._lease_path(key)
        if self.lease_owner(path) == self.owner:
            try:
                path.unlink()
            except OSError:
                pass

    def heartbeat(self, key: Dict) -> None:
        """Refresh our lease's mtime so it doesn't go stale mid-run."""
        path = self._lease_path(key)
        if self.lease_owner(path) == self.owner:
            try:
                os.utime(path)
            except OSError:
                pass

    def leases(self) -> Iterator[Tuple[str, Optional[str], float, bool]]:
        """Live lease files: ``(digest, owner, age_seconds, stale)`` rows.

        What ``repro cache stats`` reports and a draining server logs —
        a lease outliving its owner shows up here until a peer reclaims
        it or ``fsck --remove`` sweeps it.
        """
        if not self.directory.is_dir():
            return
        now = time.time()
        for path in sorted(self.directory.glob("*.lease")):
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue  # released between glob and stat
            yield path.stem, self.lease_owner(path), age, age > self.lease_ttl

    @contextmanager
    def hold(self, key: Dict):
        """Context-managed claim; raises :class:`LeaseHeld` if contested."""
        if not self.claim(key):
            raise LeaseHeld(
                f"lease on {key_digest(key)[:12]}… held by another evaluator",
                owner=self.lease_owner(key),
            )
        try:
            yield
        finally:
            self.release(key)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Valid (current-schema) records on disk — same gate as ``get``."""
        return sum(1 for _ in self.records())

    def records(self) -> Iterator[Dict]:
        """All valid records (corrupt and stale-schema files skipped)."""
        if not self.directory.is_dir():
            return
        for path in sorted(self.directory.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    record = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            if self._valid(record):
                yield record

    def fsck(self, remove: bool = False) -> FsckReport:
        """Audit the store; optionally remove everything unhealthy.

        Classifies each ``*.json`` entry as ok / ``corrupt`` (unreadable
        or not a record) / ``stale_schema`` / ``foreign`` (filename does
        not match the content address of the embedded key — a renamed or
        tampered file), and each ``*.lease`` as live or stale. With
        ``remove=True`` the unhealthy entries and stale leases are
        deleted.
        """
        report = FsckReport()
        if not self.directory.is_dir():
            return report
        for path in sorted(self.directory.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    record = json.load(handle)
            except (OSError, json.JSONDecodeError):
                report.corrupt.append(path.name)
                continue
            if not isinstance(record, dict):
                report.corrupt.append(path.name)
            elif record.get("schema") != SCHEMA_VERSION:
                report.stale_schema.append(path.name)
            elif (
                not isinstance(record.get("key"), dict)
                or key_digest(record["key"]) != path.stem
            ):
                report.foreign.append(path.name)
            else:
                report.ok += 1
        for path in sorted(self.directory.glob("*.lease")):
            if self._lease_stale(path):
                report.stale_leases.append(path.name)
        if remove:
            doomed = (
                report.corrupt
                + report.stale_schema
                + report.foreign
                + report.stale_leases
            )
            for name in doomed:
                try:
                    (self.directory / name).unlink()
                    report.removed += 1
                except OSError:
                    pass
        return report

    def clear(self) -> int:
        """Delete every stored evaluation; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in self.directory.glob("*.lease"):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed
