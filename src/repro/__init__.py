"""repro — a reproduction of "Running a Quantum Circuit at the Speed of Data".

Isailovic, Whitney, Patel and Kubiatowicz, ISCA 2008 (arXiv:0804.4725).

The library models fault-tolerant quantum computation on trapped-ion
hardware at the microarchitecture level: encoded-ancilla preparation for
the [[7,1,3]] Steane code, Monte Carlo error grading, ion-trap macroblock
layouts, pipelined ancilla factories, benchmark kernels (ripple-carry and
carry-lookahead adders, QFT), and event-based simulation of the QLA, CQLA
and fully-multiplexed (Qalypso) microarchitectures.

Quickstart::

    import repro

    factory = repro.PipelinedZeroFactory()
    print(factory.throughput_per_ms, factory.area)      # 10.5 anc/ms, 298

    kernel = repro.analyze_kernel("qcla", width=32)
    print(kernel.zero_bandwidth_per_ms)                  # ~240-300 anc/ms

    print(repro.run_experiment("table9"))                # chip area split

See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
vs paper numbers on every reproduced table and figure.
"""

from repro.ancilla import (
    PrepStrategy,
    RotationSynthesizer,
    evaluate_strategies,
    evaluate_strategy,
    pi8_ancilla_circuit,
)
from repro.arch import (
    ArchitectureKind,
    DataflowSimulator,
    area_breakdown,
    area_sweep,
    throughput_sweep,
)
from repro.circuits import Circuit, GateType, critical_path
from repro.codes import STEANE, CssCode, steane_zero_prep_circuit
from repro.error import MonteCarloSimulator, PauliFrame
from repro.factory import Pi8Factory, PipelinedZeroFactory, SimpleZeroFactory
from repro.kernels import (
    analyze_kernel,
    decompose_to_encoded_gates,
    qcla_circuit,
    qft_circuit,
    qrca_circuit,
    standard_kernels,
)
from repro.reporting import run_experiment
from repro.tech import ION_TRAP, ErrorRates, TechnologyParams

__version__ = "1.0.0"

__all__ = [
    "ArchitectureKind",
    "Circuit",
    "CssCode",
    "DataflowSimulator",
    "ErrorRates",
    "GateType",
    "ION_TRAP",
    "MonteCarloSimulator",
    "PauliFrame",
    "Pi8Factory",
    "PipelinedZeroFactory",
    "PrepStrategy",
    "RotationSynthesizer",
    "STEANE",
    "SimpleZeroFactory",
    "TechnologyParams",
    "analyze_kernel",
    "area_breakdown",
    "area_sweep",
    "critical_path",
    "decompose_to_encoded_gates",
    "evaluate_strategies",
    "evaluate_strategy",
    "pi8_ancilla_circuit",
    "qcla_circuit",
    "qft_circuit",
    "qrca_circuit",
    "run_experiment",
    "standard_kernels",
    "steane_zero_prep_circuit",
    "throughput_sweep",
]
