"""Metrics registry: counters, gauges and fixed-bucket histograms.

One process-wide :class:`Registry` (:data:`REGISTRY`) collects every
metric the instrumented stack emits — evaluator health counters, store
hit/miss and latency accounting, per-phase timing histograms fed by the
tracer (:mod:`repro.obs.trace`). Two export formats:

* :meth:`Registry.snapshot` — a plain JSON-able dict, for programmatic
  consumption and the ``repro explore --metrics out.json`` path;
* :meth:`Registry.prometheus` — the Prometheus text exposition format
  (``# TYPE`` headers, cumulative ``_bucket{le=...}`` histogram rows),
  so a future ``repro serve`` can expose ``/metrics`` directly and
  one-shot runs can be diffed with standard tooling.

Design constraints, in order:

* **Free when idle.** Creating a metric is a dict lookup under a lock;
  incrementing is one lock acquisition and an add. Nothing here is ever
  called from a per-gate loop — instrumentation sits at phase and batch
  boundaries — so the registry never needs to be lock-free.
* **Deterministic export.** Samples are ordered by (name, labels), and
  histogram bucket edges are fixed at creation, so two identical runs
  produce byte-identical Prometheus text (timestamps excluded).
* **Label-safe.** Metrics are keyed by ``(name, sorted label items)``;
  the same name must keep one metric type for its lifetime (a name
  registered as a counter cannot come back as a histogram).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "prometheus",
    "PHASE_SECONDS",
    "PHASE_SECONDS_EDGES",
    "LATENCY_SECONDS_EDGES",
    "REQUEST_SECONDS_EDGES",
]

#: Histogram of span durations, labeled ``phase=<span name>``; fed by the
#: tracer on every span close (and by spool merges for worker spans).
PHASE_SECONDS = "repro_phase_seconds"

#: Bucket edges for phase timing: 10 µs up to one minute. Spans cover
#: everything from a single compiled-engine run (~100 µs) to a whole
#: Monte Carlo driver (seconds), so the edges are log-spaced.
PHASE_SECONDS_EDGES: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0
)

#: Bucket edges for store / lease I/O latencies (µs to seconds).
LATENCY_SECONDS_EDGES: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0
)

#: Bucket edges for exploration-service request latencies: a cache-hit
#: batch answers in milliseconds, a cold sweep batch can take minutes.
REQUEST_SECONDS_EDGES: Tuple[float, ...] = (
    1e-3, 5e-3, 0.025, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0
)

_LabelKey = Tuple[Tuple[str, str], ...]


class Counter:
    """Monotonically increasing value.

    Thread-safe; negative increments are rejected (use a :class:`Gauge`
    for values that go down).
    """

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can be set to anything at any time."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    ``edges`` are the finite upper bounds, ascending; an implicit
    ``+Inf`` bucket catches the overflow. An observation ``v`` lands in
    the first bucket whose edge satisfies ``v <= edge`` — exactly the
    boundary rule Prometheus documents, so exported cumulative counts
    match what a promQL ``histogram_quantile`` expects.
    """

    __slots__ = ("edges", "_lock", "_counts", "_sum", "_count")

    def __init__(self, edges: Sequence[float]) -> None:
        cleaned = tuple(float(e) for e in edges)
        if not cleaned:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(cleaned, cleaned[1:])):
            raise ValueError(f"bucket edges must be strictly ascending: {edges}")
        if any(math.isinf(e) or math.isnan(e) for e in cleaned):
            raise ValueError("+Inf bucket is implicit; edges must be finite")
        self.edges = cleaned
        self._lock = threading.Lock()
        self._counts = [0] * (len(cleaned) + 1)  # trailing +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self.edges, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts; last entry is ``+Inf``."""
        with self._lock:
            return list(self._counts)

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(le, cumulative count)`` pairs, ending with ``(inf, count)``."""
        out: List[Tuple[float, int]] = []
        running = 0
        with self._lock:
            for edge, n in zip(self.edges, self._counts):
                running += n
                out.append((edge, running))
            out.append((math.inf, running + self._counts[-1]))
        return out


def _label_key(labels: Dict[str, object]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: _LabelKey, extra: Iterable[Tuple[str, str]] = ()) -> str:
    items = list(key) + list(extra)
    if not items:
        return ""
    body = ",".join(
        f'{name}="{_escape(value)}"' for name, value in items
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Registry:
    """Get-or-create metric store keyed by ``(name, labels)``.

    All accessors are thread-safe and idempotent: asking twice for the
    same (name, labels, type) returns the same object; asking for an
    existing name with a different metric type raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, _LabelKey], object] = {}
        self._types: Dict[str, str] = {}
        self._help: Dict[str, str] = {}

    # ------------------------------------------------------------------

    def _get(self, kind: str, name: str, labels: Dict[str, object],
             factory, help: str):
        key = (name, _label_key(labels))
        with self._lock:
            registered = self._types.get(name)
            if registered is not None and registered != kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a "
                    f"{registered}, not a {kind}"
                )
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
                self._types[name] = kind
                if help and name not in self._help:
                    self._help[name] = help
            return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        """The counter ``name`` with ``labels``, created on first use."""
        return self._get("counter", name, labels, Counter, help)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        """The gauge ``name`` with ``labels``, created on first use."""
        return self._get("gauge", name, labels, Gauge, help)

    def histogram(
        self,
        name: str,
        edges: Optional[Sequence[float]] = None,
        help: str = "",
        **labels,
    ) -> Histogram:
        """The histogram ``name`` with ``labels``, created on first use.

        ``edges`` applies only at creation (defaults to
        :data:`PHASE_SECONDS_EDGES`); later calls may omit it.
        """
        chosen = tuple(edges) if edges is not None else PHASE_SECONDS_EDGES
        return self._get(
            "histogram", name, labels, lambda: Histogram(chosen), help
        )

    # ------------------------------------------------------------------

    def _sorted_items(self):
        with self._lock:
            items = sorted(self._metrics.items())
            types = dict(self._types)
            helps = dict(self._help)
        return items, types, helps

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-able view: ``{name: {type, help, samples: [...]}}``.

        Counter/gauge samples carry ``value``; histogram samples carry
        ``buckets`` (``[le, count]`` non-cumulative pairs with a final
        ``["+Inf", n]``), ``sum`` and ``count``.
        """
        items, types, helps = self._sorted_items()
        out: Dict[str, Dict] = {}
        for (name, key), metric in items:
            entry = out.setdefault(
                name,
                {"type": types[name], "help": helps.get(name, ""), "samples": []},
            )
            labels = dict(key)
            if isinstance(metric, Histogram):
                buckets = [
                    [edge, n]
                    for edge, n in zip(metric.edges, metric.bucket_counts())
                ]
                buckets.append(["+Inf", metric.bucket_counts()[-1]])
                entry["samples"].append(
                    {
                        "labels": labels,
                        "buckets": buckets,
                        "sum": metric.sum,
                        "count": metric.count,
                    }
                )
            else:
                entry["samples"].append({"labels": labels, "value": metric.value})
        return out

    def prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        items, types, helps = self._sorted_items()
        lines: List[str] = []
        seen_header = set()
        for (name, key), metric in items:
            if name not in seen_header:
                seen_header.add(name)
                if helps.get(name):
                    lines.append(f"# HELP {name} {helps[name]}")
                lines.append(f"# TYPE {name} {types[name]}")
            if isinstance(metric, Histogram):
                for le, cumulative in metric.cumulative():
                    labels = _format_labels(
                        key, [("le", _format_value(le))]
                    )
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                labels = _format_labels(key)
                lines.append(f"{name}_sum{labels} {_format_value(metric.sum)}")
                lines.append(f"{name}_count{labels} {metric.count}")
            else:
                labels = _format_labels(key)
                lines.append(f"{name}{labels} {_format_value(metric.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every metric (tests; never called by production code)."""
        with self._lock:
            self._metrics.clear()
            self._types.clear()
            self._help.clear()


#: The process-wide registry every instrumented module reports into.
REGISTRY = Registry()


def counter(name: str, help: str = "", **labels) -> Counter:
    """``REGISTRY.counter`` — the default registry's counter ``name``."""
    return REGISTRY.counter(name, help, **labels)


def gauge(name: str, help: str = "", **labels) -> Gauge:
    """``REGISTRY.gauge`` — the default registry's gauge ``name``."""
    return REGISTRY.gauge(name, help, **labels)


def histogram(
    name: str, edges: Optional[Sequence[float]] = None, help: str = "", **labels
) -> Histogram:
    """``REGISTRY.histogram`` — the default registry's histogram ``name``."""
    return REGISTRY.histogram(name, edges, help, **labels)


def snapshot() -> Dict[str, Dict]:
    """``REGISTRY.snapshot()`` — JSON view of the default registry."""
    return REGISTRY.snapshot()


def prometheus() -> str:
    """``REGISTRY.prometheus()`` — Prometheus text of the default registry."""
    return REGISTRY.prometheus()


def observe_phase(name: str, seconds: float,
                  registry: Optional[Registry] = None) -> None:
    """Record one span duration into the per-phase timing histogram."""
    target = registry if registry is not None else REGISTRY
    target.histogram(
        PHASE_SECONDS,
        PHASE_SECONDS_EDGES,
        help="span durations by phase (seconds)",
        phase=name,
    ).observe(seconds)
