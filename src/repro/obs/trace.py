"""Span tracer with JSONL / Chrome trace-event export and worker spools.

The tracer answers "where did this run spend its time?" at *phase*
granularity: lowering a circuit, walking dataflow levels, building a
ready matrix, executing protocol frames, waiting on a lease. It is
**off by default** and free when off:

* the module global :data:`TRACER` is ``None`` when disabled;
* :func:`span` checks it for truthiness and returns the shared no-op
  :data:`_NULL_SPAN` singleton — no allocation, no clock read;
* instrumentation sits at phase boundaries, never inside per-gate or
  per-trial loops, so even the enabled cost is a handful of clock reads
  per simulation.

Timestamps use **both** clocks deliberately: durations come from
``time.perf_counter()`` (monotonic, high resolution), while the event
timestamp is ``time.time()`` in microseconds, so events recorded in
different processes (pool workers) land on one comparable timeline
when merged. Chrome/Perfetto export rebases all timestamps to the
earliest event.

Cross-process story: the parent exports :data:`SPOOL_ENV` before
building its ``ProcessPoolExecutor``; the pool initializer calls
:func:`worker_init_from_env`, which creates a **fresh** tracer in the
child (a forked child inherits the parent's tracer object — reusing it
would double-count parent events), spooling to
``<spool_dir>/worker-<pid>.jsonl``. Workers append completed events
after every chunk via :func:`flush_worker`; the parent folds the spool
files back into its own event list with :meth:`Tracer.merge_spool`.

Typical use::

    from repro import obs

    obs.enable(spool_dir=".trace-spool")   # parent, before pool creation
    with obs.span("simulate.level_walk", gates=1234):
        ...
    obs.TRACER.merge_spool()               # after pool work completes
    obs.TRACER.export_chrome("trace.json") # open in https://ui.perfetto.dev
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs import metrics as _metrics

__all__ = [
    "Span",
    "Tracer",
    "TRACER",
    "SPOOL_ENV",
    "span",
    "enable",
    "disable",
    "enabled",
    "worker_init_from_env",
    "flush_worker",
]

#: Environment variable carrying the spool directory from the parent to
#: pool workers. Set by :func:`enable` / the evaluator's pool builder.
SPOOL_ENV = "REPRO_OBS_SPOOL"


class Span:
    """One timed region. Use as a context manager via :func:`span`.

    Closing a span appends a Chrome-style complete event (``"ph": "X"``)
    to its tracer and records the duration into the
    ``repro_phase_seconds`` histogram (labeled ``phase=<name>``).
    """

    __slots__ = ("tracer", "name", "args", "_t0", "_wall_us")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, object]):
        self.tracer = tracer
        self.name = name
        self.args = args
        self._t0 = 0.0
        self._wall_us = 0.0

    def __enter__(self) -> "Span":
        self._wall_us = time.time() * 1e6
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._t0
        self.tracer._record(self.name, self._wall_us, duration, self.args)

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (e.g. result counts)."""
        self.args.update(attrs)


class _NullSpan:
    """Shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects completed span events for one process.

    Thread-safe: spans may open and close concurrently from any thread;
    each completed event records its thread id, so per-thread lanes
    render separately in Perfetto.
    """

    def __init__(self, spool_dir: Optional[str] = None,
                 worker: bool = False) -> None:
        self._lock = threading.Lock()
        self._events: List[Dict] = []
        self.pid = os.getpid()
        self.worker = worker
        self.spool_dir = Path(spool_dir) if spool_dir else None
        if self.spool_dir is not None:
            self.spool_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        """Open a span named ``name`` with optional attributes."""
        return Span(self, name, attrs)

    def _record(self, name: str, wall_us: float, duration_s: float,
                args: Dict[str, object]) -> None:
        event = {
            "name": name,
            "ph": "X",
            "ts": wall_us,
            "dur": duration_s * 1e6,
            "pid": self.pid,
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = dict(args)
        with self._lock:
            self._events.append(event)
        _metrics.observe_phase(name, duration_s)

    def events(self) -> List[Dict]:
        """A copy of every recorded (and merged) event."""
        with self._lock:
            return list(self._events)

    # ------------------------------------------------------------------
    # Worker spool

    def flush_spool(self) -> Optional[Path]:
        """Append this process's pending events to its spool file.

        Returns the spool path, or ``None`` when no spool directory is
        configured. Called by pool workers after each chunk; events are
        drained so repeated flushes never duplicate.
        """
        if self.spool_dir is None:
            return None
        with self._lock:
            pending, self._events = self._events, []
        path = self.spool_dir / f"worker-{self.pid}.jsonl"
        if pending:
            with open(path, "a", encoding="utf-8") as fh:
                for event in pending:
                    fh.write(json.dumps(event) + "\n")
        return path

    def merge_spool(self, spool_dir: Optional[str] = None) -> int:
        """Fold worker spool files into this tracer's event list.

        Events merge in timestamp order and are tagged with a
        ``worker`` arg (their source file stem). Worker span durations
        are also fed into the ``repro_phase_seconds`` histogram here —
        workers cannot update the parent's in-memory registry, so the
        merge is where their timings join the parent's metrics. Corrupt
        lines (a worker killed mid-write) are skipped, not fatal.
        Spool files are consumed (deleted) once read, so calling twice
        never duplicates events. Returns the number of events merged.
        """
        root = Path(spool_dir) if spool_dir else self.spool_dir
        if root is None or not root.exists():
            return 0
        merged: List[Dict] = []
        for path in sorted(root.glob("worker-*.jsonl")):
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            try:
                path.unlink()
            except OSError:
                pass
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue  # torn write from a crashed worker
                if not isinstance(event, dict) or "name" not in event:
                    continue
                event.setdefault("args", {})["worker"] = path.stem
                merged.append(event)
        merged.sort(key=lambda e: e.get("ts", 0.0))
        for event in merged:
            _metrics.observe_phase(event["name"], event.get("dur", 0.0) / 1e6)
        with self._lock:
            self._events.extend(merged)
            self._events.sort(key=lambda e: e.get("ts", 0.0))
        return len(merged)

    # ------------------------------------------------------------------
    # Export

    def export_jsonl(self, path) -> Path:
        """Write one JSON event per line (raw, unrebased timestamps)."""
        path = Path(path)
        with open(path, "w", encoding="utf-8") as fh:
            for event in self.events():
                fh.write(json.dumps(event) + "\n")
        return path

    def export_chrome(self, path) -> Path:
        """Write Chrome trace-event JSON (open in ``ui.perfetto.dev``).

        Timestamps are rebased so the earliest event starts at 0, and
        each pid gets a ``process_name`` metadata event ("repro" for
        the parent, "repro worker <pid>" for pool workers).
        """
        events = self.events()
        base = min((e.get("ts", 0.0) for e in events), default=0.0)
        trace_events: List[Dict] = []
        pids = []
        for event in events:
            pid = event.get("pid", self.pid)
            if pid not in pids:
                pids.append(pid)
            out = dict(event)
            out["ts"] = event.get("ts", 0.0) - base
            trace_events.append(out)
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {
                    "name": "repro" if pid == self.pid
                    else f"repro worker {pid}"
                },
            }
            for pid in pids
        ]
        doc = {
            "traceEvents": metadata + trace_events,
            "displayTimeUnit": "ms",
        }
        path = Path(path)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        return path


#: The active tracer, or ``None`` when tracing is disabled. Hot paths
#: read this global once per phase; when it is ``None`` the only cost
#: is the truthiness check.
TRACER: Optional[Tracer] = None


def span(name: str, **attrs):
    """A span on the active tracer, or the shared no-op when disabled.

    The fast path — tracing off — is one global read and a truthiness
    check; no object is created.
    """
    tracer = TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def enabled() -> bool:
    """Whether a tracer is currently active in this process."""
    return TRACER is not None


def enable(spool_dir: Optional[str] = None) -> Tracer:
    """Turn tracing on; returns the (new) active tracer.

    ``spool_dir`` arms cross-process aggregation: it is exported via
    :data:`SPOOL_ENV` so pool workers created afterwards spool their
    events there for :meth:`Tracer.merge_spool`.
    """
    global TRACER
    TRACER = Tracer(spool_dir=spool_dir)
    if spool_dir is not None:
        os.environ[SPOOL_ENV] = str(spool_dir)
    return TRACER


def disable() -> None:
    """Turn tracing off and clear the spool environment hand-off."""
    global TRACER
    TRACER = None
    os.environ.pop(SPOOL_ENV, None)


def worker_init_from_env() -> Optional[Tracer]:
    """Pool-worker side of the spool hand-off.

    Called first thing in every ``ProcessPoolExecutor`` initializer. If
    the parent exported :data:`SPOOL_ENV`, install a **fresh** tracer
    spooling there (a forked worker inherits the parent's tracer object,
    which must not be reused: its buffered parent events would be
    re-emitted from the worker). Otherwise make sure tracing is off.
    """
    global TRACER
    spool = os.environ.get(SPOOL_ENV)
    if spool:
        TRACER = Tracer(spool_dir=spool, worker=True)
    else:
        TRACER = None
    return TRACER


def flush_worker() -> None:
    """Flush the worker tracer's spool, if one is active."""
    tracer = TRACER
    if tracer is not None and tracer.worker:
        tracer.flush_spool()
