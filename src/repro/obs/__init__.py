"""repro.obs — tracing, metrics, and profiling for the whole stack.

Three pieces, designed to cost nothing when idle:

* **Tracer** (:mod:`repro.obs.trace`): span-based phase timing with
  JSONL and Chrome trace-event / Perfetto export. Off by default;
  ``obs.span(...)`` is a single global truthiness check when disabled.
  Pool workers spool events to per-worker files that the parent merges
  into one cross-process timeline.
* **Metrics** (:mod:`repro.obs.metrics`): a process-wide registry of
  counters, gauges and fixed-bucket histograms with JSON-snapshot and
  Prometheus text export. Span durations feed the
  ``repro_phase_seconds`` histogram automatically.
* **Report** (:mod:`repro.obs.report`): per-phase breakdown tables,
  backing the ``repro profile`` subcommand.

Quick start::

    from repro import obs

    obs.enable(spool_dir=".trace-spool")       # tracing on
    ...run work...
    obs.TRACER.merge_spool()                   # fold in worker events
    obs.TRACER.export_chrome("trace.json")     # -> ui.perfetto.dev
    print(obs.prometheus())                    # metrics text
    print(obs.format_phase_table(obs.TRACER.events()))

See the README "Observability" section for the metric name glossary.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_SECONDS_EDGES,
    PHASE_SECONDS,
    PHASE_SECONDS_EDGES,
    REGISTRY,
    REQUEST_SECONDS_EDGES,
    Registry,
    counter,
    gauge,
    histogram,
    prometheus,
    snapshot,
)
from repro.obs.report import PhaseStat, format_phase_table, phase_breakdown
from repro.obs.trace import (
    SPOOL_ENV,
    Span,
    Tracer,
    disable,
    enable,
    enabled,
    flush_worker,
    span,
    worker_init_from_env,
)


def tracer():
    """The active :class:`Tracer`, or ``None`` when tracing is off.

    Prefer this over importing ``TRACER`` directly: the module global
    is rebound by :func:`enable`/:func:`disable`, so a ``from``-import
    would go stale.
    """
    from repro.obs import trace as _trace

    return _trace.TRACER


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "prometheus",
    "PHASE_SECONDS",
    "PHASE_SECONDS_EDGES",
    "LATENCY_SECONDS_EDGES",
    "REQUEST_SECONDS_EDGES",
    "Span",
    "Tracer",
    "SPOOL_ENV",
    "span",
    "enable",
    "disable",
    "enabled",
    "tracer",
    "worker_init_from_env",
    "flush_worker",
    "PhaseStat",
    "phase_breakdown",
    "format_phase_table",
]
