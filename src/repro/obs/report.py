"""Per-phase time breakdown from recorded trace events.

Turns a tracer's event list into the table ``repro profile`` prints:
one row per span name with call count, total/mean/max time and the
share of the profiled wall window. Works on live :class:`Tracer`
events or on events re-read from a JSONL export.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

__all__ = ["PhaseStat", "phase_breakdown", "format_phase_table"]


class PhaseStat:
    """Aggregated timing for one span name."""

    __slots__ = ("name", "count", "total_s", "max_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


def phase_breakdown(events: Iterable[Dict]) -> List[PhaseStat]:
    """Aggregate trace events into per-phase stats, biggest total first.

    ``events`` are tracer events (dicts with ``name`` and ``dur`` in
    microseconds); anything without a duration is skipped.
    """
    stats: Dict[str, PhaseStat] = {}
    for event in events:
        name = event.get("name")
        dur = event.get("dur")
        if not name or dur is None:
            continue
        seconds = dur / 1e6
        stat = stats.get(name)
        if stat is None:
            stat = stats[name] = PhaseStat(name)
        stat.count += 1
        stat.total_s += seconds
        if seconds > stat.max_s:
            stat.max_s = seconds
    return sorted(stats.values(), key=lambda s: -s.total_s)


def format_phase_table(events: Iterable[Dict], title: str = "",
                       wall_s: Optional[float] = None) -> str:
    """Render the per-phase breakdown as an aligned table.

    The ``%`` column is each phase's share of ``wall_s`` when given,
    otherwise of the sum of all span time. Spans nest, so shares need
    not sum to 100.
    """
    # Imported here, not at module top: repro.reporting pulls in the
    # experiment modules, which import the instrumented engines, which
    # import repro.obs — a top-level import would be circular.
    from repro.reporting.tables import format_table

    stats = phase_breakdown(events)
    if not stats:
        return "no spans recorded"
    denom = wall_s if wall_s else sum(s.total_s for s in stats)
    rows = [
        [
            s.name,
            s.count,
            f"{s.total_s * 1e3:.2f}",
            f"{s.mean_s * 1e3:.3f}",
            f"{s.max_s * 1e3:.3f}",
            f"{100.0 * s.total_s / denom:.1f}" if denom else "-",
        ]
        for s in stats
    ]
    return format_table(
        ["phase", "calls", "total ms", "mean ms", "max ms", "%"],
        rows,
        title=title,
    )
