"""Circuit-level constructions of the Figure 4 zero-prep strategies.

Four strategies for producing a high-fidelity encoded |0> in the [[7,1,3]]
code:

* **basic** — the bare encoder of Figure 3b;
* **verify-only** (Figure 4a) — encode, then verify against a 3-qubit cat
  state and discard on failure;
* **correct-only** (Figure 4b) — three bare encodings; the middle block is
  bit-corrected by the first and phase-corrected by the third;
* **verify-and-correct** (Figure 4c) — three *verified* encodings feeding
  the same correction step.

These constructions give the full physical circuits (for structure, gate
counting and layout); the Monte Carlo grading of each strategy lives in
:mod:`repro.ancilla.evaluation`, which replays the same structure while
making the classical accept/decode decisions in Python.

Conditional corrections appear here as transversal X/Z layers tagged
``"conditional-correction"``: the decode that decides *which* qubit to flip
is classical and not expressible gate-by-gate, but the latency and location
cost is one transversal layer either way.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.circuits import Circuit
from repro.circuits.gate import Gate, GateType
from repro.codes.steane import steane_zero_prep_circuit

#: Weight-3 representative of logical Z used for verification: the support
#: of (Z^x7) times the stabilizer 1010101, i.e. qubits {1, 3, 5}.
VERIFY_SUPPORT: Tuple[int, int, int] = (1, 3, 5)

#: Number of verification (cat) qubits per verified block.
CAT_WIDTH = 3


def basic_zero_circuit() -> Circuit:
    """The Basic Encoded Zero Ancilla Prepare (Figure 3b)."""
    return steane_zero_prep_circuit(include_prep=True)


def _append_verification(circ: Circuit, block: Sequence[int], cats: Sequence[int],
                         label: str) -> None:
    """Cat-prep plus transversal parity check of logical Z on ``block``.

    Data qubits control CXs onto the cat qubits so X errors on the verify
    support copy onto the cat; the cat is then measured and the parity of
    outcomes accepts or rejects the block.
    """
    if len(cats) != CAT_WIDTH:
        raise ValueError(f"verification needs {CAT_WIDTH} cat qubits, got {len(cats)}")
    for q in cats:
        circ.prep_0(q)
    circ.h(cats[0])
    circ.cx(cats[0], cats[1])
    circ.cx(cats[1], cats[2])
    for data_q, cat_q in zip((block[i] for i in VERIFY_SUPPORT), cats):
        circ.cx(data_q, cat_q)
    for i, cat_q in enumerate(cats):
        circ.measure_z(cat_q, f"{label}_v{i}")


def verify_only_circuit() -> Circuit:
    """Figure 4a: basic encode plus one cat-state verification.

    Qubits 0-6 are the encoded block; 7-9 are the cat.
    """
    circ = Circuit(7 + CAT_WIDTH, name="verify_only")
    circ.compose(basic_zero_circuit(), qubit_map=range(7))
    _append_verification(circ, range(7), (7, 8, 9), label="blk")
    return circ


def _append_bit_correction(circ: Circuit, target: Sequence[int],
                           helper: Sequence[int], label: str) -> None:
    """Bit-correct ``target`` using encoded-zero ``helper`` (consumed).

    Transversal CX (target block controls) copies the target's X errors onto
    the helper; measuring the helper in the Z basis yields a codeword whose
    Hamming syndrome locates the X error; a conditional transversal X layer
    repairs the target.
    """
    for tq, hq in zip(target, helper):
        circ.cx(tq, hq)
    for i, hq in enumerate(helper):
        circ.measure_z(hq, f"{label}_m{i}")
    for tq in target:
        circ.append(Gate(GateType.X, (tq,), tag="conditional-correction"))


def _append_phase_correction(circ: Circuit, target: Sequence[int],
                             helper: Sequence[int], label: str) -> None:
    """Phase-correct ``target`` using encoded-zero ``helper`` (consumed).

    Transversal CX with the helper controlling copies the target's Z errors
    onto the helper; measuring the helper in the X basis yields the phase
    syndrome; a conditional transversal Z layer repairs the target.
    """
    for tq, hq in zip(target, helper):
        circ.cx(hq, tq)
    for i, hq in enumerate(helper):
        circ.measure_x(hq, f"{label}_m{i}")
    for tq in target:
        circ.append(Gate(GateType.Z, (tq,), tag="conditional-correction"))


def correct_only_circuit() -> Circuit:
    """Figure 4b: three bare encodings; middle bit- then phase-corrected.

    Qubits 0-6 are the bit-correction helper (top block of the figure),
    7-13 the output block, 14-20 the phase-correction helper.
    """
    circ = Circuit(21, name="correct_only")
    top = list(range(0, 7))
    mid = list(range(7, 14))
    bottom = list(range(14, 21))
    for block in (top, mid, bottom):
        circ.compose(basic_zero_circuit(), qubit_map=block)
    _append_bit_correction(circ, mid, top, label="bit")
    _append_phase_correction(circ, mid, bottom, label="phase")
    return circ


def verify_and_correct_circuit() -> Circuit:
    """Figure 4c: three verified encodings; middle bit- then phase-corrected.

    Layout: qubits 0-6 / 7-13 / 14-20 are the three encoded blocks
    (helper, output, helper) and 21-23 / 24-26 / 27-29 their cat qubits.
    """
    circ = Circuit(30, name="verify_and_correct")
    blocks = [list(range(0, 7)), list(range(7, 14)), list(range(14, 21))]
    cats = [(21, 22, 23), (24, 25, 26), (27, 28, 29)]
    for i, (block, cat) in enumerate(zip(blocks, cats)):
        circ.compose(basic_zero_circuit(), qubit_map=block)
        _append_verification(circ, block, cat, label=f"b{i}")
    _append_bit_correction(circ, blocks[1], blocks[0], label="bit")
    _append_phase_correction(circ, blocks[1], blocks[2], label="phase")
    return circ
