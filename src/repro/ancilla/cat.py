"""Cat-state preparation circuits.

A k-qubit cat state (|0...0> + |1...1>)/sqrt(2) is used to measure weight-k
operators fault-tolerantly: verification of encoded zeros uses 3-qubit cats
(Figure 4), and the pi/8 ancilla prepare uses a 7-qubit cat (Figure 5b).

The preparation is a Hadamard on the head qubit followed by a CX chain. The
paper's Cat Prep functional unit performs "two CX's in succession" for the
3-qubit case (Table 5), matching the chain construction here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.circuits import Circuit
from repro.tech import ErrorRates


def cat_prep_circuit(num_qubits: int, include_prep: bool = True) -> Circuit:
    """Chain-style cat state preparation on ``num_qubits`` qubits.

    Args:
        num_qubits: Cat width; must be at least 2.
        include_prep: Include physical |0> preparations (factories fed by a
            Zero Prep stage receive already-prepared qubits).
    """
    if num_qubits < 2:
        raise ValueError(f"a cat state needs at least 2 qubits, got {num_qubits}")
    circ = Circuit(num_qubits, name=f"cat{num_qubits}_prep")
    if include_prep:
        for q in range(num_qubits):
            circ.prep_0(q)
    circ.h(0)
    for q in range(num_qubits - 1):
        circ.cx(q, q + 1)
    return circ


def cat_prep_cx_count(num_qubits: int) -> int:
    """Number of CX gates in the chain preparation."""
    if num_qubits < 2:
        raise ValueError(f"a cat state needs at least 2 qubits, got {num_qubits}")
    return num_qubits - 1


# ----------------------------------------------------------------------
# Monte Carlo grading of cat-state preparation.
#
# A cat state drives a transversal check: each cat qubit touches one data
# qubit. A *single* X (bit-flip) residual therefore injects at most one
# correctable data error — harmless — while two or more X flips are a
# correlated error that defeats a distance-3 code. Z residuals flip the
# measured operator outcome when (and only when) their overall parity is
# odd, so odd-Z-parity outputs report the wrong syndrome. Both engines
# grade with exactly this rule, so their rates must agree statistically.


def _grade_cat_bad_counts(x_weight: np.ndarray, z_parity: np.ndarray) -> np.ndarray:
    """Bad mask from per-trial X weight and Z parity columns."""
    return (x_weight >= 2) | (z_parity == 1)


def evaluate_cat_prep(
    num_qubits: int,
    trials: int = 20000,
    seed: int = 0,
    errors: Optional[ErrorRates] = None,
):
    """Scalar Monte Carlo grading of the chain cat-state preparation.

    One trial prepares a ``num_qubits`` cat under stochastic gate and
    movement faults and grades the residual: bad when it carries two or
    more bit flips (correlated data corruption) or odd phase-flip parity
    (wrong measured outcome). Reference implementation for the batched
    driver; runs one trial at a time on the scalar Pauli-frame engine.
    """
    from repro.ancilla.evaluation import MOVES_PER_QUBIT_PER_GATE
    from repro.error.montecarlo import MonteCarloSimulator, TrialOutcome
    from repro.error.pauli import PauliFrame

    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    circuit = cat_prep_circuit(num_qubits, include_prep=True)
    sim = MonteCarloSimulator(errors=errors, seed=seed)

    def trial(s: MonteCarloSimulator) -> TrialOutcome:
        frame = PauliFrame(num_qubits)
        s.run_circuit(
            circuit,
            frame,
            moves_per_qubit_per_gate=MOVES_PER_QUBIT_PER_GATE,
        )
        x_weight = int(frame.x.sum())
        z_parity = int(frame.z.sum()) % 2
        if x_weight >= 2 or z_parity == 1:
            return TrialOutcome.BAD
        return TrialOutcome.GOOD

    return sim.estimate(trial, trials)


def evaluate_cat_prep_batched(
    num_qubits: int,
    trials: int = 200_000,
    seed: int = 0,
    errors: Optional[ErrorRates] = None,
):
    """Batched counterpart of :func:`evaluate_cat_prep`.

    Lowers the preparation circuit once and runs all trials as
    ``(trials, num_qubits)`` frame matrices on the general batched
    engine; grading is two column reductions. Statistically equivalent
    to the scalar driver (checked by the test suite), roughly 100x
    faster.
    """
    from repro.ancilla.evaluation import MOVES_PER_QUBIT_PER_GATE
    from repro.error.batched import BatchFrames, BatchedSimulator
    from repro.error.montecarlo import MonteCarloResult

    from repro.obs.trace import span as _span

    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    circuit = cat_prep_circuit(num_qubits, include_prep=True)
    sim = BatchedSimulator(errors=errors, seed=seed)
    total = MonteCarloResult()
    remaining = trials
    with _span("ancilla.cat_batched", trials=trials, qubits=num_qubits):
        while remaining > 0:
            batch = min(remaining, 200_000)
            frames = BatchFrames(batch, num_qubits)
            active = np.ones(batch, dtype=bool)
            sim.run_circuit(
                circuit,
                frames,
                active=active,
                moves_per_qubit_per_gate=MOVES_PER_QUBIT_PER_GATE,
            )
            x_weight = frames.x.sum(axis=1)
            z_parity = frames.z.sum(axis=1) % 2
            bad = _grade_cat_bad_counts(x_weight, z_parity)
            total = total.merge(
                MonteCarloResult(
                    trials=batch, good=int((~bad).sum()), bad=int(bad.sum())
                )
            )
            remaining -= batch
    return total
