"""Cat-state preparation circuits.

A k-qubit cat state (|0...0> + |1...1>)/sqrt(2) is used to measure weight-k
operators fault-tolerantly: verification of encoded zeros uses 3-qubit cats
(Figure 4), and the pi/8 ancilla prepare uses a 7-qubit cat (Figure 5b).

The preparation is a Hadamard on the head qubit followed by a CX chain. The
paper's Cat Prep functional unit performs "two CX's in succession" for the
3-qubit case (Table 5), matching the chain construction here.
"""

from __future__ import annotations

from repro.circuits import Circuit


def cat_prep_circuit(num_qubits: int, include_prep: bool = True) -> Circuit:
    """Chain-style cat state preparation on ``num_qubits`` qubits.

    Args:
        num_qubits: Cat width; must be at least 2.
        include_prep: Include physical |0> preparations (factories fed by a
            Zero Prep stage receive already-prepared qubits).
    """
    if num_qubits < 2:
        raise ValueError(f"a cat state needs at least 2 qubits, got {num_qubits}")
    circ = Circuit(num_qubits, name=f"cat{num_qubits}_prep")
    if include_prep:
        for q in range(num_qubits):
            circ.prep_0(q)
    circ.h(0)
    for q in range(num_qubits - 1):
        circ.cx(q, q + 1)
    return circ


def cat_prep_cx_count(num_qubits: int) -> int:
    """Number of CX gates in the chain preparation."""
    if num_qubits < 2:
        raise ValueError(f"a cat state needs at least 2 qubits, got {num_qubits}")
    return num_qubits - 1
