"""Fault-tolerant small-angle rotations (Sections 2.5 and 4.4.2).

Arbitrary-precision phase rotations have no transversal implementation on
the [[7,1,3]] code, so the paper adopts Fowler's technique: exhaustively
search sequences of H and T gates for a minimum-length approximation of
each pi/2^k rotation "up to an acceptable error". This module implements
that search (breadth-first over the free product of H and T, deduplicated
by canonicalized SU(2) matrix), plus the expected-latency analysis of the
*exact* recursive pi/2^k construction of Figure 6 that the paper describes
but conservatively declines to use.

Exact cases need no search: RZ(pi/2) is S, RZ(pi/4) is T (the pi/8 gate),
and RZ(pi) is Z.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.circuits import Circuit
from repro.circuits.gate import GateType
from repro.tech import TechnologyParams

_SQ2 = 1.0 / math.sqrt(2.0)
_H = np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=complex)
_T = np.array([[1.0, 0.0], [0.0, np.exp(1j * math.pi / 4)]], dtype=complex)
_T_DAG = _T.conj().T

_GATE_MATRICES: Dict[GateType, np.ndarray] = {
    GateType.H: _H,
    GateType.T: _T,
    GateType.T_DAG: _T_DAG,
}


def rz_matrix(angle: float) -> np.ndarray:
    """The RZ(angle) unitary diag(1, e^{i angle}) up to global phase."""
    return np.array([[1.0, 0.0], [0.0, np.exp(1j * angle)]], dtype=complex)


def trace_distance(u: np.ndarray, v: np.ndarray) -> float:
    """Phase-invariant distance between single-qubit unitaries.

    Uses dist(U, V) = sqrt(1 - |tr(U^dag V)| / 2), which is zero iff the
    unitaries agree up to global phase and is the metric Fowler's search
    optimizes.
    """
    overlap = abs(np.trace(u.conj().T @ v)) / 2.0
    return math.sqrt(max(0.0, 1.0 - min(1.0, overlap)))


def _canonical_key(u: np.ndarray, digits: int = 8) -> Tuple[int, ...]:
    """Hashable global-phase-invariant fingerprint of a unitary."""
    # Normalize phase so the first nonzero entry is real positive.
    flat = u.flatten()
    for entry in flat:
        if abs(entry) > 1e-9:
            phase = entry / abs(entry)
            u = u / phase
            break
    scaled = np.round(u * (10 ** digits)).astype(np.complex128)
    return tuple(
        int(val) for entry in scaled.flatten() for val in (entry.real, entry.imag)
    )


@dataclass(frozen=True)
class SynthesizedRotation:
    """A compiled approximation of RZ(pi/2^k).

    Attributes:
        angle_k: The target rotation is by pi / 2**angle_k.
        gates: Gate sequence (applied left to right).
        error: Phase-invariant distance to the target unitary.
        exact: Whether the sequence is algebraically exact.
    """

    angle_k: int
    gates: Tuple[GateType, ...]
    error: float
    exact: bool

    @property
    def t_count(self) -> int:
        """Number of pi/8-type gates, i.e. encoded pi/8 ancillae consumed."""
        return sum(1 for g in self.gates if g in (GateType.T, GateType.T_DAG))

    @property
    def length(self) -> int:
        return len(self.gates)

    def as_circuit(self, qubit: int = 0, width: int = 1) -> Circuit:
        """Materialize the sequence as a circuit on ``qubit``."""
        circ = Circuit(max(width, qubit + 1), name=f"rz_pi_over_{2 ** self.angle_k}")
        for gate_type in self.gates:
            if gate_type is GateType.H:
                circ.h(qubit)
            elif gate_type is GateType.T:
                circ.t(qubit)
            elif gate_type is GateType.T_DAG:
                circ.tdg(qubit)
            elif gate_type is GateType.S:
                circ.s(qubit)
            elif gate_type is GateType.Z:
                circ.z(qubit)
            else:
                raise ValueError(f"unexpected gate in rotation sequence: {gate_type}")
        return circ


_H_ = GateType.H
_T_ = GateType.T
_TD_ = GateType.T_DAG

#: Precomputed minimum-length words found by this module's own search run
#: offline at greater depth than the default ``max_length`` (reproducible
#: via ``RotationSynthesizer(max_length=28, tolerance=0.015)._search``).
#: Keyed by angle_k; values are (word, phase-invariant error).
PRECOMPUTED_WORDS: Dict[int, Tuple[Tuple[GateType, ...], float]] = {
    # RZ(pi/8): 16 gates, 8 T-type, error 0.0397 (identity sits at 0.1386).
    3: (
        (_T_, _H_, _T_, _H_, _TD_, _H_, _TD_, _H_,
         _T_, _H_, _TD_, _H_, _TD_, _H_, _T_, _H_),
        0.03972,
    ),
    # RZ(pi/16): 24 gates, 12 T-type, error 0.0173 (identity sits at 0.0694).
    4: (
        (_H_, _T_, _H_, _TD_, _H_, _TD_, _H_, _TD_, _H_, _TD_, _H_, _T_,
         _H_, _T_, _H_, _T_, _H_, _T_, _H_, _T_, _H_, _TD_, _TD_, _H_),
        0.01735,
    ),
    # RZ(pi/32): 25 gates, 13 T-type, error 0.0223 (identity sits at 0.0347).
    5: (
        (_TD_, _H_, _TD_, _H_, _T_, _H_, _TD_, _H_, _TD_, _H_, _T_, _H_, _T_,
         _H_, _TD_, _H_, _TD_, _H_, _T_, _H_, _T_, _H_, _T_, _H_, _TD_),
        0.02226,
    ),
    # RZ(pi/64): 25 gates, 13 T-type, error 0.0089 (identity sits at 0.0174).
    6: (
        (_H_, _T_, _H_, _T_, _H_, _T_, _H_, _TD_, _H_, _TD_, _H_, _T_, _H_,
         _T_, _H_, _TD_, _H_, _TD_, _H_, _T_, _H_, _TD_, _H_, _TD_, _TD_),
        0.00886,
    ),
}


class RotationSynthesizer:
    """Breadth-first search for minimum-length H/T approximations.

    The search enumerates products of {H, T, T_DAG} in length order,
    deduplicating by canonical matrix fingerprint (so only the shortest
    word reaching each unitary survives), and returns the first word within
    ``tolerance`` of the target — i.e. the paper's "minimum length sequence
    ... up to an acceptable error".

    Args:
        max_length: Longest sequence considered before settling for the
            best-found approximation.
        tolerance: Acceptable phase-invariant distance. The paper does
            not state its value; the default (0.01) accepts the identity
            for rotations below pi/64 — consistent with the paper's
            reported QFT gate totals, which imply very short sequences for
            small angles — while the pi/16..pi/64 range uses the
            precomputed deep-search words above.
    """

    def __init__(self, max_length: int = 8, tolerance: float = 0.01) -> None:
        if max_length < 1:
            raise ValueError(f"max_length must be >= 1, got {max_length}")
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        self.max_length = max_length
        self.tolerance = tolerance
        self._cache: Dict[int, SynthesizedRotation] = {}

    def synthesize(self, angle_k: int) -> SynthesizedRotation:
        """Approximate RZ(pi / 2**angle_k).

        Exact Clifford+T cases (k <= 2) bypass the search.
        """
        if angle_k < 0:
            raise ValueError(f"angle_k must be >= 0, got {angle_k}")
        if angle_k in self._cache:
            return self._cache[angle_k]
        result = self._synthesize_uncached(angle_k)
        self._cache[angle_k] = result
        return result

    def _synthesize_uncached(self, angle_k: int) -> SynthesizedRotation:
        if angle_k == 0:
            return SynthesizedRotation(0, (GateType.Z,), 0.0, True)
        if angle_k == 1:
            return SynthesizedRotation(1, (GateType.S,), 0.0, True)
        if angle_k == 2:
            return SynthesizedRotation(2, (GateType.T,), 0.0, True)
        target = rz_matrix(math.pi / (2 ** angle_k))
        identity_error = trace_distance(np.eye(2, dtype=complex), target)
        if angle_k in PRECOMPUTED_WORDS:
            word, error = PRECOMPUTED_WORDS[angle_k]
            if error <= max(self.tolerance, identity_error):
                return SynthesizedRotation(angle_k, word, error, exact=False)
        if identity_error <= self.tolerance:
            # The rotation is within tolerance of doing nothing; emitting
            # the empty word is the minimum-length answer.
            return SynthesizedRotation(angle_k, (), identity_error, exact=False)
        best_gates, best_error = self._search(target)
        return SynthesizedRotation(
            angle_k, best_gates, best_error, exact=best_error < 1e-12
        )

    def _search(self, target: np.ndarray) -> Tuple[Tuple[GateType, ...], float]:
        identity = np.eye(2, dtype=complex)
        best_gates: Tuple[GateType, ...] = ()
        best_error = trace_distance(identity, target)
        seen = {_canonical_key(identity)}
        frontier: List[Tuple[np.ndarray, Tuple[GateType, ...]]] = [(identity, ())]
        alphabet = (GateType.H, GateType.T, GateType.T_DAG)
        for _ in range(self.max_length):
            next_frontier: List[Tuple[np.ndarray, Tuple[GateType, ...]]] = []
            for matrix, word in frontier:
                if word and word[-1] in (GateType.T, GateType.T_DAG):
                    # T and T_DAG commute and partially cancel; canonical
                    # words never mix or stack beyond what dedup allows, but
                    # skipping immediate inverses prunes the branching.
                    options = (GateType.H, word[-1])
                else:
                    options = alphabet
                for gate_type in options:
                    candidate = _GATE_MATRICES[gate_type] @ matrix
                    key = _canonical_key(candidate)
                    if key in seen:
                        continue
                    seen.add(key)
                    new_word = word + (gate_type,)
                    error = trace_distance(candidate, target)
                    if error < best_error:
                        best_error = error
                        best_gates = new_word
                        if best_error <= self.tolerance:
                            return best_gates, best_error
                    next_frontier.append((candidate, new_word))
            frontier = next_frontier
        return best_gates, best_error


@lru_cache(maxsize=8)
def default_synthesizer(max_length: int = 8, tolerance: float = 0.01) -> RotationSynthesizer:
    """Shared synthesizer instance (sequences are pure functions of k)."""
    return RotationSynthesizer(max_length=max_length, tolerance=tolerance)


def recursive_rotation_expected_latency(
    angle_k: int, tech: TechnologyParams
) -> float:
    """Expected data critical path through the Figure 6 recursive factory.

    With a cascade of pi/2^i ancilla factories for i = 3..k, each
    measurement has probability 1/2 of requiring the next, larger corrective
    rotation; the expected number of CX gates on the data's path is
    ``sum_{i=0}^{k-3} 2^-i`` with one X gate fewer in expectation
    (Section 4.4.2). Each CX is followed by the measurement that decides
    the branch.
    """
    if angle_k < 3:
        raise ValueError(
            f"the recursive construction applies to k >= 3, got {angle_k}"
        )
    stages = angle_k - 2
    expected_cx = sum(0.5 ** i for i in range(stages))
    expected_x = max(0.0, expected_cx - 1.0)
    expected_meas = expected_cx
    return (
        expected_cx * tech.t_2q
        + expected_meas * tech.t_meas
        + expected_x * tech.t_1q
    )


def crz_decomposition_t_count(
    angle_k: int, synthesizer: RotationSynthesizer
) -> int:
    """pi/8 ancillae consumed by one controlled-pi/2^k rotation.

    A controlled rotation by pi/2^k decomposes into CX gates and three
    single-qubit rotations by pi/2^(k+1) (Section 2.5); each of those is
    synthesized into H/T sequences.
    """
    if angle_k == 1:  # controlled-Z is transversal
        return 0
    return 3 * synthesizer.synthesize(angle_k + 1).t_count
