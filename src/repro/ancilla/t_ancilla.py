"""The encoded pi/8 ancilla (Section 2.4, Figure 5).

A fault-tolerant encoded pi/8 gate is performed by preparing an ancilla
encoded in the pi/8 state and interacting it transversally with the data
(Figure 5a). Preparing that ancilla (Figure 5b) requires an encoded zero,
a 7-qubit cat state, and a series of transversal gates; the paper splits it
into the four pipeline stages of Table 7:

1. 7-qubit cat state preparation;
2. transversal controlled-Z / controlled-S / CX plus a transversal pi/8;
3. decode (plus store);
4. one-qubit H, one-qubit measure, transversal Z conditioned on it.

This module builds the full circuit and exposes the per-stage slices used
by the factory model in :mod:`repro.factory.t_factory`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ancilla.cat import cat_prep_circuit
from repro.circuits import Circuit
from repro.circuits.gate import Gate, GateType
from repro.codes.steane import (
    ENCODER_CX_ROUNDS,
    ENCODER_H_QUBITS,
    STEANE,
    steane_zero_prep_circuit,
)
from repro.tech import ErrorRates

PI8_STAGE_NAMES: Tuple[str, ...] = (
    "cat_state_prepare",
    "transversal_interact",
    "decode_store",
    "h_measure_correct",
)


def _stage_cat_prep(circ: Circuit, cat: List[int]) -> None:
    circ.compose(cat_prep_circuit(7, include_prep=True), qubit_map=cat)


def _stage_transversal_interact(circ: Circuit, cat: List[int],
                                block: List[int]) -> None:
    """Transversal CZ, CS and CX between cat and encoded zero, plus pi/8.

    The exact gate pattern in Figure 5b applies controlled phase-type gates
    from the cat onto the encoded block followed by a transversal pi/8 layer
    on the cat (which, as the paper notes, is transversal but does not
    itself implement an encoded pi/8).
    """
    for c, b in zip(cat, block):
        circ.cz(c, b)
    for c, b in zip(cat, block):
        circ.cs(c, b)
    for c, b in zip(cat, block):
        circ.cx(c, b)
    for c in cat:
        circ.t(c)


def _stage_decode(circ: Circuit, cat: List[int]) -> None:
    """Inverse of the encoding circuit, concentrating state on one qubit."""
    for round_gates in reversed(ENCODER_CX_ROUNDS):
        for control, target in reversed(round_gates):
            circ.cx(cat[control], cat[target])
    for q in reversed(ENCODER_H_QUBITS):
        circ.h(cat[q])


def _stage_h_measure_correct(circ: Circuit, cat: List[int],
                             block: List[int]) -> None:
    head = cat[0]
    circ.h(head)
    circ.measure_z(head, "pi8_m")
    for b in block:
        circ.append(
            Gate(GateType.Z, (b,), condition="pi8_m", tag="conditional-correction")
        )


def pi8_ancilla_circuit() -> Circuit:
    """The full Figure 5b encoded pi/8 ancilla preparation.

    Qubits 0-6 hold the incoming encoded zero (assumed already prepared by
    a zero factory, so no encoder is included here); qubits 7-13 hold the
    7-qubit cat state. The output pi/8 ancilla lives on qubits 0-6.
    """
    circ = Circuit(14, name="pi8_ancilla_prep")
    block = list(range(7))
    cat = list(range(7, 14))
    _stage_cat_prep(circ, cat)
    _stage_transversal_interact(circ, cat, block)
    _stage_decode(circ, cat)
    _stage_h_measure_correct(circ, cat, block)
    return circ


def pi8_stage_slices() -> Dict[str, Circuit]:
    """The four Table 7 stages as separate circuits (shared 14-qubit frame)."""
    block = list(range(7))
    cat = list(range(7, 14))
    stages: Dict[str, Circuit] = {}

    stage = Circuit(14, name=PI8_STAGE_NAMES[0])
    _stage_cat_prep(stage, cat)
    stages[PI8_STAGE_NAMES[0]] = stage

    stage = Circuit(14, name=PI8_STAGE_NAMES[1])
    _stage_transversal_interact(stage, cat, block)
    stages[PI8_STAGE_NAMES[1]] = stage

    stage = Circuit(14, name=PI8_STAGE_NAMES[2])
    _stage_decode(stage, cat)
    stages[PI8_STAGE_NAMES[2]] = stage

    stage = Circuit(14, name=PI8_STAGE_NAMES[3])
    _stage_h_measure_correct(stage, cat, block)
    stages[PI8_STAGE_NAMES[3]] = stage
    return stages


def pi8_consumption_circuit() -> Circuit:
    """Figure 5a: applying an encoded pi/8 gate by consuming the ancilla.

    Qubits 0-6 are the encoded data block, 7-13 the prepared pi/8 ancilla.
    The data-side cost is one transversal CX, a transversal measurement of
    the ancilla block, and a conditional transversal correction — which is
    exactly what :meth:`repro.circuits.LogicalLatencyModel.
    non_transversal_interaction_latency` prices.
    """
    circ = Circuit(14, name="pi8_consume")
    data = list(range(7))
    anc = list(range(7, 14))
    for d, a in zip(data, anc):
        circ.cx(a, d)
    for i, a in enumerate(anc):
        circ.measure_z(a, f"c{i}")
    for d in data:
        circ.append(
            Gate(GateType.S, (d,), condition="c0", tag="conditional-correction")
        )
    return circ


# ----------------------------------------------------------------------
# Monte Carlo grading of the full pi/8 ancilla pipeline.
#
# One trial runs the whole Figure 5b preparation under stochastic faults:
# a (noisy) basic encoded-zero preparation feeds the block, the 7-qubit
# cat state is built, the transversal CZ/CS/CX + pi/8 layer interacts cat
# and block, the cat is decoded, and the head-qubit measurement drives
# the classically conditioned transversal Z correction — the full
# conditional-correction machinery the general engine exists to lower.
# The output block (qubits 0-6) is graded against ideal decoding of the
# [[7,1,3]] code, the same uncorrectable-residual rule as Figure 4.
# Non-Clifford gates (T, CS) propagate their Pauli part only, the
# standard Pauli-frame approximation both engines share.


def evaluate_pi8_ancilla(
    trials: int = 20000,
    seed: int = 0,
    errors: Optional[ErrorRates] = None,
):
    """Scalar Monte Carlo grading of the pi/8 ancilla preparation.

    Reference implementation: one trial at a time on the scalar
    Pauli-frame engine. Use :func:`evaluate_pi8_ancilla_batched` for
    large trial counts.
    """
    from repro.ancilla.evaluation import MOVES_PER_QUBIT_PER_GATE
    from repro.error.montecarlo import MonteCarloSimulator, TrialOutcome
    from repro.error.pauli import PauliFrame

    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    encoder = steane_zero_prep_circuit(include_prep=True)
    pipeline = pi8_ancilla_circuit()
    sim = MonteCarloSimulator(errors=errors, seed=seed)
    block = list(range(7))

    def trial(s: MonteCarloSimulator) -> TrialOutcome:
        frame = PauliFrame(14)
        s.run_circuit(
            encoder,
            frame,
            moves_per_qubit_per_gate=MOVES_PER_QUBIT_PER_GATE,
        )
        s.run_circuit(
            pipeline,
            frame,
            moves_per_qubit_per_gate=MOVES_PER_QUBIT_PER_GATE,
        )
        if STEANE.is_uncorrectable(frame.x_vector(block), frame.z_vector(block)):
            return TrialOutcome.BAD
        return TrialOutcome.GOOD

    return sim.estimate(trial, trials)


def evaluate_pi8_ancilla_batched(
    trials: int = 200_000,
    seed: int = 0,
    errors: Optional[ErrorRates] = None,
):
    """Batched counterpart of :func:`evaluate_pi8_ancilla`.

    The encoder and the Figure 5b pipeline are each lowered once by the
    general batched engine and replayed over ``(trials, 14)`` frame
    matrices; the conditional Z correction fires per trial on the
    measured ``pi8_m`` flip column. Statistically equivalent to the
    scalar driver (checked by the test suite); the speedup is recorded
    by the protocol benchmark in ``BENCH_protocols.json``.
    """
    from repro.ancilla.evaluation import MOVES_PER_QUBIT_PER_GATE
    from repro.error.batched import (
        BatchFrames,
        BatchedSimulator,
        steane_grade_bad,
    )
    from repro.error.montecarlo import MonteCarloResult

    from repro.obs.trace import span as _span

    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    encoder = steane_zero_prep_circuit(include_prep=True)
    pipeline = pi8_ancilla_circuit()
    sim = BatchedSimulator(errors=errors, seed=seed)
    block = list(range(7))
    total = MonteCarloResult()
    remaining = trials
    with _span("ancilla.pi8_batched", trials=trials):
        while remaining > 0:
            batch = min(remaining, 200_000)
            frames = BatchFrames(batch, 14)
            active = np.ones(batch, dtype=bool)
            for circuit in (encoder, pipeline):
                sim.run_circuit(
                    circuit,
                    frames,
                    active=active,
                    moves_per_qubit_per_gate=MOVES_PER_QUBIT_PER_GATE,
                )
            bad = steane_grade_bad(frames, block)
            total = total.merge(
                MonteCarloResult(
                    trials=batch, good=int((~bad).sum()), bad=int(bad.sum())
                )
            )
            remaining -= batch
    return total
