"""Monte Carlo grading of the Figure 4 zero-prep strategies.

Each strategy is replayed at the Pauli-frame level: the physical circuits
from :mod:`repro.ancilla.zero_prep` run under stochastic error injection,
measurement flip bits drive the classical verify/decode decisions in Python,
and the surviving output block is graded against ideal decoding of the
[[7,1,3]] code.

Paper targets (Figure 4, Section 2.3):

==================  =========
strategy            error rate
==================  =========
basic               1.8e-3
verify-only         3.7e-4
correct-only        1.1e-3
verify-and-correct  2.9e-5
==================  =========

plus a verification failure (discard) rate of ~0.2% for the Figure 4a
subunit. Absolute numbers depend on the authors' exact layout and fault
accounting; this reproduction targets the same decades and orderings.

Calibrated modeling choices (see DESIGN.md for the full rationale):

* Error sources are gates and movement only, as the paper states; readout
  error defaults to zero (``ErrorRates.measurement`` stays available).
* Preparation faults inject X/Y only — a Z on a fresh |0> is not an error.
* Verification detection is idealized (discard on any nonzero syndrome)
  while its apparatus costs are fully charged; this reproduces the paper's
  0.2% discard rate almost exactly.
* Corrections decode from the measured helper bits, so helper
  contamination, back-propagation and fresh apparatus errors all land on
  the output — faithful Steane-style correction.

One known deviation: with any distance-3-faithful decoder, weight-2
errors are unfixable, so verify-and-correct shares its zero-syndrome
single-fault floor with verify-only; the paper's further 13x gap between
those two strategies is not reachable by this (or any Pauli-frame-exact)
model and likely reflects their tool's accounting. Orderings against
basic and correct-only reproduce.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.ancilla.cat import cat_prep_circuit
from repro.ancilla.zero_prep import CAT_WIDTH, VERIFY_SUPPORT
from repro.circuits import Circuit
from repro.codes.steane import STEANE, steane_zero_prep_circuit
from repro.error.montecarlo import (
    MonteCarloResult,
    MonteCarloSimulator,
    TrialOutcome,
)
from repro.error.pauli import PauliFrame
from repro.tech import ErrorRates

#: Average movement operations charged to each qubit touched by each gate.
#: The paper's hand-optimized simple-factory schedule (Section 4.3) performs
#: 8 turns + 30 straight moves across a ~19-gate preparation, i.e. roughly
#: two movement operations per qubit-gate; movement error (1e-6/op) is two
#: orders of magnitude below gate error so the result is insensitive to
#: this choice.
MOVES_PER_QUBIT_PER_GATE = 2.0


class PrepStrategy(enum.Enum):
    """The four Figure 4 preparation strategies."""

    BASIC = "basic"
    VERIFY_ONLY = "verify_only"
    CORRECT_ONLY = "correct_only"
    VERIFY_AND_CORRECT = "verify_and_correct"


#: Paper-reported error rates, for reporting alongside measured values.
PAPER_ERROR_RATES: Dict[PrepStrategy, float] = {
    PrepStrategy.BASIC: 1.8e-3,
    PrepStrategy.VERIFY_ONLY: 3.7e-4,
    PrepStrategy.CORRECT_ONLY: 1.1e-3,
    PrepStrategy.VERIFY_AND_CORRECT: 2.9e-5,
}

PAPER_VERIFY_FAILURE_RATE = 0.002

# Static sub-circuits, built once.
_ENCODER = steane_zero_prep_circuit(include_prep=True)
_CAT3 = cat_prep_circuit(CAT_WIDTH, include_prep=True)


def _verify_check_circuit() -> Circuit:
    """Transversal parity check of logical Z: block drives cat, cat measured.

    Local qubits 0-6 are the encoded block; 7-9 the cat.
    """
    circ = Circuit(7 + CAT_WIDTH, name="verify_check")
    for i, support_q in enumerate(VERIFY_SUPPORT):
        circ.cx(support_q, 7 + i)
    for i in range(CAT_WIDTH):
        circ.measure_z(7 + i, f"v{i}")
    return circ


_VERIFY_CHECK = _verify_check_circuit()


def _bit_correct_circuit() -> Circuit:
    """Transversal CX target->helper plus helper Z-measurement.

    Local qubits 0-6 are the target block, 7-13 the helper block.
    """
    circ = Circuit(14, name="bit_correct")
    for i in range(7):
        circ.cx(i, 7 + i)
    for i in range(7):
        circ.measure_z(7 + i, f"m{i}")
    return circ


def _phase_correct_circuit() -> Circuit:
    """Transversal CX helper->target plus helper X-measurement."""
    circ = Circuit(14, name="phase_correct")
    for i in range(7):
        circ.cx(7 + i, i)
    for i in range(7):
        circ.measure_x(7 + i, f"m{i}")
    return circ


_BIT_CORRECT = _bit_correct_circuit()
_PHASE_CORRECT = _phase_correct_circuit()


def _block_map(block: Sequence[int]) -> Dict[int, int]:
    return {i: q for i, q in enumerate(block)}


def _run_encode(sim: MonteCarloSimulator, frame: PauliFrame,
                block: Sequence[int]) -> None:
    sim.run_circuit(
        _ENCODER,
        frame,
        qubit_map=_block_map(block),
        moves_per_qubit_per_gate=MOVES_PER_QUBIT_PER_GATE,
    )


def _run_verification(sim: MonteCarloSimulator, frame: PauliFrame,
                      block: Sequence[int], cats: Sequence[int]) -> bool:
    """Run the verification subunit; returns True when the block passes.

    The cat-state apparatus is executed in full (charging its gate errors
    and its back-propagation onto the block), while the accept decision is
    idealized: the block is discarded iff it carries any *detectable*
    error — nonzero X or Z syndrome — at the end of the subunit. The
    paper's verification wiring is underspecified (one 3-qubit cat per
    block); modeling its detection power as ideal reproduces both the
    reported ~0.2% verification failure rate and the verify-only error
    rate, and undetectable (zero-syndrome) errors are exactly the ones no
    verification circuit could catch.
    """
    sim.run_circuit(
        _CAT3,
        frame,
        qubit_map=_block_map(cats),
        moves_per_qubit_per_gate=MOVES_PER_QUBIT_PER_GATE,
    )
    mapping = dict(_block_map(block))
    mapping.update({7 + i: q for i, q in enumerate(cats)})
    sim.run_circuit(
        _VERIFY_CHECK,
        frame,
        qubit_map=mapping,
        moves_per_qubit_per_gate=MOVES_PER_QUBIT_PER_GATE,
    )
    x_err = frame.x_vector(block)
    z_err = frame.z_vector(block)
    detectable = (
        STEANE.x_error_syndrome(x_err).any()
        or STEANE.z_error_syndrome(z_err).any()
    )
    return not detectable


def _apply_correction(sim: MonteCarloSimulator, frame: PauliFrame,
                      block: Sequence[int], pattern: np.ndarray,
                      pauli: str) -> None:
    """Apply a decoded conditional correction, with gate error per flip."""
    for i, flip in enumerate(pattern):
        if not flip:
            continue
        q = block[i]
        frame.apply_pauli(q, pauli)
        # The physical correction gate can itself fail.
        if sim.rng.random() < sim.errors.gate:
            frame.apply_pauli(q, ("X", "Y", "Z")[sim.rng.integers(3)])


def _run_bit_correction(sim: MonteCarloSimulator, frame: PauliFrame,
                        target: Sequence[int], helper: Sequence[int]) -> None:
    mapping = dict(_block_map(target))
    mapping.update({7 + i: q for i, q in enumerate(helper)})
    flips = sim.run_circuit(
        _BIT_CORRECT,
        frame,
        qubit_map=mapping,
        moves_per_qubit_per_gate=MOVES_PER_QUBIT_PER_GATE,
    )
    bits = np.array([flips[f"m{i}"] for i in range(7)], dtype=np.uint8)
    syndrome = STEANE.x_error_syndrome(bits)
    correction = STEANE.correction_from_x_syndrome(syndrome)
    _apply_correction(sim, frame, target, correction, "X")


def _run_phase_correction(sim: MonteCarloSimulator, frame: PauliFrame,
                          target: Sequence[int], helper: Sequence[int]) -> None:
    mapping = dict(_block_map(target))
    mapping.update({7 + i: q for i, q in enumerate(helper)})
    flips = sim.run_circuit(
        _PHASE_CORRECT,
        frame,
        qubit_map=mapping,
        moves_per_qubit_per_gate=MOVES_PER_QUBIT_PER_GATE,
    )
    bits = np.array([flips[f"m{i}"] for i in range(7)], dtype=np.uint8)
    syndrome = STEANE.z_error_syndrome(bits)
    correction = STEANE.correction_from_z_syndrome(syndrome)
    _apply_correction(sim, frame, target, correction, "Z")


def _grade(frame: PauliFrame, block: Sequence[int]) -> TrialOutcome:
    """Grade the output block: is its residual error uncorrectable?

    An output is bad when its Pauli residual defeats ideal decoding of the
    [[7,1,3]] code — a logical X or logical Z content. This is the
    "probability of an uncorrectable error in the resulting encoded
    output" the paper reports under Figure 4. (A logical Z acts trivially
    on |0>_L itself, but the same prepared block serves the phase-
    correction role after a transversal Hadamard, where the Z content is
    what corrupts data, so both logical components are graded.)
    """
    x_err = frame.x_vector(block)
    z_err = frame.z_vector(block)
    if STEANE.is_uncorrectable(x_err, z_err):
        return TrialOutcome.BAD
    return TrialOutcome.GOOD


# ----------------------------------------------------------------------
# Strategy trials

_BLOCKS = (tuple(range(0, 7)), tuple(range(7, 14)), tuple(range(14, 21)))


def _trial_basic(sim: MonteCarloSimulator) -> TrialOutcome:
    frame = PauliFrame(7)
    _run_encode(sim, frame, range(7))
    return _grade(frame, range(7))


def _trial_verify_only(sim: MonteCarloSimulator) -> TrialOutcome:
    frame = PauliFrame(10)
    block = tuple(range(7))
    _run_encode(sim, frame, block)
    if not _run_verification(sim, frame, block, (7, 8, 9)):
        return TrialOutcome.DISCARDED
    return _grade(frame, block)


def _trial_correct_only(sim: MonteCarloSimulator) -> TrialOutcome:
    frame = PauliFrame(21)
    top, mid, bottom = _BLOCKS
    for block in (top, mid, bottom):
        _run_encode(sim, frame, block)
    _run_bit_correction(sim, frame, mid, top)
    _run_phase_correction(sim, frame, mid, bottom)
    return _grade(frame, mid)


def _trial_verify_and_correct(sim: MonteCarloSimulator) -> TrialOutcome:
    frame = PauliFrame(24)
    top, mid, bottom = _BLOCKS
    cat = (21, 22, 23)
    for block in (top, mid, bottom):
        # Failed verifications recycle the block and retry; the retry's
        # errors are i.i.d. with the original attempt, so resampling the
        # same register is statistically identical and much cheaper.
        while True:
            for q in block:
                frame.clear(q)
            for q in cat:
                frame.clear(q)
            _run_encode(sim, frame, block)
            if _run_verification(sim, frame, block, cat):
                break
    _run_bit_correction(sim, frame, mid, top)
    _run_phase_correction(sim, frame, mid, bottom)
    return _grade(frame, mid)


_TRIALS = {
    PrepStrategy.BASIC: _trial_basic,
    PrepStrategy.VERIFY_ONLY: _trial_verify_only,
    PrepStrategy.CORRECT_ONLY: _trial_correct_only,
    PrepStrategy.VERIFY_AND_CORRECT: _trial_verify_and_correct,
}


@dataclass(frozen=True)
class StrategyReport:
    """Measured vs paper-reported quality for one strategy."""

    strategy: PrepStrategy
    result: MonteCarloResult
    paper_error_rate: float

    @property
    def error_rate(self) -> float:
        return self.result.error_rate

    @property
    def discard_rate(self) -> float:
        return self.result.discard_rate

    def summary(self) -> str:
        lo, hi = self.result.error_rate_interval()
        return (
            f"{self.strategy.value:>18}: error={self.error_rate:.2e} "
            f"[{lo:.1e}, {hi:.1e}] discard={self.discard_rate:.2%} "
            f"(paper: {self.paper_error_rate:.1e})"
        )


def evaluate_strategy(
    strategy: PrepStrategy,
    trials: int = 20000,
    seed: int = 0,
    errors: Optional[ErrorRates] = None,
    engine: str = "scalar",
) -> StrategyReport:
    """Monte Carlo grade one preparation strategy.

    Args:
        strategy: Which Figure 4 strategy to run.
        trials: Number of independent preparation attempts.
        seed: RNG seed (results are reproducible per seed).
        errors: Error rates; defaults to the paper's (gate 1e-4, move 1e-6).
        engine: ``"scalar"`` replays trials one at a time on the
            reference Pauli-frame engine; ``"batched"`` routes through
            the general batched protocol engine (~100x faster, same
            statistics, different RNG stream).
    """
    if engine == "batched":
        from repro.error.vectorized import evaluate_strategy_vectorized

        return evaluate_strategy_vectorized(
            strategy, trials=trials, seed=seed, errors=errors
        )
    if engine != "scalar":
        raise ValueError(f"unknown engine {engine!r}; choose 'scalar' or 'batched'")
    sim = MonteCarloSimulator(errors=errors, seed=seed)
    result = sim.estimate(_TRIALS[strategy], trials)
    return StrategyReport(strategy, result, PAPER_ERROR_RATES[strategy])


def evaluate_strategies(
    trials: int = 20000,
    seed: int = 0,
    errors: Optional[ErrorRates] = None,
    engine: str = "scalar",
) -> Dict[PrepStrategy, StrategyReport]:
    """Grade all four strategies with a shared trial budget per strategy."""
    return {
        strategy: evaluate_strategy(
            strategy, trials=trials, seed=seed, errors=errors, engine=engine
        )
        for strategy in PrepStrategy
    }
