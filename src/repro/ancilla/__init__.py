"""Encoded-ancilla preparation: circuits, strategies and evaluation.

Implements Section 2 of the paper:

* :mod:`repro.ancilla.cat` — 3- and 7-qubit cat-state preparation;
* :mod:`repro.ancilla.zero_prep` — the encoded-zero strategies of Figure 4
  (basic, verify-only, correct-only, verify-and-correct) as circuit-level
  constructions;
* :mod:`repro.ancilla.evaluation` — Monte Carlo protocols grading each
  strategy's output error rate (reproducing Figure 4's numbers);
* :mod:`repro.ancilla.t_ancilla` — the encoded pi/8 ancilla circuit of
  Figure 5b and its four-stage decomposition (Table 7);
* :mod:`repro.ancilla.rotations` — Fowler H/T sequence synthesis for
  pi/2^k rotations and the recursive exact construction of Figure 6.
"""

from repro.ancilla.cat import (
    cat_prep_circuit,
    evaluate_cat_prep,
    evaluate_cat_prep_batched,
)
from repro.ancilla.evaluation import (
    PrepStrategy,
    StrategyReport,
    evaluate_strategies,
    evaluate_strategy,
)
from repro.error.vectorized import evaluate_strategy_vectorized
from repro.ancilla.rotations import (
    RotationSynthesizer,
    SynthesizedRotation,
    recursive_rotation_expected_latency,
)
from repro.ancilla.t_ancilla import (
    PI8_STAGE_NAMES,
    evaluate_pi8_ancilla,
    evaluate_pi8_ancilla_batched,
    pi8_ancilla_circuit,
    pi8_consumption_circuit,
)
from repro.ancilla.zero_prep import (
    basic_zero_circuit,
    correct_only_circuit,
    verify_and_correct_circuit,
    verify_only_circuit,
)

__all__ = [
    "PI8_STAGE_NAMES",
    "PrepStrategy",
    "RotationSynthesizer",
    "StrategyReport",
    "SynthesizedRotation",
    "basic_zero_circuit",
    "cat_prep_circuit",
    "correct_only_circuit",
    "evaluate_cat_prep",
    "evaluate_cat_prep_batched",
    "evaluate_pi8_ancilla",
    "evaluate_pi8_ancilla_batched",
    "evaluate_strategies",
    "evaluate_strategy",
    "evaluate_strategy_vectorized",
    "pi8_ancilla_circuit",
    "pi8_consumption_circuit",
    "recursive_rotation_expected_latency",
    "verify_and_correct_circuit",
    "verify_only_circuit",
]
