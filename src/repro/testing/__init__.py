"""Test-support utilities shipped with the package.

:mod:`repro.testing.faults` is the fault-injection harness behind the
``tests/faults/`` suite: it lets tests kill workers mid-chunk, poison
individual design points, hang evaluations, and corrupt result-store
I/O — through hooks that are inert (a handful of ``is None`` checks)
unless a fault plan is armed.
"""

from repro.testing.faults import FaultPlan, FaultRule, active_plan, arm, check

__all__ = ["FaultPlan", "FaultRule", "active_plan", "arm", "check"]
