"""Fault-injection harness for the exploration robustness suite.

The production code calls two tiny hooks at its failure-prone seams:

* :func:`check(stage, point)` — may kill the process, sleep, or raise,
  according to the armed :class:`FaultPlan`;
* :func:`mangle(stage, point, payload)` — may corrupt a payload about
  to be written (torn-write simulation).

Both are no-ops (a module-global ``is None`` test) unless a plan is
armed, so the hooks cost nothing in normal runs.

A plan can be armed two ways:

* **monkeypatch** — ``faults.arm(plan)`` (or ``monkeypatch.setattr``
  on :data:`PLAN`) for in-process faults such as store I/O errors;
* **environment** — ``REPRO_FAULTS`` holds the plan as JSON and
  ``REPRO_FAULTS_DIR`` a scratch directory for cross-process trigger
  accounting. Worker processes inherit the environment, so plans reach
  ``ProcessPoolExecutor`` children without any pickling support —
  which is the point: a worker can ``os._exit`` mid-chunk exactly as a
  SIGKILL'd or OOM-killed worker would.

Fire budgets (``times``) are enforced with ``O_CREAT | O_EXCL`` slot
files under the state directory, so "kill the first worker that sees
this point, then let the retry succeed" works even when every firing
happens in a different process.

Failure modes (:class:`FaultRule.mode`):

``exit``
    ``os._exit(exit_code)`` — an uncatchable worker death; the parent
    observes ``BrokenProcessPool``.
``raise``
    Raise ``exc`` (a builtin exception name, default ``RuntimeError``)
    — a poisoned design point or failing store I/O. At the
    ``serve_request`` stage the server maps it to an HTTP 500, so
    ``times=N`` makes an N-deep **5xx burst**.
``hang``
    ``time.sleep(seconds)`` — a slow or wedged evaluation (timeout
    path), or at the serve stages a server that accepts the connection
    and then goes silent (client read-timeout path).
``torn``
    Truncate the payload at :func:`mangle` call sites — a torn store
    write that must read back as a cache miss, never as data; at the
    ``serve_response`` stage, a response body cut off mid-flight that
    the client must treat as retryable, never as data.
``refuse``
    Raise :class:`Refused`, which the serving layer catches and answers
    by severing the connection without any HTTP response — what a
    connection refused/reset by a dead or restarting server looks like
    from the client.

The network fault plans (``serve_request`` / ``serve_response`` stages)
arm through the same environment variables as the worker-crash plans,
so the whole client failure matrix — refused, hang, torn body, 5xx
burst — is driven by the same harness that kills pool workers.
"""

from __future__ import annotations

import builtins
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

ENV_PLAN = "REPRO_FAULTS"
ENV_STATE = "REPRO_FAULTS_DIR"

#: Stages the production hooks announce. The ``serve_*`` trio are the
#: exploration server's seams: ``serve_request`` fires after a request
#: is parsed (refuse / hang / 5xx), ``serve_response`` just before the
#: body is written (hang / torn), and ``serve_probe`` guards ``/readyz``
#: so replica health probes can be failed independently of evaluation
#: traffic (flapping-replica plans).
STAGES = (
    "evaluate", "store_put", "store_get",
    "serve_request", "serve_response", "serve_probe",
)


class Refused(Exception):
    """A ``refuse`` rule fired: sever the connection, send no response."""


@dataclass
class FaultRule:
    """One injectable failure.

    Args:
        mode: ``"exit"``, ``"raise"``, ``"hang"``, ``"torn"`` or
            ``"refuse"``.
        stage: Hook site the rule listens on (see :data:`STAGES`).
        match: Point items that must all be present for the rule to
            fire; ``{}`` matches every point (and ``None`` points).
        replica: Replica identity the rule is scoped to (the serving
            process's ``--replica-id``); ``None`` matches every replica.
            One plan shared by a whole fleet can then take down exactly
            one member — kill-one, flapping and slow-replica plans.
        times: Maximum number of firings (across all processes when a
            state directory is armed); ``None`` means unlimited.
        seconds: Sleep duration for ``hang``.
        exc: Builtin exception name for ``raise`` (e.g. ``"OSError"``).
        message: Exception message for ``raise``.
        exit_code: Process exit status for ``exit``.
    """

    mode: str
    stage: str = "evaluate"
    match: Dict[str, object] = field(default_factory=dict)
    replica: Optional[str] = None
    times: Optional[int] = 1
    seconds: float = 0.0
    exc: str = "RuntimeError"
    message: str = "injected fault"
    exit_code: int = 17

    def matches(
        self, stage: str, point: Optional[Dict],
        replica: Optional[str] = None,
    ) -> bool:
        if stage != self.stage:
            return False
        if self.replica is not None and replica != self.replica:
            return False
        if not self.match:
            return True
        if point is None:
            return False
        return all(point.get(k) == v for k, v in self.match.items())

    def to_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "stage": self.stage,
            "match": self.match,
            "replica": self.replica,
            "times": self.times,
            "seconds": self.seconds,
            "exc": self.exc,
            "message": self.message,
            "exit_code": self.exit_code,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "FaultRule":
        return cls(**raw)


@dataclass
class FaultPlan:
    """An ordered set of fault rules plus trigger accounting."""

    rules: List[FaultRule]
    state_dir: Optional[str] = None
    _local_counts: Dict[int, int] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps([rule.to_dict() for rule in self.rules])

    @classmethod
    def from_json(cls, payload: str, state_dir: Optional[str]) -> "FaultPlan":
        return cls(
            rules=[FaultRule.from_dict(raw) for raw in json.loads(payload)],
            state_dir=state_dir,
        )

    # -- trigger accounting -------------------------------------------

    def _claim(self, index: int, rule: FaultRule) -> bool:
        """Atomically claim one firing slot for ``rule``; False if spent."""
        if rule.times is None:
            return True
        if self.state_dir is None:
            fired = self._local_counts.get(index, 0)
            if fired >= rule.times:
                return False
            self._local_counts[index] = fired + 1
            return True
        for slot in range(rule.times):
            path = os.path.join(self.state_dir, f"rule{index}-slot{slot}")
            try:
                os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                return True
            except FileExistsError:
                continue
            except OSError:
                return False
        return False


#: Monkeypatch hook: assign a FaultPlan here (or via :func:`arm`) to
#: inject faults in-process without touching the environment.
PLAN: Optional[FaultPlan] = None

_env_cache: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def arm(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` process-locally (``None`` disarms)."""
    global PLAN
    PLAN = plan


def active_plan() -> Optional[FaultPlan]:
    """The armed plan: :data:`PLAN` if set, else the environment's."""
    if PLAN is not None:
        return PLAN
    global _env_cache
    payload = os.environ.get(ENV_PLAN)
    if payload is None:
        return None
    if _env_cache[0] != payload:
        _env_cache = (
            payload,
            FaultPlan.from_json(payload, os.environ.get(ENV_STATE)),
        )
    return _env_cache[1]


def _fire(rule: FaultRule) -> None:
    if rule.mode == "exit":
        os._exit(rule.exit_code)
    if rule.mode == "refuse":
        raise Refused(rule.message)
    if rule.mode == "hang":
        time.sleep(rule.seconds)
        return
    if rule.mode == "raise":
        exc_type = getattr(builtins, rule.exc, RuntimeError)
        if not (isinstance(exc_type, type) and issubclass(exc_type, BaseException)):
            exc_type = RuntimeError
        raise exc_type(rule.message)
    if rule.mode == "torn":  # only meaningful at mangle() sites
        return
    raise ValueError(f"unknown fault mode {rule.mode!r}")


def check(
    stage: str, point: Optional[Dict] = None,
    replica: Optional[str] = None,
) -> None:
    """Production hook: fire any armed rule matching (stage, point)."""
    plan = active_plan()
    if plan is None:
        return
    for index, rule in enumerate(plan.rules):
        if rule.mode == "torn":
            continue
        if rule.matches(stage, point, replica) and plan._claim(index, rule):
            _fire(rule)


def mangle(
    stage: str, point: Optional[Dict], payload: str,
    replica: Optional[str] = None,
) -> str:
    """Production hook: corrupt ``payload`` if a torn-write rule fires."""
    plan = active_plan()
    if plan is None:
        return payload
    for index, rule in enumerate(plan.rules):
        if rule.mode != "torn":
            continue
        if rule.matches(stage, point, replica) and plan._claim(index, rule):
            return payload[: max(1, len(payload) // 2)]
    return payload


def replica_plan(
    kind: str,
    replica: Optional[str] = None,
    *,
    times: Optional[int] = None,
    seconds: float = 1.0,
) -> FaultPlan:
    """A canned replica-scoped fault plan for fleet tests.

    Args:
        kind: ``"kill-one"`` (the targeted replica ``os._exit``\\ s on
            its next evaluate request — a SIGKILL mid-explore),
            ``"flapping"`` (it refuses both evaluate requests and
            ``/readyz`` probes, so breakers open and half-open probes
            fail), or ``"slow-replica"`` (its responses hang for
            ``seconds`` — the hedged-request scenario).
        replica: Replica identity to scope the rules to (``None`` hits
            every replica — only sensible for single-replica tests).
        times: Fire budget per rule; defaults to 1 for ``kill-one`` and
            unlimited for the others.
        seconds: Hang duration for ``slow-replica``.
    """
    if kind == "kill-one":
        rules = [FaultRule(
            mode="exit", stage="serve_request", replica=replica,
            times=1 if times is None else times,
        )]
    elif kind == "flapping":
        rules = [
            FaultRule(mode="refuse", stage="serve_request",
                      replica=replica, times=times),
            FaultRule(mode="refuse", stage="serve_probe",
                      replica=replica, times=times),
        ]
    elif kind == "slow-replica":
        rules = [FaultRule(
            mode="hang", stage="serve_request", replica=replica,
            times=times, seconds=seconds,
        )]
    else:
        raise ValueError(f"unknown replica plan kind {kind!r}")
    return FaultPlan(rules=rules)
