"""Latency models mapping gates to durations in microseconds.

Two levels exist, matching the paper:

* :class:`PhysicalLatencyModel` prices physical gates straight from
  :class:`repro.tech.TechnologyParams` (Table 1).
* :class:`LogicalLatencyModel` prices *encoded* gates: a transversal gate
  costs one physical gate of the same kind (all seven physical gates fire in
  parallel), while non-transversal gates cost the data-side interaction
  latency of their ancilla-consumption circuit. QEC interaction latency is
  priced separately so kernel analysis (Table 2) can split the three
  components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.circuits.gate import Gate, GateKind
from repro.tech import TechnologyParams


class LatencyModel(Protocol):
    """Anything that can price a gate in microseconds."""

    def gate_latency(self, gate: Gate) -> float:
        """Latency of executing ``gate``, in microseconds."""
        ...


@dataclass(frozen=True)
class PhysicalLatencyModel:
    """Prices physical gates from technology parameters (Table 1)."""

    tech: TechnologyParams

    def gate_latency(self, gate: Gate) -> float:
        kind = gate.kind
        if kind is GateKind.PREP:
            return self.tech.t_prep
        if kind is GateKind.MEASURE:
            return self.tech.t_meas
        if kind is GateKind.TWO_QUBIT:
            return self.tech.t_2q
        return self.tech.t_1q


@dataclass(frozen=True)
class LogicalLatencyModel:
    """Prices encoded gates on a CSS code with transversal implementations.

    A transversal encoded gate takes the latency of one physical gate of the
    same kind, since the per-physical-qubit gates run in parallel. Encoded
    measurement takes one physical measurement. Non-transversal one-qubit
    gates (the pi/8 gate) interact transversally with a prepared ancilla:
    the data-side latency is CX + measure + conditional correction
    (Figure 5a), assuming the ancilla is ready.

    Attributes:
        tech: Physical technology parameters.
    """

    tech: TechnologyParams

    def gate_latency(self, gate: Gate) -> float:
        kind = gate.kind
        if kind is GateKind.PREP:
            # Encoded preparation is done offline in factories; from the
            # data's perspective a fresh encoded qubit is swapped in.
            return self.tech.t_prep
        if kind is GateKind.MEASURE:
            return self.tech.t_meas
        if gate.is_non_transversal:
            return self.non_transversal_interaction_latency()
        if kind is GateKind.TWO_QUBIT:
            return self.tech.t_2q
        return self.tech.t_1q

    def non_transversal_interaction_latency(self) -> float:
        """Data-side latency of consuming a pi/8 ancilla (Figure 5a).

        Transversal CX between ancilla and data, transversal measurement of
        the ancilla block, then a classically conditioned transversal
        correction on the data.
        """
        return self.tech.t_2q + self.tech.t_meas + self.tech.t_1q

    def qec_interaction_latency(self) -> float:
        """Data-side latency of one QEC step (Figure 2), ancillae ready.

        Bit correction then phase correction; each is a transversal CX with
        a prepared encoded-zero ancilla, a transversal measurement of the
        ancilla, and a conditional transversal correction on the data
        (Section 2.3: the corrections are fully transversal).
        """
        per_correction = self.tech.t_2q + self.tech.t_meas + self.tech.t_1q
        return 2 * per_correction
