"""The Circuit container: an ordered list of gates over indexed qubits."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.circuits.gate import Gate, GateType


class CircuitError(ValueError):
    """Raised on structurally invalid circuit construction."""


class Circuit:
    """An ordered sequence of :class:`Gate` operations over qubits 0..n-1.

    The container is append-only by convention; builders produce new
    circuits rather than mutating shared ones. Convenience methods exist
    for every gate in the set, e.g. ``circ.cx(0, 1)``, ``circ.t(2)``,
    ``circ.measure_z(3, "m0")``. All builder methods return ``self`` so
    construction chains.

    Args:
        num_qubits: Number of qubits addressed by this circuit.
        name: Optional human-readable name (used in reports).
    """

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits < 0:
            raise CircuitError(f"num_qubits must be >= 0, got {num_qubits}")
        self._num_qubits = num_qubits
        self._gates: List[Gate] = []
        self._result_bits: Dict[str, int] = {}
        self.name = name

    # ------------------------------------------------------------------
    # Introspection

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def gates(self) -> Tuple[Gate, ...]:
        return tuple(self._gates)

    @property
    def result_bits(self) -> Tuple[str, ...]:
        """Classical result-bit names in definition order."""
        return tuple(self._result_bits)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index: int) -> Gate:
        return self._gates[index]

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, qubits={self._num_qubits}, "
            f"gates={len(self._gates)})"
        )

    def gate_counts(self) -> Counter:
        """Histogram of gate types."""
        return Counter(g.gate_type for g in self._gates)

    def count(self, gate_type: GateType) -> int:
        return sum(1 for g in self._gates if g.gate_type == gate_type)

    def non_transversal_count(self) -> int:
        """Gates needing encoded-ancilla constructions when run encoded."""
        return sum(1 for g in self._gates if g.is_non_transversal)

    def two_qubit_count(self) -> int:
        return sum(1 for g in self._gates if g.is_two_qubit)

    def qubits_used(self) -> Tuple[int, ...]:
        used = sorted({q for g in self._gates for q in g.qubits})
        return tuple(used)

    def depth(self) -> int:
        """Circuit depth counting every gate as one time step."""
        frontier = [0] * self._num_qubits
        for gate in self._gates:
            level = max(frontier[q] for q in gate.qubits) + 1
            for q in gate.qubits:
                frontier[q] = level
        return max(frontier, default=0)

    # ------------------------------------------------------------------
    # Construction

    def append(self, gate: Gate) -> "Circuit":
        """Append a pre-built gate after validating its qubit indices."""
        for q in gate.qubits:
            if q >= self._num_qubits:
                raise CircuitError(
                    f"gate {gate.describe()} addresses qubit {q} but circuit "
                    f"has {self._num_qubits} qubits"
                )
        if gate.result is not None:
            if gate.result in self._result_bits:
                raise CircuitError(f"result bit {gate.result!r} already written")
            self._result_bits[gate.result] = len(self._gates)
        if gate.condition is not None and gate.condition not in self._result_bits:
            raise CircuitError(
                f"gate conditioned on unwritten bit {gate.condition!r}"
            )
        self._gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        for gate in gates:
            self.append(gate)
        return self

    def compose(
        self, other: "Circuit", qubit_map: Optional[Sequence[int]] = None
    ) -> "Circuit":
        """Append another circuit, remapping its qubits through ``qubit_map``.

        Args:
            other: Circuit to inline. Its result-bit names are prefixed with
                its name if they would collide.
            qubit_map: ``qubit_map[i]`` is the qubit in ``self`` that
                ``other``'s qubit ``i`` maps to. Identity when omitted.
        """
        if qubit_map is None:
            qubit_map = range(other.num_qubits)
        qubit_map = list(qubit_map)
        if len(qubit_map) < other.num_qubits:
            raise CircuitError(
                f"qubit_map covers {len(qubit_map)} qubits, "
                f"sub-circuit needs {other.num_qubits}"
            )
        rename: Dict[str, str] = {}
        for bit in other.result_bits:
            new_bit = bit
            if new_bit in self._result_bits:
                suffix = 0
                while f"{other.name}.{bit}.{suffix}" in self._result_bits:
                    suffix += 1
                new_bit = f"{other.name}.{bit}.{suffix}"
            rename[bit] = new_bit
        for gate in other:
            mapped = Gate(
                gate_type=gate.gate_type,
                qubits=tuple(qubit_map[q] for q in gate.qubits),
                angle_k=gate.angle_k,
                condition=rename.get(gate.condition, gate.condition)
                if gate.condition
                else None,
                result=rename.get(gate.result) if gate.result else None,
                tag=gate.tag,
            )
            self.append(mapped)
        return self

    def copy(self, name: Optional[str] = None) -> "Circuit":
        dup = Circuit(self._num_qubits, name or self.name)
        dup._gates = list(self._gates)
        dup._result_bits = dict(self._result_bits)
        return dup

    # ------------------------------------------------------------------
    # Gate shorthands

    def _add(self, gate_type: GateType, *qubits: int, **kwargs) -> "Circuit":
        return self.append(Gate(gate_type, tuple(qubits), **kwargs))

    def prep_0(self, q: int, **kw) -> "Circuit":
        return self._add(GateType.PREP_0, q, **kw)

    def prep_plus(self, q: int, **kw) -> "Circuit":
        return self._add(GateType.PREP_PLUS, q, **kw)

    def x(self, q: int, **kw) -> "Circuit":
        return self._add(GateType.X, q, **kw)

    def y(self, q: int, **kw) -> "Circuit":
        return self._add(GateType.Y, q, **kw)

    def z(self, q: int, **kw) -> "Circuit":
        return self._add(GateType.Z, q, **kw)

    def h(self, q: int, **kw) -> "Circuit":
        return self._add(GateType.H, q, **kw)

    def s(self, q: int, **kw) -> "Circuit":
        return self._add(GateType.S, q, **kw)

    def sdg(self, q: int, **kw) -> "Circuit":
        return self._add(GateType.S_DAG, q, **kw)

    def t(self, q: int, **kw) -> "Circuit":
        return self._add(GateType.T, q, **kw)

    def tdg(self, q: int, **kw) -> "Circuit":
        return self._add(GateType.T_DAG, q, **kw)

    def rz(self, q: int, k: int, **kw) -> "Circuit":
        return self._add(GateType.RZ, q, angle_k=k, **kw)

    def cx(self, control: int, target: int, **kw) -> "Circuit":
        return self._add(GateType.CX, control, target, **kw)

    def cz(self, control: int, target: int, **kw) -> "Circuit":
        return self._add(GateType.CZ, control, target, **kw)

    def cs(self, control: int, target: int, **kw) -> "Circuit":
        return self._add(GateType.CS, control, target, **kw)

    def crz(self, control: int, target: int, k: int, **kw) -> "Circuit":
        return self._add(GateType.CRZ, control, target, angle_k=k, **kw)

    def swap(self, a: int, b: int, **kw) -> "Circuit":
        return self._add(GateType.SWAP, a, b, **kw)

    def ccx(self, control_a: int, control_b: int, target: int, **kw) -> "Circuit":
        return self._add(GateType.CCX, control_a, control_b, target, **kw)

    def measure_z(self, q: int, result: str, **kw) -> "Circuit":
        return self._add(GateType.MEASURE_Z, q, result=result, **kw)

    def measure_x(self, q: int, result: str, **kw) -> "Circuit":
        return self._add(GateType.MEASURE_X, q, result=result, **kw)
