"""Compiled circuits: a struct-of-arrays lowering of :class:`Circuit`.

The dataflow simulator's hot loop visits every gate of a decomposed
kernel once per sweep point. Walking :class:`~repro.circuits.gate.Gate`
objects costs a dict lookup, several property evaluations and a latency
method call per gate; across a Figure 15 sweep (dozens of points, three
architectures) that object traffic dominates wall-clock. Compilation
pays those costs exactly once per ``(circuit, tech)`` pair:

* gate types are interned to small integers (enum-definition order);
* operand qubits are flattened into parallel index lists with ``-1``
  sentinels for absent operands (arity is at most 3);
* per-gate logical latencies are precomputed from
  :class:`~repro.circuits.latency.LogicalLatencyModel`;
* classical condition/result bit names are interned to integer ids;
* movement class (none / one-qubit / two-qubit) and pi/8-consumption
  flags are precomputed, along with the aggregate counts the simulator
  needs for closed-form ancilla and teleport accounting.

The compiled form is immutable and safe to share between simulators,
sweep points and worker processes. :func:`compile_circuit` memoizes per
circuit object (keyed by gate count and technology, since circuits are
append-only by convention), so repeated sweeps over the same kernel
compile exactly once.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gate import PI8_CONSUMING_GATES, GateType
from repro.circuits.latency import LogicalLatencyModel
from repro.obs.trace import span as _span
from repro.tech import TechnologyParams

#: Gate-type interning table: enum-definition order. Consumed by the
#: schedule/critical-path lowering (:func:`dataflow_metadata`), which
#: needs the gate identity without the Gate object.
GATE_CODES: Dict[GateType, int] = {t: i for i, t in enumerate(GateType)}

#: Movement classes (see ``move_kind``).
MOVE_NONE = 0  # preparation / measurement: runs in place
MOVE_ONE_QUBIT = 1
MOVE_TWO_QUBIT = 2


@dataclass(frozen=True, eq=False)
class CompiledCircuit:
    """Struct-of-arrays form of one circuit under one technology.

    All per-gate sequences are parallel (index ``i`` describes gate ``i``
    of the source circuit, in program order). Plain Python lists are used
    for the fields the sequential simulator loop indexes — scalar list
    access is several times faster than scalar numpy access — while the
    fields consumed by vectorized supply math are numpy arrays.

    Attributes:
        num_qubits: Qubit count of the source circuit.
        num_gates: Gate count of the source circuit.
        tech: Technology the latencies were priced under.
        gate_codes: Int-coded gate types (:data:`GATE_CODES`).
        q0: First operand qubit of each gate.
        q1: Second operand qubit, or ``-1``.
        q2: Third operand qubit (Toffoli macro), or ``-1``.
        latency_us: Logical gate latency of each gate.
        move_kind: Movement class of each gate (``MOVE_*``).
        cond_id: Interned condition-bit id, or ``-1``.
        result_id: Interned result-bit id, or ``-1``.
        bit_names: Interned classical bit names, id order.
        pi8_flag: 1 for gates consuming an encoded pi/8 ancilla.
        pi8_indices: Gate indices of the pi/8 consumers, program order.
        pi8_count: Number of pi/8-consuming gates.
        one_qubit_moves: Gates in movement class ``MOVE_ONE_QUBIT``.
        two_qubit_moves: Gates in movement class ``MOVE_TWO_QUBIT``.
        source_ref: Weak reference to the source circuit, so consumers
            can reject a compiled form handed to the wrong circuit (two
            different circuits can share a gate count). Weak because the
            compilation cache must not keep its own keys alive.
    """

    num_qubits: int
    num_gates: int
    tech: TechnologyParams
    gate_codes: Tuple[int, ...]
    q0: List[int]
    q1: List[int]
    q2: List[int]
    latency_us: List[float]
    move_kind: List[int]
    cond_id: List[int]
    result_id: List[int]
    bit_names: Tuple[str, ...]
    pi8_flag: List[int]
    pi8_indices: np.ndarray
    pi8_count: int
    one_qubit_moves: int
    two_qubit_moves: int
    source_ref: "weakref.ref[Circuit]"

    @property
    def num_bits(self) -> int:
        return len(self.bit_names)

    def compiled_from(self, circuit: Circuit) -> bool:
        """Whether this form was compiled from ``circuit``.

        False when the source weak reference has died: simulating needs
        the source circuit in hand, which keeps the reference alive, so
        a dead reference means ``circuit`` is necessarily some other
        object — shape checks alone could not tell it apart.
        """
        return self.source_ref() is circuit


def _compile(circuit: Circuit, tech: TechnologyParams) -> CompiledCircuit:
    with _span("compile.lower", gates=len(circuit), tech=tech.name):
        return _compile_body(circuit, tech)


def _compile_body(circuit: Circuit, tech: TechnologyParams) -> CompiledCircuit:
    logical = LogicalLatencyModel(tech)
    q0: List[int] = []
    q1: List[int] = []
    q2: List[int] = []
    codes: List[int] = []
    latency: List[float] = []
    move_kind: List[int] = []
    cond_id: List[int] = []
    result_id: List[int] = []
    pi8_flag: List[int] = []
    pi8_indices: List[int] = []
    bit_ids: Dict[str, int] = {}
    for i, gate in enumerate(circuit):
        qubits = gate.qubits
        q0.append(qubits[0])
        q1.append(qubits[1] if len(qubits) > 1 else -1)
        q2.append(qubits[2] if len(qubits) > 2 else -1)
        codes.append(GATE_CODES[gate.gate_type])
        latency.append(logical.gate_latency(gate))
        if gate.is_prep or gate.is_measurement:
            move_kind.append(MOVE_NONE)
        elif gate.is_two_qubit:
            move_kind.append(MOVE_TWO_QUBIT)
        else:
            move_kind.append(MOVE_ONE_QUBIT)
        for name, ids in ((gate.condition, cond_id), (gate.result, result_id)):
            if name is None:
                ids.append(-1)
            else:
                if name not in bit_ids:
                    bit_ids[name] = len(bit_ids)
                ids.append(bit_ids[name])
        flag = 1 if gate.gate_type in PI8_CONSUMING_GATES else 0
        pi8_flag.append(flag)
        if flag:
            pi8_indices.append(i)
    return CompiledCircuit(
        num_qubits=circuit.num_qubits,
        num_gates=len(circuit),
        tech=tech,
        gate_codes=tuple(codes),
        q0=q0,
        q1=q1,
        q2=q2,
        latency_us=latency,
        move_kind=move_kind,
        cond_id=cond_id,
        result_id=result_id,
        bit_names=tuple(bit_ids),
        pi8_flag=pi8_flag,
        pi8_indices=np.array(pi8_indices, dtype=np.intp),
        pi8_count=len(pi8_indices),
        one_qubit_moves=move_kind.count(MOVE_ONE_QUBIT),
        two_qubit_moves=move_kind.count(MOVE_TWO_QUBIT),
        source_ref=weakref.ref(circuit),
    )


@dataclass(frozen=True, eq=False)
class CompiledDataflow:
    """Dependency structure of a compiled circuit, in flat array form.

    The dependency rule matches :class:`repro.circuits.dag.CircuitDag`
    exactly: two gates touching the same qubit are ordered, and a
    conditioned gate depends on the measurement writing its condition
    bit. Per-gate predecessor lists are stored as a CSR pair
    (``pred_offsets``/``pred_indices``, ascending within each gate), plus
    a level grouping that lets ASAP-style longest-path sweeps run as one
    vectorized segment-reduction per dependency level instead of a
    per-gate Python walk over ``ScheduleEntry`` objects.

    Attributes:
        pred_offsets: ``pred_offsets[i]:pred_offsets[i+1]`` slices
            ``pred_indices`` to gate ``i``'s predecessors (ascending).
        pred_indices: Concatenated predecessor gate indices.
        num_levels: Number of dependency levels (circuit unit-depth).
        level_order: Gate indices grouped by level, program order within
            a level. All predecessors of a gate sit in earlier levels.
        level_offsets: ``level_order[level_offsets[L]:level_offsets[L+1]]``
            are the gates of level ``L``.
        level_pred_seg: Segment starts into ``level_pred_flat`` aligned
            with ``level_order`` positions (length ``num_gates + 1``).
        level_pred_flat: ``pred_indices`` reordered to follow
            ``level_order``, so one ``np.maximum.reduceat`` per level
            computes every gate-of-that-level's start time.
    """

    pred_offsets: np.ndarray
    pred_indices: np.ndarray
    num_levels: int
    level_order: np.ndarray
    level_offsets: np.ndarray
    level_pred_seg: np.ndarray
    level_pred_flat: np.ndarray


def _build_dataflow(compiled: CompiledCircuit) -> CompiledDataflow:
    n = compiled.num_gates
    q0, q1, q2 = compiled.q0, compiled.q1, compiled.q2
    cond_id, result_id = compiled.cond_id, compiled.result_id
    last_on_qubit = [-1] * compiled.num_qubits
    bit_writer = [-1] * compiled.num_bits
    preds: List[List[int]] = [[] for _ in range(n)]
    level = [0] * n
    for i in range(n):
        deps = set()
        for q in (q0[i], q1[i], q2[i]):
            if q < 0:
                continue
            j = last_on_qubit[q]
            if j >= 0:
                deps.add(j)
            last_on_qubit[q] = i
        c = cond_id[i]
        if c >= 0 and bit_writer[c] >= 0:
            deps.add(bit_writer[c])
        r = result_id[i]
        if r >= 0:
            bit_writer[r] = i
        ordered = sorted(deps)
        preds[i] = ordered
        if ordered:
            level[i] = max(level[p] for p in ordered) + 1
    counts = np.array([len(p) for p in preds], dtype=np.intp)
    pred_offsets = np.zeros(n + 1, dtype=np.intp)
    np.cumsum(counts, out=pred_offsets[1:])
    pred_indices = np.array(
        [p for row in preds for p in row], dtype=np.intp
    )
    level_arr = np.array(level, dtype=np.intp)
    num_levels = int(level_arr.max()) + 1 if n else 0
    order = np.argsort(level_arr, kind="stable").astype(np.intp)
    level_offsets = np.zeros(num_levels + 1, dtype=np.intp)
    np.cumsum(np.bincount(level_arr, minlength=num_levels), out=level_offsets[1:])
    seg = np.zeros(n + 1, dtype=np.intp)
    np.cumsum(counts[order], out=seg[1:])
    flat = np.concatenate(
        [np.asarray(preds[g], dtype=np.intp) for g in order]
    ) if pred_indices.size else np.empty(0, dtype=np.intp)
    return CompiledDataflow(
        pred_offsets=pred_offsets,
        pred_indices=pred_indices,
        num_levels=num_levels,
        level_order=order,
        level_offsets=level_offsets,
        level_pred_seg=seg,
        level_pred_flat=flat,
    )


_DATAFLOW_CACHE: "weakref.WeakKeyDictionary[CompiledCircuit, CompiledDataflow]" = (
    weakref.WeakKeyDictionary()
)


def dataflow_metadata(compiled: CompiledCircuit) -> CompiledDataflow:
    """Dependency arrays for ``compiled``, memoized per compiled form.

    Built lazily because only schedule-style consumers (kernel analysis)
    need it; the dataflow simulator's sequential replay does not. The
    build is one pass over the already-flattened operand arrays — no
    ``Gate`` objects are touched.
    """
    df = _DATAFLOW_CACHE.get(compiled)
    if df is None:
        with _span("compile.dataflow_metadata", gates=compiled.num_gates):
            df = _build_dataflow(compiled)
        _DATAFLOW_CACHE[compiled] = df
    return df


_CACHE: "weakref.WeakKeyDictionary[Circuit, Dict[tuple, CompiledCircuit]]" = (
    weakref.WeakKeyDictionary()
)


def compile_circuit(circuit: Circuit, tech: TechnologyParams) -> CompiledCircuit:
    """Lower ``circuit`` to array form, memoized per ``(circuit, tech)``.

    The cache is keyed on the circuit object plus its current gate count:
    circuits are append-only by convention, so a changed length is the
    only mutation that can invalidate a previous compilation. Entries die
    with their circuit (weak keys), so sweeping many kernels does not
    accumulate garbage.
    """
    per_circuit = _CACHE.get(circuit)
    key = (len(circuit), tech)
    if per_circuit is not None:
        cached = per_circuit.get(key)
        if cached is not None:
            return cached
    compiled = _compile(circuit, tech)
    if per_circuit is None:
        per_circuit = {}
        _CACHE[circuit] = per_circuit
    per_circuit[key] = compiled
    return compiled
