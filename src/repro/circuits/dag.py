"""Dataflow analysis over circuits: dependency DAG, schedules, critical path.

Dependencies follow qubit lines (two gates touching the same qubit are
ordered) and classical bits (a conditioned gate depends on the measurement
producing its condition bit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.circuits.latency import LatencyModel


@dataclass(frozen=True)
class ScheduleEntry:
    """One gate's placement in an ASAP schedule."""

    index: int
    gate: Gate
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


class CircuitDag:
    """Dependency DAG of a circuit.

    Nodes are gate indices into ``circuit.gates``; edges run from each gate
    to the next gate on any of its qubit lines and from measurements to the
    gates conditioned on their results.
    """

    def __init__(self, circuit: Circuit) -> None:
        self._circuit = circuit
        n = len(circuit)
        self._succ: List[List[int]] = [[] for _ in range(n)]
        self._pred: List[List[int]] = [[] for _ in range(n)]
        last_on_qubit: Dict[int, int] = {}
        bit_writer: Dict[str, int] = {}
        for i, gate in enumerate(circuit):
            deps = set()
            for q in gate.qubits:
                if q in last_on_qubit:
                    deps.add(last_on_qubit[q])
                last_on_qubit[q] = i
            if gate.condition is not None and gate.condition in bit_writer:
                deps.add(bit_writer[gate.condition])
            if gate.result is not None:
                bit_writer[gate.result] = i
            for d in sorted(deps):
                self._succ[d].append(i)
                self._pred[i].append(d)

    @property
    def circuit(self) -> Circuit:
        return self._circuit

    def predecessors(self, index: int) -> Tuple[int, ...]:
        return tuple(self._pred[index])

    def successors(self, index: int) -> Tuple[int, ...]:
        return tuple(self._succ[index])

    def sources(self) -> Tuple[int, ...]:
        """Gates with no dependencies."""
        return tuple(i for i, p in enumerate(self._pred) if not p)

    def sinks(self) -> Tuple[int, ...]:
        """Gates nothing depends on."""
        return tuple(i for i, s in enumerate(self._succ) if not s)

    def levels(self) -> List[int]:
        """Unit-latency ASAP level of every gate (longest path in edges)."""
        level = [0] * len(self._pred)
        for i in range(len(self._pred)):  # indices are already topological
            for p in self._pred[i]:
                level[i] = max(level[i], level[p] + 1)
        return level


def asap_schedule(
    circuit: Circuit, latency: LatencyModel
) -> List[ScheduleEntry]:
    """As-soon-as-possible schedule assuming unlimited parallel hardware.

    Each gate starts as soon as all its dependencies finish. This is the
    "speed of data" execution model: the schedule length is limited only by
    data dependencies, exactly the paper's Figure 1b.
    """
    dag = CircuitDag(circuit)
    entries: List[Optional[ScheduleEntry]] = [None] * len(circuit)
    for i, gate in enumerate(circuit):
        start = 0.0
        for p in dag.predecessors(i):
            pred_entry = entries[p]
            assert pred_entry is not None  # topological order guarantees this
            start = max(start, pred_entry.finish)
        duration = latency.gate_latency(gate)
        entries[i] = ScheduleEntry(i, gate, start, start + duration)
    return [e for e in entries if e is not None]


def critical_path(circuit: Circuit, latency: LatencyModel) -> float:
    """Length (microseconds) of the data-dependency critical path."""
    schedule = asap_schedule(circuit, latency)
    return max((e.finish for e in schedule), default=0.0)


def critical_path_gates(
    circuit: Circuit, latency: LatencyModel
) -> List[int]:
    """Indices of one maximal-latency chain through the circuit."""
    schedule = asap_schedule(circuit, latency)
    if not schedule:
        return []
    dag = CircuitDag(circuit)
    end = max(schedule, key=lambda e: e.finish)
    chain = [end.index]
    current = end
    while dag.predecessors(current.index):
        preds = dag.predecessors(current.index)
        blocker = max(
            (schedule[p] for p in preds), key=lambda e: e.finish
        )
        # Follow the predecessor that actually gates our start time; if the
        # gate started at 0 with predecessors finishing earlier, any works.
        chain.append(blocker.index)
        current = blocker
    chain.reverse()
    return chain


def schedule_makespan(entries: Sequence[ScheduleEntry]) -> float:
    return max((e.finish for e in entries), default=0.0)
