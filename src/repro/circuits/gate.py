"""Gate records and gate-set metadata.

The gate set covers what the paper needs:

* the transversal gates of the [[7,1,3]] Steane code — X, Y, Z, H, S
  (the "Phase" gate), S_DAG and CX (Section 2.1);
* the non-transversal pi/8 gate T / T_DAG (Section 2.4);
* small controlled rotations CRZ(pi/2^k) used by the QFT (Section 2.5),
  carried symbolically with their ``k``;
* state preparation, measurement, and classically conditioned corrections
  (used by error-correction and the pi/8-ancilla consumption circuit);
* the two-qubit CZ and CS gates appearing in the pi/8 ancilla prepare
  (Figure 5b).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class GateKind(enum.Enum):
    """Broad operational class of a gate, used for latency lookup."""

    PREP = "prep"
    ONE_QUBIT = "one_qubit"
    TWO_QUBIT = "two_qubit"
    MEASURE = "measure"


class GateType(enum.Enum):
    """Concrete gate identities."""

    PREP_0 = "prep_0"
    PREP_PLUS = "prep_plus"
    X = "x"
    Y = "y"
    Z = "z"
    H = "h"
    S = "s"
    S_DAG = "sdg"
    T = "t"
    T_DAG = "tdg"
    RZ = "rz"
    CX = "cx"
    CZ = "cz"
    CS = "cs"
    CRZ = "crz"
    SWAP = "swap"
    CCX = "ccx"  # Toffoli macro; decomposed before encoded execution
    MEASURE_Z = "measure_z"
    MEASURE_X = "measure_x"


GATE_ARITY = {
    GateType.PREP_0: 1,
    GateType.PREP_PLUS: 1,
    GateType.X: 1,
    GateType.Y: 1,
    GateType.Z: 1,
    GateType.H: 1,
    GateType.S: 1,
    GateType.S_DAG: 1,
    GateType.T: 1,
    GateType.T_DAG: 1,
    GateType.RZ: 1,
    GateType.CX: 2,
    GateType.CZ: 2,
    GateType.CS: 2,
    GateType.CRZ: 2,
    GateType.SWAP: 2,
    GateType.CCX: 3,
    GateType.MEASURE_Z: 1,
    GateType.MEASURE_X: 1,
}

_KIND_BY_TYPE = {
    GateType.PREP_0: GateKind.PREP,
    GateType.PREP_PLUS: GateKind.PREP,
    GateType.MEASURE_Z: GateKind.MEASURE,
    GateType.MEASURE_X: GateKind.MEASURE,
}

#: Gates with a transversal implementation on the [[7,1,3]] code (Section 2.1).
TRANSVERSAL_GATES = frozenset(
    {
        GateType.X,
        GateType.Y,
        GateType.Z,
        GateType.H,
        GateType.S,
        GateType.S_DAG,
        GateType.CX,
        GateType.CZ,
        GateType.MEASURE_Z,
        GateType.MEASURE_X,
    }
)

#: Gates requiring an encoded-ancilla construction on the [[7,1,3]] code.
NON_TRANSVERSAL_GATES = frozenset(
    {GateType.T, GateType.T_DAG, GateType.RZ, GateType.CRZ, GateType.CS, GateType.CCX}
)

#: Gates consuming one encoded pi/8 ancilla when executed encoded
#: (Figure 5a). Shared by the kernel analysis and both dataflow engines,
#: which must agree on it exactly.
PI8_CONSUMING_GATES = frozenset({GateType.T, GateType.T_DAG})

#: Gates in the Clifford group (stabilizer-preserving), for Pauli propagation.
CLIFFORD_GATES = frozenset(
    {
        GateType.X,
        GateType.Y,
        GateType.Z,
        GateType.H,
        GateType.S,
        GateType.S_DAG,
        GateType.CX,
        GateType.CZ,
        GateType.SWAP,
    }
)

TWO_QUBIT_GATES = frozenset(t for t, n in GATE_ARITY.items() if n == 2)


@dataclass(frozen=True)
class Gate:
    """One gate application in a circuit.

    Attributes:
        gate_type: Which gate this is.
        qubits: The qubit indices it acts on; for controlled gates the
            control comes first.
        angle_k: For RZ / CRZ, the rotation is by ``pi / 2**angle_k``
            (so ``angle_k=3`` is the pi/8 gate T up to convention).
        condition: Optional classical bit name; if set, the gate is applied
            conditioned on that measurement outcome being 1.
        result: Optional classical bit name a measurement writes to.
    """

    gate_type: GateType
    qubits: Tuple[int, ...]
    angle_k: Optional[int] = None
    condition: Optional[str] = None
    result: Optional[str] = None
    tag: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        expected = GATE_ARITY[self.gate_type]
        if len(self.qubits) != expected:
            raise ValueError(
                f"{self.gate_type.value} acts on {expected} qubit(s), "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubit in {self.qubits}")
        if any(q < 0 for q in self.qubits):
            raise ValueError(f"negative qubit index in {self.qubits}")
        if self.gate_type in (GateType.RZ, GateType.CRZ):
            if self.angle_k is None or self.angle_k < 1:
                raise ValueError(
                    f"{self.gate_type.value} requires angle_k >= 1, got {self.angle_k}"
                )
        if self.is_measurement and self.result is None:
            raise ValueError("measurements must name a result bit")

    @property
    def kind(self) -> GateKind:
        """The operational class used for latency lookup."""
        if self.gate_type in _KIND_BY_TYPE:
            return _KIND_BY_TYPE[self.gate_type]
        if GATE_ARITY[self.gate_type] >= 2:
            return GateKind.TWO_QUBIT
        return GateKind.ONE_QUBIT

    @property
    def is_measurement(self) -> bool:
        return self.gate_type in (GateType.MEASURE_Z, GateType.MEASURE_X)

    @property
    def is_prep(self) -> bool:
        return self.gate_type in (GateType.PREP_0, GateType.PREP_PLUS)

    @property
    def is_two_qubit(self) -> bool:
        return GATE_ARITY[self.gate_type] == 2

    @property
    def is_transversal(self) -> bool:
        """Whether the encoded version of this gate is transversal."""
        if self.gate_type in TRANSVERSAL_GATES:
            return True
        return self.is_prep

    @property
    def is_non_transversal(self) -> bool:
        return self.gate_type in NON_TRANSVERSAL_GATES

    @property
    def is_clifford(self) -> bool:
        return self.gate_type in CLIFFORD_GATES

    def describe(self) -> str:
        """Human-readable one-line description."""
        parts = [self.gate_type.value.upper()]
        if self.angle_k is not None:
            parts.append(f"(pi/2^{self.angle_k})")
        parts.append(" " + ",".join(f"q{q}" for q in self.qubits))
        if self.condition:
            parts.append(f" if {self.condition}")
        if self.result:
            parts.append(f" -> {self.result}")
        return "".join(parts)
