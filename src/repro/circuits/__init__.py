"""Quantum circuit intermediate representation.

This package provides the gate-level IR used throughout the library: a
:class:`~repro.circuits.gate.Gate` record, a :class:`~repro.circuits.circuit.Circuit`
container, and dataflow analyses (dependency DAG, ASAP schedule, critical
path) in :mod:`repro.circuits.dag`.

Circuits are used at two levels:

* *physical* circuits over physical qubits (ancilla preparation, encoding),
  whose latencies come from :class:`repro.tech.TechnologyParams`;
* *logical* circuits over encoded qubits (the benchmark kernels), whose
  per-gate costs come from the fault-tolerant constructions in
  :mod:`repro.codes` and :mod:`repro.ancilla`.
"""

from repro.circuits.circuit import Circuit, CircuitError
from repro.circuits.compiled import CompiledCircuit, compile_circuit
from repro.circuits.dag import CircuitDag, ScheduleEntry, asap_schedule, critical_path
from repro.circuits.gate import (
    CLIFFORD_GATES,
    GATE_ARITY,
    NON_TRANSVERSAL_GATES,
    PI8_CONSUMING_GATES,
    TRANSVERSAL_GATES,
    TWO_QUBIT_GATES,
    Gate,
    GateKind,
    GateType,
)
from repro.circuits.latency import (
    LatencyModel,
    LogicalLatencyModel,
    PhysicalLatencyModel,
)

__all__ = [
    "CLIFFORD_GATES",
    "Circuit",
    "CircuitDag",
    "CircuitError",
    "CompiledCircuit",
    "GATE_ARITY",
    "Gate",
    "GateKind",
    "GateType",
    "LatencyModel",
    "LogicalLatencyModel",
    "NON_TRANSVERSAL_GATES",
    "PI8_CONSUMING_GATES",
    "PhysicalLatencyModel",
    "ScheduleEntry",
    "TRANSVERSAL_GATES",
    "TWO_QUBIT_GATES",
    "asap_schedule",
    "compile_circuit",
    "critical_path",
]
