"""Latency-weighted movement routing through a layout.

Moving straight across a macroblock costs ``t_move``; changing heading
costs ``t_turn`` (Table 4: 1us vs 10us — "moving an ion around a corner
takes more time than moving straight"). Routing therefore minimizes total
time, not hop count, via Dijkstra over (cell, heading) states.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.layout.grid import Cell, Grid
from repro.layout.macroblock import Direction
from repro.tech import TechnologyParams


@dataclass(frozen=True)
class MovePlan:
    """A routed path and its cost decomposition.

    Attributes:
        cells: Visited cells, start and end inclusive.
        straight_moves: Traversals that kept heading.
        turns: Traversals that changed heading (including the first hop
            when an initial heading was given and differs).
    """

    cells: Tuple[Cell, ...]
    straight_moves: int
    turns: int

    def latency(self, tech: TechnologyParams) -> float:
        return self.straight_moves * tech.t_move + self.turns * tech.t_turn

    @property
    def hops(self) -> int:
        return self.straight_moves + self.turns


class Router:
    """Shortest-time router over a grid."""

    def __init__(self, grid: Grid, tech: TechnologyParams) -> None:
        self.grid = grid
        self.tech = tech

    def route(
        self,
        start: Cell,
        goal: Cell,
        initial_heading: Optional[Direction] = None,
    ) -> Optional[MovePlan]:
        """Minimum-latency path from ``start`` to ``goal``.

        Returns None when unreachable. The first hop costs ``t_move`` if it
        continues ``initial_heading`` (or no heading was given), else
        ``t_turn``.
        """
        if start not in self.grid or goal not in self.grid:
            return None
        if start == goal:
            return MovePlan((start,), 0, 0)
        t_move, t_turn = self.tech.t_move, self.tech.t_turn
        # State: (cell, heading). Heading None only at the start.
        best: Dict[Tuple[Cell, Optional[Direction]], float] = {}
        start_state = (start, initial_heading)
        best[start_state] = 0.0
        # Heap entries: (cost, tiebreak, cell, heading, path, moves, turns)
        counter = 0
        heap = [(0.0, counter, start, initial_heading, (start,), 0, 0)]
        while heap:
            cost, _, cell, heading, path, moves, turns = heapq.heappop(heap)
            if cell == goal:
                return MovePlan(path, moves, turns)
            if cost > best.get((cell, heading), float("inf")):
                continue
            for nbr_cell, direction in self.grid.neighbors(cell):
                is_turn = heading is not None and direction is not heading
                step = t_turn if is_turn else t_move
                new_cost = cost + step
                state = (nbr_cell, direction)
                if new_cost < best.get(state, float("inf")):
                    best[state] = new_cost
                    counter += 1
                    heapq.heappush(
                        heap,
                        (
                            new_cost,
                            counter,
                            nbr_cell,
                            direction,
                            path + (nbr_cell,),
                            moves + (0 if is_turn else 1),
                            turns + (1 if is_turn else 0),
                        ),
                    )
        return None

    def latency(self, start: Cell, goal: Cell) -> Optional[float]:
        plan = self.route(start, goal)
        return None if plan is None else plan.latency(self.tech)
