"""Hand-optimized operation-count schedules (Sections 4.3-4.4).

The paper expresses each functional unit's latency symbolically as a count
of physical operations, e.g. the simple ancilla factory's

    tprep + 2 tmeas + 6 t2q + 2 t1q + 8 tturn + 30 tmove  =  323 us.

:class:`OpSchedule` captures those counts and prices them against a
:class:`~repro.tech.TechnologyParams`, so every Table 5 / Table 7 latency
is reproduced exactly and remains valid under different technology
assumptions (the paper's "symbolic fashion").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.tech import TechnologyParams


@dataclass(frozen=True)
class OpSchedule:
    """Operation counts along a schedule's critical path.

    Attributes map one-to-one to the latency symbols of Tables 1 and 4.
    """

    name: str
    preps: int = 0
    one_qubit: int = 0
    two_qubit: int = 0
    measurements: int = 0
    turns: int = 0
    moves: int = 0

    def __post_init__(self) -> None:
        for field_name in (
            "preps", "one_qubit", "two_qubit", "measurements", "turns", "moves"
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")

    def latency(self, tech: TechnologyParams) -> float:
        """Total schedule latency in microseconds."""
        return (
            self.preps * tech.t_prep
            + self.one_qubit * tech.t_1q
            + self.two_qubit * tech.t_2q
            + self.measurements * tech.t_meas
            + self.turns * tech.t_turn
            + self.moves * tech.t_move
        )

    def symbolic(self) -> str:
        """The latency as the paper writes it, e.g. '3xt2q + 6xtturn'."""
        parts = []
        for count, symbol in (
            (self.preps, "tprep"),
            (self.measurements, "tmeas"),
            (self.two_qubit, "t2q"),
            (self.one_qubit, "t1q"),
            (self.turns, "tturn"),
            (self.moves, "tmove"),
        ):
            if count == 1:
                parts.append(symbol)
            elif count > 1:
                parts.append(f"{count}x{symbol}")
        return " + ".join(parts) if parts else "0"

    def combined(self, other: "OpSchedule", name: str) -> "OpSchedule":
        """Serial composition of two schedules."""
        return OpSchedule(
            name=name,
            preps=self.preps + other.preps,
            one_qubit=self.one_qubit + other.one_qubit,
            two_qubit=self.two_qubit + other.two_qubit,
            measurements=self.measurements + other.measurements,
            turns=self.turns + other.turns,
            moves=self.moves + other.moves,
        )


#: Section 4.3: the simple (non-pipelined) factory's hand-optimized
#: schedule for one complete Figure 4c preparation.
SIMPLE_FACTORY_SCHEDULE = OpSchedule(
    name="simple_factory",
    preps=1,
    measurements=2,
    two_qubit=6,
    one_qubit=2,
    turns=8,
    moves=30,
)

#: Table 5: functional-unit schedules of the pipelined zero-ancilla factory.
ZERO_FACTORY_SCHEDULES: Dict[str, OpSchedule] = {
    "zero_prep": OpSchedule("zero_prep", preps=1, one_qubit=1, turns=2, moves=1),
    "cx_stage": OpSchedule("cx_stage", two_qubit=3, turns=6, moves=5),
    "cat_prep": OpSchedule("cat_prep", two_qubit=2, turns=4, moves=2),
    "verification": OpSchedule(
        "verification", measurements=1, two_qubit=1, turns=2, moves=2
    ),
    "bp_correction": OpSchedule(
        "bp_correction", measurements=1, two_qubit=2, turns=6, moves=8
    ),
}

#: Table 7: stage schedules of the encoded pi/8 ancilla factory.
PI8_FACTORY_SCHEDULES: Dict[str, OpSchedule] = {
    "cat_state_prepare": OpSchedule(
        "cat_state_prepare", two_qubit=7, turns=14, moves=8
    ),
    "transversal_interact": OpSchedule(
        "transversal_interact", two_qubit=3, turns=2, moves=3
    ),
    "decode_store": OpSchedule("decode_store", two_qubit=7, turns=14, moves=8),
    "h_measure_correct": OpSchedule(
        "h_measure_correct", measurements=1, one_qubit=2, turns=2, moves=2
    ),
}
