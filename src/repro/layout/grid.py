"""Rectangular macroblock layouts.

A :class:`Grid` is a sparse mapping from (row, col) cells to
:class:`~repro.layout.macroblock.Macroblock` instances. Area — the paper's
universal hardware cost unit — is simply the number of placed blocks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.layout.macroblock import Direction, Macroblock

Cell = Tuple[int, int]


class GridError(ValueError):
    """Raised on invalid layout construction."""


class Grid:
    """A sparse rectangular layout of macroblocks."""

    def __init__(self, name: str = "layout") -> None:
        self.name = name
        self._blocks: Dict[Cell, Macroblock] = {}

    def place(self, cell: Cell, block: Macroblock) -> None:
        if cell in self._blocks:
            raise GridError(f"cell {cell} already occupied in {self.name}")
        self._blocks[cell] = block

    def block_at(self, cell: Cell) -> Optional[Macroblock]:
        return self._blocks.get(cell)

    def __contains__(self, cell: Cell) -> bool:
        return cell in self._blocks

    def __iter__(self) -> Iterator[Tuple[Cell, Macroblock]]:
        return iter(self._blocks.items())

    @property
    def area(self) -> int:
        """Total macroblock count — the paper's area measure."""
        return len(self._blocks)

    @property
    def gate_locations(self) -> List[Cell]:
        return [cell for cell, block in self._blocks.items() if block.has_gate_location]

    def bounding_box(self) -> Tuple[int, int, int, int]:
        """(min_row, min_col, max_row, max_col) of placed blocks."""
        if not self._blocks:
            raise GridError(f"{self.name} is empty")
        rows = [r for r, _ in self._blocks]
        cols = [c for _, c in self._blocks]
        return (min(rows), min(cols), max(rows), max(cols))

    def neighbors(self, cell: Cell) -> List[Tuple[Cell, Direction]]:
        """Cells reachable in one move: both ports must face each other."""
        block = self._blocks.get(cell)
        if block is None:
            return []
        out = []
        for direction in Direction:
            if not block.connects(direction):
                continue
            dr, dc = direction.delta
            nbr_cell = (cell[0] + dr, cell[1] + dc)
            nbr = self._blocks.get(nbr_cell)
            if nbr is not None and nbr.connects(direction.opposite):
                out.append((nbr_cell, direction))
        return out

    def validate_connected(self) -> None:
        """Every placed block must be reachable from every other."""
        if not self._blocks:
            return
        start = next(iter(self._blocks))
        seen = {start}
        stack = [start]
        while stack:
            cell = stack.pop()
            for nbr_cell, _ in self.neighbors(cell):
                if nbr_cell not in seen:
                    seen.add(nbr_cell)
                    stack.append(nbr_cell)
        unreachable = set(self._blocks) - seen
        if unreachable:
            raise GridError(
                f"{self.name}: {len(unreachable)} block(s) unreachable, "
                f"e.g. {sorted(unreachable)[:3]}"
            )

    def render(self) -> str:
        """ASCII rendering: gate blocks 'G', intersections '+', channels
        '|' / '-', turns 'L', dead ends 'D', empty cells ' '."""
        from repro.layout.macroblock import MacroblockType

        symbols = {
            MacroblockType.DEAD_END_GATE: "D",
            MacroblockType.STRAIGHT_CHANNEL_GATE: "G",
            MacroblockType.TURN: "L",
            MacroblockType.THREE_WAY: "+",
            MacroblockType.FOUR_WAY: "+",
        }
        min_r, min_c, max_r, max_c = self.bounding_box()
        lines = []
        for r in range(min_r, max_r + 1):
            row_chars = []
            for c in range(min_c, max_c + 1):
                block = self._blocks.get((r, c))
                if block is None:
                    row_chars.append(" ")
                elif block.block_type is MacroblockType.STRAIGHT_CHANNEL:
                    row_chars.append("|" if Direction.NORTH in block.ports else "-")
                else:
                    row_chars.append(symbols[block.block_type])
            lines.append("".join(row_chars))
        return "\n".join(lines)
