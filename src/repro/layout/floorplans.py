"""Macroblock floorplans for the pipelined factory units (Figure 13).

Each functional unit of the pipelined factories occupies a small
rectangular patch of macroblocks; these constructors build them so that
their areas and heights match the Table 5/7 values used by the factory
models, and so layout-level tests can check connectivity and gate
capacity independently of the performance model.
"""

from __future__ import annotations

from repro.layout.grid import Grid
from repro.layout.macroblock import (
    Direction,
    dead_end_gate,
    four_way,
    straight_channel,
    straight_channel_gate,
    three_way,
)


def crossbar_grid(height: int, columns: int = 2, name: str = "crossbar") -> Grid:
    """A factory crossbar: vertical channel columns, fully connected.

    Args:
        height: Rows spanned (the taller of the adjacent stages).
        columns: 1 for the funnel-in crossbar after Stage 1, 2 elsewhere
            (one column per movement direction, Section 4.4.1).
    """
    if height < 1:
        raise ValueError(f"height must be >= 1, got {height}")
    if columns < 1:
        raise ValueError(f"columns must be >= 1, got {columns}")
    grid = Grid(name=name)
    for row in range(height):
        for col in range(columns):
            if row == 0:
                grid.place((row, col), three_way(Direction.NORTH))
            elif row == height - 1:
                grid.place((row, col), three_way(Direction.SOUTH))
            else:
                grid.place((row, col), four_way())
    return grid


def zero_prep_unit_grid() -> Grid:
    """Figure 13b: a single gate location (one macroblock)."""
    grid = Grid(name="zero_prep_unit")
    grid.place((0, 0), dead_end_gate(Direction.EAST))
    return grid


def cx_stage_unit_grid() -> Grid:
    """Figure 13c: the pipelined CX stage — 4 rows of 7 macroblocks.

    Three rows hold the three in-flight seven-qubit batches at gate
    locations; the fourth is a communication row, totalling 28 blocks.
    """
    grid = Grid(name="cx_stage_unit")
    for col in range(7):
        if col == 0:
            grid.place((0, col), three_way(Direction.WEST))
        elif col == 6:
            grid.place((0, col), three_way(Direction.EAST))
        else:
            grid.place((0, col), four_way())
    for row in range(1, 4):
        for col in range(7):
            grid.place((row, col), straight_channel_gate("ns"))
    return grid


def cat_prep_unit_grid() -> Grid:
    """Figure 13d: 3-qubit cat preparation — 2 rows of 3 (6 blocks)."""
    grid = Grid(name="cat_prep_unit")
    for col in range(3):
        if col == 0:
            grid.place((0, col), three_way(Direction.WEST))
        elif col == 2:
            grid.place((0, col), three_way(Direction.EAST))
        else:
            grid.place((0, col), four_way())
        grid.place((1, col), straight_channel_gate("ns"))
    return grid


def verification_unit_grid() -> Grid:
    """Figure 13e: verification — one macroblock per held qubit (10)."""
    grid = Grid(name="verification_unit")
    for row in range(10):
        grid.place((row, 0), straight_channel_gate("ns"))
    return grid


def bp_correction_unit_grid() -> Grid:
    """Figure 13f: bit/phase correction — room for three encoded ancillae
    (21 macroblocks in one column)."""
    grid = Grid(name="bp_correction_unit")
    for row in range(21):
        grid.place((row, 0), straight_channel_gate("ns"))
    return grid


#: Areas every unit floorplan must satisfy (checked against Table 5).
EXPECTED_UNIT_AREAS = {
    "zero_prep_unit": 1,
    "cx_stage_unit": 28,
    "cat_prep_unit": 6,
    "verification_unit": 10,
    "bp_correction_unit": 21,
}


def all_unit_grids() -> dict:
    """All Figure 13 unit floorplans keyed by name."""
    return {
        "zero_prep_unit": zero_prep_unit_grid(),
        "cx_stage_unit": cx_stage_unit_grid(),
        "cat_prep_unit": cat_prep_unit_grid(),
        "verification_unit": verification_unit_grid(),
        "bp_correction_unit": bp_correction_unit_grid(),
    }
