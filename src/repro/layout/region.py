"""Data-qubit regions (Section 4.2, Figure 10).

A single encoded data qubit occupies one column of straight-channel gate
macroblocks — one block per physical qubit — with interconnect access on
either side. Total data area is therefore ``m * nq`` macroblocks for
``nq`` data qubits encoded ``m`` physical qubits each.
"""

from __future__ import annotations

from repro.layout.grid import Grid
from repro.layout.macroblock import straight_channel_gate


def data_region_grid(code_size: int = 7, name: str = "data_qubit") -> Grid:
    """The Figure 10 layout: one column of gate blocks per encoded qubit."""
    if code_size < 1:
        raise ValueError(f"code_size must be >= 1, got {code_size}")
    grid = Grid(name=name)
    for row in range(code_size):
        grid.place((row, 0), straight_channel_gate("ew"))
    return grid


def data_qubit_area(num_data_qubits: int, code_size: int = 7) -> int:
    """Total macroblocks used by data (Section 4.2): ``m x nq``.

    ``num_data_qubits`` includes data ancillae — the long-lived ancillae
    participating in the main computation.
    """
    if num_data_qubits < 0:
        raise ValueError(f"num_data_qubits must be >= 0, got {num_data_qubits}")
    return code_size * num_data_qubits
