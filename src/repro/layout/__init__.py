"""Ion-trap layout substrate (Section 4.1, Figures 9-11, 13).

Models the paper's macroblock abstraction: fixed-at-fab-time channel blocks
through which ions shuttle, with designated gate locations. Provides:

* :mod:`repro.layout.macroblock` — the six Figure 9 block types;
* :mod:`repro.layout.grid` — rectangular layouts, connectivity, area;
* :mod:`repro.layout.router` — latency-weighted shortest-path movement
  (straight moves vs turns, Table 4);
* :mod:`repro.layout.region` — the single-encoded-qubit data region of
  Figure 10 and data-area accounting;
* :mod:`repro.layout.schedules` — hand-optimized operation-count schedules
  whose symbolic latencies reproduce the paper's functional-unit formulas
  (Tables 5 and 7, Section 4.3);
* :mod:`repro.layout.floorplans` — macroblock floorplans for the simple
  factory (Figure 11) and the pipelined functional units (Figure 13).
"""

from repro.layout.grid import Grid, GridError
from repro.layout.macroblock import Direction, Macroblock, MacroblockType
from repro.layout.region import data_region_grid, data_qubit_area
from repro.layout.router import MovePlan, Router
from repro.layout.schedules import OpSchedule

__all__ = [
    "Direction",
    "Grid",
    "GridError",
    "Macroblock",
    "MacroblockType",
    "MovePlan",
    "OpSchedule",
    "Router",
    "data_qubit_area",
    "data_region_grid",
]
