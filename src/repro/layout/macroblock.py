"""Macroblock types: the abstract building blocks of layouts (Figure 9).

Each macroblock occupies one grid cell and exposes ports on a subset of its
four sides; adjacent blocks connect where both expose a port. Gate
locations exist in the two gate-bearing block types; the paper notes gates
may not occur in intersections.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Tuple


class Direction(enum.Enum):
    """Port directions, also used as movement headings."""

    NORTH = (-1, 0)
    SOUTH = (1, 0)
    EAST = (0, 1)
    WEST = (0, -1)

    @property
    def delta(self) -> Tuple[int, int]:
        return self.value

    @property
    def opposite(self) -> "Direction":
        return _OPPOSITE[self]


_OPPOSITE = {
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
}

_NS = frozenset({Direction.NORTH, Direction.SOUTH})
_EW = frozenset({Direction.EAST, Direction.WEST})
_ALL = frozenset(Direction)


class MacroblockType(enum.Enum):
    """The six Figure 9 block types."""

    DEAD_END_GATE = "dead_end_gate"
    STRAIGHT_CHANNEL_GATE = "straight_channel_gate"
    STRAIGHT_CHANNEL = "straight_channel"
    TURN = "turn"
    THREE_WAY = "three_way"
    FOUR_WAY = "four_way"


_PORT_COUNT = {
    MacroblockType.DEAD_END_GATE: 1,
    MacroblockType.STRAIGHT_CHANNEL_GATE: 2,
    MacroblockType.STRAIGHT_CHANNEL: 2,
    MacroblockType.TURN: 2,
    MacroblockType.THREE_WAY: 3,
    MacroblockType.FOUR_WAY: 4,
}

_HAS_GATE = {
    MacroblockType.DEAD_END_GATE: True,
    MacroblockType.STRAIGHT_CHANNEL_GATE: True,
    MacroblockType.STRAIGHT_CHANNEL: False,
    MacroblockType.TURN: False,
    MacroblockType.THREE_WAY: False,
    MacroblockType.FOUR_WAY: False,
}


@dataclass(frozen=True)
class Macroblock:
    """One placed macroblock: a type plus its open port directions.

    Attributes:
        block_type: Which Figure 9 block this is.
        ports: Open sides. Must be consistent with the type (count, and
            straight channels must be collinear while turns must not be).
    """

    block_type: MacroblockType
    ports: FrozenSet[Direction]

    def __post_init__(self) -> None:
        ports = frozenset(self.ports)
        object.__setattr__(self, "ports", ports)
        expected = _PORT_COUNT[self.block_type]
        if len(ports) != expected:
            raise ValueError(
                f"{self.block_type.value} needs {expected} port(s), got {len(ports)}"
            )
        if self.block_type in (
            MacroblockType.STRAIGHT_CHANNEL,
            MacroblockType.STRAIGHT_CHANNEL_GATE,
        ):
            if ports not in (_NS, _EW):
                raise ValueError(f"{self.block_type.value} ports must be collinear")
        if self.block_type is MacroblockType.TURN and ports in (_NS, _EW):
            raise ValueError("turn ports must not be collinear")

    @property
    def has_gate_location(self) -> bool:
        """Whether a gate may be performed in this block.

        Gate locations may not occur in intersections (Figure 9 caption).
        """
        return _HAS_GATE[self.block_type]

    @property
    def is_intersection(self) -> bool:
        return self.block_type in (MacroblockType.THREE_WAY, MacroblockType.FOUR_WAY)

    def connects(self, direction: Direction) -> bool:
        return direction in self.ports

    def traversal_is_turn(self, entry: Direction, exit_: Direction) -> bool:
        """Whether moving through this block from ``entry`` heading out via
        ``exit_`` changes heading (costing ``t_turn`` instead of ``t_move``).

        ``entry`` is the side the ion came in through (i.e. the opposite of
        its previous heading's far side); a traversal is straight when the
        exit is directly across from the entry.
        """
        return exit_ is not entry.opposite


def straight_channel(orientation: str = "ns") -> Macroblock:
    """Convenience constructor; ``orientation`` is ``"ns"`` or ``"ew"``."""
    ports = _NS if orientation == "ns" else _EW
    return Macroblock(MacroblockType.STRAIGHT_CHANNEL, ports)


def straight_channel_gate(orientation: str = "ns") -> Macroblock:
    ports = _NS if orientation == "ns" else _EW
    return Macroblock(MacroblockType.STRAIGHT_CHANNEL_GATE, ports)


def four_way() -> Macroblock:
    return Macroblock(MacroblockType.FOUR_WAY, _ALL)


def three_way(missing: Direction) -> Macroblock:
    return Macroblock(MacroblockType.THREE_WAY, _ALL - {missing})


def turn(a: Direction, b: Direction) -> Macroblock:
    return Macroblock(MacroblockType.TURN, frozenset({a, b}))


def dead_end_gate(port: Direction) -> Macroblock:
    return Macroblock(MacroblockType.DEAD_END_GATE, frozenset({port}))
