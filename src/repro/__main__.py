"""Command-line entry point: regenerate paper artifacts, explore designs.

Usage::

    python -m repro list                  # list reproducible artifacts
    python -m repro table3                # print one table/figure
    python -m repro run fig15 --workers 4 # same, with sweep options
    python -m repro all                   # print everything (slow: runs
                                          # the Monte Carlo and the sweeps)
    python -m repro explore qcla-32 --objective adcr --strategy adaptive \\
        --budget 30                       # ADCR-driven design-space search
    python -m repro serve --port 8642     # evaluation service (terminal 1)
    python -m repro explore qcla-32 --server http://127.0.0.1:8642
                                          # served exploration (terminal 2)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro.reporting import EXPERIMENTS, run_experiment

_DEFAULT_WIDTH = 32


def _parse_kernel(spec: str) -> Tuple[str, int]:
    """``"qcla-32"`` -> ("qcla", 32); a bare name defaults to width 32."""
    name, sep, width = spec.partition("-")
    if not sep:
        return name.lower(), _DEFAULT_WIDTH
    try:
        return name.lower(), int(width)
    except ValueError:
        raise ValueError(
            f"bad kernel spec {spec!r}; expected <name> or <name>-<width> "
            "(e.g. qcla-32)"
        ) from None


# ----------------------------------------------------------------------
# Subcommand handlers


def _cmd_list(ns: argparse.Namespace) -> int:
    width = max(len(key) for key in EXPERIMENTS)
    for key in sorted(EXPERIMENTS):
        exp = EXPERIMENTS[key]
        print(f"  {key:<{width}}  {exp.paper_ref:<22} {exp.description}")
    return 0


def _cmd_all(ns: argparse.Namespace) -> int:
    for key in sorted(EXPERIMENTS):
        print(f"=== {key} ({EXPERIMENTS[key].paper_ref}) ===")
        print(run_experiment(key, workers=ns.workers, engine=ns.engine))
        print()
    return 0


def _cmd_run(ns: argparse.Namespace) -> int:
    try:
        print(run_experiment(ns.experiment, workers=ns.workers, engine=ns.engine))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _obs_enable() -> str:
    """Turn span tracing on with a worker spool; returns the spool dir."""
    import tempfile

    from repro import obs

    spool = tempfile.mkdtemp(prefix="repro-obs-")
    obs.enable(spool_dir=spool)
    return spool


def _obs_export(
    trace_path: Optional[str], metrics_path: Optional[str], spool_dir: str
) -> None:
    """Merge worker spans, write requested trace/metrics files, tear down.

    ``metrics_path`` gets Prometheus text, or a JSON snapshot when it
    ends in ``.json``. Always disables tracing and removes the spool.
    """
    import json
    import shutil
    from pathlib import Path

    from repro import obs
    from repro.obs import metrics as obs_metrics

    tracer = obs.tracer()
    if tracer is not None:
        merged = tracer.merge_spool()
        if trace_path:
            tracer.export_chrome(trace_path)
            print(
                f"trace: {trace_path} ({len(tracer.events())} spans, "
                f"{merged} from workers)"
            )
    if metrics_path:
        if metrics_path.endswith(".json"):
            payload = (
                json.dumps(obs_metrics.snapshot(), indent=1, sort_keys=True)
                + "\n"
            )
        else:
            payload = obs_metrics.prometheus()
        Path(metrics_path).write_text(payload, encoding="utf-8")
        print(f"metrics: {metrics_path}")
    obs.disable()
    shutil.rmtree(spool_dir, ignore_errors=True)


def _lease_knob_error(ns: argparse.Namespace) -> Optional[str]:
    """Validate the --lease-ttl / --heartbeat-interval pair."""
    if ns.lease_ttl is not None and ns.lease_ttl <= 0:
        return f"--lease-ttl must be positive, got {ns.lease_ttl}"
    if ns.heartbeat_interval is not None:
        if ns.heartbeat_interval <= 0:
            return (
                f"--heartbeat-interval must be positive, "
                f"got {ns.heartbeat_interval}"
            )
        from repro.explore.store import DEFAULT_LEASE_TTL

        ttl = ns.lease_ttl if ns.lease_ttl is not None else DEFAULT_LEASE_TTL
        if ns.heartbeat_interval >= ttl:
            return (
                f"--heartbeat-interval ({ns.heartbeat_interval}s) must be "
                f"smaller than the lease TTL ({ttl}s); a live evaluator "
                "must refresh its lease before it can go stale"
            )
    return None


def _make_store(ns: argparse.Namespace):
    from repro.explore import ResultStore
    from repro.explore.store import DEFAULT_LEASE_TTL

    if getattr(ns, "no_cache", False):
        return None
    ttl = ns.lease_ttl if ns.lease_ttl is not None else DEFAULT_LEASE_TTL
    return ResultStore(ns.cache_dir, lease_ttl=ttl)


def _cmd_explore(ns: argparse.Namespace) -> int:
    from repro.explore import (
        Evaluator,
        ResultStore,
        architecture_space,
        explore,
        format_exploration,
        get_objective,
        get_strategy,
    )

    error = _lease_knob_error(ns)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    store = _make_store(ns)
    if ns.clear_cache:
        removed = ResultStore(ns.cache_dir).clear()
        print(f"cleared {removed} cached evaluations from the result store")
        if ns.kernel is None:
            return 0
    if ns.kernel is None:
        print("error: a kernel to explore is required (e.g. qcla-32)",
              file=sys.stderr)
        return 2
    # Tracing goes on before the kernel is analyzed and before the
    # Evaluator exists: compile/analyze spans land in the trace, and
    # worker pools inherit the spool via the environment.
    spool = _obs_enable() if (ns.trace or ns.metrics) else None
    evaluator = None
    try:
        try:
            kernel, width = _parse_kernel(ns.kernel)
            from repro.kernels import analyze_kernel

            analysis = analyze_kernel(kernel, width)
            space = architecture_space(analysis, code_levels=ns.code_level)
            objective = get_objective(
                ns.objective,
                max_total_area=ns.max_area,
                max_makespan_ms=ns.max_latency_ms,
                max_pi8_error_rate=ns.max_pi8_error,
                tech=analysis.tech,
                mc_trials=ns.mc_trials,
                store=store,
            )
            strategy = get_strategy(ns.strategy, space, seed=ns.seed)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if ns.server:
            from repro.serve import RemoteEvaluator, ReplicaSet

            servers = [
                url.strip()
                for entry in ns.server
                for url in entry.split(",")
                if url.strip()
            ]
            try:
                client = ReplicaSet(
                    servers,
                    timeout=ns.server_timeout,
                    retries=ns.server_retries,
                    deadline=ns.server_deadline,
                    failure_threshold=ns.breaker_threshold,
                    cooldown=ns.breaker_cooldown,
                    hedge_after=ns.hedge_after,
                )
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            evaluator = RemoteEvaluator(
                client,
                kernel=kernel,
                width=width,
                engine=ns.engine,
                store=store,
                workers=ns.workers,
                retries=ns.retries,
                timeout=ns.timeout,
                heartbeat_interval=ns.heartbeat_interval,
            )
        else:
            evaluator = Evaluator(
                kernel=kernel,
                width=width,
                engine=ns.engine,
                workers=ns.workers,
                store=store,
                retries=ns.retries,
                timeout=ns.timeout,
                heartbeat_interval=ns.heartbeat_interval,
            )
        budget = ns.budget if ns.budget is not None else space.grid_size()
        journal = store.journal_path() if store is not None else None
        if ns.resume and journal is None:
            print("error: --resume needs the result store (drop --no-cache)",
                  file=sys.stderr)
            return 2
        try:
            result = explore(
                space, objective, strategy, evaluator=evaluator,
                budget=budget, journal=journal, resume=ns.resume,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_exploration(result))
        return 0
    finally:
        # Stats (and any requested trace/metrics) are reported even when
        # the exploration fails or quarantines points — the failure path
        # is exactly when the counters matter most.
        if evaluator is not None:
            stats = evaluator.stats()
            print(
                "evaluator: "
                + ", ".join(f"{name}={value}" for name, value in stats.items())
            )
        if spool is not None:
            _obs_export(ns.trace, ns.metrics, spool)


def _cmd_profile(ns: argparse.Namespace) -> int:
    import shutil
    import time

    from repro import obs
    from repro.obs.report import format_phase_table

    spool = _obs_enable()
    t0 = time.perf_counter()
    try:
        output = run_experiment(
            ns.experiment, workers=ns.workers, engine=ns.engine
        )
        wall = time.perf_counter() - t0
        tracer = obs.tracer()
        tracer.merge_spool()
        events = tracer.events()
        if ns.show_output:
            print(output)
            print()
        print(
            format_phase_table(
                events,
                title=f"{ns.experiment}: per-phase breakdown",
                wall_s=wall,
            )
        )
        if ns.trace:
            tracer.export_chrome(ns.trace)
            print(f"trace: {ns.trace} ({len(events)} spans)")
        return 0
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        obs.disable()
        shutil.rmtree(spool, ignore_errors=True)


def _cmd_cache(ns: argparse.Namespace) -> int:
    from repro.explore import ResultStore

    store = ResultStore(ns.cache_dir)
    if ns.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} cached evaluations from the result store")
        return 0
    if ns.action == "stats":
        print(f"store root: {store.root}")
        print(f"valid records: {len(store)}")
        leases = list(store.leases())
        stale = sum(1 for _, _, _, is_stale in leases if is_stale)
        print(f"leases: {len(leases)} ({stale} stale)")
        journal = store.journal_path()
        if journal.exists():
            print(f"journal: {journal} ({journal.stat().st_size} bytes)")
        else:
            print("journal: none")
        return 0
    # fsck
    report = store.fsck(remove=ns.remove)
    print(f"ok: {report.ok}")
    print(f"corrupt: {len(report.corrupt)}"
          + (f" ({', '.join(report.corrupt[:5])})" if report.corrupt else ""))
    print(f"stale schema: {len(report.stale_schema)}")
    print(f"foreign (digest mismatch): {len(report.foreign)}"
          + (f" ({', '.join(report.foreign[:5])})" if report.foreign else ""))
    print(f"stale leases: {len(report.stale_leases)}")
    if ns.remove:
        print(f"removed: {report.removed}")
    elif report.bad or report.stale_leases:
        print("run `repro cache fsck --remove` to delete the entries above")
    return 1 if report.bad and not ns.remove else 0


def _cmd_serve(ns: argparse.Namespace) -> int:
    import signal
    import threading

    error = _lease_knob_error(ns)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    from repro.serve import ExploreServer, ExploreService

    store = _make_store(ns)
    try:
        service = ExploreService(
            store=store,
            engine=ns.engine or "compiled",
            workers=ns.workers,
            retries=ns.retries,
            timeout=ns.timeout,
            heartbeat_interval=ns.heartbeat_interval,
            max_queue=ns.max_queue,
            coalesce=ns.coalesce,
            replica_id=ns.replica_id,
        )
        server = ExploreServer(service, host=ns.host, port=ns.port)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # The bound port, not the requested one: with --port 0 the kernel
    # picks a free port, and the banner (plus --port-file) is how
    # callers learn which.
    host, port = server.address
    if ns.port_file:
        try:
            with open(ns.port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{port}\n")
        except OSError as exc:
            print(f"error: cannot write --port-file: {exc}", file=sys.stderr)
            return 2
    cache = "disabled" if store is None else str(store.root)
    replica = f", replica: {ns.replica_id}" if ns.replica_id else ""
    coalesce = "on" if ns.coalesce else "off"
    print(
        f"repro serve: listening on http://{host}:{port} "
        f"(store: {cache}, max queue: {ns.max_queue}, "
        f"coalesce: {coalesce}{replica})",
        flush=True,
    )

    def _graceful(signum, frame) -> None:
        # shutdown() must not run on the thread blocked in serve_forever.
        print(
            f"received signal {signum}; draining in-flight evaluations...",
            flush=True,
        )
        threading.Thread(
            target=server.shutdown,
            kwargs={"drain_timeout": ns.drain_timeout},
            daemon=True,
        ).start()

    signal.signal(signal.SIGINT, _graceful)
    signal.signal(signal.SIGTERM, _graceful)
    server.serve_forever()
    print("repro serve: drained and stopped", flush=True)
    return 0


# ----------------------------------------------------------------------


def _add_sweep_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="evaluate sweep/exploration points across N worker processes",
    )
    parser.add_argument(
        "--engine", choices=("compiled", "legacy"), default=None,
        help="dataflow engine (default: compiled)",
    )


def _add_lease_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--lease-ttl", type=float, default=None, metavar="S",
        help=(
            "seconds without a heartbeat before a result-store lease "
            "counts as stale and peers may reclaim it (default: 300)"
        ),
    )
    parser.add_argument(
        "--heartbeat-interval", type=float, default=None, metavar="S",
        help=(
            "seconds between lease-heartbeat refreshes at evaluation "
            "batch boundaries; must be smaller than the lease TTL "
            "(default: ttl/4, capped at 5s)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce the paper's tables and figures, or explore the "
            "architecture design space. A bare experiment key (e.g. "
            "'table3') is shorthand for 'run table3'."
        ),
    )
    sub = parser.add_subparsers(dest="command", metavar="command")

    p_list = sub.add_parser("list", help="list reproducible artifacts")
    p_list.set_defaults(func=_cmd_list)

    p_all = sub.add_parser(
        "all", help="print every artifact (slow: Monte Carlo + sweeps)"
    )
    _add_sweep_options(p_all)
    p_all.set_defaults(func=_cmd_all)

    p_run = sub.add_parser("run", help="print one table/figure by key")
    p_run.add_argument(
        "experiment", metavar="experiment",
        help=f"one of: {', '.join(sorted(EXPERIMENTS))}",
    )
    _add_sweep_options(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_explore = sub.add_parser(
        "explore",
        help="search the design space for an objective-optimal architecture",
        description=(
            "ADCR-driven design-space exploration over architecture kind "
            "and factory-area budget. Every evaluation is persisted in a "
            "content-addressed result store under .repro_cache/, so "
            "re-runs and refined searches are incremental."
        ),
    )
    p_explore.add_argument(
        "kernel", nargs="?", default=None,
        help="kernel to explore, as <name>[-<width>] (e.g. qcla-32)",
    )
    p_explore.add_argument(
        "--objective", default="adcr",
        choices=("adcr", "latency", "area", "ancilla_quality"),
        help=(
            "figure of merit to minimize (default: adcr; ancilla_quality "
            "is the Monte-Carlo pi/8 ancilla error rate)"
        ),
    )
    p_explore.add_argument(
        "--strategy", default="grid", choices=("grid", "random", "adaptive"),
        help="search strategy (default: grid)",
    )
    p_explore.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="max design points to evaluate (default: the full grid)",
    )
    p_explore.add_argument(
        "--code-level", type=int, nargs="+", default=None, metavar="L",
        help=(
            "add the code-concatenation-level axis with these levels "
            "(e.g. --code-level 1 2; default: level 1 only, the paper's "
            "single Steane layer). Level-L points re-characterize the "
            "kernel under tech.at_level(L)"
        ),
    )
    p_explore.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed for random/adaptive strategies (default: 0)",
    )
    p_explore.add_argument(
        "--max-area", type=float, default=None, metavar="MB",
        help="constraint: reject points above this total area",
    )
    p_explore.add_argument(
        "--max-latency-ms", type=float, default=None, metavar="MS",
        help="constraint: reject points above this execution time",
    )
    p_explore.add_argument(
        "--max-pi8-error", type=float, default=None, metavar="P",
        help=(
            "constraint: reject designs whose technology's pi/8 ancilla "
            "error rate (batched Monte Carlo) exceeds P"
        ),
    )
    p_explore.add_argument(
        "--mc-trials", type=int, default=100_000, metavar="N",
        help=(
            "Monte Carlo trials behind ancilla_quality / --max-pi8-error "
            "(default: 100000; results are cached in the result store)"
        ),
    )
    p_explore.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help=(
            "retry a failing design point N times (with backoff) before "
            "quarantining it as a structured failure (default: 2)"
        ),
    )
    p_explore.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help=(
            "per-chunk evaluation timeout in seconds for worker pools; "
            "hung workers are killed and their chunks retried "
            "(default: no timeout)"
        ),
    )
    p_explore.add_argument(
        "--resume", action="store_true",
        help=(
            "resume an interrupted exploration from the round journal "
            "(journal.jsonl beside the result store): completed rounds "
            "replay from the warm store with zero new simulations"
        ),
    )
    p_explore.add_argument(
        "--server", action="append", default=None, metavar="URL",
        help=(
            "evaluate through running `repro serve` instance(s) instead "
            "of simulating locally; repeat the flag (or comma-separate "
            "URLs) to form a replica set with per-replica circuit "
            "breakers and failover. If every replica stays unreachable "
            "the exploration degrades to local evaluation, still "
            "completes, and returns to the fleet when a probe succeeds"
        ),
    )
    p_explore.add_argument(
        "--server-timeout", type=float, default=30.0, metavar="S",
        help="per-attempt HTTP timeout against --server (default: 30)",
    )
    p_explore.add_argument(
        "--server-retries", type=int, default=5, metavar="N",
        help=(
            "retryable server failures (refused/timeout/5xx/torn body) "
            "tolerated per request before degrading to local evaluation "
            "(default: 5)"
        ),
    )
    p_explore.add_argument(
        "--server-deadline", type=float, default=None, metavar="S",
        help=(
            "overall wall-clock budget per server request, covering "
            "retries, backoff sleeps, and failover across replicas "
            "(default: none)"
        ),
    )
    p_explore.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help=(
            "consecutive failures that open a replica's circuit "
            "breaker (default: 3)"
        ),
    )
    p_explore.add_argument(
        "--breaker-cooldown", type=float, default=5.0, metavar="S",
        help=(
            "seconds an open breaker waits before admitting a "
            "half-open probe (default: 5)"
        ),
    )
    p_explore.add_argument(
        "--hedge-after", type=float, default=None, metavar="S",
        help=(
            "hedge a request against a second healthy replica after S "
            "seconds of silence; the store's lease protocol arbitrates "
            "duplicates (default: off)"
        ),
    )
    p_explore.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-store root (default: .repro_cache, or $REPRO_CACHE_DIR)",
    )
    p_explore.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the result store",
    )
    p_explore.add_argument(
        "--clear-cache", action="store_true",
        help="wipe the result store first (alone: wipe and exit)",
    )
    p_explore.add_argument(
        "--trace", default=None, metavar="FILE",
        help=(
            "write a Chrome/Perfetto trace of the exploration to FILE "
            "(parent and worker-process spans merged on one timeline)"
        ),
    )
    p_explore.add_argument(
        "--metrics", default=None, metavar="FILE",
        help=(
            "write a metrics snapshot to FILE: Prometheus text format, "
            "or a JSON snapshot when FILE ends in .json"
        ),
    )
    _add_sweep_options(p_explore)
    _add_lease_options(p_explore)
    p_explore.set_defaults(func=_cmd_explore, engine="compiled")

    p_serve = sub.add_parser(
        "serve",
        help="serve design-point evaluations over HTTP (see explore --server)",
        description=(
            "Expose warm evaluators over HTTP: POST /evaluate answers "
            "design-point batches (cache hits with zero simulation), "
            "GET /healthz //readyz report liveness/readiness, and "
            "GET /metrics exposes the repro.obs registry as Prometheus "
            "text. The work queue is bounded: excess load is shed with "
            "429 + Retry-After, and SIGINT/SIGTERM drain in-flight "
            "evaluations before stopping."
        ),
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="bind address (default: 127.0.0.1)",
    )
    p_serve.add_argument(
        "--port", type=int, default=8642, metavar="PORT",
        help=(
            "bind port; 0 picks a free one — the startup banner (and "
            "--port-file) report the actually-bound port (default: 8642)"
        ),
    )
    p_serve.add_argument(
        "--port-file", default=None, metavar="FILE",
        help=(
            "write the actually-bound port to FILE after binding "
            "(scripting aid for --port 0)"
        ),
    )
    p_serve.add_argument(
        "--coalesce", action=argparse.BooleanOptionalAction, default=True,
        help=(
            "single-flight concurrent evaluate requests whose point "
            "sets overlap: one simulation pass per canonical point "
            "(default: on; --no-coalesce disables)"
        ),
    )
    p_serve.add_argument(
        "--replica-id", default=None, metavar="NAME",
        help=(
            "identity of this replica in a fleet; replica-scoped fault "
            "rules (testing) match against it"
        ),
    )
    p_serve.add_argument(
        "--max-queue", type=int, default=8, metavar="N",
        help=(
            "most evaluate requests admitted at once (working + queued); "
            "the excess is shed with 429 (default: 8)"
        ),
    )
    p_serve.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="S",
        help=(
            "seconds a graceful shutdown waits for in-flight evaluations "
            "before releasing leases and stopping anyway (default: 30)"
        ),
    )
    p_serve.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="per-point retry budget of the serving evaluators (default: 2)",
    )
    p_serve.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-chunk evaluation timeout of the serving evaluators",
    )
    p_serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-store root (default: .repro_cache, or $REPRO_CACHE_DIR)",
    )
    p_serve.add_argument(
        "--no-cache", action="store_true",
        help="serve without a result store (every request simulates)",
    )
    _add_sweep_options(p_serve)
    _add_lease_options(p_serve)
    p_serve.set_defaults(func=_cmd_serve, engine="compiled")

    p_profile = sub.add_parser(
        "profile",
        help="run one experiment with tracing on and print where time went",
        description=(
            "Run an experiment with span tracing enabled and print a "
            "per-phase time breakdown (compile, ready-vector builds, "
            "level walks, Monte Carlo frames, ...). Use --trace to also "
            "keep the full Chrome/Perfetto timeline."
        ),
    )
    p_profile.add_argument(
        "experiment", metavar="experiment",
        help=f"one of: {', '.join(sorted(EXPERIMENTS))}",
    )
    p_profile.add_argument(
        "--trace", default=None, metavar="FILE",
        help="also write the Chrome/Perfetto trace to FILE",
    )
    p_profile.add_argument(
        "--show-output", action="store_true",
        help="print the experiment's own output above the breakdown",
    )
    _add_sweep_options(p_profile)
    p_profile.set_defaults(func=_cmd_profile, engine="compiled")

    p_cache = sub.add_parser(
        "cache",
        help="inspect or repair the result store",
        description=(
            "Maintenance for the content-addressed result store: fsck "
            "reports (and with --remove deletes) corrupt, stale-schema "
            "and foreign entries plus stale evaluator leases; stats "
            "summarizes the store; clear wipes it."
        ),
    )
    p_cache.add_argument(
        "action", choices=("fsck", "stats", "clear"),
        help="what to do to the store",
    )
    p_cache.add_argument(
        "--remove", action="store_true",
        help="fsck only: delete the unhealthy entries it finds",
    )
    p_cache.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-store root (default: .repro_cache, or $REPRO_CACHE_DIR)",
    )
    p_cache.set_defaults(func=_cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] in EXPERIMENTS:
        args = ["run"] + args
    parser = build_parser()
    if not args:
        parser.print_help()
        return 0
    try:
        ns = parser.parse_args(args)
    except SystemExit as exc:  # argparse exits for --help (0) and errors (2)
        return int(exc.code or 0)
    if getattr(ns, "func", None) is None:
        parser.print_help()
        return 0
    if getattr(ns, "engine", None) is None:
        ns.engine = "compiled"
    return ns.func(ns)


if __name__ == "__main__":
    raise SystemExit(main())
