"""Command-line entry point: regenerate paper artifacts.

Usage::

    python -m repro list                 # list reproducible artifacts
    python -m repro table3               # print one table/figure
    python -m repro all                  # print everything (slow: runs
                                         # the Monte Carlo and the sweeps)
"""

from __future__ import annotations

import sys

from repro.reporting import EXPERIMENTS, run_experiment


def _list() -> int:
    width = max(len(key) for key in EXPERIMENTS)
    for key in sorted(EXPERIMENTS):
        exp = EXPERIMENTS[key]
        print(f"  {key:<{width}}  {exp.paper_ref:<22} {exp.description}")
    return 0


def main(argv: list | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help", "help"):
        print(__doc__)
        return 0
    target = args[0]
    if target == "list":
        return _list()
    if target == "all":
        for key in sorted(EXPERIMENTS):
            print(f"=== {key} ({EXPERIMENTS[key].paper_ref}) ===")
            print(run_experiment(key))
            print()
        return 0
    try:
        print(run_experiment(target))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
