"""Functional units of the pipelined factories (Tables 5 and 7).

Each unit processes batches of physical qubits through an internally
pipelined schedule. Bandwidth follows the paper's convention:

    BW (qubits/ms) = batch_qubits * internal_stages * 1000 / latency_us

i.e. a unit with S internal pipeline stages accepts a new batch every
``latency / S`` microseconds. Output bandwidth differs from input when the
unit consumes qubits (verification measures and recycles the cat; B/P
correction consumes two of three encoded ancillae) or discards failures.

Unit geometry is parameterized on the active code: batch sizes, areas and
heights are functions of the code's block size ``n`` and its X-check
count ``w`` (the verification cat width), and the encoder CX stage takes
one pipeline stage per parallel CX round of the code's derived encoder.
The default (``code=None``) uses the paper's [[7,1,3]] constants
verbatim, and passing the Steane code explicitly derives the *same*
numbers — the code axis introduces no drift at level 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.layout.schedules import (
    PI8_FACTORY_SCHEDULES,
    ZERO_FACTORY_SCHEDULES,
    OpSchedule,
)
from repro.tech import ION_TRAP, TechnologyParams

#: Fraction of encoded ancillae passing verification (Section 2.3: the
#: Monte Carlo verification failure rate of the Figure 4a subunit is 0.2%).
VERIFICATION_SURVIVAL = 0.998

#: The paper's [[7,1,3]] profile: (block size, X-check count, CX rounds).
_STEANE_PROFILE = (7, 3, 3)


def code_profile(code) -> Tuple[int, int, int]:
    """(block size n, X-check count w, encoder CX rounds) of a code.

    ``None`` means the paper's Steane profile. Any CSS-code-like object
    (:class:`~repro.codes.css.CssCode` or
    :class:`~repro.codes.concatenated.ConcatenatedCode`) works: the
    encoder round count comes from the derived
    :func:`~repro.codes.concatenated.css_encoder_layout`.
    """
    if code is None:
        return _STEANE_PROFILE
    n = int(code.n)
    checks = int(len(code.x_stabilizers))
    rounds = getattr(code, "encoder_cx_rounds", None)
    if rounds is None:
        from repro.codes.concatenated import css_encoder_layout

        rounds = css_encoder_layout(code).num_cx_rounds
    rounds = int(rounds)
    if n < 2 or checks < 1 or rounds < 1:
        raise ValueError(f"degenerate code profile: n={n}, checks={checks}")
    return n, checks, rounds


@dataclass(frozen=True)
class FunctionalUnit:
    """One pipelined functional unit.

    Attributes:
        name: Unit name as in Table 5 / Table 7.
        schedule: Operation counts giving the unit's symbolic latency.
        internal_stages: Pipeline stages inside the unit ("Stages" column).
        qubits_in: Physical qubits consumed per batch.
        qubits_out: Physical qubits emitted per batch (before survival).
        survival: Fraction of batches surviving (verification discards).
        area: Unit area in macroblocks.
        height: Unit height in macroblock rows (sets crossbar sizes).
    """

    name: str
    schedule: OpSchedule
    internal_stages: int
    qubits_in: int
    qubits_out: int
    area: int
    height: int
    survival: float = 1.0

    def __post_init__(self) -> None:
        if self.internal_stages < 1:
            raise ValueError(f"{self.name}: internal_stages must be >= 1")
        if self.qubits_in < 1 or self.qubits_out < 1:
            raise ValueError(f"{self.name}: batch sizes must be >= 1")
        if not 0.0 < self.survival <= 1.0:
            raise ValueError(f"{self.name}: survival must be in (0, 1]")
        if self.area < 1 or self.height < 1:
            raise ValueError(f"{self.name}: area and height must be >= 1")

    def latency(self, tech: TechnologyParams = ION_TRAP) -> float:
        """Unit latency in microseconds (Table 5 column 3)."""
        return self.schedule.latency(tech)

    def initiation_interval(self, tech: TechnologyParams = ION_TRAP) -> float:
        """Microseconds between successive batch starts."""
        return self.latency(tech) / self.internal_stages

    def bandwidth_in(self, tech: TechnologyParams = ION_TRAP) -> float:
        """Input bandwidth in physical qubits per millisecond."""
        return self.qubits_in * 1000.0 / self.initiation_interval(tech)

    def bandwidth_out(self, tech: TechnologyParams = ION_TRAP) -> float:
        """Output bandwidth in physical qubits per millisecond."""
        return (
            self.qubits_out * self.survival * 1000.0 / self.initiation_interval(tech)
        )


def zero_factory_units(
    tech: TechnologyParams = ION_TRAP, code=None
) -> Dict[str, FunctionalUnit]:
    """The five Table 5 functional units, for the active code.

    Batch sizes: the CX stage carries ``n`` physical qubits per in-flight
    batch (one nascent encoded qubit); cat prep carries the ``w``-qubit
    verification cat; verification holds ``n + w`` (data plus cat) and
    emits the surviving ``n``; B/P correction holds three encoded
    ancillae (``3n``) and emits one. For the Steane code this is exactly
    the paper's 7/3/10/21 with the Table 5 areas.
    """
    n, w, rounds = code_profile(code)
    s = ZERO_FACTORY_SCHEDULES
    # Per-qubit prep, the transversal verification check and B/P
    # correction are code-independent choreography; only the encoder CX
    # rounds and the cat fan-out scale with the code.
    prep_schedule = s["zero_prep"]
    verify_schedule = s["verification"]
    bp_schedule = s["bp_correction"]
    if code is None:
        cx_schedule = s["cx_stage"]
        cat_schedule = s["cat_prep"]
    else:
        cx_schedule = OpSchedule(
            "cx_stage", two_qubit=rounds, turns=2 * rounds, moves=5
        )
        cat_schedule = OpSchedule(
            "cat_prep", two_qubit=w - 1, turns=2 * (w - 1), moves=2
        )
    return {
        "zero_prep": FunctionalUnit(
            "zero_prep", prep_schedule, internal_stages=1,
            qubits_in=1, qubits_out=1, area=1, height=1,
        ),
        "cx_stage": FunctionalUnit(
            "cx_stage", cx_schedule, internal_stages=rounds,
            qubits_in=n, qubits_out=n, area=4 * n, height=4,
        ),
        "cat_prep": FunctionalUnit(
            "cat_prep", cat_schedule, internal_stages=2,
            qubits_in=w, qubits_out=w, area=2 * w, height=2,
        ),
        "verification": FunctionalUnit(
            "verification", verify_schedule, internal_stages=1,
            qubits_in=n + w, qubits_out=n, area=n + w, height=n + w,
            survival=VERIFICATION_SURVIVAL,
        ),
        "bp_correction": FunctionalUnit(
            "bp_correction", bp_schedule, internal_stages=1,
            qubits_in=3 * n, qubits_out=n, area=3 * n, height=3 * n,
        ),
    }


def pi8_units(
    tech: TechnologyParams = ION_TRAP, code=None
) -> Dict[str, FunctionalUnit]:
    """The four Table 7 stages of the encoded pi/8 factory.

    Bandwidths are in physical qubits: the transversal-interact stage
    handles ``2n`` qubits per batch (``n``-qubit cat plus encoded zero);
    decode emits ``n + 1`` (the encoded block plus the decoded cat head
    qubit); the final stage emits the ``n``-qubit pi/8 ancilla. Steane
    instantiation reproduces Table 7's 7/14/8 batches and areas exactly.
    """
    n, _, rounds = code_profile(code)
    s = PI8_FACTORY_SCHEDULES
    # The transversal CZ/CS/CX interaction and H/measure/correct stages
    # are code-independent; cat assembly and decode scale with n.
    interact_schedule = s["transversal_interact"]
    hmz_schedule = s["h_measure_correct"]
    if code is None:
        cat_schedule = s["cat_state_prepare"]
        decode_schedule = s["decode_store"]
    else:
        cat_schedule = OpSchedule(
            "cat_state_prepare", two_qubit=n, turns=2 * n, moves=8
        )
        decode_schedule = OpSchedule(
            "decode_store", two_qubit=n, turns=2 * n, moves=8
        )
    return {
        "cat_state_prepare": FunctionalUnit(
            "cat_state_prepare", cat_schedule, internal_stages=1,
            qubits_in=n, qubits_out=n, area=2 * n - 2, height=n - 1,
        ),
        "transversal_interact": FunctionalUnit(
            "transversal_interact", interact_schedule, internal_stages=1,
            qubits_in=2 * n, qubits_out=2 * n, area=n, height=n,
        ),
        "decode_store": FunctionalUnit(
            "decode_store", decode_schedule, internal_stages=1,
            qubits_in=2 * n, qubits_out=n + 1, area=2 * n + 5, height=2 * n - 1,
        ),
        "h_measure_correct": FunctionalUnit(
            "h_measure_correct", hmz_schedule, internal_stages=1,
            qubits_in=n + 1, qubits_out=n, area=n + 1, height=n + 1,
        ),
    }
