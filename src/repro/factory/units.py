"""Functional units of the pipelined factories (Tables 5 and 7).

Each unit processes batches of physical qubits through an internally
pipelined schedule. Bandwidth follows the paper's convention:

    BW (qubits/ms) = batch_qubits * internal_stages * 1000 / latency_us

i.e. a unit with S internal pipeline stages accepts a new batch every
``latency / S`` microseconds. Output bandwidth differs from input when the
unit consumes qubits (verification measures and recycles the cat; B/P
correction consumes two of three encoded ancillae) or discards failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.layout.schedules import (
    PI8_FACTORY_SCHEDULES,
    ZERO_FACTORY_SCHEDULES,
    OpSchedule,
)
from repro.tech import ION_TRAP, TechnologyParams

#: Fraction of encoded ancillae passing verification (Section 2.3: the
#: Monte Carlo verification failure rate of the Figure 4a subunit is 0.2%).
VERIFICATION_SURVIVAL = 0.998


@dataclass(frozen=True)
class FunctionalUnit:
    """One pipelined functional unit.

    Attributes:
        name: Unit name as in Table 5 / Table 7.
        schedule: Operation counts giving the unit's symbolic latency.
        internal_stages: Pipeline stages inside the unit ("Stages" column).
        qubits_in: Physical qubits consumed per batch.
        qubits_out: Physical qubits emitted per batch (before survival).
        survival: Fraction of batches surviving (verification discards).
        area: Unit area in macroblocks.
        height: Unit height in macroblock rows (sets crossbar sizes).
    """

    name: str
    schedule: OpSchedule
    internal_stages: int
    qubits_in: int
    qubits_out: int
    area: int
    height: int
    survival: float = 1.0

    def __post_init__(self) -> None:
        if self.internal_stages < 1:
            raise ValueError(f"{self.name}: internal_stages must be >= 1")
        if self.qubits_in < 1 or self.qubits_out < 1:
            raise ValueError(f"{self.name}: batch sizes must be >= 1")
        if not 0.0 < self.survival <= 1.0:
            raise ValueError(f"{self.name}: survival must be in (0, 1]")
        if self.area < 1 or self.height < 1:
            raise ValueError(f"{self.name}: area and height must be >= 1")

    def latency(self, tech: TechnologyParams = ION_TRAP) -> float:
        """Unit latency in microseconds (Table 5 column 3)."""
        return self.schedule.latency(tech)

    def initiation_interval(self, tech: TechnologyParams = ION_TRAP) -> float:
        """Microseconds between successive batch starts."""
        return self.latency(tech) / self.internal_stages

    def bandwidth_in(self, tech: TechnologyParams = ION_TRAP) -> float:
        """Input bandwidth in physical qubits per millisecond."""
        return self.qubits_in * 1000.0 / self.initiation_interval(tech)

    def bandwidth_out(self, tech: TechnologyParams = ION_TRAP) -> float:
        """Output bandwidth in physical qubits per millisecond."""
        return (
            self.qubits_out * self.survival * 1000.0 / self.initiation_interval(tech)
        )


def zero_factory_units(tech: TechnologyParams = ION_TRAP) -> Dict[str, FunctionalUnit]:
    """The five Table 5 functional units.

    Batch sizes: the CX stage carries seven physical qubits per in-flight
    batch (one nascent encoded qubit); cat prep carries three; verification
    holds ten (seven data + three cat) and emits the surviving seven; B/P
    correction holds three encoded ancillae (21 qubits) and emits one (7).
    """
    s = ZERO_FACTORY_SCHEDULES
    return {
        "zero_prep": FunctionalUnit(
            "zero_prep", s["zero_prep"], internal_stages=1,
            qubits_in=1, qubits_out=1, area=1, height=1,
        ),
        "cx_stage": FunctionalUnit(
            "cx_stage", s["cx_stage"], internal_stages=3,
            qubits_in=7, qubits_out=7, area=28, height=4,
        ),
        "cat_prep": FunctionalUnit(
            "cat_prep", s["cat_prep"], internal_stages=2,
            qubits_in=3, qubits_out=3, area=6, height=2,
        ),
        "verification": FunctionalUnit(
            "verification", s["verification"], internal_stages=1,
            qubits_in=10, qubits_out=7, area=10, height=10,
            survival=VERIFICATION_SURVIVAL,
        ),
        "bp_correction": FunctionalUnit(
            "bp_correction", s["bp_correction"], internal_stages=1,
            qubits_in=21, qubits_out=7, area=21, height=21,
        ),
    }


def pi8_units(tech: TechnologyParams = ION_TRAP) -> Dict[str, FunctionalUnit]:
    """The four Table 7 stages of the encoded pi/8 factory.

    Bandwidths are in physical qubits: the transversal-interact stage
    handles fourteen qubits per batch (7-qubit cat plus encoded zero);
    decode emits eight (the encoded block plus the decoded cat head qubit);
    the final stage emits the seven-qubit pi/8 ancilla.
    """
    s = PI8_FACTORY_SCHEDULES
    return {
        "cat_state_prepare": FunctionalUnit(
            "cat_state_prepare", s["cat_state_prepare"], internal_stages=1,
            qubits_in=7, qubits_out=7, area=12, height=6,
        ),
        "transversal_interact": FunctionalUnit(
            "transversal_interact", s["transversal_interact"], internal_stages=1,
            qubits_in=14, qubits_out=14, area=7, height=7,
        ),
        "decode_store": FunctionalUnit(
            "decode_store", s["decode_store"], internal_stages=1,
            qubits_in=14, qubits_out=8, area=19, height=13,
        ),
        "h_measure_correct": FunctionalUnit(
            "h_measure_correct", s["h_measure_correct"], internal_stages=1,
            qubits_in=8, qubits_out=7, area=8, height=8,
        ),
    }
