"""The simple (non-pipelined) ancilla factory (Section 4.3, Figure 11).

Three rows of gate locations — each wide enough for ten physical qubits
(seven to encode plus three for verification) — separated and bordered by
communication rows. Each row generates and verifies one encoded zero; the
middle ancilla is then bit-corrected by the top one and phase-corrected by
the bottom one.

With the paper's hand-optimized schedule the full preparation takes

    tprep + 2 tmeas + 6 t2q + 2 t1q + 8 tturn + 30 tmove = 323 us

for a throughput of 3.1 encoded ancillae per millisecond in an area of 90
macroblocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.layout.grid import Grid
from repro.layout.macroblock import (
    Direction,
    four_way,
    straight_channel,
    straight_channel_gate,
    three_way,
)
from repro.layout.schedules import SIMPLE_FACTORY_SCHEDULE, OpSchedule
from repro.tech import ION_TRAP, TechnologyParams

#: Physical qubits per factory row: seven for encoding, three for the cat.
ROW_WIDTH = 10

#: Three gate rows, each sandwiched by communication rows (Figure 11).
GATE_ROWS = 3


def simple_factory_grid() -> Grid:
    """The Figure 11 floorplan: alternating gate and channel rows.

    Nine rows of ten macroblocks: channel rows above, between and below the
    three gate rows, totalling 90 macroblocks. Channel rows are built from
    intersections so qubits can enter or leave any column; gate rows are
    vertical straight-channel gate blocks so qubits can cross between the
    adjacent channels.
    """
    grid = Grid(name="simple_factory")
    total_rows = 2 * GATE_ROWS + 3  # channel, gate, channel, gate, ...
    gate_row_indices = {1, 4, 7}
    for row in range(total_rows):
        for col in range(ROW_WIDTH):
            if row in gate_row_indices:
                grid.place((row, col), straight_channel_gate("ns"))
            else:
                if col == 0:
                    grid.place((row, col), three_way(Direction.WEST))
                elif col == ROW_WIDTH - 1:
                    grid.place((row, col), three_way(Direction.EAST))
                else:
                    grid.place((row, col), four_way())
    return grid


@dataclass(frozen=True)
class SimpleZeroFactory:
    """Performance model of the simple factory.

    Attributes:
        tech: Technology parameters used for latency evaluation.
        schedule: Critical-path operation counts (the paper's hand-optimized
            schedule by default).
    """

    tech: TechnologyParams = ION_TRAP
    schedule: OpSchedule = SIMPLE_FACTORY_SCHEDULE
    grid: Grid = field(default_factory=simple_factory_grid, compare=False)

    @property
    def latency_us(self) -> float:
        """Latency of one complete ancilla preparation (323us)."""
        return self.schedule.latency(self.tech)

    @property
    def throughput_per_ms(self) -> float:
        """Encoded ancillae per millisecond (3.1).

        The design is not pipelined: one corrected encoded ancilla emerges
        per full preparation latency.
        """
        return 1000.0 / self.latency_us

    @property
    def area(self) -> int:
        """Area in macroblocks (90)."""
        return self.grid.area

    @property
    def bandwidth_per_area(self) -> float:
        """Encoded ancillae per millisecond per macroblock (Section 5.3)."""
        return self.throughput_per_ms / self.area

    def replicated_area_for_bandwidth(self, ancillae_per_ms: float) -> int:
        """Area needed to hit a bandwidth by replicating the factory.

        Section 4.3: "we could produce any desired bandwidth of encoded
        ancillae by replicating the layout as many times as necessary".
        """
        if ancillae_per_ms < 0:
            raise ValueError("bandwidth must be non-negative")
        import math

        copies = math.ceil(ancillae_per_ms / self.throughput_per_ms)
        return copies * self.area
