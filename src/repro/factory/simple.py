"""The simple (non-pipelined) ancilla factory (Section 4.3, Figure 11).

Three rows of gate locations — each wide enough for ten physical qubits
(seven to encode plus three for verification) — separated and bordered by
communication rows. Each row generates and verifies one encoded zero; the
middle ancilla is then bit-corrected by the top one and phase-corrected by
the bottom one.

With the paper's hand-optimized schedule the full preparation takes

    tprep + 2 tmeas + 6 t2q + 2 t1q + 8 tturn + 30 tmove = 323 us

for a throughput of 3.1 encoded ancillae per millisecond in an area of 90
macroblocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.layout.grid import Grid
from repro.layout.macroblock import (
    Direction,
    four_way,
    straight_channel,
    straight_channel_gate,
    three_way,
)
from repro.layout.schedules import SIMPLE_FACTORY_SCHEDULE, OpSchedule
from repro.tech import ION_TRAP, TechnologyParams

#: Physical qubits per factory row: seven for encoding, three for the cat.
ROW_WIDTH = 10

#: Three gate rows, each sandwiched by communication rows (Figure 11).
GATE_ROWS = 3


def simple_factory_grid(row_width: int = ROW_WIDTH) -> Grid:
    """The Figure 11 floorplan: alternating gate and channel rows.

    Nine rows of ``row_width`` macroblocks (ten for the paper's [[7,1,3]]
    instantiation — seven encoding plus three cat qubits), totalling
    ``9 * row_width`` macroblocks (the paper's 90): channel rows above,
    between and below the three gate rows. Channel rows are built from
    intersections so qubits can enter or leave any column; gate rows are
    vertical straight-channel gate blocks so qubits can cross between the
    adjacent channels.
    """
    if row_width < 2:
        raise ValueError(f"row_width must be >= 2, got {row_width}")
    grid = Grid(name="simple_factory")
    total_rows = 2 * GATE_ROWS + 3  # channel, gate, channel, gate, ...
    gate_row_indices = {1, 4, 7}
    for row in range(total_rows):
        for col in range(row_width):
            if row in gate_row_indices:
                grid.place((row, col), straight_channel_gate("ns"))
            else:
                if col == 0:
                    grid.place((row, col), three_way(Direction.WEST))
                elif col == row_width - 1:
                    grid.place((row, col), three_way(Direction.EAST))
                else:
                    grid.place((row, col), four_way())
    return grid


@dataclass(frozen=True)
class SimpleZeroFactory:
    """Performance model of the simple factory.

    Attributes:
        tech: Technology parameters used for latency evaluation.
        schedule: Critical-path operation counts (the paper's hand-optimized
            schedule by default).
        code: The code each row assembles (``None``: the paper's
            [[7,1,3]] layout with ten-qubit rows). An explicit code sizes
            the rows at ``n`` encoding plus ``w`` cat qubits; the Steane
            code reproduces the Figure 11 floorplan exactly. The
            schedule's operation counts are per-row critical-path
            constants and stay as given (override ``schedule`` to model a
            different per-row choreography).
    """

    tech: TechnologyParams = ION_TRAP
    schedule: OpSchedule = SIMPLE_FACTORY_SCHEDULE
    code: object = None
    grid: Grid = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.grid is None:
            from repro.factory.units import code_profile

            n, w, _ = code_profile(self.code)
            object.__setattr__(self, "grid", simple_factory_grid(n + w))

    @property
    def latency_us(self) -> float:
        """Latency of one complete ancilla preparation (323us)."""
        return self.schedule.latency(self.tech)

    @property
    def throughput_per_ms(self) -> float:
        """Encoded ancillae per millisecond (3.1).

        The design is not pipelined: one corrected encoded ancilla emerges
        per full preparation latency.
        """
        return 1000.0 / self.latency_us

    @property
    def area(self) -> int:
        """Area in macroblocks (90 for the paper's [[7,1,3]] layout)."""
        return self.grid.area

    @property
    def bandwidth_per_area(self) -> float:
        """Encoded ancillae per millisecond per macroblock (Section 5.3)."""
        return self.throughput_per_ms / self.area

    def replicated_area_for_bandwidth(self, ancillae_per_ms: float) -> int:
        """Area needed to hit a bandwidth by replicating the factory.

        Section 4.3: "we could produce any desired bandwidth of encoded
        ancillae by replicating the layout as many times as necessary".
        """
        if ancillae_per_ms < 0:
            raise ValueError("bandwidth must be non-negative")
        import math

        copies = math.ceil(ancillae_per_ms / self.throughput_per_ms)
        return copies * self.area
