"""The pipelined encoded-zero ancilla factory (Section 4.4.1, Figure 12).

Four stages — physical zero prep (+ optional Hadamard), the encoder CX
rounds alongside cat-state preparation, verification, and bit/phase
correction — separated by crossbar columns. Unit counts are derived by
bandwidth-matching successive stages (Table 6), with the CX/cat split
fixed at the 7:3 ratio verification requires.

With ion-trap latencies the factory reproduces the paper's numbers: 24
zero-prep units, 4-row CX unit, one cat unit, 3 verification units, 2 B/P
correction units; 130 macroblocks of functional units plus 168 of crossbar
(total 298); throughput 10.5 encoded ancillae/ms, bottlenecked by the CX
stage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.factory.units import FunctionalUnit, code_profile, zero_factory_units
from repro.tech import ION_TRAP, TechnologyParams

#: Qubits per encoded ancilla and per verification cat (the 7:3 ratio of
#: the paper's [[7,1,3]] instantiation; factories built with an explicit
#: ``code`` derive the ratio from the code's block and cat sizes).
ENCODED_QUBITS = 7
CAT_QUBITS = 3

#: Verified ancillae consumed per corrected output ancilla: the output is
#: bit-corrected by one helper and phase-corrected by another (1 of 3).
CORRECTION_CONSUMPTION = 3


@dataclass(frozen=True)
class StageProvision:
    """A provisioned pipeline stage: which unit, how many copies."""

    unit: FunctionalUnit
    count: int

    @property
    def total_area(self) -> int:
        return self.unit.area * self.count

    @property
    def total_height(self) -> int:
        return self.unit.height * self.count

    def capacity_in(self, tech: TechnologyParams) -> float:
        return self.unit.bandwidth_in(tech) * self.count

    def capacity_out(self, tech: TechnologyParams) -> float:
        return self.unit.bandwidth_out(tech) * self.count


class PipelinedZeroFactory:
    """Bandwidth-matched pipelined factory for encoded zero ancillae.

    Args:
        tech: Technology parameters.
        cx_units: Number of CX-stage units driving the design (the paper's
            factory uses one; scaling this scales the whole factory).
        code: The code the factory assembles (``None``: the paper's
            [[7,1,3]] constants). Unit geometry and the encoded/cat flow
            ratio derive from the code's block size and check count; the
            Steane code reproduces the paper's numbers exactly.

    The derivation (Section 4.4.1): the CX stage sets the encoded-qubit
    flow; cat preparation is matched at 3 cat qubits per 7 encoded; zero
    prep feeds both; verification absorbs both flows; correction absorbs
    the verified survivors; and the overall output is one corrected
    ancilla per three verified.
    """

    def __init__(
        self,
        tech: TechnologyParams = ION_TRAP,
        cx_units: int = 1,
        code=None,
    ) -> None:
        if cx_units < 1:
            raise ValueError(f"cx_units must be >= 1, got {cx_units}")
        self.tech = tech
        self.cx_units = cx_units
        self.code = code
        self.encoded_qubits, self.cat_qubits, _ = code_profile(code)
        self.units = zero_factory_units(tech, code)
        self.stages = self._provision()

    # ------------------------------------------------------------------
    # Provisioning

    def _provision(self) -> Dict[str, StageProvision]:
        tech = self.tech
        units = self.units
        cx = StageProvision(units["cx_stage"], self.cx_units)
        encoded_flow = cx.capacity_in(tech)  # physical qubits / ms
        cat_flow = encoded_flow * self.cat_qubits / self.encoded_qubits
        cat_count = math.ceil(cat_flow / units["cat_prep"].bandwidth_in(tech))
        prep_flow = encoded_flow + cat_flow
        prep_count = math.ceil(prep_flow / units["zero_prep"].bandwidth_in(tech))
        verify_flow = encoded_flow + cat_flow
        verify_count = math.ceil(
            verify_flow / units["verification"].bandwidth_in(tech)
        )
        verified_flow = encoded_flow * units["verification"].survival
        bp_count = math.ceil(
            verified_flow / units["bp_correction"].bandwidth_in(tech)
        )
        return {
            "zero_prep": StageProvision(units["zero_prep"], prep_count),
            "cx_stage": cx,
            "cat_prep": StageProvision(units["cat_prep"], cat_count),
            "verification": StageProvision(units["verification"], verify_count),
            "bp_correction": StageProvision(units["bp_correction"], bp_count),
        }

    # ------------------------------------------------------------------
    # Derived characteristics

    @property
    def unit_counts(self) -> Dict[str, int]:
        return {name: stage.count for name, stage in self.stages.items()}

    @property
    def functional_area(self) -> int:
        """Total functional-unit area (130 macroblocks for one CX unit)."""
        return sum(stage.total_area for stage in self.stages.values())

    def _stage_heights(self) -> List[Tuple[str, int]]:
        """Heights of the four physical pipeline stages, in order."""
        stage2_height = (
            self.stages["cx_stage"].total_height
            + self.stages["cat_prep"].total_height
        )
        return [
            ("stage1", self.stages["zero_prep"].total_height),
            ("stage2", stage2_height),
            ("stage3", self.stages["verification"].total_height),
            ("stage4", self.stages["bp_correction"].total_height),
        ]

    @property
    def crossbar_areas(self) -> List[int]:
        """Crossbar areas between successive stages (24, 60, 84).

        Crossbars span the taller of the two adjacent stages. The crossbar
        out of Stage 1 is single-column (qubits funnel inward to the much
        smaller Stage 2, so bidirectionality is unnecessary); the others
        are two columns, one per movement direction (Section 4.4.1).
        """
        heights = [h for _, h in self._stage_heights()]
        areas = []
        for i in range(len(heights) - 1):
            width = 1 if i == 0 else 2
            areas.append(width * max(heights[i], heights[i + 1]))
        return areas

    @property
    def crossbar_area(self) -> int:
        """Total crossbar area (168 macroblocks)."""
        return sum(self.crossbar_areas)

    @property
    def area(self) -> int:
        """Total factory area (298 macroblocks)."""
        return self.functional_area + self.crossbar_area

    @property
    def throughput_per_ms(self) -> float:
        """Corrected encoded ancillae per millisecond (10.5).

        The CX stage is the bottleneck: each seven physical qubits out is
        one encoded zero; 99.8% survive verification; and two-thirds of the
        survivors are consumed correcting the final third.
        """
        encoded_rate = (
            self.stages["cx_stage"].capacity_out(self.tech) / self.encoded_qubits
        )
        survived = encoded_rate * self.units["verification"].survival
        return survived / CORRECTION_CONSUMPTION

    @property
    def bandwidth_per_area(self) -> float:
        """Ancillae per ms per macroblock — on par with the simple factory
        (Section 5.3: pipelining buys port concentration, not density)."""
        return self.throughput_per_ms / self.area

    def serial_latency_us(self) -> float:
        """Latency of one ancilla flowing through all four stages.

        Pipelining adds crossbar traversals but the paper's Figure 4c
        content is the same; used for critical-path (Table 2) accounting.
        """
        return sum(
            self.units[name].latency(self.tech)
            for name in ("zero_prep", "cx_stage", "verification", "bp_correction")
        )

    def area_for_bandwidth(self, ancillae_per_ms: float) -> float:
        """Area (macroblocks) to sustain a bandwidth, allowing fractional
        replication — the paper's Table 9 convention."""
        if ancillae_per_ms < 0:
            raise ValueError("bandwidth must be non-negative")
        return self.area * ancillae_per_ms / self.throughput_per_ms
