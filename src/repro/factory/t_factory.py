"""The encoded pi/8 ancilla factory (Section 4.4.2, Tables 7-8).

Turns encoded zero ancillae (supplied by zero factories) into encoded pi/8
ancillae via the Figure 5b circuit, pipelined into four stages: 7-qubit cat
state preparation; transversal CZ/CS/CX plus transversal pi/8; decode (plus
store); and H / measure / conditional transversal Z.

The paper provisions four cat-prepare units; the cat stage is the
bottleneck, and each seven-qubit cat state yields one pi/8 ancilla, giving
18.3 ancillae/ms in 403 macroblocks (147 functional + 256 crossbar).
Note the factory consumes one encoded zero per output, which callers must
supply from zero factories (accounted in Table 9's last column).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.factory.pipelined import StageProvision
from repro.factory.units import FunctionalUnit, code_profile, pi8_units
from repro.tech import ION_TRAP, TechnologyParams

ENCODED_QUBITS = 7

#: Stage order for height/crossbar accounting.
_STAGE_ORDER = (
    "cat_state_prepare",
    "transversal_interact",
    "decode_store",
    "h_measure_correct",
)


class Pi8Factory:
    """Bandwidth-matched pipelined factory for encoded pi/8 ancillae.

    Args:
        tech: Technology parameters.
        cat_units: Cat-state-prepare units driving the design (the paper
            uses four).
        code: The code the factory converts (``None``: the paper's
            [[7,1,3]] constants; the Steane code derives the same
            numbers). Batch sizes and areas follow the code's block size.

    Only half the qubits consumed by the transversal-interact stage come
    from the cat stage; the other half are the encoded zeros from a zero
    factory (Section 4.4.2), so stage 2 demand is twice the cat flow.
    """

    def __init__(
        self,
        tech: TechnologyParams = ION_TRAP,
        cat_units: int = 4,
        code=None,
    ) -> None:
        if cat_units < 1:
            raise ValueError(f"cat_units must be >= 1, got {cat_units}")
        self.tech = tech
        self.cat_units = cat_units
        self.code = code
        self.encoded_qubits = code_profile(code)[0]
        self.units = pi8_units(tech, code)
        self.stages = self._provision()

    def _provision(self) -> Dict[str, StageProvision]:
        tech = self.tech
        units = self.units
        cat = StageProvision(units["cat_state_prepare"], self.cat_units)
        cat_flow = cat.capacity_out(tech)
        interact_flow = 2.0 * cat_flow  # cat qubits plus encoded-zero qubits
        interact_count = math.ceil(
            interact_flow / units["transversal_interact"].bandwidth_in(tech)
        )
        decode_count = math.ceil(
            interact_flow / units["decode_store"].bandwidth_in(tech)
        )
        decode = StageProvision(units["decode_store"], decode_count)
        hmz_count = math.ceil(
            decode.capacity_out(tech) / units["h_measure_correct"].bandwidth_in(tech)
        )
        return {
            "cat_state_prepare": cat,
            "transversal_interact": StageProvision(
                units["transversal_interact"], interact_count
            ),
            "decode_store": decode,
            "h_measure_correct": StageProvision(
                units["h_measure_correct"], hmz_count
            ),
        }

    @property
    def unit_counts(self) -> Dict[str, int]:
        return {name: stage.count for name, stage in self.stages.items()}

    @property
    def functional_area(self) -> int:
        """Total functional-unit area (147 macroblocks)."""
        return sum(stage.total_area for stage in self.stages.values())

    @property
    def crossbar_areas(self) -> List[int]:
        """Two-column crossbars spanning the taller adjacent stage
        (48, 104, 104 for the paper's configuration)."""
        heights = [self.stages[name].total_height for name in _STAGE_ORDER]
        return [
            2 * max(heights[i], heights[i + 1]) for i in range(len(heights) - 1)
        ]

    @property
    def crossbar_area(self) -> int:
        """Total crossbar area (256 macroblocks)."""
        return sum(self.crossbar_areas)

    @property
    def area(self) -> int:
        """Total factory area (403 macroblocks) — conversion only; the
        supplying zero factories are accounted separately."""
        return self.functional_area + self.crossbar_area

    @property
    def throughput_per_ms(self) -> float:
        """Encoded pi/8 ancillae per millisecond (18.3).

        The cat-prepare stage is the bottleneck; each seven-qubit cat state
        results in one encoded pi/8 ancilla.
        """
        cat_flow = self.stages["cat_state_prepare"].capacity_out(self.tech)
        return cat_flow / self.encoded_qubits

    @property
    def zero_ancilla_demand_per_ms(self) -> float:
        """Encoded zeros consumed per millisecond (one per output)."""
        return self.throughput_per_ms

    def serial_latency_us(self) -> float:
        """One ancilla's flow latency through all four stages (563us)."""
        return sum(self.units[name].latency(self.tech) for name in _STAGE_ORDER)

    def area_for_bandwidth(self, ancillae_per_ms: float) -> float:
        """Conversion area (macroblocks) for a pi/8 bandwidth, fractional
        replication allowed (Table 9 convention)."""
        if ancillae_per_ms < 0:
            raise ValueError("bandwidth must be non-negative")
        return self.area * ancillae_per_ms / self.throughput_per_ms
