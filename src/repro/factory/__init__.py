"""Ancilla factories (Section 4): simple and pipelined designs.

An ancilla factory consumes stateless physical qubits and produces a steady
stream of encoded ancillae. This package models:

* :mod:`repro.factory.units` — functional units with symbolic latency,
  bandwidth, pipeline-stage count and area (Tables 5 and 7);
* :mod:`repro.factory.simple` — the non-pipelined Figure 11 factory
  (323us latency, 3.1 ancillae/ms, 90 macroblocks);
* :mod:`repro.factory.pipelined` — the bandwidth-matched pipelined
  encoded-zero factory (Figure 12, Tables 5-6: 298 macroblocks,
  10.5 ancillae/ms);
* :mod:`repro.factory.t_factory` — the encoded pi/8 factory (Tables 7-8:
  403 macroblocks, 18.3 ancillae/ms).
"""

from repro.factory.pipelined import PipelinedZeroFactory, StageProvision
from repro.factory.simple import SimpleZeroFactory
from repro.factory.t_factory import Pi8Factory
from repro.factory.units import FunctionalUnit, pi8_units, zero_factory_units

__all__ = [
    "FunctionalUnit",
    "Pi8Factory",
    "PipelinedZeroFactory",
    "SimpleZeroFactory",
    "StageProvision",
    "pi8_units",
    "zero_factory_units",
]
