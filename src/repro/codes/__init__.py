"""Quantum error correcting codes.

The paper works exclusively with the [[7,1,3]] Steane CSS code
(Section 2.1). This package provides a generic CSS-code record plus the
Steane instance with its stabilizers, logical operators, encoding circuit
(Figure 3b), syndrome decoding, and transversal-gate rules — and, beyond
the paper, :class:`ConcatenatedCode`: recursive self-concatenation of the
base code, making concatenation level a first-class design dimension
(``n**L`` physical qubits, distance ``d**L``, a level-L encoder built
from level-(L-1) blocks, and recursive hard-decision decoding).
"""

from repro.codes.css import CssCode
from repro.codes.concatenated import (
    ConcatenatedCode,
    css_encoder_layout,
    css_zero_prep_circuit,
    propagate_zero_stabilizers,
    zero_state_group,
)
from repro.codes.steane import (
    STEANE,
    steane_code,
    steane_zero_prep_circuit,
)
from repro.codes.transversal import (
    TransversalRule,
    transversal_rule,
)

__all__ = [
    "ConcatenatedCode",
    "CssCode",
    "STEANE",
    "TransversalRule",
    "css_encoder_layout",
    "css_zero_prep_circuit",
    "propagate_zero_stabilizers",
    "steane_code",
    "steane_zero_prep_circuit",
    "transversal_rule",
    "zero_state_group",
]
