"""Quantum error correcting codes.

The paper works exclusively with the [[7,1,3]] Steane CSS code
(Section 2.1). This package provides a generic CSS-code record plus the
Steane instance with its stabilizers, logical operators, encoding circuit
(Figure 3b), syndrome decoding, and transversal-gate rules.
"""

from repro.codes.css import CssCode
from repro.codes.steane import (
    STEANE,
    steane_code,
    steane_zero_prep_circuit,
)
from repro.codes.transversal import (
    TransversalRule,
    transversal_rule,
)

__all__ = [
    "CssCode",
    "STEANE",
    "TransversalRule",
    "steane_code",
    "steane_zero_prep_circuit",
    "transversal_rule",
]
