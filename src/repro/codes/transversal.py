"""Transversal-gate rules for the [[7,1,3]] code (Sections 2.1 and 2.4).

Maps each logical gate type to how it is implemented on encoded data:
transversally (bitwise physical gates), or via an encoded-ancilla
construction (the pi/8 gate and the rotations built from it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.circuits.gate import (
    GATE_ARITY,
    NON_TRANSVERSAL_GATES,
    Gate,
    GateType,
)


class Implementation(enum.Enum):
    """How an encoded gate is realized."""

    TRANSVERSAL = "transversal"
    ANCILLA = "ancilla"  # consumes a prepared encoded ancilla (pi/8 style)
    DECOMPOSED = "decomposed"  # rewritten into other gates first


@dataclass(frozen=True)
class TransversalRule:
    """Implementation rule for one encoded gate type.

    Attributes:
        gate_type: The logical gate.
        implementation: Realization strategy on the [[7,1,3]] code.
        physical_gate: For transversal gates, the physical gate applied
            bitwise (identical to the logical gate for this code).
        ancillae_required: Number of encoded pi/8 ancillae consumed when the
            implementation is ANCILLA (before decomposition of rotations).
        self_dual_note: Short explanation for documentation output.
    """

    gate_type: GateType
    implementation: Implementation
    physical_gate: GateType | None = None
    ancillae_required: int = 0
    note: str = ""


_RULES = {}


def _rule(
    gate_type: GateType,
    implementation: Implementation,
    physical_gate: GateType | None = None,
    ancillae_required: int = 0,
    note: str = "",
) -> None:
    _RULES[gate_type] = TransversalRule(
        gate_type, implementation, physical_gate, ancillae_required, note
    )


_rule(GateType.X, Implementation.TRANSVERSAL, GateType.X)
_rule(GateType.Y, Implementation.TRANSVERSAL, GateType.Y)
_rule(GateType.Z, Implementation.TRANSVERSAL, GateType.Z)
_rule(
    GateType.H,
    Implementation.TRANSVERSAL,
    GateType.H,
    note="the Steane code is self-dual, so bitwise H implements logical H",
)
_rule(
    GateType.S,
    Implementation.TRANSVERSAL,
    GateType.S_DAG,
    note="bitwise S-dagger implements logical S on the Steane code",
)
_rule(GateType.S_DAG, Implementation.TRANSVERSAL, GateType.S)
_rule(GateType.CX, Implementation.TRANSVERSAL, GateType.CX)
_rule(GateType.CZ, Implementation.TRANSVERSAL, GateType.CZ)
_rule(GateType.MEASURE_Z, Implementation.TRANSVERSAL, GateType.MEASURE_Z)
_rule(GateType.MEASURE_X, Implementation.TRANSVERSAL, GateType.MEASURE_X)
_rule(GateType.PREP_0, Implementation.ANCILLA, note="fresh encoded zero from factory")
_rule(GateType.PREP_PLUS, Implementation.ANCILLA, note="encoded zero plus transversal H")
_rule(
    GateType.T,
    Implementation.ANCILLA,
    ancillae_required=1,
    note="consumes one encoded pi/8 ancilla (Figure 5a)",
)
_rule(GateType.T_DAG, Implementation.ANCILLA, ancillae_required=1)
_rule(
    GateType.RZ,
    Implementation.DECOMPOSED,
    note="synthesized into H/T sequences (Fowler, Section 2.5)",
)
_rule(
    GateType.CRZ,
    Implementation.DECOMPOSED,
    note="CX plus three single-qubit rotations (Section 2.5)",
)
_rule(
    GateType.CS,
    Implementation.DECOMPOSED,
    note="controlled-S decomposes into CX and T-layer gates",
)
_rule(GateType.SWAP, Implementation.TRANSVERSAL, GateType.SWAP)
_rule(
    GateType.CCX,
    Implementation.DECOMPOSED,
    note="Toffoli macro; decomposes into H, T and CX before encoded execution",
)


def transversal_rule(gate_type: GateType) -> TransversalRule:
    """Implementation rule for ``gate_type`` on the [[7,1,3]] code."""
    return _RULES[gate_type]


def is_directly_executable(gate: Gate) -> bool:
    """Whether the encoded gate runs without prior decomposition."""
    rule = transversal_rule(gate.gate_type)
    return rule.implementation is not Implementation.DECOMPOSED


def pi8_ancillae_for(gate: Gate) -> int:
    """Encoded pi/8 ancillae consumed directly by this gate."""
    if gate.gate_type in NON_TRANSVERSAL_GATES:
        rule = transversal_rule(gate.gate_type)
        return rule.ancillae_required
    return 0


def assert_universal_coverage() -> None:
    """Every gate type must have a rule (import-time self-check)."""
    missing = [g for g in GATE_ARITY if g not in _RULES]
    if missing:
        raise AssertionError(f"gate types without transversal rules: {missing}")


assert_universal_coverage()
