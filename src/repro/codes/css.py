"""Generic CSS code machinery over GF(2).

A CSS code is built from two classical codes; here we represent it directly
by its X- and Z-type stabilizer generator matrices. Syndromes, decoding and
logical-error grading all reduce to GF(2) linear algebra, implemented with
numpy uint8 arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np


def _as_gf2(matrix) -> np.ndarray:
    arr = np.array(matrix, dtype=np.uint8) % 2
    if arr.ndim != 2:
        raise ValueError(f"stabilizer matrix must be 2-D, got shape {arr.shape}")
    return arr


def gf2_rank(matrix: np.ndarray) -> int:
    """Rank of a binary matrix over GF(2)."""
    m = matrix.copy() % 2
    rank = 0
    rows, cols = m.shape
    for col in range(cols):
        pivot = None
        for row in range(rank, rows):
            if m[row, col]:
                pivot = row
                break
        if pivot is None:
            continue
        m[[rank, pivot]] = m[[pivot, rank]]
        for row in range(rows):
            if row != rank and m[row, col]:
                m[row] ^= m[rank]
        rank += 1
        if rank == rows:
            break
    return rank


def gf2_in_rowspace(matrix: np.ndarray, vector: np.ndarray) -> bool:
    """Whether ``vector`` lies in the GF(2) row space of ``matrix``."""
    stacked = np.vstack([matrix, vector[np.newaxis, :]]) % 2
    return gf2_rank(stacked) == gf2_rank(matrix)


@dataclass(frozen=True)
class CssCode:
    """A CSS stabilizer code.

    Attributes:
        name: Human-readable code name.
        n: Number of physical qubits per encoded qubit.
        k: Number of encoded qubits (1 for every code in this library).
        d: Code distance.
        x_stabilizers: Binary matrix; each row is the support of an X-type
            stabilizer generator.
        z_stabilizers: Binary matrix; each row is the support of a Z-type
            stabilizer generator.
        logical_x: Support of one logical-X representative.
        logical_z: Support of one logical-Z representative.
    """

    name: str
    n: int
    k: int
    d: int
    x_stabilizers: np.ndarray
    z_stabilizers: np.ndarray
    logical_x: np.ndarray
    logical_z: np.ndarray
    _z_syndrome_table: Dict[Tuple[int, ...], np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )
    _x_syndrome_table: Dict[Tuple[int, ...], np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        xs = _as_gf2(self.x_stabilizers)
        zs = _as_gf2(self.z_stabilizers)
        object.__setattr__(self, "x_stabilizers", xs)
        object.__setattr__(self, "z_stabilizers", zs)
        object.__setattr__(self, "logical_x", _as_gf2([self.logical_x])[0])
        object.__setattr__(self, "logical_z", _as_gf2([self.logical_z])[0])
        if xs.shape[1] != self.n or zs.shape[1] != self.n:
            raise ValueError("stabilizer width does not match n")
        # CSS commutation: every X generator must overlap every Z generator
        # on an even number of qubits.
        overlap = (xs @ zs.T) % 2
        if overlap.any():
            raise ValueError(f"{self.name}: X and Z stabilizers do not commute")
        if ((xs @ self.logical_z) % 2).any():
            raise ValueError(f"{self.name}: logical Z anticommutes with X stabilizers")
        if ((zs @ self.logical_x) % 2).any():
            raise ValueError(f"{self.name}: logical X anticommutes with Z stabilizers")
        if (self.logical_x @ self.logical_z) % 2 != 1:
            raise ValueError(f"{self.name}: logical X and Z must anticommute")
        self._build_syndrome_tables()

    # ------------------------------------------------------------------
    # Syndromes

    def x_error_syndrome(self, x_error: np.ndarray) -> np.ndarray:
        """Syndrome an X-error pattern triggers (measured by Z stabilizers)."""
        return (self.z_stabilizers @ (np.asarray(x_error, dtype=np.uint8) % 2)) % 2

    def z_error_syndrome(self, z_error: np.ndarray) -> np.ndarray:
        """Syndrome a Z-error pattern triggers (measured by X stabilizers)."""
        return (self.x_stabilizers @ (np.asarray(z_error, dtype=np.uint8) % 2)) % 2

    def _build_syndrome_tables(self) -> None:
        """Minimum-weight decoder tables for correctable error weights."""
        t = (self.d - 1) // 2
        for table, syndrome_fn in (
            (self._x_syndrome_table, self.x_error_syndrome),
            (self._z_syndrome_table, self.z_error_syndrome),
        ):
            zero = np.zeros(self.n, dtype=np.uint8)
            table[tuple(syndrome_fn(zero).tolist())] = zero
            frontier = [zero]
            for _ in range(t):
                new_frontier = []
                for base in frontier:
                    for q in range(self.n):
                        if base[q]:
                            continue
                        err = base.copy()
                        err[q] = 1
                        key = tuple(syndrome_fn(err).tolist())
                        if key not in table:
                            table[key] = err
                            new_frontier.append(err)
                frontier = new_frontier

    def decode_x_error(self, x_error: np.ndarray) -> np.ndarray:
        """The correction a minimum-weight decoder applies for ``x_error``.

        Unknown syndromes (beyond the code's correction radius) decode to the
        zero correction, a conservative stand-in for decoder failure.
        """
        key = tuple(self.x_error_syndrome(x_error).tolist())
        return self._x_syndrome_table.get(key, np.zeros(self.n, dtype=np.uint8)).copy()

    def decode_z_error(self, z_error: np.ndarray) -> np.ndarray:
        key = tuple(self.z_error_syndrome(z_error).tolist())
        return self._z_syndrome_table.get(key, np.zeros(self.n, dtype=np.uint8)).copy()

    def correction_from_x_syndrome(self, syndrome: np.ndarray) -> np.ndarray:
        """X correction for a measured Z-stabilizer syndrome."""
        key = tuple(int(b) % 2 for b in syndrome)
        return self._x_syndrome_table.get(key, np.zeros(self.n, dtype=np.uint8)).copy()

    def correction_from_z_syndrome(self, syndrome: np.ndarray) -> np.ndarray:
        """Z correction for a measured X-stabilizer syndrome."""
        key = tuple(int(b) % 2 for b in syndrome)
        return self._z_syndrome_table.get(key, np.zeros(self.n, dtype=np.uint8)).copy()

    # ------------------------------------------------------------------
    # Logical-error grading

    def is_logical_x(self, x_error: np.ndarray) -> bool:
        """Whether an X pattern, after ideal decode, flips the logical qubit.

        The residual (pattern + decoder correction) has zero syndrome; it is
        harmless iff it lies in the X-stabilizer row space, and a logical X
        otherwise.
        """
        residual = (np.asarray(x_error, dtype=np.uint8) + self.decode_x_error(x_error)) % 2
        syndrome = self.x_error_syndrome(residual)
        if syndrome.any():
            # Correction radius exceeded and decoder left a detectable error:
            # grade as logical failure (the ancilla is not usable as-is).
            return True
        return not gf2_in_rowspace(self.x_stabilizers, residual)

    def is_logical_z(self, z_error: np.ndarray) -> bool:
        residual = (np.asarray(z_error, dtype=np.uint8) + self.decode_z_error(z_error)) % 2
        syndrome = self.z_error_syndrome(residual)
        if syndrome.any():
            return True
        return not gf2_in_rowspace(self.z_stabilizers, residual)

    def is_uncorrectable(self, x_error: np.ndarray, z_error: np.ndarray) -> bool:
        """Whether a Pauli error on the block defeats ideal decoding."""
        return self.is_logical_x(x_error) or self.is_logical_z(z_error)

    # ------------------------------------------------------------------

    @property
    def parameters(self) -> Tuple[int, int, int]:
        """The [[n, k, d]] triple."""
        return (self.n, self.k, self.d)

    def __str__(self) -> str:
        return f"[[{self.n},{self.k},{self.d}]] {self.name}"
