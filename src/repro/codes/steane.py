"""The [[7,1,3]] Steane code and its encoding circuit (Figure 3b).

The Steane code is built from the [7,4,3] Hamming code: both the X- and
Z-type stabilizer generators have the Hamming parity-check matrix as their
supports. The basic encoded-zero preparation circuit consists of three
Hadamards and nine CX gates arranged in three fully parallel rounds —
exactly the structure shown in the paper's Figure 3b and exploited by the
pipelined CX stage of Section 4.4.1.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.circuits import Circuit
from repro.codes.css import CssCode

#: Parity-check matrix of the [7,4,3] Hamming code. Row supports are the
#: stabilizer generators of the Steane code (both X- and Z-type).
HAMMING_PARITY_CHECK = np.array(
    [
        [0, 0, 0, 1, 1, 1, 1],
        [0, 1, 1, 0, 0, 1, 1],
        [1, 0, 1, 0, 1, 0, 1],
    ],
    dtype=np.uint8,
)

#: Qubits receiving a Hadamard in the encoder: the pivot column of each
#: stabilizer row (rows listed bottom-up so pivots are 0, 1, 3).
ENCODER_H_QUBITS: Tuple[int, ...] = (0, 1, 3)

#: The nine encoder CX gates as (control, target), grouped into three rounds
#: of three gates that touch disjoint qubits and can run in parallel
#: (Section 4.4.1: "the first three CX's can be performed in parallel, as
#: can the next three, followed by the final three").
ENCODER_CX_ROUNDS: Tuple[Tuple[Tuple[int, int], ...], ...] = (
    ((0, 2), (1, 5), (3, 6)),
    ((0, 4), (1, 6), (3, 5)),
    ((0, 6), (1, 2), (3, 4)),
)


def steane_code() -> CssCode:
    """Construct the [[7,1,3]] Steane code instance."""
    return CssCode(
        name="Steane",
        n=7,
        k=1,
        d=3,
        x_stabilizers=HAMMING_PARITY_CHECK,
        z_stabilizers=HAMMING_PARITY_CHECK,
        logical_x=np.ones(7, dtype=np.uint8),
        logical_z=np.ones(7, dtype=np.uint8),
    )


STEANE = steane_code()


def steane_zero_prep_circuit(include_prep: bool = True) -> Circuit:
    """The Basic Encoded Zero Ancilla Prepare circuit (Figure 3b).

    Args:
        include_prep: Include the seven physical |0> preparations. Factories
            that receive already-prepared physical qubits from a Zero Prep
            stage set this False.

    Returns:
        A 7-qubit circuit: physical preps, Hadamards on the pivot qubits,
        then three rounds of three parallel CX gates.
    """
    circ = Circuit(7, name="basic_zero_prep")
    if include_prep:
        for q in range(7):
            circ.prep_0(q)
    for q in ENCODER_H_QUBITS:
        circ.h(q)
    for round_gates in ENCODER_CX_ROUNDS:
        for control, target in round_gates:
            circ.cx(control, target)
    return circ


def encoder_cx_list() -> List[Tuple[int, int]]:
    """The nine encoder CX gates flattened in schedule order."""
    return [pair for round_gates in ENCODER_CX_ROUNDS for pair in round_gates]


def _validate_encoder() -> None:
    """Structural self-checks, run at import time.

    The CX rounds must each touch disjoint qubits, and each stabilizer row's
    pivot must fan out to exactly the rest of its support.
    """
    for round_gates in ENCODER_CX_ROUNDS:
        touched = [q for pair in round_gates for q in pair]
        if len(set(touched)) != len(touched):
            raise AssertionError(f"encoder CX round not parallel: {round_gates}")
    for pivot, row in zip(ENCODER_H_QUBITS, HAMMING_PARITY_CHECK[::-1]):
        support = {i for i, bit in enumerate(row) if bit}
        targets = {t for (c, t) in encoder_cx_list() if c == pivot}
        if support != targets | {pivot}:
            raise AssertionError(
                f"encoder row for pivot {pivot} covers {targets}, "
                f"stabilizer support is {support}"
            )


_validate_encoder()
