"""Technology parameter records (paper Tables 1 and 4, Section 2.2).

All latencies are in microseconds, matching the paper's unit convention.
Bandwidths derived elsewhere in the library are therefore "per millisecond"
when multiplied by 1000, again matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ErrorRates:
    """Independent per-operation error probabilities (paper Section 2.2).

    Attributes:
        gate: Probability of a random Pauli error after each physical gate.
        movement: Probability of a random Pauli error per movement operation.
        measurement: Probability of a classical readout flip. The paper folds
            measurement error into the gate error; we keep a separate knob
            that defaults to the gate rate.
    """

    gate: float = 1e-4
    movement: float = 1e-6
    measurement: float = 1e-4

    def __post_init__(self) -> None:
        for name in ("gate", "movement", "measurement"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} error rate must be in [0, 1], got {value}")


@dataclass(frozen=True)
class TechnologyParams:
    """Physical operation latencies for one implementation technology.

    The defaults are the trapped-ion values from Tables 1 and 4:

    ==================  ======  =====
    operation           symbol  us
    ==================  ======  =====
    one-qubit gate      t1q     1
    two-qubit gate      t2q     10
    measurement         tmeas   50
    physical |0> prep   tprep   51
    straight move       tmove   1
    turn                tturn   10
    ==================  ======  =====
    """

    name: str = "ion-trap"
    t_1q: float = 1.0
    t_2q: float = 10.0
    t_meas: float = 50.0
    t_prep: float = 51.0
    t_move: float = 1.0
    t_turn: float = 10.0
    errors: ErrorRates = ErrorRates()

    def __post_init__(self) -> None:
        for name in ("t_1q", "t_2q", "t_meas", "t_prep", "t_move", "t_turn"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} latency must be non-negative, got {value}")

    def with_errors(self, errors: ErrorRates) -> "TechnologyParams":
        """Return a copy of these parameters with different error rates."""
        return replace(self, errors=errors)

    def at_level(self, level: int, **kwargs) -> "TechnologyParams":
        """Effective parameters at concatenation level ``level``.

        Level 1 is the identity (returns ``self``); higher levels price
        level-(L-1) logical operations as the physical layer and derive
        error rates from the concatenation scaling law, calibrated by
        the level-1 Monte-Carlo driver. See :func:`repro.tech.levels.at_level`
        (which this delegates to) for the model and the memoization.
        """
        from repro.tech.levels import at_level

        return at_level(self, level, **kwargs)

    def scaled(self, factor: float, name: str | None = None) -> "TechnologyParams":
        """Return a copy with every latency multiplied by ``factor``.

        Useful for what-if studies ("what if ion shuttling got 10x faster?").
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            name=name or f"{self.name}-x{factor:g}",
            t_1q=self.t_1q * factor,
            t_2q=self.t_2q * factor,
            t_meas=self.t_meas * factor,
            t_prep=self.t_prep * factor,
            t_move=self.t_move * factor,
            t_turn=self.t_turn * factor,
        )


def ion_trap_params() -> TechnologyParams:
    """The paper's trapped-ion technology point (Tables 1 and 4)."""
    return TechnologyParams()


ION_TRAP = ion_trap_params()
ERROR_MODEL_PAPER = ErrorRates()
