"""Physical technology models.

The paper grounds its symbolic analysis in trapped-ion technology using the
operation latencies of its Tables 1 and 4 and the error rates of Section 2.2.
This package holds those parameter records and makes them pluggable so the
rest of the library can be evaluated under different technology assumptions.
"""

from repro.tech.params import (
    ERROR_MODEL_PAPER,
    ION_TRAP,
    ErrorRates,
    TechnologyParams,
    ion_trap_params,
)

__all__ = [
    "ERROR_MODEL_PAPER",
    "ION_TRAP",
    "ErrorRates",
    "TechnologyParams",
    "ion_trap_params",
]
