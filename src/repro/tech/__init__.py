"""Physical technology models.

The paper grounds its symbolic analysis in trapped-ion technology using the
operation latencies of its Tables 1 and 4 and the error rates of Section 2.2.
This package holds those parameter records and makes them pluggable so the
rest of the library can be evaluated under different technology assumptions.

:mod:`repro.tech.levels` adds the concatenation-level axis:
``tech.at_level(L)`` (or :func:`at_level`) re-characterizes a technology
so level-(L-1) logical operations become the physical layer — the knob
that turns ``tech_scale``-style what-ifs into a real code-level study.
"""

from repro.tech.params import (
    ERROR_MODEL_PAPER,
    ION_TRAP,
    ErrorRates,
    TechnologyParams,
    ion_trap_params,
)
from repro.tech.levels import (
    at_level,
    level_one_logical_error_rate,
)

__all__ = [
    "ERROR_MODEL_PAPER",
    "ION_TRAP",
    "ErrorRates",
    "TechnologyParams",
    "at_level",
    "ion_trap_params",
    "level_one_logical_error_rate",
]
