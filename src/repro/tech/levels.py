"""Concatenation-level re-characterization of technology parameters.

At concatenation level L, the "physical" operations the dataflow engine
prices are level-(L-1) *logical* operations: a transversal gate runs its
per-qubit physical gates in parallel and is followed by a level-(L-1)
QEC step (Figure 2's bit + phase correction); an encoded preparation is a
full encoded-zero factory pass at the level below; block movement
serializes the base code's physical qubits through a channel. Error
rates follow the standard concatenation scaling law
``p_L = C * p_{L-1}**2``, with the constant ``C`` calibrated once per
technology from the library's level-1 Monte-Carlo driver (the Figure 4
verify-and-correct preparation, run on the batched protocol engine).

:func:`at_level` folds all of that into an effective
:class:`~repro.tech.TechnologyParams`, memoized per ``(tech, level,
trials, seed)``. Level 1 returns the input object itself, so every
existing level-1 characterization, sweep and stored result is
bit-identical by construction. Everything downstream — kernel analysis,
factory provisioning, the serial and point-batched dataflow engines —
already consumes a ``TechnologyParams``, so a level-L study is simply
the existing pipeline run at ``tech.at_level(L)``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Tuple

from repro.tech.params import ErrorRates, TechnologyParams

#: Monte-Carlo trials behind the concatenation-scaling calibration. The
#: batched protocol engine makes this cheap (fractions of a second); the
#: count is part of the memo key so alternative accuracies coexist.
DEFAULT_CALIBRATION_TRIALS = 20_000

#: Fixed calibration seed — leveled parameters must be deterministic so
#: result-store keys and cross-run comparisons stay stable.
DEFAULT_CALIBRATION_SEED = 7

#: Physical qubits per block of the level recursion (the [[7,1,3]] Steane
#: code the paper's factories assemble). Block movement serializes this
#: many qubits through a communication channel.
BLOCK_SIZE = 7

_CALIBRATION: Dict[Tuple[float, float, float, int, int], float] = {}
_LEVELED: Dict[Tuple[TechnologyParams, int, int, int], TechnologyParams] = {}


def level_one_logical_error_rate(
    errors: ErrorRates,
    trials: int = DEFAULT_CALIBRATION_TRIALS,
    seed: int = DEFAULT_CALIBRATION_SEED,
) -> float:
    """Level-1 logical error rate under ``errors``, from the MC driver.

    Grades the Figure 4 verify-and-correct encoded-zero preparation on
    the batched protocol engine: the probability an accepted level-1
    block carries an uncorrectable residual. A run observing *zero*
    failures reports the resolution floor ``1 / accepted`` instead of an
    exact zero (a rule-of-three-style ceiling) — very clean technologies
    stay on the scaling law rather than collapsing to error-free.
    Memoized per (error rates, trials, seed) — one Monte Carlo per
    technology per process.
    """
    key = (errors.gate, errors.movement, errors.measurement, trials, seed)
    cached = _CALIBRATION.get(key)
    if cached is None:
        from repro.ancilla.evaluation import PrepStrategy, evaluate_strategy

        report = evaluate_strategy(
            PrepStrategy.VERIFY_AND_CORRECT,
            trials=trials,
            seed=seed,
            errors=errors,
            engine="batched",
        )
        result = report.result
        if result.bad == 0 and result.accepted > 0:
            cached = 1.0 / result.accepted
        else:
            cached = report.error_rate
        _CALIBRATION[key] = cached
    return cached


def _leveled_errors(
    physical: ErrorRates,
    previous: ErrorRates,
    trials: int,
    seed: int,
) -> ErrorRates:
    """One concatenation step of the error model.

    ``p_next = C * p_prev**2`` with ``C = p1 / p0**2`` anchored so the
    level-2 gate rate *is* the measured level-1 logical rate; movement
    and measurement rates shrink by the same suppression ratio.
    """
    p0 = physical.gate
    p_prev = previous.gate
    if p0 <= 0.0 or p_prev <= 0.0:
        return ErrorRates(gate=0.0, movement=0.0, measurement=0.0)
    p1 = level_one_logical_error_rate(physical, trials, seed)
    constant = p1 / (p0 * p0)
    p_next = min(1.0, constant * p_prev * p_prev)
    ratio = p_next / p_prev
    return ErrorRates(
        gate=p_next,
        movement=min(1.0, previous.movement * ratio),
        measurement=min(1.0, previous.measurement * ratio),
    )


def at_level(
    tech: TechnologyParams,
    level: int,
    *,
    mc_trials: int = DEFAULT_CALIBRATION_TRIALS,
    seed: int = DEFAULT_CALIBRATION_SEED,
) -> TechnologyParams:
    """Effective technology parameters at concatenation level ``level``.

    Level 1 returns ``tech`` itself (the identity — bit-identical to
    every existing characterization). Each further level prices the
    level below as its physical layer:

    * ``t_1q`` / ``t_2q``: the transversal gate (one physical latency;
      the per-qubit gates run in parallel) plus the level-below QEC step
      (two rounds of transversal CX + measure + conditional correct).
    * ``t_meas``: transversal measurement — the block is consumed, so no
      QEC step follows; classical decode is free.
    * ``t_prep``: a full encoded-zero preparation at the level below
      (the Figure 11 simple-factory schedule priced at those
      parameters).
    * ``t_move`` / ``t_turn``: block shuttling serializes the
      :data:`BLOCK_SIZE` physical qubits through a channel.
    * error rates: the concatenation scaling law, MC-calibrated (see
      :func:`level_one_logical_error_rate`).

    Memoized per ``(tech, level, mc_trials, seed)`` — repeated sweeps
    and store-key fingerprints share one characterization.
    """
    if not isinstance(level, int) or isinstance(level, bool):
        raise TypeError(f"level must be an int, got {level!r}")
    if level < 1:
        raise ValueError(f"concatenation level must be >= 1, got {level}")
    if level == 1:
        return tech
    key = (tech, level, mc_trials, seed)
    cached = _LEVELED.get(key)
    if cached is not None:
        return cached
    previous = at_level(tech, level - 1, mc_trials=mc_trials, seed=seed)
    qec = 2.0 * (previous.t_2q + previous.t_meas + previous.t_1q)
    from repro.factory.simple import SimpleZeroFactory

    leveled = replace(
        previous,
        name=f"{tech.name}@L{level}",
        t_1q=previous.t_1q + qec,
        t_2q=previous.t_2q + qec,
        t_meas=previous.t_meas,
        t_prep=SimpleZeroFactory(previous).latency_us,
        t_move=previous.t_move * BLOCK_SIZE,
        t_turn=previous.t_turn * BLOCK_SIZE,
        errors=_leveled_errors(tech.errors, previous.errors, mc_trials, seed),
    )
    _LEVELED[key] = leveled
    return leveled
