"""Monte Carlo error simulation (paper Section 2.2).

Errors are injected independently at every gate and movement operation and
propagated through the circuit via Pauli-frame conjugation. One-qubit gate
errors are uniform over {X, Y, Z}; two-qubit gate errors are uniform over
the fifteen non-identity two-qubit Paulis (so correlated errors straddling
both qubits occur, which is what makes single faults during encoding able to
defeat a distance-3 code).

Protocols (in :mod:`repro.ancilla.evaluation`) drive the simulator: they run
circuits, read measurement flip bits, make accept/discard decisions and
grade the surviving output block.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.circuits import Circuit
from repro.circuits.gate import Gate
from repro.error.pauli import PauliFrame
from repro.error.propagation import measurement_flipped, propagate_gate
from repro.tech import ErrorRates

_ONE_QUBIT_PAULIS = ("X", "Y", "Z")
_TWO_QUBIT_PAULIS = tuple(
    (a, b)
    for a in ("I", "X", "Y", "Z")
    for b in ("I", "X", "Y", "Z")
    if not (a == "I" and b == "I")
)


_REMAP_CACHE: "weakref.WeakKeyDictionary[Circuit, Dict[tuple, Tuple[Gate, ...]]]" = (
    weakref.WeakKeyDictionary()
)


def _mapped_gates(circuit: Circuit, qubit_map: Dict[int, int]) -> Tuple[Gate, ...]:
    """The circuit's gates with qubits remapped, memoized per (circuit, map).

    Protocols run the same sub-circuit at the same register offset for
    every Monte Carlo trial; rebuilding a mapped ``Gate`` per gate per
    trial dominated injection cost. The cache key includes the gate count
    (circuits are append-only by convention) and the map items; entries
    die with their circuit.
    """
    key = (len(circuit), tuple(sorted(qubit_map.items())))
    per_circuit = _REMAP_CACHE.get(circuit)
    if per_circuit is None:
        per_circuit = {}
        _REMAP_CACHE[circuit] = per_circuit
    gates = per_circuit.get(key)
    if gates is None:
        gates = tuple(
            Gate(
                gate.gate_type,
                tuple(qubit_map.get(q, q) for q in gate.qubits),
                angle_k=gate.angle_k,
                condition=gate.condition,
                result=gate.result,
            )
            for gate in circuit
        )
        per_circuit[key] = gates
    return gates


class TrialOutcome(Enum):
    """Result of one Monte Carlo trial of a preparation protocol."""

    GOOD = "good"
    BAD = "bad"  # accepted output carries an uncorrectable error
    DISCARDED = "discarded"  # verification rejected the attempt


@dataclass
class MonteCarloResult:
    """Aggregated Monte Carlo statistics.

    ``error_rate`` is failures over *accepted* trials, matching the paper's
    convention: discarded ancillae are recycled, not counted as errors.
    """

    trials: int = 0
    good: int = 0
    bad: int = 0
    discarded: int = 0

    def record(self, outcome: TrialOutcome) -> None:
        self.trials += 1
        if outcome is TrialOutcome.GOOD:
            self.good += 1
        elif outcome is TrialOutcome.BAD:
            self.bad += 1
        else:
            self.discarded += 1

    @property
    def accepted(self) -> int:
        return self.good + self.bad

    @property
    def error_rate(self) -> float:
        if self.accepted == 0:
            return 0.0
        return self.bad / self.accepted

    @property
    def discard_rate(self) -> float:
        if self.trials == 0:
            return 0.0
        return self.discarded / self.trials

    def error_rate_interval(self, z: float = 1.96) -> tuple:
        """Wilson score interval for the error rate."""
        n = self.accepted
        if n == 0:
            return (0.0, 1.0)
        p = self.error_rate
        denom = 1 + z * z / n
        center = (p + z * z / (2 * n)) / denom
        half = z * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n)) / denom
        return (max(0.0, center - half), min(1.0, center + half))

    def merge(self, other: "MonteCarloResult") -> "MonteCarloResult":
        return MonteCarloResult(
            trials=self.trials + other.trials,
            good=self.good + other.good,
            bad=self.bad + other.bad,
            discarded=self.discarded + other.discarded,
        )


class MonteCarloSimulator:
    """Injects and propagates Pauli errors through circuits.

    Args:
        errors: Per-operation error probabilities.
        seed: RNG seed; trials are reproducible given a seed.
    """

    def __init__(self, errors: Optional[ErrorRates] = None, seed: int = 0) -> None:
        self.errors = errors or ErrorRates()
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Error injection primitives

    def inject_gate_error(self, frame: PauliFrame, gate: Gate) -> None:
        """With probability ``errors.gate``, corrupt the gate's qubits.

        Preparation faults inject only X or Y: a Z error on a fresh |0>
        acts trivially (|0> is a Z eigenstate), so injecting it would
        manufacture fictitious error events.
        """
        if self.rng.random() >= self.errors.gate:
            return
        if gate.is_two_qubit:
            a, b = gate.qubits
            pa, pb = _TWO_QUBIT_PAULIS[self.rng.integers(len(_TWO_QUBIT_PAULIS))]
            frame.apply_pauli(a, pa)
            frame.apply_pauli(b, pb)
        elif gate.is_prep:
            q = gate.qubits[0]
            frame.apply_pauli(q, ("X", "Y")[self.rng.integers(2)])
        else:
            q = gate.qubits[0]
            frame.apply_pauli(q, _ONE_QUBIT_PAULIS[self.rng.integers(3)])

    def inject_movement_error(
        self, frame: PauliFrame, qubit: int, move_ops: int
    ) -> None:
        """Inject errors for ``move_ops`` movement operations on one qubit.

        Each movement op independently corrupts the qubit with probability
        ``errors.movement``. The number of faults is drawn binomially rather
        than looping, since move counts can be large and rates tiny.
        """
        if move_ops <= 0 or self.errors.movement == 0.0:
            return
        faults = self.rng.binomial(move_ops, self.errors.movement)
        for _ in range(faults):
            frame.apply_pauli(qubit, _ONE_QUBIT_PAULIS[self.rng.integers(3)])

    # ------------------------------------------------------------------
    # Circuit execution

    def run_circuit(
        self,
        circuit: Circuit,
        frame: PauliFrame,
        qubit_map: Optional[Dict[int, int]] = None,
        moves_per_qubit_per_gate: float = 0.0,
    ) -> Dict[str, int]:
        """Run a circuit over an existing frame, injecting errors.

        Gates execute in order: first the ideal conjugation, then stochastic
        error injection. Measurement flip bits (whether the pending error
        flips the ideal outcome) are returned keyed by result-bit name.
        Classically conditioned gates fire when their condition bit's *flip*
        is set — appropriate for syndrome-driven corrections whose ideal
        outcome is the zero syndrome.

        Args:
            circuit: Circuit to execute.
            frame: Frame over the full simulation register (mutated).
            qubit_map: Maps circuit-local qubit indices into frame indices.
            moves_per_qubit_per_gate: Average movement ops charged to each
                involved qubit around each gate (a coarse layout proxy used
                when no explicit schedule is attached).
        """
        qm = qubit_map or {}
        # The mapped gate list is a pure function of (circuit, map) —
        # built once and replayed for every trial, not per gate per trial.
        gates = circuit if not qm else _mapped_gates(circuit, qm)
        move_ops = int(round(moves_per_qubit_per_gate))
        flips: Dict[str, int] = {}
        for mapped in gates:
            if mapped.condition is not None and not flips.get(mapped.condition, 0):
                continue
            if move_ops:
                for q in mapped.qubits:
                    self.inject_movement_error(frame, q, move_ops)
            propagate_gate(frame, mapped)
            if mapped.is_measurement:
                flipped = measurement_flipped(frame, mapped)
                if self.rng.random() < self.errors.measurement:
                    flipped = not flipped
                flips[mapped.result] = int(flipped)
                # Measurement collapses the qubit; its frame is consumed.
                frame.clear(mapped.qubits[0])
            else:
                self.inject_gate_error(frame, mapped)
        return flips

    def estimate(
        self,
        trial: Callable[["MonteCarloSimulator"], TrialOutcome],
        trials: int,
    ) -> MonteCarloResult:
        """Run a protocol trial function repeatedly and aggregate."""
        if trials <= 0:
            raise ValueError(f"trials must be positive, got {trials}")
        result = MonteCarloResult()
        for _ in range(trials):
            result.record(trial(self))
        return result
