"""Pauli frames: the error state tracked during Monte Carlo simulation.

A Pauli frame records, for each qubit, whether an X flip and/or a Z flip is
pending (Y = both). Frames form a group under multiplication (bitwise XOR),
which is all the structure error propagation needs; global phases are
irrelevant to error-rate estimation and are not tracked.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

_PAULI_NAMES = {(0, 0): "I", (1, 0): "X", (0, 1): "Z", (1, 1): "Y"}


class PauliFrame:
    """X/Z flip vectors over ``num_qubits`` qubits."""

    __slots__ = ("x", "z")

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 0:
            raise ValueError(f"num_qubits must be >= 0, got {num_qubits}")
        self.x = np.zeros(num_qubits, dtype=np.uint8)
        self.z = np.zeros(num_qubits, dtype=np.uint8)

    @property
    def num_qubits(self) -> int:
        return len(self.x)

    # ------------------------------------------------------------------
    # Mutation

    def apply_x(self, qubit: int) -> None:
        """Multiply an X flip onto ``qubit``."""
        self.x[qubit] ^= 1

    def apply_z(self, qubit: int) -> None:
        self.z[qubit] ^= 1

    def apply_y(self, qubit: int) -> None:
        self.x[qubit] ^= 1
        self.z[qubit] ^= 1

    def apply_pauli(self, qubit: int, pauli: str) -> None:
        """Multiply a named Pauli ('I', 'X', 'Y', 'Z') onto ``qubit``."""
        if pauli == "I":
            return
        if pauli == "X":
            self.apply_x(qubit)
        elif pauli == "Z":
            self.apply_z(qubit)
        elif pauli == "Y":
            self.apply_y(qubit)
        else:
            raise ValueError(f"unknown Pauli {pauli!r}")

    def clear(self, qubit: int) -> None:
        """Reset ``qubit`` to the identity (used at fresh preparations)."""
        self.x[qubit] = 0
        self.z[qubit] = 0

    # ------------------------------------------------------------------
    # Inspection

    def pauli_on(self, qubit: int) -> str:
        return _PAULI_NAMES[(int(self.x[qubit]), int(self.z[qubit]))]

    def weight(self, qubits: Iterable[int] | None = None) -> int:
        """Number of qubits carrying a non-identity Pauli."""
        if qubits is None:
            return int(np.count_nonzero(self.x | self.z))
        idx = list(qubits)
        return int(np.count_nonzero(self.x[idx] | self.z[idx]))

    def x_vector(self, qubits: Iterable[int]) -> np.ndarray:
        """X-flip bits restricted to an ordered qubit subset."""
        return self.x[list(qubits)].copy()

    def z_vector(self, qubits: Iterable[int]) -> np.ndarray:
        return self.z[list(qubits)].copy()

    def is_identity(self) -> bool:
        return not (self.x.any() or self.z.any())

    def copy(self) -> "PauliFrame":
        dup = PauliFrame(self.num_qubits)
        dup.x = self.x.copy()
        dup.z = self.z.copy()
        return dup

    def multiply(self, other: "PauliFrame") -> "PauliFrame":
        """Group product (XOR of flip vectors), returned as a new frame."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("frame sizes differ")
        out = self.copy()
        out.x ^= other.x
        out.z ^= other.z
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliFrame):
            return NotImplemented
        return bool(
            np.array_equal(self.x, other.x) and np.array_equal(self.z, other.z)
        )

    def __hash__(self) -> int:
        return hash((self.x.tobytes(), self.z.tobytes()))

    def __repr__(self) -> str:
        label = "".join(self.pauli_on(q) for q in range(self.num_qubits))
        return f"PauliFrame({label})"

    def support(self) -> Tuple[int, ...]:
        """Qubits carrying a non-identity Pauli."""
        return tuple(int(q) for q in np.nonzero(self.x | self.z)[0])
