"""Pauli error modeling and Monte Carlo circuit evaluation (Section 2.2).

The paper evaluates ancilla-preparation circuits by Monte Carlo simulation:
errors are injected at every gate and movement operation (rates 1e-4 and
1e-6) and propagated through the circuit, including the fact that two-qubit
gates spread bit and phase flips between qubits. This package implements
that machinery as a Pauli-frame simulator:

* :mod:`repro.error.pauli` — the frame (X/Z bit vectors per qubit);
* :mod:`repro.error.propagation` — Clifford conjugation rules;
* :mod:`repro.error.montecarlo` — stochastic injection and trial running.
"""

from repro.error.batched import (
    BatchFrames,
    BatchedSimulator,
    CompiledProtocol,
    ProtocolLoweringError,
    compile_protocol,
)
from repro.error.montecarlo import (
    MonteCarloResult,
    MonteCarloSimulator,
    TrialOutcome,
)
from repro.error.pauli import PauliFrame
from repro.error.propagation import propagate_gate

__all__ = [
    "BatchFrames",
    "BatchedSimulator",
    "CompiledProtocol",
    "MonteCarloResult",
    "MonteCarloSimulator",
    "PauliFrame",
    "ProtocolLoweringError",
    "TrialOutcome",
    "compile_protocol",
    "propagate_gate",
]
