"""General batched Pauli-frame engine: compile ANY protocol to array form.

The scalar :class:`~repro.error.montecarlo.MonteCarloSimulator` walks
``Gate`` objects one trial at a time; the original vectorized engine ran
whole batches but hard-coded the four Figure 4 circuits. This module
closes the gap with the same compile-to-arrays discipline the dataflow
engine uses (:mod:`repro.circuits.compiled`):

* :func:`compile_protocol` lowers an arbitrary :class:`Circuit` — with an
  optional qubit map into a larger simulation register — into a
  :class:`CompiledProtocol`: int-coded ops, flat qubit indices, and
  interned classical-bit ids for measurements and classically conditioned
  corrections. Lowering is memoized per ``(circuit, qubit_map)`` exactly
  like the scalar engine's mapped-gate cache.
* :class:`BatchedSimulator` executes a compiled program over
  ``(trials, qubits)`` uint8 X/Z matrices (:class:`BatchFrames`), drawing
  whole columns of gate, movement and measurement faults at once.

Semantics mirror the scalar engine gate for gate (same X/Y-only prep
faults, same fifteen-Pauli two-qubit faults, same skip rule for
conditional gates, same movement charging); only the RNG stream differs,
so the engines agree statistically — which the test suite checks trial
driver by trial driver. Speedup is roughly two orders of magnitude,
making million-trial estimates routine for every protocol, not just the
Figure 4 set.

Steane-code decode tables (syndrome -> correction row, stabilizer-coset
membership) live here too, so protocol drivers (Figure 4 strategies,
cat-state prep, the pi/8 ancilla pipeline) can grade whole batches
without per-trial Python.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gate import GateType
from repro.codes.steane import HAMMING_PARITY_CHECK
from repro.obs.trace import span as _span
from repro.tech import ErrorRates

# ----------------------------------------------------------------------
# Protocol ops: the engine's instruction set. Every supported GateType
# lowers to one of these; gates whose Pauli-frame conjugation is the
# identity still charge their fault model (that is what distinguishes
# OP_FAULT_1Q from skipping the gate).

OP_PREP = 0        # clear frame, inject X/Y prep fault
OP_H = 1           # swap X and Z
OP_S = 2           # X -> Y (S and S_DAG act identically on frames)
OP_CX = 3
OP_CZ = 4
OP_SWAP = 5
OP_FAULT_1Q = 6    # frame no-op, one-qubit fault (X/Y/Z, T, T_DAG, RZ)
OP_FAULT_2Q = 7    # frame no-op, two-qubit fault (CS, CRZ)
OP_MEASURE_Z = 8
OP_MEASURE_X = 9

_LOWERING: Dict[GateType, int] = {
    GateType.PREP_0: OP_PREP,
    GateType.PREP_PLUS: OP_PREP,
    GateType.H: OP_H,
    GateType.S: OP_S,
    GateType.S_DAG: OP_S,
    GateType.CX: OP_CX,
    GateType.CZ: OP_CZ,
    GateType.SWAP: OP_SWAP,
    GateType.X: OP_FAULT_1Q,
    GateType.Y: OP_FAULT_1Q,
    GateType.Z: OP_FAULT_1Q,
    GateType.T: OP_FAULT_1Q,
    GateType.T_DAG: OP_FAULT_1Q,
    GateType.RZ: OP_FAULT_1Q,
    GateType.CS: OP_FAULT_2Q,
    GateType.CRZ: OP_FAULT_2Q,
    GateType.MEASURE_Z: OP_MEASURE_Z,
    GateType.MEASURE_X: OP_MEASURE_X,
}

_TWO_QUBIT_OPS = frozenset({OP_CX, OP_CZ, OP_SWAP, OP_FAULT_2Q})

#: The fifteen non-identity two-qubit Paulis as (xa, za, xb, zb) bit rows,
#: in the same order the scalar engine enumerates them.
_PAIR_TABLE = np.array(
    [
        (int(a in "XY"), int(a in "YZ"), int(b in "XY"), int(b in "YZ"))
        for a in ("I", "X", "Y", "Z")
        for b in ("I", "X", "Y", "Z")
        if not (a == "I" and b == "I")
    ],
    dtype=np.uint8,
)


class ProtocolLoweringError(ValueError):
    """Raised when a circuit contains a gate the engine cannot lower."""


@dataclass(frozen=True, eq=False)
class CompiledProtocol:
    """Array form of one circuit under one qubit map.

    All per-gate lists are parallel (index ``i`` describes gate ``i`` of
    the source circuit, program order). Plain Python lists are used
    because the execution loop indexes them scalar-by-scalar, where list
    access beats numpy scalar access.

    Attributes:
        num_qubits: Minimum frame width the program addresses (max mapped
            qubit + 1).
        ops: Int-coded operations (``OP_*``).
        q0: First operand qubit (frame index) of each gate.
        q1: Second operand qubit, or ``-1``.
        cond: Interned condition-bit id, or ``-1``.
        result: Interned result-bit id, or ``-1``.
        bit_names: Classical bit names, id order.
    """

    num_qubits: int
    ops: List[int]
    q0: List[int]
    q1: List[int]
    cond: List[int]
    result: List[int]
    bit_names: Tuple[str, ...]

    @property
    def num_gates(self) -> int:
        return len(self.ops)

    @property
    def num_bits(self) -> int:
        return len(self.bit_names)


def _lower(circuit: Circuit, qubit_map: Dict[int, int]) -> CompiledProtocol:
    ops: List[int] = []
    q0: List[int] = []
    q1: List[int] = []
    cond: List[int] = []
    result: List[int] = []
    bit_ids: Dict[str, int] = {}
    top = -1
    for gate in circuit:
        op = _LOWERING.get(gate.gate_type)
        if op is None:
            raise ProtocolLoweringError(
                f"batched engine cannot lower {gate.describe()}; decompose "
                f"{gate.gate_type.value} before Monte Carlo evaluation"
            )
        ops.append(op)
        qubits = [qubit_map.get(q, q) for q in gate.qubits]
        q0.append(qubits[0])
        q1.append(qubits[1] if len(qubits) > 1 else -1)
        top = max(top, *qubits)
        for name, ids in ((gate.condition, cond), (gate.result, result)):
            if name is None:
                ids.append(-1)
            else:
                if name not in bit_ids:
                    bit_ids[name] = len(bit_ids)
                ids.append(bit_ids[name])
    return CompiledProtocol(
        num_qubits=top + 1,
        ops=ops,
        q0=q0,
        q1=q1,
        cond=cond,
        result=result,
        bit_names=tuple(bit_ids),
    )


_CACHE: "weakref.WeakKeyDictionary[Circuit, Dict[tuple, CompiledProtocol]]" = (
    weakref.WeakKeyDictionary()
)


def compile_protocol(
    circuit: Circuit, qubit_map: Optional[Dict[int, int]] = None
) -> CompiledProtocol:
    """Lower ``circuit`` to a protocol program, memoized per (circuit, map).

    Protocols run the same sub-circuit at the same register offset for
    every batch, so lowering once and replaying the arrays is the whole
    point. The cache key includes the gate count (circuits are
    append-only by convention) and the map items; entries die with their
    circuit (weak keys).
    """
    qm = qubit_map or {}
    key = (len(circuit), tuple(sorted(qm.items())))
    per_circuit = _CACHE.get(circuit)
    if per_circuit is None:
        per_circuit = {}
        _CACHE[circuit] = per_circuit
    program = per_circuit.get(key)
    if program is None:
        with _span("protocol.compile", gates=len(circuit)):
            program = _lower(circuit, qm)
        per_circuit[key] = program
    return program


class BatchFrames:
    """(trials, qubits) Pauli frames."""

    __slots__ = ("x", "z")

    def __init__(self, trials: int, qubits: int) -> None:
        self.x = np.zeros((trials, qubits), dtype=np.uint8)
        self.z = np.zeros((trials, qubits), dtype=np.uint8)


class BatchedSimulator:
    """Batch executor for compiled protocol programs.

    Args:
        errors: Per-operation error probabilities (paper defaults).
        seed: RNG seed; batches are reproducible given a seed.
    """

    def __init__(self, errors: Optional[ErrorRates] = None, seed: int = 0) -> None:
        self.errors = errors or ErrorRates()
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Error injection primitives (whole-column draws)

    def _inject_1q(self, frames: BatchFrames, qubit: int,
                   active: np.ndarray, prep: bool) -> None:
        """With probability ``errors.gate`` per trial, corrupt one qubit.

        Preparation faults inject only X or Y: a Z error on a fresh |0>
        acts trivially, so injecting it would manufacture fictitious
        error events (same rule as the scalar engine).
        """
        p = self.errors.gate
        if p == 0.0:
            return
        n = frames.x.shape[0]
        hit = (self.rng.random(n) < p) & active
        if not hit.any():
            return
        if prep:
            choice = self.rng.integers(2, size=n)
            frames.x[:, qubit] ^= hit.astype(np.uint8)
            frames.z[:, qubit] ^= (hit & (choice == 1)).astype(np.uint8)
        else:
            choice = self.rng.integers(3, size=n)  # 0=X, 1=Y, 2=Z
            frames.x[:, qubit] ^= (hit & (choice != 2)).astype(np.uint8)
            frames.z[:, qubit] ^= (hit & (choice != 0)).astype(np.uint8)

    def _inject_2q(self, frames: BatchFrames, qa: int, qb: int,
                   active: np.ndarray) -> None:
        """Uniform draw over the fifteen non-identity two-qubit Paulis."""
        p = self.errors.gate
        if p == 0.0:
            return
        n = frames.x.shape[0]
        hit = (self.rng.random(n) < p) & active
        if not hit.any():
            return
        pick = _PAIR_TABLE[self.rng.integers(len(_PAIR_TABLE), size=n)]
        hit8 = hit.astype(np.uint8)
        frames.x[:, qa] ^= hit8 & pick[:, 0]
        frames.z[:, qa] ^= hit8 & pick[:, 1]
        frames.x[:, qb] ^= hit8 & pick[:, 2]
        frames.z[:, qb] ^= hit8 & pick[:, 3]

    def _inject_movement(self, frames: BatchFrames, qubit: int,
                         active: np.ndarray, move_ops: int) -> None:
        """Binomial fault draws for ``move_ops`` movement ops per trial."""
        pm = self.errors.movement
        if pm == 0.0 or move_ops <= 0:
            return
        n = frames.x.shape[0]
        faults = self.rng.binomial(move_ops, pm, size=n)
        hit = (faults > 0) & active
        if not hit.any():
            return
        choice = self.rng.integers(3, size=n)
        frames.x[:, qubit] ^= (hit & (choice != 2)).astype(np.uint8)
        frames.z[:, qubit] ^= (hit & (choice != 0)).astype(np.uint8)

    # ------------------------------------------------------------------
    # Program execution

    def run_program(
        self,
        program: CompiledProtocol,
        frames: BatchFrames,
        active: np.ndarray,
        measure_flips: Optional[Dict[str, np.ndarray]] = None,
        moves_per_qubit_per_gate: float = 0.0,
    ) -> Dict[str, np.ndarray]:
        """Execute a compiled program over the batch.

        Gates propagate ideally, then inject stochastic errors; per-gate
        movement is charged to each involved qubit before the gate. A
        classically conditioned gate fires, per trial, when its condition
        bit's *flip* column is set — trials whose condition is 0 skip the
        gate entirely, movement charge included, exactly like the scalar
        engine's skip rule. Measurement flip columns are written into
        ``measure_flips`` keyed by result-bit name; measured qubits clear.
        Trials where ``active`` is False are untouched.

        Returns the flip-column dict (the ``measure_flips`` argument when
        given, else a fresh dict).
        """
        if program.num_qubits > frames.x.shape[1]:
            raise ValueError(
                f"program addresses {program.num_qubits} qubits, frames "
                f"have {frames.x.shape[1]}"
            )
        with _span("protocol.frames", trials=frames.x.shape[0],
                   gates=program.num_gates):
            return self._run_program_body(
                program, frames, active, measure_flips,
                moves_per_qubit_per_gate,
            )

    def _run_program_body(
        self,
        program: CompiledProtocol,
        frames: BatchFrames,
        active: np.ndarray,
        measure_flips: Optional[Dict[str, np.ndarray]],
        moves_per_qubit_per_gate: float,
    ) -> Dict[str, np.ndarray]:
        flips = measure_flips if measure_flips is not None else {}
        moves = int(round(moves_per_qubit_per_gate))
        n = frames.x.shape[0]
        x, z = frames.x, frames.z
        ops, q0s, q1s = program.ops, program.q0, program.q1
        conds, results = program.cond, program.result
        bit_names = program.bit_names
        # Flip columns indexed by interned bit id; bits never written stay
        # None and read as all-zero (the scalar `flips.get(cond, 0)` rule).
        bit_cols: List[Optional[np.ndarray]] = [None] * program.num_bits
        p_meas = self.errors.measurement
        for i in range(program.num_gates):
            cid = conds[i]
            if cid < 0:
                mask = active
            else:
                col = bit_cols[cid]
                if col is None:
                    continue  # condition never measured: 0 in every trial
                mask = active & (col != 0)
                if not mask.any():
                    continue
            op = ops[i]
            q = q0s[i]
            if moves:
                self._inject_movement(frames, q, mask, moves)
                if op in _TWO_QUBIT_OPS:
                    self._inject_movement(frames, q1s[i], mask, moves)
            mask8 = mask.astype(np.uint8)
            if op == OP_PREP:
                keep = 1 - mask8
                x[:, q] &= keep
                z[:, q] &= keep
                self._inject_1q(frames, q, mask, prep=True)
            elif op == OP_H:
                diff = (x[:, q] ^ z[:, q]) & mask8
                x[:, q] ^= diff
                z[:, q] ^= diff
                self._inject_1q(frames, q, mask, prep=False)
            elif op == OP_S:
                z[:, q] ^= x[:, q] & mask8
                self._inject_1q(frames, q, mask, prep=False)
            elif op == OP_CX:
                t = q1s[i]
                x[:, t] ^= x[:, q] & mask8
                z[:, q] ^= z[:, t] & mask8
                self._inject_2q(frames, q, t, mask)
            elif op == OP_CZ:
                b = q1s[i]
                z[:, b] ^= x[:, q] & mask8
                z[:, q] ^= x[:, b] & mask8
                self._inject_2q(frames, q, b, mask)
            elif op == OP_SWAP:
                b = q1s[i]
                diff = (x[:, q] ^ x[:, b]) & mask8
                x[:, q] ^= diff
                x[:, b] ^= diff
                diff = (z[:, q] ^ z[:, b]) & mask8
                z[:, q] ^= diff
                z[:, b] ^= diff
                self._inject_2q(frames, q, b, mask)
            elif op == OP_FAULT_1Q:
                self._inject_1q(frames, q, mask, prep=False)
            elif op == OP_FAULT_2Q:
                self._inject_2q(frames, q, q1s[i], mask)
            else:  # OP_MEASURE_Z / OP_MEASURE_X
                basis = x[:, q] if op == OP_MEASURE_Z else z[:, q]
                col = basis & mask8
                if p_meas > 0.0:
                    col = col ^ ((self.rng.random(n) < p_meas) & mask).astype(
                        np.uint8
                    )
                else:
                    col = col.copy()
                bit_cols[results[i]] = col
                flips[bit_names[results[i]]] = col
                # Measurement collapses the qubit; its frame is consumed.
                keep = 1 - mask8
                x[:, q] &= keep
                z[:, q] &= keep
        return flips

    def run_circuit(
        self,
        circuit: Circuit,
        frames: BatchFrames,
        qubit_map: Optional[Dict[int, int]] = None,
        active: Optional[np.ndarray] = None,
        measure_flips: Optional[Dict[str, np.ndarray]] = None,
        moves_per_qubit_per_gate: float = 0.0,
    ) -> Dict[str, np.ndarray]:
        """Lower (memoized) and execute a circuit over the batch."""
        if active is None:
            active = np.ones(frames.x.shape[0], dtype=bool)
        return self.run_program(
            compile_protocol(circuit, qubit_map),
            frames,
            active,
            measure_flips=measure_flips,
            moves_per_qubit_per_gate=moves_per_qubit_per_gate,
        )


# ----------------------------------------------------------------------
# Steane [[7,1,3]] decode tables and batched grading helpers. Shared by
# every driver that grades an encoded block (Figure 4 strategies, the
# pi/8 ancilla protocol).

#: Decode table: 3-bit syndrome (as integer, bit i = parity-check row i)
#: -> 7-bit correction row. Index 0 is the zero correction.
STEANE_DECODE = np.zeros((8, 7), dtype=np.uint8)
for _q in range(7):
    _bits = HAMMING_PARITY_CHECK[:, _q]
    _key = int(_bits[0]) | (int(_bits[1]) << 1) | (int(_bits[2]) << 2)
    STEANE_DECODE[_key, _q] = 1

STEANE_H_T = HAMMING_PARITY_CHECK.T.astype(np.uint8)

#: All eight X-stabilizer rowspace words, packed as 7-bit integers.
_ROWSPACE_LOOKUP = np.zeros(128, dtype=bool)
for _a in range(2):
    for _b in range(2):
        for _c in range(2):
            _word = (
                _a * HAMMING_PARITY_CHECK[0]
                + _b * HAMMING_PARITY_CHECK[1]
                + _c * HAMMING_PARITY_CHECK[2]
            ) % 2
            _ROWSPACE_LOOKUP[int(np.packbits(_word, bitorder="little")[0])] = True


def in_stabilizer_rowspace(residual: np.ndarray) -> np.ndarray:
    """Row-wise membership of (rows, 7) bit patterns in the rowspace."""
    packed = np.packbits(residual, axis=1, bitorder="little")[:, 0]
    return _ROWSPACE_LOOKUP[packed]


def steane_syndrome_keys(bits: np.ndarray) -> np.ndarray:
    """3-bit syndrome of each (rows, 7) bit pattern, packed to 0..7."""
    syndrome = (bits @ STEANE_H_T) % 2
    return syndrome[:, 0] | (syndrome[:, 1] << 1) | (syndrome[:, 2] << 2)


def steane_grade_bad(frames: BatchFrames, block: Sequence[int]) -> np.ndarray:
    """Uncorrectable-residual mask (logical X or logical Z content).

    A residual is bad iff, after the table decode of its syndrome, the
    zero-syndrome remainder is outside the stabilizer row space. With the
    full 8-entry decode table, the remainder always has zero syndrome,
    and membership is tested against precomputed cosets. Agrees with the
    scalar :meth:`repro.codes.css.CssCode.is_uncorrectable` bit for bit
    (checked by the test suite on random patterns).
    """
    blk = list(block)
    bad = np.zeros(frames.x.shape[0], dtype=bool)
    for err in (frames.x[:, blk], frames.z[:, blk]):
        keys = steane_syndrome_keys(err)
        residual = (err ^ STEANE_DECODE[keys]).astype(np.uint8)
        bad |= ~in_stabilizer_rowspace(residual)
    return bad
