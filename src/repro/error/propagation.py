"""Pauli propagation rules: how gates conjugate pending errors.

Two-qubit gates spread bit and phase flips between qubits — the effect the
paper's simulation explicitly models (Section 2.2). Under CX:

* X on the control spreads to an X on both qubits;
* Z on the target spreads to a Z on both qubits;
* X on the target and Z on the control stay put.

Non-Clifford gates (T and small rotations) do not map Paulis to Paulis
exactly: an X passing through T picks up an S component. Following standard
Pauli-frame practice we propagate the Pauli part and ignore the Clifford
remainder; the circuits this library grades by Monte Carlo (the Figure 4
zero-prep strategies) are Clifford-only, so the approximation never affects
a reported number. Attempting to propagate through a T is allowed but
flagged via :data:`NON_CLIFFORD_APPROXIMATED`.
"""

from __future__ import annotations

from repro.circuits.gate import Gate, GateType
from repro.error.pauli import PauliFrame

#: Gate types whose Pauli propagation is approximate (Pauli part only).
NON_CLIFFORD_APPROXIMATED = frozenset(
    {GateType.T, GateType.T_DAG, GateType.RZ, GateType.CRZ, GateType.CS}
)


def _propagate_h(frame: PauliFrame, q: int) -> None:
    # H swaps X and Z.
    frame.x[q], frame.z[q] = frame.z[q], frame.x[q]


def _propagate_s(frame: PauliFrame, q: int) -> None:
    # S maps X -> Y (adds a Z on top of an X); Z is fixed.
    if frame.x[q]:
        frame.z[q] ^= 1


def _propagate_cx(frame: PauliFrame, control: int, target: int) -> None:
    if frame.x[control]:
        frame.x[target] ^= 1
    if frame.z[target]:
        frame.z[control] ^= 1


def _propagate_cz(frame: PauliFrame, a: int, b: int) -> None:
    # CZ: X_a -> X_a Z_b, X_b -> X_b Z_a; Z's are fixed.
    if frame.x[a]:
        frame.z[b] ^= 1
    if frame.x[b]:
        frame.z[a] ^= 1


def _propagate_swap(frame: PauliFrame, a: int, b: int) -> None:
    frame.x[a], frame.x[b] = frame.x[b], frame.x[a]
    frame.z[a], frame.z[b] = frame.z[b], frame.z[a]


def propagate_gate(frame: PauliFrame, gate: Gate) -> None:
    """Conjugate the frame through ``gate`` in place.

    Paulis (X/Y/Z) commute or anticommute with the frame — either way the
    frame is unchanged up to phase, so they are no-ops here. Preparations
    reset the frame on their qubit (a fresh qubit carries no prior error).
    Measurements leave the frame untouched; outcome flips are derived from
    the frame by the simulator, not here.
    """
    gt = gate.gate_type
    if gt in (GateType.PREP_0, GateType.PREP_PLUS):
        frame.clear(gate.qubits[0])
    elif gt is GateType.H:
        _propagate_h(frame, gate.qubits[0])
    elif gt is GateType.S:
        _propagate_s(frame, gate.qubits[0])
    elif gt is GateType.S_DAG:
        # S and S-dagger act identically on Pauli frames modulo phase.
        _propagate_s(frame, gate.qubits[0])
    elif gt is GateType.CX:
        _propagate_cx(frame, gate.qubits[0], gate.qubits[1])
    elif gt is GateType.CZ:
        _propagate_cz(frame, gate.qubits[0], gate.qubits[1])
    elif gt is GateType.SWAP:
        _propagate_swap(frame, gate.qubits[0], gate.qubits[1])
    elif gt in (GateType.T, GateType.T_DAG, GateType.RZ):
        # Pauli part of conjugation: Z-axis rotations fix Z; the X image's
        # Pauli part is X (Clifford remainder dropped, see module docstring).
        pass
    elif gt in (GateType.CRZ, GateType.CS):
        pass
    # X, Y, Z, measurements: no frame change.


def measurement_flipped(frame: PauliFrame, gate: Gate) -> bool:
    """Whether the pending error flips this measurement's outcome.

    A Z-basis measurement is flipped by a pending X (or Y); an X-basis
    measurement is flipped by a pending Z (or Y).
    """
    q = gate.qubits[0]
    if gate.gate_type is GateType.MEASURE_Z:
        return bool(frame.x[q])
    if gate.gate_type is GateType.MEASURE_X:
        return bool(frame.z[q])
    raise ValueError(f"{gate.describe()} is not a measurement")
