"""Vectorized Monte Carlo engine for the Figure 4 protocols.

Runs many preparation trials simultaneously as numpy bit arrays: frames
are (trials, qubits) uint8 X/Z matrices, gates apply as column operations,
and error injection draws whole columns of faults at once. Semantics are
identical to the scalar protocols in :mod:`repro.ancilla.evaluation`
(same circuits, same idealized-verification and measured-bit-decode
rules, same X/Y-only prep faults); only the RNG stream differs, so the
two engines agree statistically, which the test suite checks.

Speedup over the scalar engine is roughly 100x, making million-trial
estimates of the verify-and-correct strategy's ~1e-5 rate practical.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.ancilla.cat import cat_prep_circuit
from repro.ancilla.evaluation import (
    MOVES_PER_QUBIT_PER_GATE,
    PAPER_ERROR_RATES,
    PrepStrategy,
    StrategyReport,
    _BIT_CORRECT,
    _PHASE_CORRECT,
    _VERIFY_CHECK,
)
from repro.circuits import Circuit
from repro.circuits.gate import GateType
from repro.codes.steane import HAMMING_PARITY_CHECK, steane_zero_prep_circuit
from repro.error.montecarlo import MonteCarloResult
from repro.tech import ErrorRates

# The fifteen non-identity two-qubit Paulis as (xa, za, xb, zb) bit rows,
# in the same order the scalar engine enumerates them.
_PAIR_TABLE = np.array(
    [
        (int(a in "XY"), int(a in "YZ"), int(b in "XY"), int(b in "YZ"))
        for a in ("I", "X", "Y", "Z")
        for b in ("I", "X", "Y", "Z")
        if not (a == "I" and b == "I")
    ],
    dtype=np.uint8,
)

#: Decode table: 3-bit syndrome (as integer, bit i = parity-check row i)
#: -> 7-bit correction row. Index 0 is the zero correction.
_DECODE = np.zeros((8, 7), dtype=np.uint8)
for _q in range(7):
    _syndrome_bits = HAMMING_PARITY_CHECK[:, _q]
    _key = int(_syndrome_bits[0]) | (int(_syndrome_bits[1]) << 1) | (
        int(_syndrome_bits[2]) << 2
    )
    _DECODE[_key, _q] = 1

_H_T = HAMMING_PARITY_CHECK.T.astype(np.uint8)


class BatchFrames:
    """(trials, qubits) Pauli frames."""

    __slots__ = ("x", "z")

    def __init__(self, trials: int, qubits: int) -> None:
        self.x = np.zeros((trials, qubits), dtype=np.uint8)
        self.z = np.zeros((trials, qubits), dtype=np.uint8)


class VectorizedSimulator:
    """Batch executor for the preparation protocols.

    Args:
        errors: Per-operation error probabilities (paper defaults).
        seed: RNG seed.
    """

    def __init__(self, errors: Optional[ErrorRates] = None, seed: int = 0) -> None:
        self.errors = errors or ErrorRates()
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Primitive operations

    def _inject_1q(self, frames: BatchFrames, qubit: int,
                   active: np.ndarray, prep: bool) -> None:
        p = self.errors.gate
        if p == 0.0:
            return
        n = frames.x.shape[0]
        hit = (self.rng.random(n) < p) & active
        if not hit.any():
            return
        if prep:
            # X or Y only: X component always set, Z set for Y.
            choice = self.rng.integers(2, size=n)
            frames.x[:, qubit] ^= hit.astype(np.uint8)
            frames.z[:, qubit] ^= (hit & (choice == 1)).astype(np.uint8)
        else:
            choice = self.rng.integers(3, size=n)  # 0=X, 1=Y, 2=Z
            frames.x[:, qubit] ^= (hit & (choice != 2)).astype(np.uint8)
            frames.z[:, qubit] ^= (hit & (choice != 0)).astype(np.uint8)

    def _inject_2q(self, frames: BatchFrames, qa: int, qb: int,
                   active: np.ndarray) -> None:
        p = self.errors.gate
        if p == 0.0:
            return
        n = frames.x.shape[0]
        hit = (self.rng.random(n) < p) & active
        if not hit.any():
            return
        pick = _PAIR_TABLE[self.rng.integers(len(_PAIR_TABLE), size=n)]
        hit8 = hit.astype(np.uint8)
        frames.x[:, qa] ^= hit8 & pick[:, 0]
        frames.z[:, qa] ^= hit8 & pick[:, 1]
        frames.x[:, qb] ^= hit8 & pick[:, 2]
        frames.z[:, qb] ^= hit8 & pick[:, 3]

    def _inject_movement(self, frames: BatchFrames, qubit: int,
                         active: np.ndarray, move_ops: int) -> None:
        pm = self.errors.movement
        if pm == 0.0 or move_ops <= 0:
            return
        n = frames.x.shape[0]
        faults = self.rng.binomial(move_ops, pm, size=n)
        hit = (faults > 0) & active
        if not hit.any():
            return
        choice = self.rng.integers(3, size=n)
        frames.x[:, qubit] ^= (hit & (choice != 2)).astype(np.uint8)
        frames.z[:, qubit] ^= (hit & (choice != 0)).astype(np.uint8)

    # ------------------------------------------------------------------
    # Circuit execution

    def run_circuit(
        self,
        circuit: Circuit,
        frames: BatchFrames,
        qubit_map: Dict[int, int],
        active: np.ndarray,
        measure_flips: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        """Execute a circuit over the batch, mirroring the scalar engine.

        Gates propagate ideally, then inject stochastic errors; per-gate
        movement (MOVES_PER_QUBIT_PER_GATE ops per involved qubit) is
        charged before the gate. Measurement flip columns are written into
        ``measure_flips`` keyed by result-bit name; measured qubits clear.
        Trials where ``active`` is False are untouched.
        """
        moves = int(round(MOVES_PER_QUBIT_PER_GATE))
        x, z = frames.x, frames.z
        for gate in circuit:
            qubits = tuple(qubit_map.get(q, q) for q in gate.qubits)
            for q in qubits:
                self._inject_movement(frames, q, active, moves)
            gt = gate.gate_type
            if gt is GateType.PREP_0:
                q = qubits[0]
                keep = (~active).astype(np.uint8)
                x[:, q] &= keep
                z[:, q] &= keep
                self._inject_1q(frames, q, active, prep=True)
            elif gt is GateType.H:
                q = qubits[0]
                swap = x[active, q].copy()
                x[active, q] = z[active, q]
                z[active, q] = swap
                self._inject_1q(frames, q, active, prep=False)
            elif gt is GateType.CX:
                c, t = qubits
                act = active.astype(np.uint8)
                x[:, t] ^= x[:, c] & act
                z[:, c] ^= z[:, t] & act
                self._inject_2q(frames, c, t, active)
            elif gt in (GateType.MEASURE_Z, GateType.MEASURE_X):
                q = qubits[0]
                basis = x[:, q] if gt is GateType.MEASURE_Z else z[:, q]
                flips = basis & active.astype(np.uint8)
                if measure_flips is not None:
                    measure_flips[gate.result] = flips.copy()
                keep = (~active).astype(np.uint8)
                x[:, q] &= keep
                z[:, q] &= keep
            else:
                raise ValueError(
                    f"vectorized engine does not support {gate.describe()}"
                )

    # ------------------------------------------------------------------
    # Protocol building blocks

    def encode(self, frames: BatchFrames, block: Sequence[int],
               active: np.ndarray) -> None:
        self.run_circuit(
            steane_zero_prep_circuit(),
            frames,
            {i: q for i, q in enumerate(block)},
            active,
        )

    def verify(self, frames: BatchFrames, block: Sequence[int],
               cats: Sequence[int], active: np.ndarray) -> np.ndarray:
        """Run the verification subunit; returns the pass mask.

        Apparatus charged, accept decision idealized (any nonzero X or Z
        syndrome on the block fails), as in the scalar engine.
        """
        self.run_circuit(
            cat_prep_circuit(3, include_prep=True),
            frames,
            {i: q for i, q in enumerate(cats)},
            active,
        )
        mapping = {i: q for i, q in enumerate(block)}
        mapping.update({7 + i: q for i, q in enumerate(cats)})
        self.run_circuit(_VERIFY_CHECK, frames, mapping, active)
        blk = list(block)
        synd_x = (frames.x[:, blk] @ _H_T) % 2
        synd_z = (frames.z[:, blk] @ _H_T) % 2
        detectable = synd_x.any(axis=1) | synd_z.any(axis=1)
        return ~detectable

    def _apply_decoded(self, frames: BatchFrames, block: Sequence[int],
                       bits: np.ndarray, active: np.ndarray,
                       phase: bool) -> None:
        """Decode measured helper bits and apply the correction."""
        syndrome = (bits @ _H_T) % 2
        keys = syndrome[:, 0] | (syndrome[:, 1] << 1) | (syndrome[:, 2] << 2)
        correction = _DECODE[keys] & active[:, None].astype(np.uint8)
        target = frames.z if phase else frames.x
        blk = list(block)
        target[:, blk] ^= correction
        # Each applied correction gate can itself fail.
        p = self.errors.gate
        if p == 0.0:
            return
        n = bits.shape[0]
        for i, q in enumerate(blk):
            applied = correction[:, i].astype(bool)
            if not applied.any():
                continue
            hit = (self.rng.random(n) < p) & applied
            choice = self.rng.integers(3, size=n)
            frames.x[:, q] ^= (hit & (choice != 2)).astype(np.uint8)
            frames.z[:, q] ^= (hit & (choice != 0)).astype(np.uint8)

    def bit_correct(self, frames: BatchFrames, target: Sequence[int],
                    helper: Sequence[int], active: np.ndarray) -> None:
        mapping = {i: q for i, q in enumerate(target)}
        mapping.update({7 + i: q for i, q in enumerate(helper)})
        flips: Dict[str, np.ndarray] = {}
        self.run_circuit(_BIT_CORRECT, frames, mapping, active, flips)
        bits = np.stack([flips[f"m{i}"] for i in range(7)], axis=1)
        self._apply_decoded(frames, target, bits, active, phase=False)

    def phase_correct(self, frames: BatchFrames, target: Sequence[int],
                      helper: Sequence[int], active: np.ndarray) -> None:
        mapping = {i: q for i, q in enumerate(target)}
        mapping.update({7 + i: q for i, q in enumerate(helper)})
        flips: Dict[str, np.ndarray] = {}
        self.run_circuit(_PHASE_CORRECT, frames, mapping, active, flips)
        bits = np.stack([flips[f"m{i}"] for i in range(7)], axis=1)
        self._apply_decoded(frames, target, bits, active, phase=True)

    def encode_verified(self, frames: BatchFrames, block: Sequence[int],
                        cats: Sequence[int], max_retries: int = 12) -> None:
        """Encode-and-verify with per-trial retries until all pass."""
        n = frames.x.shape[0]
        pending = np.ones(n, dtype=bool)
        for _ in range(max_retries):
            if not pending.any():
                return
            blk_and_cats = list(block) + list(cats)
            frames.x[np.ix_(pending, blk_and_cats)] = 0
            frames.z[np.ix_(pending, blk_and_cats)] = 0
            passed = self.verify_after_encode(frames, block, cats, pending)
            pending &= ~passed
        # Leftover failures (astronomically rare) are left as-is; their
        # detectable errors make them grade bad, a conservative outcome.

    def verify_after_encode(self, frames: BatchFrames, block: Sequence[int],
                            cats: Sequence[int],
                            active: np.ndarray) -> np.ndarray:
        self.encode(frames, block, active)
        return self.verify(frames, block, cats, active)

    # ------------------------------------------------------------------
    # Grading

    def grade_bad(self, frames: BatchFrames, block: Sequence[int]) -> np.ndarray:
        """Uncorrectable-residual mask (logical X or logical Z content).

        A residual is bad iff, after the table decode of its syndrome, the
        zero-syndrome remainder is outside the stabilizer row space. With
        the full 8-entry decode table, the remainder always has zero
        syndrome, and membership is tested against precomputed cosets.
        """
        blk = list(block)
        bad = np.zeros(frames.x.shape[0], dtype=bool)
        for err, target in ((frames.x[:, blk], "x"), (frames.z[:, blk], "z")):
            syndrome = (err @ _H_T) % 2
            keys = syndrome[:, 0] | (syndrome[:, 1] << 1) | (syndrome[:, 2] << 2)
            residual = (err ^ _DECODE[keys]).astype(np.uint8)
            bad |= ~_in_stabilizer_rowspace(residual)
        return bad


#: All eight X-stabilizer rowspace words, packed as 7-bit integers.
_ROWSPACE = set()
for _a in range(2):
    for _b in range(2):
        for _c in range(2):
            _word = (
                _a * HAMMING_PARITY_CHECK[0]
                + _b * HAMMING_PARITY_CHECK[1]
                + _c * HAMMING_PARITY_CHECK[2]
            ) % 2
            _ROWSPACE.add(int(np.packbits(_word, bitorder="little")[0]))
_ROWSPACE_LOOKUP = np.zeros(128, dtype=bool)
for _w in _ROWSPACE:
    _ROWSPACE_LOOKUP[_w] = True


def _in_stabilizer_rowspace(residual: np.ndarray) -> np.ndarray:
    packed = np.packbits(residual, axis=1, bitorder="little")[:, 0]
    return _ROWSPACE_LOOKUP[packed]


# ----------------------------------------------------------------------
# Strategy drivers


def _run_basic(sim: VectorizedSimulator, trials: int) -> MonteCarloResult:
    frames = BatchFrames(trials, 7)
    active = np.ones(trials, dtype=bool)
    sim.encode(frames, range(7), active)
    bad = sim.grade_bad(frames, range(7))
    return MonteCarloResult(trials=trials, good=int((~bad).sum()), bad=int(bad.sum()))


def _run_verify_only(sim: VectorizedSimulator, trials: int) -> MonteCarloResult:
    frames = BatchFrames(trials, 10)
    active = np.ones(trials, dtype=bool)
    passed = sim.verify_after_encode(frames, range(7), (7, 8, 9), active)
    bad = sim.grade_bad(frames, range(7)) & passed
    good = passed & ~bad
    return MonteCarloResult(
        trials=trials,
        good=int(good.sum()),
        bad=int(bad.sum()),
        discarded=int((~passed).sum()),
    )


_TOP = tuple(range(0, 7))
_MID = tuple(range(7, 14))
_BOTTOM = tuple(range(14, 21))
_CAT = (21, 22, 23)


def _run_correct_only(sim: VectorizedSimulator, trials: int) -> MonteCarloResult:
    frames = BatchFrames(trials, 21)
    active = np.ones(trials, dtype=bool)
    for block in (_TOP, _MID, _BOTTOM):
        sim.encode(frames, block, active)
    sim.bit_correct(frames, _MID, _TOP, active)
    sim.phase_correct(frames, _MID, _BOTTOM, active)
    bad = sim.grade_bad(frames, _MID)
    return MonteCarloResult(trials=trials, good=int((~bad).sum()), bad=int(bad.sum()))


def _run_verify_and_correct(sim: VectorizedSimulator, trials: int) -> MonteCarloResult:
    frames = BatchFrames(trials, 24)
    active = np.ones(trials, dtype=bool)
    for block in (_TOP, _MID, _BOTTOM):
        sim.encode_verified(frames, block, _CAT)
    sim.bit_correct(frames, _MID, _TOP, active)
    sim.phase_correct(frames, _MID, _BOTTOM, active)
    bad = sim.grade_bad(frames, _MID)
    return MonteCarloResult(trials=trials, good=int((~bad).sum()), bad=int(bad.sum()))


_RUNNERS = {
    PrepStrategy.BASIC: _run_basic,
    PrepStrategy.VERIFY_ONLY: _run_verify_only,
    PrepStrategy.CORRECT_ONLY: _run_correct_only,
    PrepStrategy.VERIFY_AND_CORRECT: _run_verify_and_correct,
}

#: Batch size cap so memory stays modest at huge trial counts.
_BATCH = 200_000


def evaluate_strategy_vectorized(
    strategy: PrepStrategy,
    trials: int = 200_000,
    seed: int = 0,
    errors: Optional[ErrorRates] = None,
) -> StrategyReport:
    """Vectorized counterpart of :func:`repro.ancilla.evaluate_strategy`."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    sim = VectorizedSimulator(errors=errors, seed=seed)
    total = MonteCarloResult()
    remaining = trials
    while remaining > 0:
        batch = min(remaining, _BATCH)
        total = total.merge(_RUNNERS[strategy](sim, batch))
        remaining -= batch
    return StrategyReport(strategy, total, PAPER_ERROR_RATES[strategy])
