"""Vectorized Monte Carlo drivers for the Figure 4 protocols.

Historically this module carried its own hand-specialized batch kernels
for the four zero-prep strategies. Those kernels are now thin wrappers
over the general batched protocol engine in :mod:`repro.error.batched`:
each sub-circuit (encoder, cat prep, verify check, bit/phase correct) is
lowered once by :func:`~repro.error.batched.compile_protocol` and
executed over ``(trials, qubits)`` frames by
:class:`~repro.error.batched.BatchedSimulator`, with only the
Figure-4-specific protocol logic — retry loops, idealized verification,
syndrome decode of the measured helper bits, output grading — kept here.

Semantics are identical to the scalar protocols in
:mod:`repro.ancilla.evaluation` (same circuits, same idealized
verification and measured-bit decode rules, same X/Y-only prep faults);
only the RNG stream differs, so the two engines agree statistically,
which the test suite checks. Speedup over the scalar engine is roughly
100x, making million-trial estimates of the verify-and-correct
strategy's ~1e-5 rate practical.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.ancilla.cat import cat_prep_circuit
from repro.ancilla.evaluation import (
    MOVES_PER_QUBIT_PER_GATE,
    PAPER_ERROR_RATES,
    PrepStrategy,
    StrategyReport,
    _BIT_CORRECT,
    _PHASE_CORRECT,
    _VERIFY_CHECK,
)
from repro.circuits import Circuit
from repro.codes.steane import steane_zero_prep_circuit
from repro.error.batched import (
    BatchFrames,
    BatchedSimulator,
    STEANE_DECODE,
    STEANE_H_T,
    steane_grade_bad,
    steane_syndrome_keys,
)
from repro.error.montecarlo import MonteCarloResult
from repro.tech import ErrorRates

#: Back-compat aliases: the decode table and parity-check transpose were
#: born here and are imported by tests and notebooks.
_DECODE = STEANE_DECODE
_H_T = STEANE_H_T


class VectorizedSimulator(BatchedSimulator):
    """Figure 4 protocol drivers on top of the general batched engine.

    Args:
        errors: Per-operation error probabilities (paper defaults).
        seed: RNG seed.
    """

    # ------------------------------------------------------------------
    # Circuit execution (movement charged at the protocol default)

    def run_circuit(  # type: ignore[override]
        self,
        circuit: Circuit,
        frames: BatchFrames,
        qubit_map: Optional[Dict[int, int]] = None,
        active: Optional[np.ndarray] = None,
        measure_flips: Optional[Dict[str, np.ndarray]] = None,
        moves_per_qubit_per_gate: float = MOVES_PER_QUBIT_PER_GATE,
    ) -> Dict[str, np.ndarray]:
        """Execute a circuit over the batch, mirroring the scalar engine.

        Identical to :meth:`BatchedSimulator.run_circuit` except that
        per-gate movement defaults to the Figure 4 protocols' layout
        proxy (:data:`~repro.ancilla.evaluation.MOVES_PER_QUBIT_PER_GATE`
        ops per involved qubit).
        """
        return super().run_circuit(
            circuit,
            frames,
            qubit_map=qubit_map,
            active=active,
            measure_flips=measure_flips,
            moves_per_qubit_per_gate=moves_per_qubit_per_gate,
        )

    # ------------------------------------------------------------------
    # Protocol building blocks

    def encode(self, frames: BatchFrames, block: Sequence[int],
               active: np.ndarray) -> None:
        self.run_circuit(
            steane_zero_prep_circuit(),
            frames,
            {i: q for i, q in enumerate(block)},
            active,
        )

    def verify(self, frames: BatchFrames, block: Sequence[int],
               cats: Sequence[int], active: np.ndarray) -> np.ndarray:
        """Run the verification subunit; returns the pass mask.

        Apparatus charged, accept decision idealized (any nonzero X or Z
        syndrome on the block fails), as in the scalar engine.
        """
        self.run_circuit(
            cat_prep_circuit(3, include_prep=True),
            frames,
            {i: q for i, q in enumerate(cats)},
            active,
        )
        mapping = {i: q for i, q in enumerate(block)}
        mapping.update({7 + i: q for i, q in enumerate(cats)})
        self.run_circuit(_VERIFY_CHECK, frames, mapping, active)
        blk = list(block)
        detectable = (
            steane_syndrome_keys(frames.x[:, blk]) != 0
        ) | (steane_syndrome_keys(frames.z[:, blk]) != 0)
        return ~detectable

    def _apply_decoded(self, frames: BatchFrames, block: Sequence[int],
                       bits: np.ndarray, active: np.ndarray,
                       phase: bool) -> None:
        """Decode measured helper bits and apply the correction."""
        keys = steane_syndrome_keys(bits)
        correction = STEANE_DECODE[keys] & active[:, None].astype(np.uint8)
        target = frames.z if phase else frames.x
        blk = list(block)
        target[:, blk] ^= correction
        # Each applied correction gate can itself fail.
        p = self.errors.gate
        if p == 0.0:
            return
        n = bits.shape[0]
        for i, q in enumerate(blk):
            applied = correction[:, i].astype(bool)
            if not applied.any():
                continue
            hit = (self.rng.random(n) < p) & applied
            choice = self.rng.integers(3, size=n)
            frames.x[:, q] ^= (hit & (choice != 2)).astype(np.uint8)
            frames.z[:, q] ^= (hit & (choice != 0)).astype(np.uint8)

    def bit_correct(self, frames: BatchFrames, target: Sequence[int],
                    helper: Sequence[int], active: np.ndarray) -> None:
        mapping = {i: q for i, q in enumerate(target)}
        mapping.update({7 + i: q for i, q in enumerate(helper)})
        flips: Dict[str, np.ndarray] = {}
        self.run_circuit(_BIT_CORRECT, frames, mapping, active, flips)
        bits = np.stack([flips[f"m{i}"] for i in range(7)], axis=1)
        self._apply_decoded(frames, target, bits, active, phase=False)

    def phase_correct(self, frames: BatchFrames, target: Sequence[int],
                      helper: Sequence[int], active: np.ndarray) -> None:
        mapping = {i: q for i, q in enumerate(target)}
        mapping.update({7 + i: q for i, q in enumerate(helper)})
        flips: Dict[str, np.ndarray] = {}
        self.run_circuit(_PHASE_CORRECT, frames, mapping, active, flips)
        bits = np.stack([flips[f"m{i}"] for i in range(7)], axis=1)
        self._apply_decoded(frames, target, bits, active, phase=True)

    def encode_verified(self, frames: BatchFrames, block: Sequence[int],
                        cats: Sequence[int], max_retries: int = 12) -> None:
        """Encode-and-verify with per-trial retries until all pass."""
        n = frames.x.shape[0]
        pending = np.ones(n, dtype=bool)
        for _ in range(max_retries):
            if not pending.any():
                return
            blk_and_cats = list(block) + list(cats)
            frames.x[np.ix_(pending, blk_and_cats)] = 0
            frames.z[np.ix_(pending, blk_and_cats)] = 0
            passed = self.verify_after_encode(frames, block, cats, pending)
            pending &= ~passed
        # Leftover failures (astronomically rare) are left as-is; their
        # detectable errors make them grade bad, a conservative outcome.

    def verify_after_encode(self, frames: BatchFrames, block: Sequence[int],
                            cats: Sequence[int],
                            active: np.ndarray) -> np.ndarray:
        self.encode(frames, block, active)
        return self.verify(frames, block, cats, active)

    # ------------------------------------------------------------------
    # Grading

    def grade_bad(self, frames: BatchFrames, block: Sequence[int]) -> np.ndarray:
        """Uncorrectable-residual mask (logical X or logical Z content)."""
        return steane_grade_bad(frames, block)


# ----------------------------------------------------------------------
# Strategy drivers


def _run_basic(sim: VectorizedSimulator, trials: int) -> MonteCarloResult:
    frames = BatchFrames(trials, 7)
    active = np.ones(trials, dtype=bool)
    sim.encode(frames, range(7), active)
    bad = sim.grade_bad(frames, range(7))
    return MonteCarloResult(trials=trials, good=int((~bad).sum()), bad=int(bad.sum()))


def _run_verify_only(sim: VectorizedSimulator, trials: int) -> MonteCarloResult:
    frames = BatchFrames(trials, 10)
    active = np.ones(trials, dtype=bool)
    passed = sim.verify_after_encode(frames, range(7), (7, 8, 9), active)
    bad = sim.grade_bad(frames, range(7)) & passed
    good = passed & ~bad
    return MonteCarloResult(
        trials=trials,
        good=int(good.sum()),
        bad=int(bad.sum()),
        discarded=int((~passed).sum()),
    )


_TOP = tuple(range(0, 7))
_MID = tuple(range(7, 14))
_BOTTOM = tuple(range(14, 21))
_CAT = (21, 22, 23)


def _run_correct_only(sim: VectorizedSimulator, trials: int) -> MonteCarloResult:
    frames = BatchFrames(trials, 21)
    active = np.ones(trials, dtype=bool)
    for block in (_TOP, _MID, _BOTTOM):
        sim.encode(frames, block, active)
    sim.bit_correct(frames, _MID, _TOP, active)
    sim.phase_correct(frames, _MID, _BOTTOM, active)
    bad = sim.grade_bad(frames, _MID)
    return MonteCarloResult(trials=trials, good=int((~bad).sum()), bad=int(bad.sum()))


def _run_verify_and_correct(sim: VectorizedSimulator, trials: int) -> MonteCarloResult:
    frames = BatchFrames(trials, 24)
    active = np.ones(trials, dtype=bool)
    for block in (_TOP, _MID, _BOTTOM):
        sim.encode_verified(frames, block, _CAT)
    sim.bit_correct(frames, _MID, _TOP, active)
    sim.phase_correct(frames, _MID, _BOTTOM, active)
    bad = sim.grade_bad(frames, _MID)
    return MonteCarloResult(trials=trials, good=int((~bad).sum()), bad=int(bad.sum()))


_RUNNERS = {
    PrepStrategy.BASIC: _run_basic,
    PrepStrategy.VERIFY_ONLY: _run_verify_only,
    PrepStrategy.CORRECT_ONLY: _run_correct_only,
    PrepStrategy.VERIFY_AND_CORRECT: _run_verify_and_correct,
}

#: Batch size cap so memory stays modest at huge trial counts.
_BATCH = 200_000


def evaluate_strategy_vectorized(
    strategy: PrepStrategy,
    trials: int = 200_000,
    seed: int = 0,
    errors: Optional[ErrorRates] = None,
) -> StrategyReport:
    """Vectorized counterpart of :func:`repro.ancilla.evaluate_strategy`."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    sim = VectorizedSimulator(errors=errors, seed=seed)
    total = MonteCarloResult()
    remaining = trials
    while remaining > 0:
        batch = min(remaining, _BATCH)
        total = total.merge(_RUNNERS[strategy](sim, batch))
        remaining -= batch
    return StrategyReport(strategy, total, PAPER_ERROR_RATES[strategy])
