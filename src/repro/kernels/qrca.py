"""The Quantum Ripple-Carry Adder (Section 3.1).

The paper's QRCA uses "two n-bit data inputs plus n+1 ancillae", matching
the Vedral-Barenco-Ekert ripple-carry construction: carry qubits
c_0..c_{n-1} plus a high output bit. The structure is a forward ripple of
CARRY blocks, a middle fix-up, then a backward ripple undoing the carries
while producing sums — deeply serial, which is why the QRCA is the
most modest ancilla-bandwidth consumer of the three benchmarks.

Register layout (width n):
    a_i  : qubits [0, n)            first addend (unchanged)
    b_i  : qubits [n, 2n)           second addend, overwritten with sum
    b_n  : qubit 2n                 high sum bit (carry out)
    c_i  : qubits [2n+1, 3n+1)      carry ancillae (returned to |0>)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.circuits import Circuit


@dataclass(frozen=True)
class QrcaRegisters:
    """Qubit index map for a width-n QRCA."""

    width: int

    @property
    def a(self) -> List[int]:
        return list(range(0, self.width))

    @property
    def b(self) -> List[int]:
        return list(range(self.width, 2 * self.width))

    @property
    def b_high(self) -> int:
        return 2 * self.width

    @property
    def c(self) -> List[int]:
        return list(range(2 * self.width + 1, 3 * self.width + 1))

    @property
    def num_qubits(self) -> int:
        return 3 * self.width + 1

    @property
    def data_ancillae(self) -> int:
        """Long-lived ancillae beyond the two inputs: n carries + high bit."""
        return self.width + 1


def _carry(circ: Circuit, c_in: int, a: int, b: int, c_out: int) -> None:
    """VBE CARRY block: c_out ^= maj-ish carry of (c_in, a, b)."""
    circ.ccx(a, b, c_out)
    circ.cx(a, b)
    circ.ccx(c_in, b, c_out)


def _carry_inverse(circ: Circuit, c_in: int, a: int, b: int, c_out: int) -> None:
    circ.ccx(c_in, b, c_out)
    circ.cx(a, b)
    circ.ccx(a, b, c_out)


def _sum(circ: Circuit, c_in: int, a: int, b: int) -> None:
    """VBE SUM block: b ^= a ^ c_in."""
    circ.cx(a, b)
    circ.cx(c_in, b)


def qrca_circuit(width: int = 32) -> Circuit:
    """Build the width-bit ripple-carry adder: b <- a + b.

    The high sum bit lands in ``b_high``; carry ancillae are uncomputed
    back to |0> so they can be reused (they are the circuit's "data
    ancillae" in the paper's terminology).
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    regs = QrcaRegisters(width)
    circ = Circuit(regs.num_qubits, name=f"qrca{width}")
    a, b, c = regs.a, regs.b, regs.c
    carry_out = [*c[1:], regs.b_high]
    for i in range(width):
        _carry(circ, c[i], a[i], b[i], carry_out[i])
    circ.cx(a[width - 1], b[width - 1])
    _sum(circ, c[width - 1], a[width - 1], b[width - 1])
    for i in range(width - 2, -1, -1):
        _carry_inverse(circ, c[i], a[i], b[i], carry_out[i])
        _sum(circ, c[i], a[i], b[i])
    return circ


def qrca_registers(width: int = 32) -> QrcaRegisters:
    return QrcaRegisters(width)
